//! Differential testing of resumable solver states: solving a base
//! program, retaining the state, and resuming over an appended delta must
//! reach exactly the fixpoint a from-scratch solve of the union program
//! reaches.
//!
//! What "bit-identical" means here (the PR-6-style correctness story,
//! adapted to warm starts — see DESIGN.md §14):
//!
//! * **Solution**: the resumed solution is bit-identical to the scratch
//!   union solution. Andersen's constraints are monotone, so the base
//!   fixpoint is a sound warm start, and inclusion systems have a unique
//!   least fixpoint — both runs land on it.
//! * **Counters across configurations**: the resume path's behavioural
//!   §5.3 counters are bit-identical across `{bitmap, shared}` ×
//!   `--prop {full, diff}` × `threads {1, 4}` for a fixed algorithm and
//!   split — representation, propagation mode and the BSP engine are
//!   solver-invisible, and that invariance must survive the warm start.
//! * **Not** resume-vs-scratch counter equality: a resumed solve only
//!   re-processes nodes the delta disturbs, so its cumulative counters are
//!   *smaller* than the scratch union's — that gap is the entire point of
//!   warm starting (the BENCH_incr speedup).

use ant_grasshopper::{
    resume_dyn, solve_dyn, solve_dyn_resumable, Algorithm, Program, ProgramBuilder, PropMode,
    PtsKind, SolverConfig, VarId,
};
use proptest::prelude::*;

/// The resumable algorithms (HT, BLQ and the HCD variants fall back to
/// full re-solves by design; see `resume_supported`).
const ALGS: [Algorithm; 4] = [
    Algorithm::Basic,
    Algorithm::Lcd,
    Algorithm::Pkh,
    Algorithm::Pkh03,
];

/// The nine behavioural §5.3 counters (`propagated_bytes` and durations
/// excluded: those measure *how*, not *what*).
fn counters(st: &ant_grasshopper::SolverStats) -> [u64; 9] {
    [
        st.nodes_processed,
        st.propagations,
        st.propagations_changed,
        st.edges_added,
        st.complex_iters,
        st.cycle_searches,
        st.nodes_searched,
        st.cycles_found,
        st.nodes_collapsed,
    ]
}

#[derive(Clone, Debug)]
struct RawConstraint {
    kind: u8,
    lhs: usize,
    rhs: usize,
}

fn raw_constraints(max_vars: usize, max_cs: usize) -> impl Strategy<Value = Vec<RawConstraint>> {
    prop::collection::vec(
        (0u8..4, 0..max_vars, 0..max_vars).prop_map(|(kind, lhs, rhs)| RawConstraint {
            kind,
            lhs,
            rhs,
        }),
        2..max_cs,
    )
}

/// Builds a program over the full `nvars` variable space from a raw slice.
/// Declaring every variable up front keeps the id space identical across
/// the base, the addition and the union, so solutions compare by `VarId`.
fn build_program(raw: &[RawConstraint], nvars: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let vars: Vec<VarId> = (0..nvars).map(|i| b.var(&format!("v{i}"))).collect();
    for c in raw {
        let (l, r) = (vars[c.lhs], vars[c.rhs]);
        match c.kind {
            0 => b.addr_of(l, r),
            1 => b.copy(l, r),
            2 => b.load(l, r),
            _ => b.store(l, r),
        }
    }
    b.finish()
}

const NVARS: usize = 24;

/// Solves `base`, resumes over `union`, checks the resumed solution against
/// a from-scratch union solve, and returns the resume path's cumulative
/// behavioural counters for the cross-configuration invariance check.
fn check_one(
    base: &Program,
    union: &Program,
    alg: Algorithm,
    pts: PtsKind,
    prop: PropMode,
    threads: usize,
) -> [u64; 9] {
    let cfg = SolverConfig::new(alg).with_threads(threads).with_prop(prop);
    let (_, state) = solve_dyn_resumable(base, &cfg, pts);
    let state = state.unwrap_or_else(|| panic!("{alg}/{pts:?} is a resumable configuration"));
    let (resumed, _) = resume_dyn(state, union)
        .unwrap_or_else(|e| panic!("{alg}/{pts:?}: union extends base, yet resume failed: {e}"));
    let scratch = solve_dyn(union, &cfg, pts);
    assert!(
        resumed.solution.equiv(&scratch.solution),
        "{alg}/{pts:?}/{prop:?}/t{threads}: resumed solution differs from scratch at {:?}",
        resumed.solution.first_difference(&scratch.solution)
    );
    counters(&resumed.stats)
}

/// Runs the full configuration matrix for one base/union split and asserts
/// the counter invariance across representations, propagation modes and
/// thread counts.
fn check_split(base: &Program, union: &Program) {
    for alg in ALGS {
        let mut seen: Option<[u64; 9]> = None;
        for pts in [PtsKind::Bitmap, PtsKind::Shared] {
            for prop in [PropMode::Full, PropMode::Diff] {
                for threads in [1, 4] {
                    let c = check_one(base, union, alg, pts, prop, threads);
                    match &seen {
                        None => seen = Some(c),
                        Some(s) => assert_eq!(
                            &c, s,
                            "{alg}/{pts:?}/{prop:?}/t{threads}: resume-path counters \
                             diverge across configurations"
                        ),
                    }
                }
            }
        }
    }
}

/// Hand-picked splits of a pointer-heavy program: pure growth, a delta that
/// closes a cycle through the base, and an empty delta.
#[test]
fn fixed_splits_resume_to_the_scratch_fixpoint() {
    let raw: Vec<RawConstraint> = [
        (0u8, 0, 1), // v0 = &v1
        (1, 2, 0),   // v2 = v0
        (3, 0, 2),   // *v0 = v2
        (2, 3, 0),   // v3 = *v0
        (1, 4, 3),   // v4 = v3
        (0, 5, 6),   // v5 = &v6
        (1, 3, 5),   // v3 = v5
        (1, 5, 4),   // v5 = v4 — closes a cycle through the base
        (2, 7, 5),   // v7 = *v5
    ]
    .iter()
    .map(|&(kind, lhs, rhs)| RawConstraint { kind, lhs, rhs })
    .collect();
    let union = build_program(&raw, 8);
    for split in [1, 4, 7, raw.len()] {
        let base = build_program(&raw[..split], 8);
        check_split(&base, &union);
    }
}

/// A chain of three deltas reaches the same fixpoint as one scratch solve
/// of the final union, re-keying the retained state at every step.
#[test]
fn chained_deltas_match_the_final_union() {
    let stages = [
        "p = &x\nq = p\n",
        "p = &x\nq = p\nr = *q\n*p = q\n",
        "p = &x\nq = p\nr = *q\n*p = q\ns = r\nr = s\nt = &s\n",
    ];
    for alg in ALGS {
        for pts in [PtsKind::Bitmap, PtsKind::Shared] {
            let cfg = SolverConfig::new(alg);
            let programs: Vec<Program> = stages
                .iter()
                .map(|s| ant_grasshopper::parse_program(s).unwrap())
                .collect();
            let (_, state) = solve_dyn_resumable(&programs[0], &cfg, pts);
            let mut state = state.unwrap();
            let mut last = None;
            let mut current = programs[0].clone();
            for next in &programs[1..] {
                let delta = current.delta_from(next).unwrap();
                let union = current.append_delta(&delta);
                let (out, st) = resume_dyn(state, &union).unwrap();
                state = st;
                last = Some(out);
                current = union;
            }
            let scratch = solve_dyn(&current, &cfg, pts);
            let last = last.unwrap();
            assert!(
                last.solution.equiv(&scratch.solution),
                "{alg}/{pts:?}: chained resume differs at {:?}",
                last.solution.first_difference(&scratch.solution)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random base/delta splits of arbitrary constraint programs: for every
    /// resumable algorithm the resumed solution matches a scratch union
    /// solve, and the resume path's behavioural counters are bit-identical
    /// across the representation × propagation × thread matrix.
    #[test]
    fn random_splits_resume_to_the_scratch_fixpoint(
        raw in raw_constraints(NVARS, 60),
        split_pct in 0usize..101,
    ) {
        let split = (raw.len() * split_pct).div_euclid(100).min(raw.len());
        let base = build_program(&raw[..split], NVARS);
        let union = build_program(&raw, NVARS);
        check_split(&base, &union);
    }
}
