//! Provenance differential testing: the derivation recorder is an
//! *observer*, not a participant — attaching it must not change anything
//! the solver computes. For every solver family × points-to
//! representation × pass subset, the recorded run must reproduce the
//! unrecorded run bit for bit: the same expanded solution *and* the same
//! §5.3 behavioural counters (the recorder may only cost wall time and
//! memory).
//!
//! On top of that, the recorder's output must be *true*: a property test
//! explains every fact of the solution and replays the chain through
//! [`Explainer::validate`] — each step's reason has to be a real
//! constraint, a recorded edge between the two classes, or a merge the
//! pass pipeline / online collapse actually performed.

use ant_grasshopper::frontend::workload::WorkloadSpec;
use ant_grasshopper::{
    compile_c, solve_prepared, solve_prepared_recorded, Algorithm, Explainer, HcdPass,
    NormalizePass, OvsPass, PassPipeline, Program, PtsKind, SolveOutput, SolverConfig, VarId,
};
use proptest::prelude::*;

/// The §5.3 counters that must be recorder-invariant.
fn counters(out: &SolveOutput) -> [u64; 9] {
    let s = &out.stats;
    [
        s.nodes_processed,
        s.propagations,
        s.propagations_changed,
        s.edges_added,
        s.complex_iters,
        s.cycle_searches,
        s.nodes_searched,
        s.cycles_found,
        s.nodes_collapsed,
    ]
}

/// Every subset the CLI's `--passes` flag exposes, plus the empty one.
fn subsets() -> Vec<(&'static str, PassPipeline)> {
    vec![
        ("none", PassPipeline::empty()),
        ("normalize,ovs", PassPipeline::standard()),
        (
            "normalize,ovs,hcd",
            PassPipeline::empty()
                .push(NormalizePass)
                .push(OvsPass)
                .push(HcdPass),
        ),
    ]
}

fn workloads() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for seed in [5u64, 23] {
        out.push((format!("tiny-{seed}"), WorkloadSpec::tiny(seed).generate()));
    }
    let path = format!("{}/testdata/hashtable.c", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap();
    out.push(("hashtable.c".to_owned(), compile_c(&text).unwrap().program));
    out
}

/// Recorder-on vs recorder-off over one representation.
fn assert_recorder_invariant(name: &str, program: &Program, pts: PtsKind) {
    for (spec, pipeline) in subsets() {
        let prepared = pipeline.run(program);
        for alg in Algorithm::ALL {
            let config = SolverConfig::new(alg);
            let plain = solve_prepared(&prepared, &config, pts);
            let (recorded, prov) = solve_prepared_recorded(&prepared, &config, pts);
            assert!(
                recorded.solution.equiv(&plain.solution),
                "{name}/{spec}/{alg}/{pts}: recording changed the solution at {:?}",
                recorded.solution.first_difference(&plain.solution)
            );
            assert_eq!(
                counters(&recorded),
                counters(&plain),
                "{name}/{spec}/{alg}/{pts}: recording changed the §5.3 counters"
            );
            assert!(
                !prov.is_empty() || plain.solution.total_pts_size() == 0,
                "{name}/{spec}/{alg}/{pts}: non-empty solution left no records"
            );
        }
    }
}

#[test]
fn bitmap_runs_are_recorder_invariant() {
    for (name, program) in workloads() {
        assert_recorder_invariant(&name, &program, PtsKind::Bitmap);
    }
}

#[test]
fn shared_runs_are_recorder_invariant() {
    for (name, program) in workloads() {
        assert_recorder_invariant(&name, &program, PtsKind::Shared);
    }
}

#[test]
fn bdd_runs_are_recorder_invariant() {
    // One workload keeps the BDD sweep (12 algorithms × 3 subsets × 2
    // runs) affordable; the representation is exercised across all
    // algorithms either way.
    let (name, program) = &workloads()[0];
    assert_recorder_invariant(name, program, PtsKind::Bdd);
}

// ---------------------------------------------------------------------------
// Chain replay: every explained fact must validate against the program.

#[derive(Clone, Debug)]
struct RawConstraint {
    kind: u8,
    lhs: usize,
    rhs: usize,
}

fn raw_constraints(max_vars: usize, max_cs: usize) -> impl Strategy<Value = Vec<RawConstraint>> {
    prop::collection::vec(
        (0u8..4, 0..max_vars, 0..max_vars).prop_map(|(kind, lhs, rhs)| RawConstraint {
            kind,
            lhs,
            rhs,
        }),
        1..max_cs,
    )
}

/// Builds a well-formed program (every dereferenced pointer is seeded) —
/// the regime where all algorithms compute the exact Andersen solution.
fn build_program(raw: &[RawConstraint], nvars: usize) -> Program {
    let mut b = ant_grasshopper::ProgramBuilder::new();
    let vars: Vec<VarId> = (0..nvars).map(|i| b.var(&format!("v{i}"))).collect();
    let mut seeded = vec![false; nvars];
    for c in raw {
        if c.kind == 0 {
            seeded[c.lhs] = true;
        }
    }
    for c in raw {
        let (l, r) = (vars[c.lhs], vars[c.rhs]);
        match c.kind {
            0 => b.addr_of(l, r),
            1 => b.copy(l, r),
            2 => {
                if !seeded[c.rhs] {
                    seeded[c.rhs] = true;
                    b.addr_of(r, vars[(c.rhs + 1) % nvars]);
                }
                b.load(l, r);
            }
            _ => {
                if !seeded[c.lhs] {
                    seeded[c.lhs] = true;
                    b.addr_of(l, vars[(c.lhs + 1) % nvars]);
                }
                b.store(l, r);
            }
        }
    }
    b.finish()
}

/// Explains every fact the solve derived and replays each chain.
fn assert_chains_replay(program: &Program, alg: Algorithm, pipeline: PassPipeline) {
    let prepared = pipeline.run(program);
    let (out, prov) = solve_prepared_recorded(&prepared, &SolverConfig::new(alg), PtsKind::Bitmap);
    let mut ex = Explainer::new(&prov, program.num_vars()).with_mapping(&prepared.mapping);
    for v in 0..program.num_vars() as u32 {
        let v = VarId::from_u32(v);
        for &l in out.solution.points_to(v).iter() {
            let loc = VarId::from_u32(l);
            let steps = ex
                .explain(v, loc)
                .unwrap_or_else(|| panic!("{alg}: no chain for {l} ∈ pts({v:?})"));
            // Replay against the program the solver actually saw (ids are
            // preserved by every pass, only representatives change); the
            // explainer's mapping justifies the leading OfflineMerged hop.
            assert!(
                ex.validate(&prepared.program, v, loc, &steps[..]),
                "{alg}: chain for {l} ∈ pts({v:?}) does not replay: {steps:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random well-formed programs: every algorithm family's chains
    /// replay, with and without the offline pipeline in front.
    #[test]
    fn explained_chains_replay_to_valid_derivations(
        raw in raw_constraints(10, 24),
        alg_idx in 0..Algorithm::ALL.len(),
        pipeline_sel in 0u8..2,
    ) {
        let program = build_program(&raw, 10);
        let alg = Algorithm::ALL[alg_idx];
        let pipeline = if pipeline_sel == 1 {
            PassPipeline::standard().push(HcdPass)
        } else {
            PassPipeline::empty()
        };
        assert_chains_replay(&program, alg, pipeline);
    }
}
