//! Cross-representation differential testing: the points-to representation
//! is an implementation detail, so `BitmapPts`, `SharedPts` and `BddPts`
//! must produce bit-identical solutions for every solver — and because the
//! solvers branch only on set *contents* (`set_eq`, union growth), the
//! bitmap and shared runs must also agree on behavioural counters like
//! propagations and cycle searches.

use ant_grasshopper::frontend::workload::WorkloadSpec;
use ant_grasshopper::{compile_c, solve_dyn, Algorithm, Program, PtsKind, SolverConfig};

fn workloads() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for seed in [1u64, 42] {
        out.push((format!("tiny-{seed}"), WorkloadSpec::tiny(seed).generate()));
    }
    for name in ["hashtable.c", "interp.c"] {
        let path = format!("{}/testdata/{name}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap();
        out.push((name.to_owned(), compile_c(&text).unwrap().program));
    }
    out
}

/// Every solver, bitmap vs shared: identical solutions *and* identical
/// work counters. A counter mismatch means a representation changed a
/// solver decision (e.g. a `set_eq` that should be content equality).
#[test]
fn shared_matches_bitmap_solutions_and_counters() {
    for (name, program) in workloads() {
        for alg in Algorithm::ALL {
            let config = SolverConfig::new(alg);
            let bm = solve_dyn(&program, &config, PtsKind::Bitmap);
            let sh = solve_dyn(&program, &config, PtsKind::Shared);
            assert!(
                sh.solution.equiv(&bm.solution),
                "{alg} shared differs from bitmap on {name} at {:?}",
                sh.solution.first_difference(&bm.solution)
            );
            assert_eq!(
                sh.stats.propagations, bm.stats.propagations,
                "{alg} on {name}: propagation counts diverge between reprs"
            );
            assert_eq!(
                sh.stats.cycle_searches, bm.stats.cycle_searches,
                "{alg} on {name}: cycle-search counts diverge between reprs"
            );
            assert_eq!(
                sh.stats.nodes_collapsed, bm.stats.nodes_collapsed,
                "{alg} on {name}: collapse counts diverge between reprs"
            );
        }
    }
}

/// The BDD representation supports the Table 5 solvers; its solutions must
/// match the bitmap reference too (counters are not comparable: BDD set
/// operations have different fast paths).
#[test]
fn bdd_matches_bitmap_solutions() {
    for (name, program) in workloads() {
        for alg in Algorithm::TABLE5 {
            let config = SolverConfig::new(alg);
            let bm = solve_dyn(&program, &config, PtsKind::Bitmap);
            let bdd = solve_dyn(&program, &config, PtsKind::Bdd);
            assert!(
                bdd.solution.equiv(&bm.solution),
                "{alg} bdd differs from bitmap on {name} at {:?}",
                bdd.solution.first_difference(&bm.solution)
            );
        }
    }
}

/// The shared representation reports its cache telemetry through
/// `SolverStats`; the bitmap one must not.
#[test]
fn shared_populates_repr_cache_stats() {
    let program = WorkloadSpec::tiny(7).generate();
    let config = SolverConfig::new(Algorithm::LcdHcd);
    let sh = solve_dyn(&program, &config, PtsKind::Shared);
    assert!(sh.stats.distinct_sets > 0);
    assert!(sh.stats.intern_misses >= sh.stats.distinct_sets - 1);
    let bm = solve_dyn(&program, &config, PtsKind::Bitmap);
    assert_eq!(bm.stats.distinct_sets, 0);
    assert_eq!(bm.stats.intern_hits + bm.stats.intern_misses, 0);
}
