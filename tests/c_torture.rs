//! Mini-C front-end torture tests: each case states a precise points-to
//! fact the generated constraints must (or must not) imply.

use ant_grasshopper::{Algorithm, Analysis, CAnalysis, SolverConfig};

fn analyze(src: &str) -> CAnalysis {
    Analysis::builder()
        .algorithm(Algorithm::LcdHcd)
        .analyze_c(src)
        .expect("source parses")
}

fn pts(a: &CAnalysis, p: &str) -> Vec<String> {
    let v = a
        .program
        .var_by_name(p)
        .unwrap_or_else(|| panic!("no variable {p}"));
    a.solution
        .points_to(v)
        .iter()
        .map(|&l| {
            a.program
                .var_name(ant_grasshopper::VarId::from_u32(l))
                .to_owned()
        })
        .collect()
}

fn points_to(a: &CAnalysis, p: &str, x: &str) -> bool {
    pts(a, p).iter().any(|n| n == x)
}

#[test]
fn multi_level_dereference() {
    let a = analyze(
        "int x; int *p; int **pp; int ***ppp; int *r;\n\
         void main() { p = &x; pp = &p; ppp = &pp; r = **ppp; ***ppp = x; }",
    );
    assert!(points_to(&a, "r", "x"));
    assert!(points_to(&a, "ppp", "pp"));
}

#[test]
fn swap_through_pointers() {
    let a = analyze(
        "int x; int y; int *a; int *b; int **pa; int **pb; int *t;\n\
         void main() {\n\
           a = &x; b = &y; pa = &a; pb = &b;\n\
           t = *pa; *pa = *pb; *pb = t;\n\
         }",
    );
    // Flow-insensitively, both a and b may point to both x and y.
    assert!(points_to(&a, "a", "x") && points_to(&a, "a", "y"));
    assert!(points_to(&a, "b", "x") && points_to(&a, "b", "y"));
}

#[test]
fn function_pointer_table_dispatch() {
    let a = analyze(
        "int x; int y;\n\
         int *fx(int *a) { return a; }\n\
         int *fy(int *a) { return &y; }\n\
         int *(*ops[2])(int *);\n\
         int *r;\n\
         void init() { ops[0] = fx; ops[1] = fy; }\n\
         void main() { init(); r = ops[1](&x); }",
    );
    assert!(points_to(&a, "r", "x"), "via fx's identity");
    assert!(points_to(&a, "r", "y"), "via fy's constant");
}

#[test]
fn returning_function_pointers() {
    let a = analyze(
        "typedef int *(*fnp)(int *);\n\
         int x;\n\
         int *id(int *a) { return a; }\n\
         fnp get(void) { return id; }\n\
         int *r;\n\
         void main() { r = get()(&x); }",
    );
    assert!(points_to(&a, "r", "x"));
}

#[test]
fn struct_graph_cycles() {
    let a = analyze(
        "struct n { struct n *next; };\n\
         struct n a; struct n b; struct n c;\n\
         void main() {\n\
           a.next = &b; b.next = &c; c.next = &a;\n\
         }",
    );
    // Field-insensitive: each object points to the next.
    assert!(points_to(&a, "a", "b"));
    assert!(points_to(&a, "c", "a"));
    assert!(!points_to(&a, "a", "c"), "no transitive contents");
}

#[test]
fn heap_linked_list() {
    let a = analyze(
        "struct n { struct n *next; int *val; };\n\
         struct n *head; int x;\n\
         void push() {\n\
           struct n *fresh = malloc(8);\n\
           fresh->next = head;\n\
           fresh->val = &x;\n\
           head = fresh;\n\
         }\n\
         int *first() { return head->val; }\n\
         void main() { push(); push(); first(); }",
    );
    assert!(points_to(&a, "head", "heap$0"));
    assert!(points_to(&a, "first#1", "x"));
}

#[test]
fn address_of_deref_cancels() {
    let a = analyze(
        "int x; int *p; int *q;\n\
         void main() { p = &x; q = &*p; }",
    );
    assert_eq!(pts(&a, "q"), vec!["x"]);
}

#[test]
fn arrays_of_structs_collapse() {
    let a = analyze(
        "struct s { int *f; };\n\
         struct s table[4]; int x; int *r;\n\
         void main() { table[0].f = &x; r = table[3].f; }",
    );
    assert!(points_to(&a, "r", "x"));
}

#[test]
fn ternary_lvalue() {
    let a = analyze(
        "int x; int y; int *p; int *q; int c;\n\
         void main() { (c ? p : q) = &x; p = &y; }",
    );
    assert!(points_to(&a, "p", "x"));
    assert!(points_to(&a, "q", "x"));
    assert!(!points_to(&a, "q", "y"));
}

#[test]
fn string_functions_and_heap() {
    let a = analyze(
        "char *dup; char buf[32]; char *s;\n\
         void main() { s = strdup(\"hi\"); dup = strcpy(buf, s); }",
    );
    assert!(points_to(&a, "s", "heap$0"));
    assert!(points_to(&a, "dup", "buf"));
}

#[test]
fn shadowing_in_nested_blocks() {
    let a = analyze(
        "int g; int *p; int *q;\n\
         void main() {\n\
           int x;\n\
           p = &x;\n\
           { int x; q = &x; }\n\
         }",
    );
    let p = pts(&a, "p");
    let q = pts(&a, "q");
    assert_eq!(p.len(), 1);
    assert_eq!(q.len(), 1);
    assert_ne!(p, q, "the two locals are distinct objects");
}

#[test]
fn globals_arent_affected_by_unrelated_stores() {
    let a = analyze(
        "int x; int y; int *p; int *q; int **pp;\n\
         void main() { p = &x; pp = &p; *pp = &y; q = &y; }",
    );
    assert!(points_to(&a, "p", "y"), "store through pp reaches p");
    assert!(!points_to(&a, "q", "x"), "q is untouched");
}

#[test]
fn do_while_and_switch_bodies_are_visited() {
    let a = analyze(
        "int x; int *p; int *q; int c;\n\
         void main() {\n\
           do { p = &x; } while (0);\n\
           switch (c) { case 1: q = p; break; default: q = 0; }\n\
         }",
    );
    assert!(points_to(&a, "q", "x"));
}

#[test]
fn every_solver_agrees_on_torture_programs() {
    let src = "struct n { struct n *next; int *val; };\n\
               struct n *head; int x; int *r;\n\
               int *pick(struct n *c) { return c->val; }\n\
               int *(*f)(struct n *);\n\
               void main() {\n\
                 struct n *fresh = malloc(16);\n\
                 fresh->next = head; head = fresh;\n\
                 head->val = &x;\n\
                 f = pick;\n\
                 r = f(head);\n\
               }";
    let generated = ant_grasshopper::compile_c(src).unwrap();
    let reference = ant_grasshopper::solve_dyn(
        &generated.program,
        &SolverConfig::new(Algorithm::Basic),
        ant_grasshopper::PtsKind::Bitmap,
    );
    for alg in Algorithm::ALL {
        let out = ant_grasshopper::solve_dyn(
            &generated.program,
            &SolverConfig::new(alg),
            ant_grasshopper::PtsKind::Bitmap,
        );
        assert!(
            out.solution.equiv(&reference.solution),
            "{alg} differs at {:?}",
            out.solution.first_difference(&reference.solution)
        );
    }
}
