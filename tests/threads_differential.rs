//! Thread-count differential testing: the BSP engine is a *scheduling*
//! change, not an algorithmic one, so any thread count must reproduce the
//! sequential run bit for bit — the same solution *and* the same §5.3
//! behavioural counters (the worker phase may only precompute hints, never
//! change what the merge does).

use ant_grasshopper::frontend::workload::WorkloadSpec;
use ant_grasshopper::{
    compile_c, solve_dyn, Algorithm, Program, PtsKind, SolveOutput, SolverConfig,
};
use proptest::prelude::*;

/// The counters that must be invariant under the thread count. Timing and
/// memory high-water marks may differ; behaviour may not.
fn counters(out: &SolveOutput) -> [u64; 9] {
    let s = &out.stats;
    [
        s.nodes_processed,
        s.propagations,
        s.propagations_changed,
        s.edges_added,
        s.complex_iters,
        s.cycle_searches,
        s.nodes_searched,
        s.cycles_found,
        s.nodes_collapsed,
    ]
}

fn workloads() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for seed in [3u64, 17] {
        out.push((format!("tiny-{seed}"), WorkloadSpec::tiny(seed).generate()));
    }
    for name in ["hashtable.c", "interp.c"] {
        let path = format!("{}/testdata/{name}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap();
        let generated = compile_c(&text).unwrap();
        out.push((name.to_owned(), generated.program));
    }
    out
}

fn assert_thread_invariant(name: &str, program: &Program, pts: PtsKind, algorithms: &[Algorithm]) {
    for &alg in algorithms {
        let reference = solve_dyn(program, &SolverConfig::new(alg).with_threads(1), pts);
        for threads in [2, 4] {
            let out = solve_dyn(program, &SolverConfig::new(alg).with_threads(threads), pts);
            assert!(
                out.solution.equiv(&reference.solution),
                "{name}/{alg}/{pts}: {threads}-thread solution differs at {:?}",
                out.solution.first_difference(&reference.solution)
            );
            assert_eq!(
                counters(&out),
                counters(&reference),
                "{name}/{alg}/{pts}: {threads}-thread counters differ"
            );
        }
    }
}

#[test]
fn bitmap_runs_are_thread_count_invariant() {
    for (name, program) in workloads() {
        assert_thread_invariant(&name, &program, PtsKind::Bitmap, &Algorithm::ALL);
    }
}

#[test]
fn shared_runs_are_thread_count_invariant() {
    for (name, program) in workloads() {
        assert_thread_invariant(&name, &program, PtsKind::Shared, &Algorithm::ALL);
    }
}

#[test]
fn bdd_runs_are_thread_count_invariant() {
    // BDD solving is the slow representation; the tiny workloads already
    // drive every BSP code path (the engine never sees the representation,
    // only the hints, and BddPts opts out of the worker phase).
    for (name, program) in workloads().into_iter().take(2) {
        assert_thread_invariant(&name, &program, PtsKind::Bdd, &Algorithm::ALL);
    }
}

// The BSP-routed solvers (worklist family + PKH) on random programs: 1
// thread vs 4 threads, counters included.
mod random_programs {
    use super::*;
    use ant_grasshopper::ProgramBuilder;

    #[derive(Clone, Debug)]
    pub struct RawConstraint {
        kind: u8,
        lhs: usize,
        rhs: usize,
    }

    const NVARS: usize = 24;

    fn raw_constraints() -> impl Strategy<Value = Vec<RawConstraint>> {
        prop::collection::vec(
            (0u8..4, 0..NVARS, 0..NVARS).prop_map(|(kind, lhs, rhs)| RawConstraint {
                kind,
                lhs,
                rhs,
            }),
            1..60,
        )
    }

    fn build_program(raw: &[RawConstraint]) -> Program {
        let mut b = ProgramBuilder::new();
        let vars: Vec<_> = (0..NVARS).map(|i| b.var(&format!("v{i}"))).collect();
        for c in raw {
            let (l, r) = (vars[c.lhs], vars[c.rhs]);
            match c.kind {
                0 => b.addr_of(l, r),
                1 => b.copy(l, r),
                2 => b.load(l, r),
                _ => b.store(l, r),
            }
        }
        b.finish()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn four_threads_replay_one_thread_exactly(raw in raw_constraints()) {
            let program = build_program(&raw);
            for alg in [
                Algorithm::Basic,
                Algorithm::Lcd,
                Algorithm::Hcd,
                Algorithm::LcdHcd,
                Algorithm::Pkh,
                Algorithm::PkhHcd,
            ] {
                let seq = solve_dyn(&program, &SolverConfig::new(alg).with_threads(1), PtsKind::Bitmap);
                let par = solve_dyn(&program, &SolverConfig::new(alg).with_threads(4), PtsKind::Bitmap);
                prop_assert!(
                    par.solution.equiv(&seq.solution),
                    "{} diverged at {:?}", alg, par.solution.first_difference(&seq.solution)
                );
                prop_assert_eq!(counters(&par), counters(&seq), "{} counters diverged", alg);
            }
        }
    }
}
