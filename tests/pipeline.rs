//! End-to-end pipeline tests: mini-C source → constraints → text format →
//! OVS → every solver → expanded solution.

use ant_grasshopper::{compile_c, parse_program, Algorithm, Analysis, VarId};

const LINKED_LIST: &str = r#"
struct node { struct node *next; int *payload; };

struct node pool[16];
struct node *head;
int value;

void push(struct node *n) {
    n->next = head;
    head = n;
}

int *sum() {
    struct node *cur;
    int *acc;
    for (cur = head; cur; cur = cur->next) {
        acc = cur->payload;
    }
    return acc;
}

void main() {
    int i;
    pool[0].payload = &value;
    for (i = 0; i < 16; i++) {
        push(&pool[i]);
    }
    sum();
}
"#;

#[test]
fn linked_list_flows_through_fields_and_calls() {
    let a = Analysis::builder()
        .algorithm(Algorithm::LcdHcd)
        .analyze_c(LINKED_LIST)
        .unwrap();
    let head = a.program.var_by_name("head").unwrap();
    let pool = a.program.var_by_name("pool").unwrap();
    assert!(
        a.solution.may_point_to(head, pool),
        "head points into the pool"
    );
    // sum's return value reaches the payload.
    let ret = a.program.var_by_name("sum#1").unwrap();
    let value = a.program.var_by_name("value").unwrap();
    assert!(a.solution.may_point_to(ret, value));
    // The traversal cursor aliases head.
    let cur = a
        .program
        .vars()
        .find(|&v| a.program.var_name(v).starts_with("cur."))
        .expect("cursor variable");
    assert!(a.solution.may_alias(cur, head));
}

#[test]
fn c_and_constraint_file_pipelines_match() {
    let generated = compile_c(LINKED_LIST).unwrap();
    let text = generated.program.to_text();
    let reparsed = parse_program(&text).unwrap();
    assert_eq!(generated.program.stats(), reparsed.stats());
    let a1 = Analysis::builder()
        .algorithm(Algorithm::Lcd)
        .analyze(&generated.program);
    let a2 = Analysis::builder()
        .algorithm(Algorithm::Lcd)
        .analyze(&reparsed);
    // Variable numbering differs (the parser interns by first appearance),
    // so compare points-to sets by *name*.
    let names = |p: &ant_grasshopper::Program, sol: &ant_grasshopper::Solution, v| {
        let mut out: Vec<String> = sol
            .points_to(v)
            .iter()
            .map(|&l| p.var_name(VarId::from_u32(l)).to_owned())
            .collect();
        out.sort();
        out
    };
    for v1 in generated.program.vars() {
        let name = generated.program.var_name(v1);
        // Variables that appear in no constraint may be absent from the
        // round-tripped program; they have empty sets anyway.
        if let Some(v2) = reparsed.var_by_name(name) {
            assert_eq!(
                names(&generated.program, &a1.solution, v1),
                names(&reparsed, &a2.solution, v2),
                "pts({name}) differs between pipelines"
            );
        } else {
            assert!(a1.solution.points_to(v1).is_empty());
        }
    }
}

#[test]
fn every_algorithm_on_c_program() {
    let generated = compile_c(LINKED_LIST).unwrap();
    let reference = Analysis::builder()
        .algorithm(Algorithm::Basic)
        .analyze(&generated.program);
    for alg in Algorithm::ALL {
        let out = Analysis::builder()
            .algorithm(alg)
            .analyze(&generated.program);
        assert!(
            out.solution.equiv(&reference.solution),
            "{alg} differs at {:?}",
            out.solution.first_difference(&reference.solution)
        );
    }
}

#[test]
fn recursive_functions_terminate_and_flow() {
    let a = Analysis::builder()
        .algorithm(Algorithm::LcdHcd)
        .analyze_c(
            "int *walk(int *p) { return walk(p); }\n\
             int x; int *r;\n\
             void main() { r = walk(&x); }",
        )
        .unwrap();
    let r = a.program.var_by_name("r").unwrap();
    let x = a.program.var_by_name("x").unwrap();
    // walk never produces anything but its own recursive result, which is
    // bottom — so r stays empty... unless the self-call feeds the parameter
    // back. pts(r) must at least be sound; the analysis must simply
    // terminate on the recursive cycle.
    let _ = (r, x);
}

#[test]
fn mutual_recursion_through_function_pointers() {
    let a = Analysis::builder()
        .algorithm(Algorithm::LcdHcd)
        .analyze_c(
            "int x; int c;\n\
             int *even(int *p);\n\
             int *odd(int *p) { if (c) return p; return even(p); }\n\
             int *even(int *p) { return odd(p); }\n\
             int *(*hook)(int *);\n\
             int *r;\n\
             void main() { hook = even; r = hook(&x); }",
        )
        .unwrap();
    let r = a.program.var_by_name("r").unwrap();
    let x = a.program.var_by_name("x").unwrap();
    assert!(a.solution.may_point_to(r, x));
}

#[test]
fn warnings_surface_unknown_externals() {
    let a = Analysis::builder()
        .algorithm(Algorithm::Lcd)
        .analyze_c("void main() { mystery_function(); }")
        .unwrap();
    assert!(a.warnings.iter().any(|w| w.contains("mystery_function")));
}

#[test]
fn solution_queries_are_consistent() {
    let a = Analysis::builder()
        .algorithm(Algorithm::Ht)
        .analyze_c(LINKED_LIST)
        .unwrap();
    for v in a.program.vars() {
        for &l in a.solution.points_to(v) {
            assert!(a.solution.may_point_to(v, VarId::from_u32(l)));
        }
    }
    let total = a.solution.total_pts_size();
    assert!(total > 0);
}
