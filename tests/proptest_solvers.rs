//! Property-based testing of the solvers on random constraint programs.
//!
//! Two regimes:
//!
//! * *Well-formed* programs (every dereferenced pointer is seeded, as in
//!   real code): every algorithm must produce the exact Andersen solution.
//! * *Adversarial* programs (dereferences of possibly-empty pointers):
//!   the exact solvers must still agree; HCD-based solvers must be sound
//!   over-approximations (the paper's precision argument assumes cycle
//!   materialization, which empty dereferences can break).

use ant_grasshopper::solver::verify::check_soundness;
use ant_grasshopper::{
    solve_dyn, Algorithm, Constraint, Program, ProgramBuilder, PtsKind, SolverConfig, VarId,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RawConstraint {
    kind: u8,
    lhs: usize,
    rhs: usize,
}

fn raw_constraints(max_vars: usize, max_cs: usize) -> impl Strategy<Value = Vec<RawConstraint>> {
    prop::collection::vec(
        (0u8..4, 0..max_vars, 0..max_vars).prop_map(|(kind, lhs, rhs)| RawConstraint {
            kind,
            lhs,
            rhs,
        }),
        1..max_cs,
    )
}

fn build_program(raw: &[RawConstraint], nvars: usize, seed_derefs: bool) -> Program {
    let mut b = ProgramBuilder::new();
    let vars: Vec<VarId> = (0..nvars).map(|i| b.var(&format!("v{i}"))).collect();
    let mut seeded = vec![false; nvars];
    for c in raw {
        if c.kind == 0 {
            seeded[c.lhs] = true;
        }
    }
    for c in raw {
        let (l, r) = (vars[c.lhs], vars[c.rhs]);
        match c.kind {
            0 => b.addr_of(l, r),
            1 => b.copy(l, r),
            2 => {
                if seed_derefs && !seeded[c.rhs] {
                    seeded[c.rhs] = true;
                    b.addr_of(r, vars[(c.rhs + 1) % nvars]);
                }
                b.load(l, r);
            }
            _ => {
                if seed_derefs && !seeded[c.lhs] {
                    seeded[c.lhs] = true;
                    b.addr_of(l, vars[(c.lhs + 1) % nvars]);
                }
                b.store(l, r);
            }
        }
    }
    b.finish()
}

const NVARS: usize = 24;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_solvers_agree_on_arbitrary_programs(raw in raw_constraints(NVARS, 60)) {
        let program = build_program(&raw, NVARS, false);
        let reference = solve_dyn(&program, &SolverConfig::new(Algorithm::Basic), PtsKind::Bitmap);
        prop_assert!(check_soundness(&program, &reference.solution).is_empty());
        for alg in [Algorithm::Ht, Algorithm::Pkh, Algorithm::Blq, Algorithm::Lcd] {
            let out = solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bitmap);
            prop_assert!(
                out.solution.equiv(&reference.solution),
                "{} differs at {:?}", alg, out.solution.first_difference(&reference.solution)
            );
        }
    }

    #[test]
    fn hcd_is_exact_on_wellformed_and_sound_always(raw in raw_constraints(NVARS, 60)) {
        // Well-formed: exactness.
        let wf = build_program(&raw, NVARS, true);
        let reference = solve_dyn(&wf, &SolverConfig::new(Algorithm::Basic), PtsKind::Bitmap);
        for alg in [Algorithm::Hcd, Algorithm::HtHcd, Algorithm::PkhHcd, Algorithm::LcdHcd, Algorithm::BlqHcd] {
            let out = solve_dyn(&wf, &SolverConfig::new(alg), PtsKind::Bitmap);
            prop_assert!(
                out.solution.equiv(&reference.solution),
                "{} differs on well-formed input at {:?}",
                alg, out.solution.first_difference(&reference.solution)
            );
        }
        // Adversarial: soundness and over-approximation.
        let adv = build_program(&raw, NVARS, false);
        let exact = solve_dyn(&adv, &SolverConfig::new(Algorithm::Basic), PtsKind::Bitmap);
        for alg in [Algorithm::Hcd, Algorithm::LcdHcd] {
            let out = solve_dyn(&adv, &SolverConfig::new(alg), PtsKind::Bitmap);
            prop_assert!(check_soundness(&adv, &out.solution).is_empty(), "{} unsound", alg);
            prop_assert!(
                out.solution.subsumes(&exact.solution),
                "{} dropped facts", alg
            );
        }
    }

    #[test]
    fn ovs_preserves_solutions(raw in raw_constraints(NVARS, 60)) {
        let program = build_program(&raw, NVARS, false);
        let direct = solve_dyn(&program, &SolverConfig::new(Algorithm::Basic), PtsKind::Bitmap);
        let prepared = ant_grasshopper::PassPipeline::standard().run(&program);
        let out = ant_grasshopper::solve_prepared(
            &prepared, &SolverConfig::new(Algorithm::Lcd), PtsKind::Bitmap,
        );
        prop_assert!(
            out.solution.equiv(&direct.solution),
            "the pass pipeline changed the solution at {:?}",
            out.solution.first_difference(&direct.solution)
        );
    }

    #[test]
    fn text_roundtrip_preserves_constraints(raw in raw_constraints(12, 30)) {
        let program = build_program(&raw, 12, false);
        let text = program.to_text();
        let reparsed = ant_grasshopper::parse_program(&text).unwrap();
        prop_assert_eq!(program.constraints().len(), reparsed.constraints().len());
        // Same multiset of name-rendered constraints (variable ids differ:
        // the parser interns by first appearance).
        let render = |p: &Program, c: &Constraint| {
            format!("{:?} {} {} {}", c.kind, p.var_name(c.lhs), p.var_name(c.rhs), c.offset)
        };
        let mut sa: Vec<String> =
            program.constraints().iter().map(|c| render(&program, c)).collect();
        let mut sb: Vec<String> =
            reparsed.constraints().iter().map(|c| render(&reparsed, c)).collect();
        sa.sort();
        sb.sort();
        prop_assert_eq!(sa, sb);
    }
}
