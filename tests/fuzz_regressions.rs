//! Replays the fuzz regression corpus (`testdata/fuzz/`) on every test
//! run, so any input that ever panicked a layer, wedged the serve loop,
//! or produced a differential mismatch stays fixed forever.
//!
//! Program entries (`*.consts`) run the full oracle: UTF-8 decode →
//! parse (panic-free) → validate agreement → differential solving under
//! the fixed matrix {Basic, LCD, PKH} × {bitmap, shared} plus
//! LCD+HCD × {bitmap, shared} with the full pass pipeline, each solution
//! required to be bit-identical to the Basic/bitmap reference. Request
//! entries (`*.reqs`) drive a fresh `AnalysisSession` through the capped
//! transport reader exactly like `ant serve`, asserting every reply is a
//! well-formed envelope and nothing panics.
//!
//! The harness (`cargo run --release -p ant-bench --bin fuzz_harness`)
//! both discovers new entries and re-seeds the historical ones; this test
//! seeds them too so a fresh checkout replays the full set.

use ant_bench::fuzz;
use std::path::Path;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/fuzz"))
}

#[test]
fn corpus_is_seeded_with_the_historical_crashers() {
    // Idempotent: only writes entries that are missing.
    fuzz::seed_corpus(corpus_dir()).expect("seed corpus");
    let programs = fuzz::corpus_entries(corpus_dir(), fuzz::PROGRAM_EXT).expect("list programs");
    let requests = fuzz::corpus_entries(corpus_dir(), fuzz::REQUEST_EXT).expect("list requests");
    assert!(
        programs.len() >= 4,
        "expected the pinned program crashers, found {programs:?}"
    );
    assert!(
        requests.len() >= 2,
        "expected the pinned request-stream crashers, found {requests:?}"
    );
}

#[test]
fn every_program_entry_replays_clean() {
    fuzz::seed_corpus(corpus_dir()).expect("seed corpus");
    let entries = fuzz::corpus_entries(corpus_dir(), fuzz::PROGRAM_EXT).expect("list corpus");
    assert!(!entries.is_empty(), "program corpus must not be empty");
    for path in entries {
        let bytes = std::fs::read(&path).expect("read corpus entry");
        if let Err(finding) = fuzz::replay_program_entry(&bytes) {
            panic!("{} regressed: {finding}", path.display());
        }
    }
}

#[test]
fn every_request_entry_replays_clean() {
    fuzz::seed_corpus(corpus_dir()).expect("seed corpus");
    let entries = fuzz::corpus_entries(corpus_dir(), fuzz::REQUEST_EXT).expect("list corpus");
    assert!(!entries.is_empty(), "request corpus must not be empty");
    for path in entries {
        let bytes = std::fs::read(&path).expect("read corpus entry");
        if let Err(finding) = fuzz::replay_request_entry(&bytes) {
            panic!("{} regressed: {finding}", path.display());
        }
    }
}

/// The two `diff-mismatch` entries pinned by the harness reproduce the
/// conditional-cycle HCD pairing bug (a ref node paired off an offline
/// SCC whose cycle ran through a second, empty ref node). Assert they
/// are present and still covered by an HCD configuration in the matrix.
#[test]
fn hcd_mismatch_reproducers_are_pinned_and_guarded() {
    let entries = fuzz::corpus_entries(corpus_dir(), fuzz::PROGRAM_EXT).expect("list corpus");
    let mismatches: Vec<_> = entries
        .iter()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("diff-mismatch-"))
        })
        .collect();
    assert!(
        !mismatches.is_empty(),
        "the HCD mismatch reproducers must stay pinned"
    );
    assert!(
        fuzz::REPLAY_MATRIX
            .iter()
            .any(|alt| alt.passes.contains("hcd")),
        "replay matrix must keep an HCD configuration to guard them"
    );
}
