//! Differential testing of the propagation modes: `--prop diff` pushes
//! only `pts − sent` along each edge, but every solver decision — pushes,
//! equality probes, cycle searches, collapses — depends only on set
//! *contents*, so diff mode must be bit-identical to full propagation:
//! same solution and same behavioural §5.3 counters, for every algorithm,
//! every representation, and any thread count. Only the propagated-bytes
//! measurement counters may (and should) differ.

use ant_grasshopper::frontend::workload::WorkloadSpec;
use ant_grasshopper::{
    compile_c, solve_dyn, Algorithm, Program, ProgramBuilder, PropMode, PtsKind, SolverConfig,
    VarId,
};
use proptest::prelude::*;

fn workloads() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for seed in [1u64, 42] {
        out.push((format!("tiny-{seed}"), WorkloadSpec::tiny(seed).generate()));
    }
    let path = format!("{}/testdata/hashtable.c", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap();
    out.push(("hashtable.c".to_owned(), compile_c(&text).unwrap().program));
    out
}

/// The nine behavioural §5.3 counters (`propagated_bytes` and durations
/// excluded: those measure *how*, not *what*).
fn counters(st: &ant_grasshopper::SolverStats) -> [u64; 9] {
    [
        st.nodes_processed,
        st.propagations,
        st.propagations_changed,
        st.edges_added,
        st.complex_iters,
        st.cycle_searches,
        st.nodes_searched,
        st.cycles_found,
        st.nodes_collapsed,
    ]
}

fn assert_modes_identical(
    name: &str,
    program: &Program,
    alg: Algorithm,
    pts: PtsKind,
    threads: usize,
) {
    let base = SolverConfig::new(alg).with_threads(threads);
    let full = solve_dyn(program, &base, pts);
    let diff = solve_dyn(program, &base.with_prop(PropMode::Diff), pts);
    assert!(
        diff.solution.equiv(&full.solution),
        "{alg}/{pts:?}/t{threads} on {name}: diff solution differs at {:?}",
        diff.solution.first_difference(&full.solution)
    );
    assert_eq!(
        counters(&diff.stats),
        counters(&full.stats),
        "{alg}/{pts:?}/t{threads} on {name}: behavioural counters diverge"
    );
    assert!(
        diff.stats.propagated_bytes <= diff.stats.propagated_full_bytes,
        "{alg}/{pts:?}/t{threads} on {name}: delta sends exceed full-set sends"
    );
}

/// Every algorithm, bitmap and shared representations, sequential and BSP.
#[test]
fn diff_mode_is_bit_identical_to_full() {
    for (name, program) in workloads() {
        for alg in Algorithm::ALL {
            for pts in [PtsKind::Bitmap, PtsKind::Shared] {
                for threads in [1, 4] {
                    assert_modes_identical(&name, &program, alg, pts, threads);
                }
            }
        }
    }
}

/// The BDD representation serves the Table 5 solvers; diff mode must be
/// bit-identical there too.
#[test]
fn diff_mode_is_bit_identical_to_full_on_bdd() {
    for (name, program) in workloads() {
        for alg in Algorithm::TABLE5 {
            assert_modes_identical(&name, &program, alg, PtsKind::Bdd, 1);
        }
    }
}

#[derive(Clone, Debug)]
struct RawConstraint {
    kind: u8,
    lhs: usize,
    rhs: usize,
}

fn raw_constraints(max_vars: usize, max_cs: usize) -> impl Strategy<Value = Vec<RawConstraint>> {
    prop::collection::vec(
        (0u8..4, 0..max_vars, 0..max_vars).prop_map(|(kind, lhs, rhs)| RawConstraint {
            kind,
            lhs,
            rhs,
        }),
        1..max_cs,
    )
}

fn build_program(raw: &[RawConstraint], nvars: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let vars: Vec<VarId> = (0..nvars).map(|i| b.var(&format!("v{i}"))).collect();
    for c in raw {
        let (l, r) = (vars[c.lhs], vars[c.rhs]);
        match c.kind {
            0 => b.addr_of(l, r),
            1 => b.copy(l, r),
            2 => b.load(l, r),
            _ => b.store(l, r),
        }
    }
    b.finish()
}

const NVARS: usize = 24;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary constraint programs: the cycle-detecting solvers stay
    /// bit-identical between propagation modes (the interesting cases are
    /// mid-solve collapses, which generated programs hit constantly).
    #[test]
    fn diff_mode_matches_full_on_generated_programs(raw in raw_constraints(NVARS, 60)) {
        let program = build_program(&raw, NVARS);
        for alg in [Algorithm::Basic, Algorithm::Lcd, Algorithm::LcdHcd, Algorithm::Pkh] {
            let base = SolverConfig::new(alg);
            let full = solve_dyn(&program, &base, PtsKind::Bitmap);
            let diff = solve_dyn(&program, &base.with_prop(PropMode::Diff), PtsKind::Bitmap);
            prop_assert!(
                diff.solution.equiv(&full.solution),
                "{} diff solution differs at {:?}",
                alg, diff.solution.first_difference(&full.solution)
            );
            prop_assert_eq!(
                counters(&diff.stats), counters(&full.stats),
                "{} counters diverge between propagation modes", alg
            );
        }
    }
}
