//! Small-scope exhaustive checking: every constraint program of a bounded
//! size is solved by every algorithm and compared against the naive
//! baseline. Most solver bugs (ordering, collapsing, delta bookkeeping)
//! have small counterexamples; this sweeps the entire small scope instead
//! of sampling it.

use ant_grasshopper::solver::verify::check_soundness;
use ant_grasshopper::{solve_dyn, Algorithm, Program, ProgramBuilder, PtsKind, SolverConfig};

const NVARS: usize = 3;

/// All (kind, lhs, rhs) triples over `NVARS` variables.
fn all_constraints() -> Vec<(u8, usize, usize)> {
    let mut out = Vec::new();
    for kind in 0..4u8 {
        for lhs in 0..NVARS {
            for rhs in 0..NVARS {
                out.push((kind, lhs, rhs));
            }
        }
    }
    out
}

fn build(cs: &[(u8, usize, usize)]) -> Program {
    let mut b = ProgramBuilder::new();
    let vars: Vec<_> = (0..NVARS).map(|i| b.var(&format!("v{i}"))).collect();
    for &(k, l, r) in cs {
        match k {
            0 => b.addr_of(vars[l], vars[r]),
            1 => b.copy(vars[l], vars[r]),
            2 => b.load(vars[l], vars[r]),
            _ => b.store(vars[l], vars[r]),
        }
    }
    b.finish()
}

/// The exact solvers (no HCD): must be pointwise equal to Basic on every
/// input, including adversarial ones with empty dereferences.
const EXACT: [Algorithm; 6] = [
    Algorithm::Ht,
    Algorithm::Pkh,
    Algorithm::Blq,
    Algorithm::Lcd,
    Algorithm::Pkh03,
    Algorithm::LcdDiff,
];

/// The HCD family: sound over-approximations everywhere, exact when
/// dereferenced pointers are non-empty.
const HCD_FAMILY: [Algorithm; 5] = [
    Algorithm::Hcd,
    Algorithm::HtHcd,
    Algorithm::PkhHcd,
    Algorithm::BlqHcd,
    Algorithm::LcdHcd,
];

#[test]
fn every_two_constraint_program() {
    let atoms = all_constraints();
    let mut checked = 0usize;
    for (i, &a) in atoms.iter().enumerate() {
        for &b in &atoms[i..] {
            let program = build(&[a, b]);
            let reference = solve_dyn(
                &program,
                &SolverConfig::new(Algorithm::Basic),
                PtsKind::Bitmap,
            );
            assert!(
                check_soundness(&program, &reference.solution).is_empty(),
                "Basic unsound on {a:?},{b:?}"
            );
            for alg in EXACT {
                let out = solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bitmap);
                assert!(
                    out.solution.equiv(&reference.solution),
                    "{alg} differs on {a:?},{b:?} at {:?}",
                    out.solution.first_difference(&reference.solution)
                );
            }
            for alg in HCD_FAMILY {
                let out = solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bitmap);
                assert!(
                    check_soundness(&program, &out.solution).is_empty(),
                    "{alg} unsound on {a:?},{b:?}"
                );
                assert!(
                    out.solution.subsumes(&reference.solution),
                    "{alg} drops facts on {a:?},{b:?}"
                );
            }
            checked += 1;
        }
    }
    // 36 atoms → 36*37/2 unordered pairs.
    assert_eq!(checked, 666);
}

#[test]
fn three_constraint_programs_with_a_base() {
    // Exhausting all triples is too slow in debug builds; fix the first
    // constraint to an address-of (which any interesting program needs) and
    // exhaust the remaining two — the scope where deref/cycle interactions
    // live.
    let atoms = all_constraints();
    let first = (0u8, 0usize, 1usize); // v0 = &v1
    let mut checked = 0usize;
    for (i, &a) in atoms.iter().enumerate() {
        // Thin the scope: skip symmetric duplicates by ordering.
        for &b in &atoms[i..] {
            let program = build(&[first, a, b]);
            let reference = solve_dyn(
                &program,
                &SolverConfig::new(Algorithm::Basic),
                PtsKind::Bitmap,
            );
            for alg in [Algorithm::Lcd, Algorithm::Ht, Algorithm::LcdDiff] {
                let out = solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bitmap);
                assert!(
                    out.solution.equiv(&reference.solution),
                    "{alg} differs on base,{a:?},{b:?}"
                );
            }
            for alg in [Algorithm::LcdHcd, Algorithm::BlqHcd] {
                let out = solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bitmap);
                assert!(
                    check_soundness(&program, &out.solution).is_empty(),
                    "{alg} unsound on base,{a:?},{b:?}"
                );
                assert!(
                    out.solution.subsumes(&reference.solution),
                    "{alg} drops facts on base,{a:?},{b:?}"
                );
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 666);
}
