//! Session-vs-one-shot differential testing: the `ant serve` protocol is a
//! view over the same analysis, so every `points_to` / `may_alias` answer a
//! session gives must be bit-identical to the expanded solution a one-shot
//! [`Analysis`] computes — across every algorithm and the bitmap/shared
//! representations, with sequential and fanned-out query handling. Error
//! inputs must come back as typed envelopes, never a dead session.

use ant_grasshopper::common::obs::{parse_object, JsonValue};
use ant_grasshopper::frontend::workload::WorkloadSpec;
use ant_grasshopper::{
    compile_c, Algorithm, Analysis, AnalysisSession, Program, PtsKind, SessionOptions, SolverConfig,
};
use std::collections::BTreeMap;

fn workloads() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for seed in [1u64, 42] {
        out.push((format!("tiny-{seed}"), WorkloadSpec::tiny(seed).generate()));
    }
    for name in ["hashtable.c", "interp.c"] {
        let path = format!("{}/testdata/{name}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap();
        out.push((name.to_owned(), compile_c(&text).unwrap().program));
    }
    out
}

fn reply_object(json: &str) -> BTreeMap<String, JsonValue> {
    parse_object(json).unwrap_or_else(|e| panic!("reply `{json}` is valid JSON: {e}"))
}

/// Asks the session for every variable's points-to set and a sample of
/// alias pairs, comparing each answer against the one-shot solution.
fn assert_session_matches(name: &str, program: &Program, alg: Algorithm, pts: PtsKind) {
    let config = SolverConfig::new(alg);
    let oneshot = Analysis::builder().config(config).pts(pts).analyze(program);

    let mut opts = SessionOptions::new(config);
    opts.pts = pts;
    opts.threads = 4; // fan read batches out over scoped threads
    let mut session = AnalysisSession::new(opts).unwrap();
    session.load_program(program.clone()).unwrap();

    let names: Vec<&str> = program.vars().map(|v| program.var_name(v)).collect();
    let mut lines: Vec<String> = names
        .iter()
        .map(|n| format!(r#"{{"op":"points_to","var":"{n}"}}"#))
        .collect();
    for pair in names.windows(2) {
        lines.push(format!(
            r#"{{"op":"may_alias","a":"{}","b":"{}"}}"#,
            pair[0], pair[1]
        ));
    }
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let replies = session.handle_lines(&refs);
    assert_eq!(replies.len(), refs.len());

    for (i, n) in names.iter().enumerate() {
        let reply = &replies[i];
        assert!(
            reply.ok,
            "{name}/{alg}/{pts:?}: pts({n}) errored: {}",
            reply.json
        );
        let got = reply_object(&reply.json);
        let got: Vec<String> = got["pts"]
            .as_str_arr()
            .unwrap_or_else(|| panic!("pts is a string array: {}", reply.json))
            .iter()
            .map(|s| s.to_string())
            .collect();
        let want: Vec<String> = oneshot
            .solution
            .points_to_names(program, n)
            .unwrap()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            got, want,
            "{name}/{alg}/{pts:?}: session pts({n}) differs from one-shot"
        );
    }
    for (k, pair) in names.windows(2).enumerate() {
        let reply = &replies[names.len() + k];
        assert!(
            reply.ok,
            "{name}/{alg}/{pts:?}: alias errored: {}",
            reply.json
        );
        let got = reply_object(&reply.json)["alias"].as_bool().unwrap();
        let want = oneshot
            .solution
            .may_alias_names(program, pair[0], pair[1])
            .unwrap();
        assert_eq!(
            got, want,
            "{name}/{alg}/{pts:?}: may_alias({}, {}) differs",
            pair[0], pair[1]
        );
    }
}

/// The full grid on the synthetic workloads: all 12 algorithms, bitmap and
/// shared representations.
#[test]
fn session_matches_oneshot_across_algorithms_and_reprs() {
    for (name, program) in &workloads()[..2] {
        for alg in Algorithm::ALL {
            for pts in [PtsKind::Bitmap, PtsKind::Shared] {
                assert_session_matches(name, program, alg, pts);
            }
        }
    }
}

/// The compiled C programs on the paper's headline configuration.
#[test]
fn session_matches_oneshot_on_compiled_c() {
    for (name, program) in &workloads()[2..] {
        assert_session_matches(name, program, Algorithm::LcdHcd, PtsKind::Bitmap);
        assert_session_matches(name, program, Algorithm::Pkh, PtsKind::Shared);
    }
}

/// Every bad input becomes a typed error envelope with the documented
/// wire name, and the session keeps answering afterwards.
#[test]
fn error_envelopes_are_typed_and_survivable() {
    let (_, program) = workloads().remove(0);
    let opts = SessionOptions::new(SolverConfig::new(Algorithm::LcdHcd));
    let mut session = AnalysisSession::new(opts).unwrap();
    session.load_program(program.clone()).unwrap();

    let mut vars = program.vars().map(|v| program.var_name(v));
    let (va, vb) = (vars.next().unwrap(), vars.next().unwrap());
    let explain = format!(r#"{{"op":"explain","var":"{va}","loc":"{vb}"}}"#);
    let cases = [
        ("{not json", "malformed_request"),
        (r#"{"id":7}"#, "malformed_request"),
        (r#"{"op":"frobnicate"}"#, "unknown_op"),
        (
            r#"{"op":"points_to","var":"no_such_var_anywhere"}"#,
            "unknown_var",
        ),
        (explain.as_str(), "no_provenance"),
    ];
    for (line, wire) in cases {
        let reply = session.handle_line(line);
        assert!(!reply.ok);
        let o = reply_object(&reply.json);
        assert_eq!(
            o["error"].as_str(),
            Some(wire),
            "line `{line}` maps to `{wire}`: {}",
            reply.json
        );
        assert!(o["message"].as_str().is_some(), "envelopes carry a message");
    }
    // Still alive and answering after every error class.
    let first = program.var_name(program.vars().next().unwrap());
    let reply = session.handle_line(&format!(r#"{{"op":"points_to","var":"{first}"}}"#));
    assert!(reply.ok, "session answers after errors: {}", reply.json);
}

/// Reloading identical content must hit the solve cache (same content
/// key), and the `stats` op exposes the counters proving it.
#[test]
fn reload_hits_the_solve_cache() {
    let (_, program) = workloads().remove(0);
    let opts = SessionOptions::new(SolverConfig::new(Algorithm::LcdHcd));
    let mut session = AnalysisSession::new(opts).unwrap();
    let first = program.var_name(program.vars().next().unwrap()).to_owned();
    let query = format!(r#"{{"op":"points_to","var":"{first}"}}"#);

    session.load_program(program.clone()).unwrap();
    assert!(session.handle_line(&query).ok);
    session.load_program(program.clone()).unwrap();
    assert!(session.handle_line(&query).ok);

    let (solves, cache_hits) = session.solve_counters();
    assert_eq!(solves, 1, "identical content re-uses the cached solve");
    assert_eq!(cache_hits, 1);
    let reply = session.handle_line(r#"{"op":"stats"}"#);
    let o = reply_object(&reply.json);
    assert_eq!(o["solves"].as_u64(), Some(1), "stats: {}", reply.json);
    assert_eq!(o["cache_hits"].as_u64(), Some(1), "stats: {}", reply.json);
}

/// A zero deadline deterministically trips the per-request deadline check
/// with the `deadline_exceeded` wire name.
#[test]
fn zero_deadline_trips() {
    let (_, program) = workloads().remove(0);
    let mut opts = SessionOptions::new(SolverConfig::new(Algorithm::LcdHcd));
    opts.deadline_ms = Some(0);
    let mut session = AnalysisSession::new(opts).unwrap();
    let first = program.var_name(program.vars().next().unwrap()).to_owned();
    session.load_program(program).unwrap();
    let reply = session.handle_line(&format!(r#"{{"op":"points_to","var":"{first}"}}"#));
    assert!(!reply.ok);
    let o = reply_object(&reply.json);
    assert_eq!(o["error"].as_str(), Some("deadline_exceeded"));
}
