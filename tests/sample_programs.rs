//! End-to-end analysis of the realistic sample programs in `testdata/`.

use ant_grasshopper::solver::clients;
use ant_grasshopper::{solve_dyn, Algorithm, Analysis, CAnalysis, PtsKind, SolverConfig, VarId};

fn analyze_file(name: &str) -> CAnalysis {
    let path = format!("{}/testdata/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("sample exists");
    Analysis::builder()
        .algorithm(Algorithm::LcdHcd)
        .analyze_c(&src)
        .expect("sample parses")
}

fn pts_names(a: &CAnalysis, var: &str) -> Vec<String> {
    let v = a.program.var_by_name(var).expect("variable");
    a.solution
        .points_to(v)
        .iter()
        .map(|&l| a.program.var_name(VarId::from_u32(l)).to_owned())
        .collect()
}

#[test]
fn interpreter_dispatch_resolves_all_ops() {
    let a = analyze_file("interp.c");
    // The dispatch table may hold all three op handlers…
    let table = pts_names(&a, "dispatch");
    for f in ["op_add", "op_dup", "op_store"] {
        assert!(table.contains(&f.to_string()), "dispatch misses {f}");
    }
    // …and the call site in run() sees exactly those targets.
    let calls = clients::indirect_calls(&a.program, &a.solution);
    assert!(!calls.is_empty());
    let all_targets: Vec<&str> = calls
        .iter()
        .flat_map(|c| c.targets.iter().map(|&t| a.program.var_name(t)))
        .collect();
    for f in ["op_add", "op_dup", "op_store"] {
        assert!(all_targets.contains(&f), "indirect calls miss {f}");
    }
}

#[test]
fn interpreter_env_is_cyclic_and_heap_allocated() {
    let a = analyze_file("interp.c");
    let env = pts_names(&a, "global_env");
    assert!(
        env.iter().any(|n| n.starts_with("heap$")),
        "env on the heap"
    );
    // env->parent = env: the heap object points back to itself.
    let heap = a
        .program
        .var_by_name(env.iter().find(|n| n.starts_with("heap$")).unwrap())
        .unwrap();
    assert!(
        a.solution.may_point_to(heap, heap),
        "cyclic parent chain collapses onto the heap object"
    );
}

#[test]
fn interpreter_values_flow_through_the_stack() {
    let a = analyze_file("interp.c");
    // op_add allocates; the pushed value lands in the stack array; pop's
    // result (flow-insensitively the array contents) reaches op_store's
    // environment slot.
    let stack = pts_names(&a, "stack");
    assert!(
        stack.iter().any(|n| n.starts_with("heap$")),
        "heap ints reach the stack: {stack:?}"
    );
}

#[test]
fn hashtable_callbacks_and_values() {
    let a = analyze_file("hashtable.c");
    // The function-pointer fields live in the (field-collapsed) heap table.
    let t_local = a
        .program
        .vars()
        .find(|&v| a.program.var_name(v).starts_with("t."))
        .expect("local t");
    let table_objs = a.solution.points_to(t_local);
    assert!(!table_objs.is_empty());
    // The stored value (&answer) comes back out of table_get.
    let ret = pts_names(&a, "table_get#1");
    assert!(
        ret.contains(&"answer".to_string()),
        "get returns &answer: {ret:?}"
    );
    // The hash callback is resolvable at the indirect call sites.
    let calls = clients::indirect_calls(&a.program, &a.solution);
    let targets: Vec<&str> = calls
        .iter()
        .flat_map(|c| c.targets.iter().map(|&t| a.program.var_name(t)))
        .collect();
    assert!(targets.contains(&"str_hash"));
    assert!(targets.contains(&"str_eq"));
}

#[test]
fn samples_agree_across_all_algorithms() {
    for name in ["interp.c", "hashtable.c"] {
        let path = format!("{}/testdata/{name}", env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(&path).unwrap();
        let generated = ant_grasshopper::compile_c(&src).unwrap();
        let reference = solve_dyn(
            &generated.program,
            &SolverConfig::new(Algorithm::Basic),
            PtsKind::Bitmap,
        );
        ant_grasshopper::solver::verify::assert_sound(&generated.program, &reference.solution);
        for alg in Algorithm::ALL {
            let out = solve_dyn(&generated.program, &SolverConfig::new(alg), PtsKind::Bitmap);
            assert!(
                out.solution.equiv(&reference.solution),
                "{alg} differs on {name} at {:?}",
                out.solution.first_difference(&reference.solution)
            );
        }
    }
}
