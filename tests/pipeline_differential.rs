//! Pass-pipeline differential testing: offline preprocessing is a
//! *solution-preserving* rewrite, so every pass subset must produce the
//! identical expanded solution for every solver, points-to representation,
//! and thread count. The reference is the empty pipeline (the solver sees
//! the program verbatim) with the Basic worklist solver on bitmaps.

use ant_grasshopper::frontend::workload::WorkloadSpec;
use ant_grasshopper::{
    compile_c, solve_dyn, solve_prepared, Algorithm, HcdPass, NormalizePass, OvsPass, PassPipeline,
    Program, PtsKind, Solution, SolverConfig,
};
use proptest::prelude::*;

/// Every subset the CLI's `--passes` flag exposes, plus the empty one.
fn subsets() -> Vec<(&'static str, PassPipeline)> {
    vec![
        ("none", PassPipeline::empty()),
        ("normalize", PassPipeline::empty().push(NormalizePass)),
        ("ovs", PassPipeline::empty().push(OvsPass)),
        (
            "normalize,ovs,hcd",
            PassPipeline::empty()
                .push(NormalizePass)
                .push(OvsPass)
                .push(HcdPass),
        ),
    ]
}

fn workloads() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for seed in [3u64, 17] {
        out.push((format!("tiny-{seed}"), WorkloadSpec::tiny(seed).generate()));
    }
    for name in ["hashtable.c", "interp.c"] {
        let path = format!("{}/testdata/{name}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap();
        let generated = compile_c(&text).unwrap();
        out.push((name.to_owned(), generated.program));
    }
    out
}

fn reference(program: &Program) -> Solution {
    solve_dyn(
        program,
        &SolverConfig::new(Algorithm::Basic),
        PtsKind::Bitmap,
    )
    .solution
}

/// Runs every subset × algorithm on one representation and checks the
/// expanded solutions against the reference.
fn assert_pipeline_invariant(
    name: &str,
    program: &Program,
    reference: &Solution,
    pts: PtsKind,
    threads: usize,
    algorithms: &[Algorithm],
) {
    for (spec, pipeline) in subsets() {
        let prepared = pipeline.run(program);
        for &alg in algorithms {
            let out = solve_prepared(
                &prepared,
                &SolverConfig::new(alg).with_threads(threads),
                pts,
            );
            assert_eq!(
                out.solution.num_vars(),
                program.num_vars(),
                "{name}/{spec}/{alg}/{pts}: expansion must cover the original vars"
            );
            assert!(
                out.solution.equiv(reference),
                "{name}/{spec}/{alg}/{pts}/threads={threads}: solution differs at {:?}",
                out.solution.first_difference(reference)
            );
        }
    }
}

#[test]
fn bitmap_runs_are_pass_subset_invariant() {
    for (name, program) in workloads() {
        let r = reference(&program);
        assert_pipeline_invariant(&name, &program, &r, PtsKind::Bitmap, 1, &Algorithm::ALL);
    }
}

#[test]
fn parallel_bitmap_runs_are_pass_subset_invariant() {
    for (name, program) in workloads() {
        let r = reference(&program);
        assert_pipeline_invariant(&name, &program, &r, PtsKind::Bitmap, 4, &Algorithm::ALL);
    }
}

#[test]
fn shared_runs_are_pass_subset_invariant() {
    for (name, program) in workloads() {
        let r = reference(&program);
        assert_pipeline_invariant(&name, &program, &r, PtsKind::Shared, 1, &Algorithm::ALL);
    }
}

#[test]
fn bdd_runs_are_pass_subset_invariant() {
    // BDD solving is the slow representation; the tiny workloads already
    // exercise every pipeline × solver combination.
    for (name, program) in workloads().into_iter().take(2) {
        let r = reference(&program);
        assert_pipeline_invariant(&name, &program, &r, PtsKind::Bdd, 1, &Algorithm::ALL);
    }
}

// Random *well-formed* programs (every dereferenced pointer is seeded, as
// real frontends guarantee): the HCD-based solvers are exact there, so the
// full cross-product must still agree bit for bit.
mod random_programs {
    use super::*;
    use ant_grasshopper::{ProgramBuilder, VarId};

    #[derive(Clone, Debug)]
    pub struct RawConstraint {
        kind: u8,
        lhs: usize,
        rhs: usize,
    }

    const NVARS: usize = 24;

    fn raw_constraints() -> impl Strategy<Value = Vec<RawConstraint>> {
        prop::collection::vec(
            (0u8..4, 0..NVARS, 0..NVARS).prop_map(|(kind, lhs, rhs)| RawConstraint {
                kind,
                lhs,
                rhs,
            }),
            1..60,
        )
    }

    fn build_program(raw: &[RawConstraint]) -> Program {
        let mut b = ProgramBuilder::new();
        let vars: Vec<VarId> = (0..NVARS).map(|i| b.var(&format!("v{i}"))).collect();
        let mut seeded = [false; NVARS];
        for c in raw {
            if c.kind == 0 {
                seeded[c.lhs] = true;
            }
        }
        for c in raw {
            let (l, r) = (vars[c.lhs], vars[c.rhs]);
            match c.kind {
                0 => b.addr_of(l, r),
                1 => b.copy(l, r),
                2 => {
                    if !seeded[c.rhs] {
                        seeded[c.rhs] = true;
                        b.addr_of(r, vars[(c.rhs + 1) % NVARS]);
                    }
                    b.load(l, r);
                }
                _ => {
                    if !seeded[c.lhs] {
                        seeded[c.lhs] = true;
                        b.addr_of(l, vars[(c.lhs + 1) % NVARS]);
                    }
                    b.store(l, r);
                }
            }
        }
        b.finish()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn every_subset_replays_the_reference(raw in raw_constraints()) {
            let program = build_program(&raw);
            let reference = super::reference(&program);
            for (spec, pipeline) in subsets() {
                let prepared = pipeline.run(&program);
                for alg in [
                    Algorithm::Basic,
                    Algorithm::Ht,
                    Algorithm::Pkh,
                    Algorithm::Lcd,
                    Algorithm::Hcd,
                    Algorithm::LcdHcd,
                ] {
                    let out = solve_prepared(
                        &prepared, &SolverConfig::new(alg), PtsKind::Bitmap,
                    );
                    prop_assert!(
                        out.solution.equiv(&reference),
                        "{}/{} differs at {:?}",
                        spec, alg, out.solution.first_difference(&reference)
                    );
                }
            }
        }
    }
}
