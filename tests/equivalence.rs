//! Cross-solver equivalence: inclusion-based pointer analysis has a single
//! fixpoint, so all nine algorithms (and the naive baseline), under both
//! points-to representations, must produce the identical solution.

use ant_grasshopper::frontend::workload::WorkloadSpec;
use ant_grasshopper::solver::verify::assert_sound;
use ant_grasshopper::{solve_dyn, Algorithm, Analysis, Program, PtsKind, SolverConfig};

fn workloads() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for seed in [1u64, 7, 99] {
        let spec = WorkloadSpec::tiny(seed);
        out.push((format!("tiny-{seed}"), spec.generate()));
    }
    // A denser one with more cycles and indirect calls.
    let dense = WorkloadSpec {
        base: 120,
        simple: 260,
        complex: 200,
        cycle_density: 0.25,
        ref_cycle_fraction: 0.3,
        indirect_call_fraction: 0.25,
        ..WorkloadSpec::tiny(1234)
    };
    out.push(("dense".to_owned(), dense.generate()));
    out
}

#[test]
fn all_algorithms_agree_bitmap() {
    for (name, program) in workloads() {
        let reference = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::Basic),
            PtsKind::Bitmap,
        );
        assert_sound(&program, &reference.solution);
        for alg in Algorithm::ALL {
            let out = solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bitmap);
            assert!(
                out.solution.equiv(&reference.solution),
                "{alg} differs from Basic on {name} at {:?}",
                out.solution.first_difference(&reference.solution)
            );
        }
    }
}

#[test]
fn all_algorithms_agree_bdd_pts() {
    for (name, program) in workloads() {
        let reference = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::Basic),
            PtsKind::Bitmap,
        );
        for alg in Algorithm::TABLE5 {
            let out = solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bdd);
            assert!(
                out.solution.equiv(&reference.solution),
                "{alg} (BDD pts) differs from Basic on {name} at {:?}",
                out.solution.first_difference(&reference.solution)
            );
        }
    }
}

#[test]
fn ovs_preserves_the_solution() {
    for (name, program) in workloads() {
        let direct = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::Lcd),
            PtsKind::Bitmap,
        );
        let pipelined = Analysis::builder()
            .algorithm(Algorithm::LcdHcd)
            .analyze(&program);
        assert!(
            pipelined.solution.equiv(&direct.solution),
            "OVS changed the solution on {name} at {:?}",
            pipelined.solution.first_difference(&direct.solution)
        );
        assert!(pipelined.constraints_after() < pipelined.constraints_before());
    }
}

#[test]
fn every_worklist_strategy_agrees() {
    use ant_grasshopper::common::worklist::WorklistKind;
    let (_, program) = workloads().pop().expect("non-empty");
    let reference = solve_dyn(
        &program,
        &SolverConfig::new(Algorithm::Basic),
        PtsKind::Bitmap,
    );
    for wk in WorklistKind::ALL {
        for alg in [Algorithm::Lcd, Algorithm::Hcd, Algorithm::LcdHcd] {
            let out = solve_dyn(
                &program,
                &SolverConfig {
                    worklist: wk,
                    ..SolverConfig::new(alg)
                },
                PtsKind::Bitmap,
            );
            assert!(
                out.solution.equiv(&reference.solution),
                "{alg} with {wk} differs"
            );
        }
    }
}

#[test]
fn suite_benchmarks_solve_equivalently_at_small_scale() {
    for bench in ant_grasshopper::frontend::suite::suite(0.005) {
        let program = bench.program();
        let prepared = ant_grasshopper::PassPipeline::standard().run(&program);
        let reference = ant_grasshopper::solve_prepared(
            &prepared,
            &SolverConfig::new(Algorithm::Ht),
            PtsKind::Bitmap,
        );
        for alg in [
            Algorithm::Lcd,
            Algorithm::Hcd,
            Algorithm::LcdHcd,
            Algorithm::Pkh,
        ] {
            let out = ant_grasshopper::solve_prepared(
                &prepared,
                &SolverConfig::new(alg),
                PtsKind::Bitmap,
            );
            assert!(
                out.solution.equiv(&reference.solution),
                "{alg} differs on {}",
                bench.name()
            );
        }
    }
}
