//! **ant-grasshopper** — fast and accurate inclusion-based pointer analysis.
//!
//! A faithful, from-scratch reproduction of *The Ant and the Grasshopper:
//! Fast and Accurate Pointer Analysis for Millions of Lines of Code*
//! (Hardekopf & Lin, PLDI 2007): Lazy Cycle Detection, Hybrid Cycle
//! Detection, the HT / PKH / BLQ baselines, GCC-style sparse bitmaps, a
//! from-scratch BDD package, offline variable substitution, a mini-C
//! constraint generator, and the full benchmark harness regenerating every
//! table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace and offers the end-to-end
//! pipeline the paper uses: constraint generation → the offline pass
//! pipeline (normalize, offline variable substitution, optionally the HCD
//! offline analysis) → online solving → a single solution expansion
//! through the pipeline's composed [`SolutionMapping`].
//!
//! # Quick start
//!
//! ```
//! use ant_grasshopper::{Algorithm, Analysis};
//!
//! let analysis = Analysis::builder()
//!     .algorithm(Algorithm::LcdHcd)
//!     .analyze_c(
//!         "int x; int *p; int **pp;\n\
//!          void main() { p = &x; pp = &p; **pp = x; }",
//!     )?;
//! let p = analysis.program.var_by_name("p").unwrap();
//! let x = analysis.program.var_by_name("x").unwrap();
//! assert!(analysis.solution.may_point_to(p, x));
//! # Ok::<(), ant_grasshopper::FrontendError>(())
//! ```
//!
//! The builder selects everything at runtime: the algorithm, the points-to
//! representation ([`PtsKind`]), the worklist strategy, the solver thread
//! count (the BSP engine reproduces the sequential result bit for bit) and
//! an optional telemetry observer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ant_bdd as bdd;
pub use ant_common as common;
pub use ant_constraints as constraints;
pub use ant_core as solver;
pub use ant_frontend as frontend;

pub use ant_common::worklist::WorklistKind;
pub use ant_common::{AntError, AntErrorKind, QueryErrorKind};
pub use ant_common::{SolverStats, VarId};
pub use ant_constraints::ovs::OvsStats;
pub use ant_constraints::pipeline::{
    HcdPass, NormalizePass, OvsPass, Pass, PassPipeline, PassSummary, Prepared, SolutionMapping,
};
pub use ant_constraints::{
    parse_program, Constraint, ConstraintKind, Program, ProgramBuilder, ProgramDelta,
};
pub use ant_core::provenance::{EdgeExplanation, EdgeOrigin, Explainer, Step};
pub use ant_core::session::{
    read_request_line, AnalysisSession, Reply, SessionOptions, MAX_REQUEST_LINE,
};
pub use ant_core::{
    resume_dyn, resume_dyn_with_observer, resume_supported, solve_dyn, solve_dyn_recorded,
    solve_dyn_resumable, solve_dyn_resumable_with_observer, solve_dyn_with_observer,
    solve_prepared, solve_prepared_raw, solve_prepared_raw_recorded, solve_prepared_recorded,
    solve_prepared_recorded_with_observer, solve_prepared_with_observer, threads_from_env,
    Algorithm, BddPts, BitmapPts, PropMode, PtsKind, PtsRepr, ResumableState, SharedPts, Solution,
    SolveOutput, SolverConfig,
};
pub use ant_frontend::{compile_c, FrontendError};

use ant_common::obs::{Obs, Observer};
use std::time::Duration;

/// Result of the full pipeline on a constraint program.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The points-to solution, expressed over the *original* variables.
    pub solution: Solution,
    /// Online solver statistics (§5.3 counters, memory, time).
    pub stats: SolverStats,
    /// One summary per offline pass that ran, in execution order.
    pub passes: Vec<PassSummary>,
    /// Wall-clock time of the whole offline pass pipeline.
    pub prepare_time: Duration,
}

impl Analysis {
    /// Starts configuring a pipeline run. See [`AnalysisBuilder`].
    pub fn builder() -> AnalysisBuilder<'static> {
        AnalysisBuilder {
            config: SolverConfig::new(Algorithm::LcdHcd),
            pts: PtsKind::Bitmap,
            passes: PassPipeline::standard(),
            observer: None,
        }
    }

    /// Constraints entering the first offline pass (the original program's
    /// count when any pass ran; `0` with an empty pipeline).
    pub fn constraints_before(&self) -> usize {
        self.passes
            .first()
            .map(|s| s.constraints_before)
            .unwrap_or(0)
    }

    /// Constraints leaving the last offline pass.
    pub fn constraints_after(&self) -> usize {
        self.passes.last().map(|s| s.constraints_after).unwrap_or(0)
    }

    /// Fraction of constraints the offline pipeline eliminated, in percent
    /// (§5.1 reports 60–77% for OVS alone).
    pub fn reduction_percent(&self) -> f64 {
        let before = self.constraints_before();
        if before == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.constraints_after() as f64 / before as f64)
        }
    }
}

/// Configures and runs the paper's full pipeline: offline variable
/// substitution, the selected solver, then expansion of the solution back
/// to the original variables. Every choice is made at runtime — no
/// turbofish.
///
/// ```
/// use ant_grasshopper::{parse_program, Algorithm, Analysis, PtsKind};
///
/// let program = parse_program("p = &x\nq = p\n")?;
/// let analysis = Analysis::builder()
///     .algorithm(Algorithm::LcdHcd)
///     .pts(PtsKind::Shared)
///     .threads(4)
///     .analyze(&program);
/// let q = program.var_by_name("q").unwrap();
/// let x = program.var_by_name("x").unwrap();
/// assert!(analysis.solution.may_point_to(q, x));
/// # Ok::<(), ant_grasshopper::constraints::ParseProgramError>(())
/// ```
pub struct AnalysisBuilder<'o> {
    config: SolverConfig,
    pts: PtsKind,
    passes: PassPipeline,
    observer: Option<&'o mut dyn Observer>,
}

impl<'o> AnalysisBuilder<'o> {
    /// Selects the solver algorithm (default: [`Algorithm::LcdHcd`], the
    /// paper's fastest configuration).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Selects the points-to set representation (default:
    /// [`PtsKind::Bitmap`]).
    pub fn pts(mut self, pts: PtsKind) -> Self {
        self.pts = pts;
        self
    }

    /// Selects the worklist strategy (default: the paper's divided LRF).
    pub fn worklist(mut self, worklist: WorklistKind) -> Self {
        self.config.worklist = worklist;
        self
    }

    /// Selects the propagation mode (default: [`PropMode::Full`]).
    /// [`PropMode::Diff`] pushes only `pts − sent` along each edge —
    /// bit-identical solution and §5.3 counters, fewer bytes moved.
    pub fn prop(mut self, prop: PropMode) -> Self {
        self.config.prop = prop;
        self
    }

    /// Sets the solver thread count (default: [`threads_from_env`], i.e.
    /// `ANT_THREADS` or 1). With `threads ≥ 2` the worklist solvers run on
    /// the BSP round engine, which is bit-identical to the sequential run;
    /// the worker phase is further clamped to the hardware's available
    /// parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the progress-snapshot cadence for observed runs (default:
    /// [`SolverConfig::DEFAULT_PROGRESS_EVERY`]).
    pub fn progress_every(mut self, every: u32) -> Self {
        self.config.progress_every = every;
        self
    }

    /// Replaces the entire solver configuration at once.
    pub fn config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the offline pass pipeline (default:
    /// [`PassPipeline::standard`], i.e. `normalize, ovs`). Pass
    /// [`PassPipeline::empty`] to solve the program verbatim, or
    /// [`PassPipeline::full`] to also precompute the HCD pair table the
    /// HCD-enhanced solvers consume.
    pub fn passes(mut self, passes: PassPipeline) -> Self {
        self.passes = passes;
        self
    }

    /// Attaches a telemetry observer: every offline pass (with its
    /// [`PassSummary`]), the solve phases, progress snapshots, BSP round
    /// summaries and cycle collapses are all delivered to it.
    pub fn observer(self, observer: &mut dyn Observer) -> AnalysisBuilder<'_> {
        AnalysisBuilder {
            config: self.config,
            pts: self.pts,
            passes: self.passes,
            observer: Some(observer),
        }
    }

    /// Runs the pipeline on a constraint program: the offline passes, the
    /// selected solver, then one expansion of the solution back to the
    /// original variables through the pipeline's composed mapping.
    pub fn analyze(self, program: &Program) -> Analysis {
        let AnalysisBuilder {
            config,
            pts,
            passes,
            observer,
        } = self;
        match observer {
            None => {
                let prepared = passes.run(program);
                let out = solve_prepared(&prepared, &config, pts);
                Analysis {
                    solution: out.solution,
                    stats: out.stats,
                    passes: prepared.summaries,
                    prepare_time: prepared.elapsed,
                }
            }
            Some(o) => {
                let prepared = {
                    let mut obs = Obs::new(&mut *o, config.progress_every);
                    passes.run_with_obs(program, &mut obs)
                };
                let out = solve_prepared_with_observer(&prepared, &config, pts, o);
                Analysis {
                    solution: out.solution,
                    stats: out.stats,
                    passes: prepared.summaries,
                    prepare_time: prepared.elapsed,
                }
            }
        }
    }

    /// Compiles mini-C source and runs the pipeline on it.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError`] if the source does not parse.
    pub fn analyze_c(self, src: &str) -> Result<CAnalysis, FrontendError> {
        let generated = ant_frontend::compile_c(src)?;
        let analysis = self.analyze(&generated.program);
        Ok(CAnalysis {
            program: generated.program,
            solution: analysis.solution,
            stats: analysis.stats,
            warnings: generated.warnings,
        })
    }
}

/// Result of [`AnalysisBuilder::analyze_c`]: the analysis plus the
/// generated program (for name-based queries).
#[derive(Clone, Debug)]
pub struct CAnalysis {
    /// The constraint program generated from the source.
    pub program: Program,
    /// The points-to solution over that program's variables.
    pub solution: Solution,
    /// Online solver statistics.
    pub stats: SolverStats,
    /// Front-end warnings (implicit declarations, unknown externals).
    pub warnings: Vec<String>,
}
