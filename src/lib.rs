//! **ant-grasshopper** — fast and accurate inclusion-based pointer analysis.
//!
//! A faithful, from-scratch reproduction of *The Ant and the Grasshopper:
//! Fast and Accurate Pointer Analysis for Millions of Lines of Code*
//! (Hardekopf & Lin, PLDI 2007): Lazy Cycle Detection, Hybrid Cycle
//! Detection, the HT / PKH / BLQ baselines, GCC-style sparse bitmaps, a
//! from-scratch BDD package, offline variable substitution, a mini-C
//! constraint generator, and the full benchmark harness regenerating every
//! table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace and offers the end-to-end
//! pipeline the paper uses: constraint generation → offline variable
//! substitution → online solving → solution expansion.
//!
//! # Quick start
//!
//! ```
//! use ant_grasshopper::{analyze_c, Algorithm, SolverConfig};
//!
//! let analysis = analyze_c(
//!     "int x; int *p; int **pp;\n\
//!      void main() { p = &x; pp = &p; **pp = x; }",
//!     &SolverConfig::new(Algorithm::LcdHcd),
//! )?;
//! let p = analysis.program.var_by_name("p").unwrap();
//! let x = analysis.program.var_by_name("x").unwrap();
//! assert!(analysis.solution.may_point_to(p, x));
//! # Ok::<(), ant_grasshopper::FrontendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ant_bdd as bdd;
pub use ant_common as common;
pub use ant_constraints as constraints;
pub use ant_core as solver;
pub use ant_frontend as frontend;

pub use ant_common::{SolverStats, VarId};
pub use ant_constraints::ovs::OvsStats;
pub use ant_constraints::{parse_program, Constraint, ConstraintKind, Program, ProgramBuilder};
pub use ant_core::{
    solve, Algorithm, BddPts, BitmapPts, PtsRepr, SharedPts, Solution, SolverConfig,
};
pub use ant_frontend::{compile_c, FrontendError};

use std::time::Duration;

/// Result of the full pipeline on a constraint program.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The points-to solution, expressed over the *original* variables.
    pub solution: Solution,
    /// Online solver statistics (§5.3 counters, memory, time).
    pub stats: SolverStats,
    /// Offline variable substitution statistics.
    pub ovs: OvsStats,
    /// Wall-clock time of the OVS pre-pass.
    pub ovs_time: Duration,
}

/// Runs the paper's full pipeline on a constraint program: offline variable
/// substitution, then the configured solver, then expansion of the solution
/// back to the original variables.
pub fn analyze_program<P: PtsRepr>(program: &Program, config: &SolverConfig) -> Analysis {
    let reduced = ant_constraints::ovs::substitute(program);
    let out = ant_core::solve::<P>(&reduced.program, config);
    Analysis {
        solution: out.solution.expand_ovs(&reduced),
        stats: out.stats,
        ovs: reduced.stats,
        ovs_time: reduced.elapsed,
    }
}

/// Result of [`analyze_c`]: the analysis plus the generated program (for
/// name-based queries).
#[derive(Clone, Debug)]
pub struct CAnalysis {
    /// The constraint program generated from the source.
    pub program: Program,
    /// The points-to solution over that program's variables.
    pub solution: Solution,
    /// Online solver statistics.
    pub stats: SolverStats,
    /// Front-end warnings (implicit declarations, unknown externals).
    pub warnings: Vec<String>,
}

/// Compiles mini-C source and runs the full pipeline with sparse-bitmap
/// points-to sets.
///
/// # Errors
///
/// Returns [`FrontendError`] if the source does not parse.
pub fn analyze_c(src: &str, config: &SolverConfig) -> Result<CAnalysis, FrontendError> {
    let generated = ant_frontend::compile_c(src)?;
    let analysis = analyze_program::<BitmapPts>(&generated.program, config);
    Ok(CAnalysis {
        program: generated.program,
        solution: analysis.solution,
        stats: analysis.stats,
        warnings: generated.warnings,
    })
}
