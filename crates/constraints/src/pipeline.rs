//! The offline pass pipeline: composable constraint preprocessing with a
//! single solution-mapping layer.
//!
//! The paper preprocesses every constraint file with Offline Variable
//! Substitution (§5.1) and runs the HCD offline analysis (§4.2) before the
//! HCD-enhanced solvers. Both are *passes* over a [`Program`]: they may
//! rewrite the constraint list, rename variables onto representatives, or
//! attach metadata the online solver consumes. This module makes that
//! structure explicit:
//!
//! * [`Pass`] — one offline transformation;
//! * [`PassPipeline`] — an ordered list of passes, run front to back;
//! * [`SolutionMapping`] — the *composition* of every rename the pipeline
//!   performed, so one [`expand`] recovers the solution over the original
//!   variables no matter how many passes ran;
//! * [`Prepared`] — the pipeline's output: the final program, the composed
//!   mapping, optional HCD metadata and one [`PassSummary`] per pass.
//!
//! # Composition law
//!
//! Every renaming pass guarantees `pts_in(v) = pts_out(p(v))` for its
//! rename map `p`: the points-to set of `v` under the input program equals
//! the set of `p(v)` under the rewritten program. Renames therefore compose
//! by *chaining through the current representative*: if pass `p` runs
//! before pass `q`, the combined map is `v ↦ q(p(v))`, which
//! [`SolutionMapping::compose`] implements as `rep[v] = next[rep[v]]`.
//! Locations are never renamed (an OVS invariant), so the mapping only
//! redirects whose *set* answers a query, never the set's elements.
//!
//! # Pass ordering
//!
//! Passes run in the order given. One rule is enforced: the HCD pass
//! attaches a pair table speaking about the *exact* program it analyzed, so
//! no rewriting pass may run after it ([`PassPipeline::parse`] rejects such
//! specs; [`PassPipeline::run`] panics on hand-built violations). The
//! standard order is `normalize, ovs` — cheap syntactic cleanup first, then
//! pointer-equivalence substitution — with `hcd` appended when the solver
//! wants the offline pair table precomputed.
//!
//! [`expand`]: SolutionMapping::rep_of

use crate::hcd::HcdOffline;
use crate::ovs;
use crate::{Constraint, ConstraintKind, Program};
use ant_common::fx::FxHashSet;
use ant_common::obs::{Obs, Phase, PhaseTimer, SolveEvent};
use ant_common::VarId;
use std::fmt;
use std::time::{Duration, Instant};

/// A var → representative map composing every rename the pipeline made:
/// the solved points-to set of `rep_of(v)` (over the final program) is the
/// points-to set of `v` over the original program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolutionMapping {
    rep: Vec<VarId>,
}

impl SolutionMapping {
    /// The identity mapping over `num_vars` variables.
    pub fn identity(num_vars: usize) -> Self {
        SolutionMapping {
            rep: (0..num_vars).map(VarId::new).collect(),
        }
    }

    /// Wraps an explicit representative table (`rep[v]` answers for `v`).
    pub fn from_reps(rep: Vec<VarId>) -> Self {
        SolutionMapping { rep }
    }

    /// The representative whose solved points-to set equals `v`'s.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn rep_of(&self, v: VarId) -> VarId {
        self.rep[v.index()]
    }

    /// Number of variables the mapping covers.
    pub fn num_vars(&self) -> usize {
        self.rep.len()
    }

    /// Is this the identity (no variable was renamed)?
    pub fn is_identity(&self) -> bool {
        self.rep.iter().enumerate().all(|(i, r)| r.index() == i)
    }

    /// Did some pass rename `v` away? When true, a derivation explainer
    /// must surface the `v ≡ rep_of(v)` hop before walking solver-side
    /// provenance records, which only speak about representatives.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn was_merged(&self, v: VarId) -> bool {
        self.rep_of(v) != v
    }

    /// Resolves an *original* variable name to the final-program variable
    /// whose solved points-to set answers for it: `rep_of(var_by_name(name))`.
    /// This is the only name→id path clients of a solved [`Prepared`]
    /// should use — it speaks the original program's names, never
    /// post-OVS/HCD representatives. Returns `None` when no variable of
    /// that name exists.
    ///
    /// `program` must be the *original* (pre-pipeline) program the mapping
    /// was built from; the final program's name table may have dropped
    /// merged variables.
    pub fn resolve(&self, program: &Program, name: &str) -> Option<VarId> {
        let v = program.var_by_name(name)?;
        Some(self.rep_of(v))
    }

    /// Composes a later rename on top: afterwards
    /// `rep_of(v) = next[old_rep_of(v)]`. This is the mapping composition
    /// law — `next` speaks about the program the *previous* passes
    /// produced, so it is applied to the current representative.
    ///
    /// # Panics
    ///
    /// Panics if `next` covers fewer variables than the mapping (passes
    /// never shrink the variable space).
    pub fn compose(&mut self, next: &[VarId]) {
        assert!(
            next.len() >= self.rep.len(),
            "rename map covers {} of {} variables",
            next.len(),
            self.rep.len()
        );
        for r in &mut self.rep {
            *r = next[r.index()];
        }
    }
}

/// Constraint-reduction bookkeeping for one executed pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassSummary {
    /// Stable pass name ([`Pass::name`]).
    pub pass: &'static str,
    /// Constraints entering the pass.
    pub constraints_before: usize,
    /// Constraints leaving the pass.
    pub constraints_after: usize,
    /// Variables the pass merged into a representative other than
    /// themselves.
    pub vars_merged: usize,
    /// Wall time of the pass.
    pub elapsed: Duration,
}

impl PassSummary {
    /// Fraction of constraints this pass eliminated, in percent.
    pub fn reduction_percent(&self) -> f64 {
        if self.constraints_before == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.constraints_after as f64 / self.constraints_before as f64)
        }
    }
}

/// What one pass produced. Every field is optional so passes only pay for
/// what they change: a pure-metadata pass (HCD) returns the program
/// untouched, a pure-rewrite pass (normalize) returns no rename map.
pub struct PassOutcome {
    /// The rewritten program, or `None` when the pass left it unchanged.
    pub program: Option<Program>,
    /// The rename map this pass applied (`map[v]` = new representative of
    /// `v`, over the *input* program's variable space), or `None` for the
    /// identity.
    pub renames: Option<Vec<VarId>>,
    /// HCD offline metadata to attach to the pipeline result, consumed by
    /// the HCD-enhanced solvers.
    pub hcd: Option<HcdOffline>,
    /// Variables merged into a representative other than themselves.
    pub vars_merged: usize,
}

/// One offline preprocessing pass.
///
/// Implementations must preserve the variable space (ids and offset-limit
/// table) and the solution: for the returned rename map `p` (identity if
/// absent), the solved `pts` of `p(v)` over the output program must equal
/// the solved `pts` of `v` over the input program.
pub trait Pass {
    /// Stable machine-readable name (`--passes` spelling, trace field).
    fn name(&self) -> &'static str;

    /// Does this pass rewrite the program (constraints or renames)? A pass
    /// answering `false` (e.g. [`HcdPass`]) may run after HCD metadata has
    /// been attached; rewriting passes may not, since they would invalidate
    /// the pair table.
    fn rewrites(&self) -> bool {
        true
    }

    /// Runs the pass. Telemetry (the pass's phase span) goes through `obs`.
    fn run(&self, program: &Program, obs: &mut Obs<'_>) -> PassOutcome;
}

/// MDE-inspired constraint normalization: canonicalize each constraint
/// (offsets are meaningful only on loads/stores and are cleared elsewhere),
/// drop self-copies (`a = a` is a no-op) and eliminate exact duplicates,
/// keeping the first occurrence so constraint order stays stable.
///
/// Purely syntactic — no variable is renamed — so it composes with any
/// later pass and makes their duplicate handling cheaper.
#[derive(Clone, Copy, Debug, Default)]
pub struct NormalizePass;

impl Pass for NormalizePass {
    fn name(&self) -> &'static str {
        "normalize"
    }

    fn run(&self, program: &Program, obs: &mut Obs<'_>) -> PassOutcome {
        let mut timer = PhaseTimer::new();
        timer.start(Phase::OfflineNormalize, obs);
        let constraints = program.constraints();
        let mut seen: FxHashSet<Constraint> = FxHashSet::default();
        seen.reserve(constraints.len());
        let mut out: Vec<Constraint> = Vec::with_capacity(constraints.len());
        for c in constraints {
            let canon = match c.kind {
                ConstraintKind::AddrOf | ConstraintKind::Copy => Constraint { offset: 0, ..*c },
                ConstraintKind::Load | ConstraintKind::Store => *c,
            };
            if canon.kind == ConstraintKind::Copy && canon.lhs == canon.rhs {
                continue;
            }
            if seen.insert(canon) {
                out.push(canon);
            }
        }
        timer.stop(obs);
        PassOutcome {
            program: (out.len() != constraints.len()).then(|| program.with_constraints(out)),
            renames: None,
            hcd: None,
            vars_merged: 0,
        }
    }
}

/// Offline Variable Substitution ([`ovs::substitute`]) as a pipeline pass:
/// merges pointer-equivalent variables onto representatives and rewrites
/// the constraints, contributing its substitution map to the pipeline's
/// [`SolutionMapping`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OvsPass;

impl Pass for OvsPass {
    fn name(&self) -> &'static str {
        "ovs"
    }

    fn run(&self, program: &Program, obs: &mut Obs<'_>) -> PassOutcome {
        let r = ovs::substitute_with_obs(program, obs);
        PassOutcome {
            vars_merged: r.stats.vars_merged,
            program: Some(r.program),
            renames: Some(r.subst),
            hcd: None,
        }
    }
}

/// The HCD offline analysis ([`HcdOffline`]) as a pipeline pass: computes
/// the `(a, b)` pair table and static unions for the program as it stands
/// and attaches them as pipeline metadata ([`Prepared::hcd`]). The program
/// itself is untouched, but because the pair table binds to the analyzed
/// program, no rewriting pass may run afterwards — this pass must be last.
#[derive(Clone, Copy, Debug, Default)]
pub struct HcdPass;

impl Pass for HcdPass {
    fn name(&self) -> &'static str {
        "hcd"
    }

    fn rewrites(&self) -> bool {
        false
    }

    fn run(&self, program: &Program, obs: &mut Obs<'_>) -> PassOutcome {
        let mut timer = PhaseTimer::new();
        timer.start(Phase::OfflineHcd, obs);
        let h = HcdOffline::analyze_with_obs(program, obs);
        timer.stop(obs);
        PassOutcome {
            program: None,
            renames: None,
            hcd: Some(h),
            vars_merged: 0,
        }
    }
}

/// Everything the pipeline produced: feed [`Prepared::program`] (plus
/// [`Prepared::hcd`]) to a solver, then expand its solution with
/// [`Prepared::mapping`] — exactly one expansion, however many passes ran.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The preprocessed program all passes agreed on.
    pub program: Program,
    /// The composed rename map back to the original variables.
    pub mapping: SolutionMapping,
    /// HCD offline metadata, when an [`HcdPass`] ran.
    pub hcd: Option<HcdOffline>,
    /// One summary per executed pass, in execution order.
    pub summaries: Vec<PassSummary>,
    /// Wall time of the whole pipeline.
    pub elapsed: Duration,
}

impl Prepared {
    /// A no-pass preparation of `program`: identity mapping, no metadata.
    pub fn identity(program: &Program) -> Prepared {
        Prepared {
            mapping: SolutionMapping::identity(program.num_vars()),
            program: program.clone(),
            hcd: None,
            summaries: Vec::new(),
            elapsed: Duration::ZERO,
        }
    }

    /// Constraints entering the first pass (the original program's count);
    /// equals the final count when no pass ran.
    pub fn constraints_before(&self) -> usize {
        self.summaries
            .first()
            .map(|s| s.constraints_before)
            .unwrap_or_else(|| self.program.constraints().len())
    }

    /// Constraints leaving the last pass.
    pub fn constraints_after(&self) -> usize {
        self.program.constraints().len()
    }

    /// Fraction of constraints the whole pipeline eliminated, in percent
    /// (the paper's §5.1 reports 60–77% for OVS alone).
    pub fn reduction_percent(&self) -> f64 {
        let before = self.constraints_before();
        if before == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.constraints_after() as f64 / before as f64)
        }
    }

    /// The summary of the named pass, if it ran.
    pub fn summary(&self, pass: &str) -> Option<&PassSummary> {
        self.summaries.iter().find(|s| s.pass == pass)
    }

    /// Variables merged across all passes.
    pub fn vars_merged(&self) -> usize {
        self.summaries.iter().map(|s| s.vars_merged).sum()
    }
}

/// A malformed `--passes` specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassParseError(String);

impl fmt::Display for PassParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PassParseError {}

impl From<PassParseError> for ant_common::AntError {
    fn from(e: PassParseError) -> Self {
        ant_common::AntError::pipeline(e.to_string()).with_source(e)
    }
}

/// An ordered list of offline passes, run front to back over a [`Program`]
/// while composing every rename into one [`SolutionMapping`].
///
/// ```
/// use ant_constraints::pipeline::PassPipeline;
/// use ant_constraints::parse_program;
///
/// let program = parse_program("p = &x\nq = p\nq = p\n")?;
/// let prepared = PassPipeline::standard().run(&program);
/// assert!(prepared.constraints_after() < prepared.constraints_before());
/// // One expansion, regardless of how many passes renamed variables:
/// let q = program.var_by_name("q").unwrap();
/// let rep = prepared.mapping.rep_of(q);
/// # let _ = rep;
/// # Ok::<(), ant_constraints::ParseProgramError>(())
/// ```
#[derive(Default)]
pub struct PassPipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl PassPipeline {
    /// A pipeline with no passes: the program goes to the solver verbatim
    /// and the mapping is the identity.
    pub fn empty() -> Self {
        PassPipeline { passes: Vec::new() }
    }

    /// The default preprocessing of the paper's runs: `normalize, ovs`.
    pub fn standard() -> Self {
        PassPipeline::empty().push(NormalizePass).push(OvsPass)
    }

    /// The full offline stack: `normalize, ovs, hcd`. The solver consumes
    /// the attached HCD metadata instead of recomputing it.
    pub fn full() -> Self {
        PassPipeline::standard().push(HcdPass)
    }

    /// Appends a pass.
    pub fn push(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Number of passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Is the pipeline empty?
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// The pass names, in execution order.
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Parses a comma-separated pass list (the CLI's `--passes` syntax):
    /// any order of `normalize`, `ovs` and `hcd`, or `none` (equivalently
    /// the empty string) for no preprocessing.
    ///
    /// # Errors
    ///
    /// Rejects unknown pass names and any spec where a rewriting pass
    /// follows `hcd` (the pair table would go stale).
    pub fn parse(spec: &str) -> Result<Self, PassParseError> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(PassPipeline::empty());
        }
        let mut pipeline = PassPipeline::empty();
        let mut hcd_seen = false;
        for name in spec.split(',') {
            let name = name.trim();
            let pass: Box<dyn Pass> = match name {
                "normalize" => Box::new(NormalizePass),
                "ovs" => Box::new(OvsPass),
                "hcd" => Box::new(HcdPass),
                "" => {
                    return Err(PassParseError(format!(
                        "empty pass name in `{spec}` (expected a comma-separated \
                         list of normalize, ovs, hcd)"
                    )))
                }
                other => {
                    return Err(PassParseError(format!(
                        "unknown pass `{other}` (expected normalize, ovs, hcd or none)"
                    )))
                }
            };
            if hcd_seen && pass.rewrites() {
                return Err(PassParseError(format!(
                    "pass `{name}` cannot run after hcd: the HCD pair table \
                     describes the program it analyzed, so hcd must be last"
                )));
            }
            hcd_seen |= name == "hcd";
            pipeline.passes.push(pass);
        }
        Ok(pipeline)
    }

    /// Is every pass in this pipeline *delta-stable* — i.e. safe to apply
    /// incrementally when constraints are appended to a program?
    ///
    /// Only `normalize` qualifies (the empty pipeline trivially does):
    /// normalization is a per-constraint rewrite plus order-stable
    /// deduplication, so normalizing a union equals the normalized base
    /// plus the normalized, unseen delta suffix. OVS and HCD are *not*
    /// delta-stable: their equivalences are global properties of the
    /// constraint graph, and a single added constraint can invalidate a
    /// merge they already committed to (see DESIGN.md §14 for the
    /// counterexample).
    pub fn delta_stable(&self) -> bool {
        self.passes.iter().all(|p| p.name() == "normalize")
    }

    /// The incremental lane of the pipeline: prepares the union program
    /// `base_program ++ delta` by reusing the base's prepared output
    /// instead of re-running passes over the whole union.
    ///
    /// `base` must be `self`'s output for `base_program`, and `union` must
    /// have `base_program`'s constraints as a strict prefix (the shape
    /// [`Program::append_delta`] produces). The result is *identical* to
    /// `self.run(union)` — program, mapping and summary counts — but costs
    /// only O(|delta|) hashing instead of O(|union|).
    ///
    /// Returns `None` when the fast lane does not apply: a pass that is not
    /// [`delta_stable`](Self::delta_stable), a base mapping that renamed
    /// variables, or attached HCD metadata. Callers then fall back to
    /// [`run`](Self::run) on the union.
    pub fn prepare_delta(
        &self,
        base_program: &Program,
        base: &Prepared,
        union: &Program,
    ) -> Option<Prepared> {
        if !self.delta_stable() || !base.mapping.is_identity() || base.hcd.is_some() {
            return None;
        }
        if self.is_empty() {
            return Some(Prepared::identity(union));
        }
        let start = Instant::now();
        let prefix = base_program.constraints().len();
        debug_assert!(
            union.constraints().len() >= prefix
                && union.constraints()[..prefix] == *base_program.constraints(),
            "union is not base ++ delta"
        );
        let mut seen: FxHashSet<Constraint> = base.program.constraints().iter().copied().collect();
        let mut out: Vec<Constraint> = base.program.constraints().to_vec();
        for c in &union.constraints()[prefix..] {
            let canon = match c.kind {
                ConstraintKind::AddrOf | ConstraintKind::Copy => Constraint { offset: 0, ..*c },
                ConstraintKind::Load | ConstraintKind::Store => *c,
            };
            if canon.kind == ConstraintKind::Copy && canon.lhs == canon.rhs {
                continue;
            }
            if seen.insert(canon) {
                out.push(canon);
            }
        }
        let after = out.len();
        let program = union.with_constraints(out);
        debug_validate(&program, "normalize (delta lane)");
        let elapsed = start.elapsed();
        let summaries = (0..self.passes.len())
            .map(|i| PassSummary {
                pass: "normalize",
                constraints_before: if i == 0 {
                    union.constraints().len()
                } else {
                    after
                },
                constraints_after: after,
                vars_merged: 0,
                elapsed: if i == 0 { elapsed } else { Duration::ZERO },
            })
            .collect();
        Some(Prepared {
            mapping: SolutionMapping::identity(union.num_vars()),
            program,
            hcd: None,
            summaries,
            elapsed,
        })
    }

    /// Runs every pass over `program`.
    pub fn run(&self, program: &Program) -> Prepared {
        self.run_with_obs(program, &mut Obs::none())
    }

    /// [`try_run_with_obs`](Self::try_run_with_obs) without telemetry.
    pub fn try_run(&self, program: &Program) -> Result<Prepared, ant_common::AntError> {
        self.try_run_with_obs(program, &mut Obs::none())
    }

    /// [`run`](Self::run) with telemetry: each pass opens its own phase
    /// span and is followed by one [`SolveEvent::PassSummary`]. Under
    /// `debug_assertions` the program is checked against
    /// [`Program::validate`] before the first pass and after every pass.
    ///
    /// # Panics
    ///
    /// Panics if a rewriting pass runs after HCD metadata was attached, or
    /// (under `debug_assertions`) if a pass breaks a program invariant.
    /// Service layers that must not die on a mis-assembled pipeline use
    /// [`try_run_with_obs`](Self::try_run_with_obs) instead.
    pub fn run_with_obs(&self, program: &Program, obs: &mut Obs<'_>) -> Prepared {
        match self.try_run_with_obs(program, obs) {
            Ok(prepared) => prepared,
            Err(e) => panic!("{e}"),
        }
    }

    /// The fallible form of [`run_with_obs`](Self::run_with_obs): ordering
    /// violations become an [`AntErrorKind::Pipeline`] error instead of a
    /// panic, so long-lived callers (the query service) can answer with a
    /// typed envelope.
    ///
    /// [`AntErrorKind::Pipeline`]: ant_common::AntErrorKind::Pipeline
    pub fn try_run_with_obs(
        &self,
        program: &Program,
        obs: &mut Obs<'_>,
    ) -> Result<Prepared, ant_common::AntError> {
        let start = Instant::now();
        debug_validate(program, "pipeline input");
        let mut prepared = Prepared::identity(program);
        for pass in &self.passes {
            if prepared.hcd.is_some() && pass.rewrites() {
                return Err(ant_common::AntError::pipeline(format!(
                    "pass `{}` would rewrite the program after hcd attached its \
                     pair table; order hcd last",
                    pass.name()
                )));
            }
            let before = prepared.program.constraints().len();
            let pass_start = Instant::now();
            let outcome = pass.run(&prepared.program, obs);
            let elapsed = pass_start.elapsed();
            if let Some(renames) = &outcome.renames {
                prepared.mapping.compose(renames);
            }
            if let Some(next) = outcome.program {
                prepared.program = next;
            }
            if let Some(h) = outcome.hcd {
                prepared.hcd = Some(h);
            }
            debug_validate(&prepared.program, pass.name());
            let summary = PassSummary {
                pass: pass.name(),
                constraints_before: before,
                constraints_after: prepared.program.constraints().len(),
                vars_merged: outcome.vars_merged,
                elapsed,
            };
            obs.emit(&SolveEvent::PassSummary {
                pass: summary.pass,
                constraints_before: summary.constraints_before as u64,
                constraints_after: summary.constraints_after as u64,
                vars_merged: summary.vars_merged as u64,
                micros: summary.elapsed.as_micros() as u64,
            });
            prepared.summaries.push(summary);
        }
        prepared.elapsed = start.elapsed();
        Ok(prepared)
    }
}

impl fmt::Debug for PassPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("PassPipeline").field(&self.names()).finish()
    }
}

fn debug_validate(program: &Program, stage: &str) {
    if cfg!(debug_assertions) {
        if let Err(e) = program.validate() {
            panic!("invalid program after {stage}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let a = pb.var("a");
        let b = pb.var("b");
        pb.addr_of(p, x);
        pb.copy(a, p);
        pb.copy(a, p); // duplicate
        pb.copy(b, b); // self-copy
        pb.copy(b, a);
        pb.load(x, p);
        pb.store(p, a);
        pb.finish()
    }

    #[test]
    fn mapping_identity_and_compose() {
        let mut m = SolutionMapping::identity(4);
        assert!(m.is_identity());
        assert_eq!(m.num_vars(), 4);
        // First rename: 2 → 1, 3 → 1.
        let first: Vec<VarId> = [0usize, 1, 1, 1].iter().map(|&i| VarId::new(i)).collect();
        m.compose(&first);
        assert!(!m.is_identity());
        assert_eq!(m.rep_of(VarId::new(3)), VarId::new(1));
        // Second rename, over the renamed space: 1 → 0.
        let second: Vec<VarId> = [0usize, 0, 2, 3].iter().map(|&i| VarId::new(i)).collect();
        m.compose(&second);
        // Composition law: rep(v) = second(first(v)).
        assert_eq!(m.rep_of(VarId::new(3)), VarId::new(0));
        assert_eq!(m.rep_of(VarId::new(2)), VarId::new(0));
        assert_eq!(m.rep_of(VarId::new(0)), VarId::new(0));
    }

    #[test]
    fn normalize_drops_duplicates_and_self_copies() {
        let program = sample();
        let prepared = PassPipeline::empty().push(NormalizePass).run(&program);
        assert_eq!(prepared.constraints_before(), 7);
        assert_eq!(prepared.constraints_after(), 5);
        assert!(prepared.mapping.is_identity());
        assert!(prepared.hcd.is_none());
        let s = prepared.summary("normalize").expect("normalize ran");
        assert_eq!(s.vars_merged, 0);
        assert!(s.reduction_percent() > 0.0);
        // Order-stable: surviving constraints keep their relative order.
        let kinds: Vec<_> = prepared
            .program
            .constraints()
            .iter()
            .map(|c| c.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                ConstraintKind::AddrOf,
                ConstraintKind::Copy,
                ConstraintKind::Copy,
                ConstraintKind::Load,
                ConstraintKind::Store,
            ]
        );
    }

    #[test]
    fn normalize_on_clean_program_leaves_it_unchanged() {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        pb.addr_of(p, x);
        let program = pb.finish();
        let prepared = PassPipeline::empty().push(NormalizePass).run(&program);
        assert_eq!(prepared.program, program);
    }

    #[test]
    fn standard_pipeline_matches_direct_ovs() {
        let program = sample();
        let direct = ovs::substitute(&program);
        let prepared = PassPipeline::standard().run(&program);
        assert_eq!(prepared.program.constraints(), direct.program.constraints());
        for v in program.vars() {
            assert_eq!(prepared.mapping.rep_of(v), direct.rep_of(v));
        }
        assert_eq!(prepared.vars_merged(), direct.stats.vars_merged);
    }

    #[test]
    fn full_pipeline_attaches_hcd_metadata() {
        // Figure 3's example grows a (a, b) pair offline.
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        let c = pb.var("c");
        let d = pb.var("d");
        pb.addr_of(a, c);
        pb.copy(d, c);
        pb.load(b, a);
        pb.store(a, b);
        let program = pb.finish();
        let prepared = PassPipeline::full().run(&program);
        let hcd = prepared.hcd.as_ref().expect("hcd metadata attached");
        // OVS may have renamed; the pair table speaks about the reduced
        // program, which kept a and b intact here (both indirect).
        assert_eq!(hcd.num_pairs(), 1);
        assert_eq!(prepared.summaries.len(), 3);
        assert_eq!(prepared.summaries[2].pass, "hcd");
        assert_eq!(
            prepared.summaries[2].constraints_before,
            prepared.summaries[2].constraints_after
        );
    }

    #[test]
    fn parse_specs() {
        assert!(PassPipeline::parse("").unwrap().is_empty());
        assert!(PassPipeline::parse("none").unwrap().is_empty());
        assert_eq!(
            PassPipeline::parse("normalize,ovs,hcd").unwrap().names(),
            vec!["normalize", "ovs", "hcd"]
        );
        assert_eq!(
            PassPipeline::parse(" ovs , hcd ").unwrap().names(),
            vec!["ovs", "hcd"]
        );
        assert!(PassPipeline::parse("hvn").is_err());
        assert!(PassPipeline::parse("ovs,,hcd").is_err());
        // hcd must be last: a rewriting pass after it goes stale.
        let err = PassPipeline::parse("hcd,ovs").unwrap_err();
        assert!(err.to_string().contains("hcd must be last"));
        // A second hcd after hcd is pointless but sound (no rewrite).
        assert!(PassPipeline::parse("hcd,hcd").is_ok());
    }

    #[test]
    #[should_panic(expected = "order hcd last")]
    fn run_rejects_rewrites_after_hcd() {
        let program = sample();
        PassPipeline::empty()
            .push(HcdPass)
            .push(OvsPass)
            .run(&program);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let program = sample();
        let prepared = PassPipeline::empty().run(&program);
        assert_eq!(prepared.program, program);
        assert!(prepared.mapping.is_identity());
        assert!(prepared.summaries.is_empty());
        assert_eq!(prepared.constraints_before(), prepared.constraints_after());
        assert_eq!(prepared.reduction_percent(), 0.0);
    }

    #[test]
    fn resolve_speaks_original_names() {
        let program = sample();
        let prepared = PassPipeline::standard().run(&program);
        for name in ["p", "x", "a", "b"] {
            let v = program.var_by_name(name).unwrap();
            assert_eq!(
                prepared.mapping.resolve(&program, name),
                Some(prepared.mapping.rep_of(v))
            );
        }
        assert_eq!(prepared.mapping.resolve(&program, "nope"), None);
    }

    #[test]
    fn try_run_reports_ordering_violations_as_errors() {
        use ant_common::AntErrorKind;
        let program = sample();
        let err = PassPipeline::empty()
            .push(HcdPass)
            .push(OvsPass)
            .try_run(&program)
            .unwrap_err();
        assert_eq!(err.kind(), AntErrorKind::Pipeline);
        assert!(err.to_string().contains("order hcd last"));
        let ok = PassPipeline::full().try_run(&program).unwrap();
        assert!(ok.hcd.is_some());
    }

    #[test]
    fn pass_errors_convert_to_ant_error() {
        use ant_common::AntErrorKind;
        let e: ant_common::AntError = PassPipeline::parse("hvn").unwrap_err().into();
        assert_eq!(e.kind(), AntErrorKind::Pipeline);
        let e: ant_common::AntError = crate::parse_program("p = ").unwrap_err().into();
        assert_eq!(e.kind(), AntErrorKind::Parse);
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn delta_stable_classification() {
        assert!(PassPipeline::empty().delta_stable());
        assert!(PassPipeline::empty().push(NormalizePass).delta_stable());
        assert!(PassPipeline::parse("normalize,normalize")
            .unwrap()
            .delta_stable());
        assert!(!PassPipeline::standard().delta_stable());
        assert!(!PassPipeline::full().delta_stable());
        assert!(!PassPipeline::empty().push(HcdPass).delta_stable());
    }

    #[test]
    fn prepare_delta_matches_full_run() {
        // base ++ delta where the delta repeats a base constraint, carries
        // its own duplicate, a self-copy, and touches a fresh variable.
        let base_program = sample();
        let delta_addition = {
            let mut pb = ProgramBuilder::new();
            let p = pb.var("p");
            let x = pb.var("x");
            let z = pb.var("z"); // fresh in the union
            pb.addr_of(p, x); // duplicate of a base constraint
            pb.copy(z, p);
            pb.copy(z, p); // duplicate within the delta
            pb.copy(z, z); // self-copy
            pb.store(p, z);
            pb.finish()
        };
        let delta = base_program.delta_from(&delta_addition).unwrap();
        let union = base_program.append_delta(&delta);

        for pipeline in [
            PassPipeline::empty(),
            PassPipeline::empty().push(NormalizePass),
            PassPipeline::parse("normalize,normalize").unwrap(),
        ] {
            let base = pipeline.run(&base_program);
            let fast = pipeline
                .prepare_delta(&base_program, &base, &union)
                .expect("delta-stable lane applies");
            let full = pipeline.run(&union);
            assert_eq!(fast.program, full.program, "{:?}", pipeline.names());
            assert_eq!(fast.mapping, full.mapping);
            assert_eq!(fast.summaries.len(), full.summaries.len());
            for (a, b) in fast.summaries.iter().zip(&full.summaries) {
                assert_eq!(a.pass, b.pass);
                assert_eq!(a.constraints_before, b.constraints_before);
                assert_eq!(a.constraints_after, b.constraints_after);
                assert_eq!(a.vars_merged, b.vars_merged);
            }
            assert!(fast.hcd.is_none());
        }
    }

    #[test]
    fn prepare_delta_declines_non_delta_stable_pipelines() {
        let base_program = sample();
        let union = base_program.clone();
        let std_pipeline = PassPipeline::standard();
        let base = std_pipeline.run(&base_program);
        assert!(std_pipeline
            .prepare_delta(&base_program, &base, &union)
            .is_none());
        // Even a delta-stable pipeline declines a base prepared elsewhere
        // with renames attached.
        let norm = PassPipeline::empty().push(NormalizePass);
        assert!(norm.prepare_delta(&base_program, &base, &union).is_none());
    }

    #[test]
    fn pass_summary_events_are_emitted() {
        use ant_common::obs::Observer;

        #[derive(Default)]
        struct Collect(Vec<&'static str>);
        impl Observer for Collect {
            fn on_event(&mut self, event: &SolveEvent) {
                if let SolveEvent::PassSummary { pass, .. } = event {
                    self.0.push(pass);
                }
            }
        }
        let program = sample();
        let mut collect = Collect::default();
        {
            let mut obs = Obs::new(&mut collect, 0);
            PassPipeline::full().run_with_obs(&program, &mut obs);
        }
        assert_eq!(collect.0, vec!["normalize", "ovs", "hcd"]);
    }
}
