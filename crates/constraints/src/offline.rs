//! The offline constraint graph (Figure 3 of the paper).
//!
//! Built before solving, with one node per variable **plus one *ref* node
//! `*v` per dereferenced variable position**. Edges:
//!
//! * `a ⊇ b`  →  edge `b → a`
//! * `a ⊇ *b` →  edge `*b → a`
//! * `*a ⊇ b` →  edge `b → *a`
//!
//! Base constraints are ignored. Offset (indirect-call) constraints are
//! conservatively skipped: their dereference targets depend on arithmetic
//! over unknown points-to sets, so they cannot be named by a single ref
//! node; skipping them only means fewer cycles are predicted offline, never
//! wrong ones.

use crate::{ConstraintKind, Program};
use ant_common::VarId;

/// The offline constraint graph shared by HCD and OVS.
#[derive(Clone, Debug)]
pub struct OfflineGraph {
    num_vars: usize,
    /// Adjacency over `2 * num_vars` nodes: `v` for variables,
    /// `num_vars + v` for ref nodes `*v`.
    pub adj: Vec<Vec<u32>>,
}

impl OfflineGraph {
    /// Builds the offline graph for `program`.
    pub fn build(program: &Program) -> Self {
        let n = program.num_vars();
        let mut adj = vec![Vec::new(); 2 * n];
        for c in program.constraints() {
            if c.offset != 0 {
                continue;
            }
            match c.kind {
                ConstraintKind::AddrOf => {}
                ConstraintKind::Copy => {
                    // a ⊇ b: b → a
                    if c.lhs != c.rhs {
                        adj[c.rhs.index()].push(c.lhs.as_u32());
                    }
                }
                ConstraintKind::Load => {
                    // a ⊇ *b: *b → a
                    adj[n + c.rhs.index()].push(c.lhs.as_u32());
                }
                ConstraintKind::Store => {
                    // *a ⊇ b: b → *a
                    adj[c.rhs.index()].push((n + c.lhs.index()) as u32);
                }
            }
        }
        for succs in &mut adj {
            succs.sort_unstable();
            succs.dedup();
        }
        OfflineGraph { num_vars: n, adj }
    }

    /// Number of program variables (half the node count).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total node count (variables + ref nodes).
    pub fn num_nodes(&self) -> usize {
        2 * self.num_vars
    }

    /// Is `node` a ref node `*v`?
    pub fn is_ref(&self, node: u32) -> bool {
        (node as usize) >= self.num_vars
    }

    /// The variable underlying `node` (identity for plain nodes, `v` for a
    /// ref node `*v`).
    pub fn var_of(&self, node: u32) -> VarId {
        if self.is_ref(node) {
            VarId::new(node as usize - self.num_vars)
        } else {
            VarId::from_u32(node)
        }
    }

    /// The ref node `*v`.
    pub fn ref_node(&self, v: VarId) -> u32 {
        (self.num_vars + v.index()) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    /// Figure 3 of the paper: `a = &c; d = c; b = *a; *a = b`.
    fn figure3() -> (Program, [VarId; 4]) {
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        let c = pb.var("c");
        let d = pb.var("d");
        pb.addr_of(a, c);
        pb.copy(d, c);
        pb.load(b, a);
        pb.store(a, b);
        (pb.finish(), [a, b, c, d])
    }

    #[test]
    fn figure3_offline_edges() {
        let (p, [a, b, c, d]) = figure3();
        let g = OfflineGraph::build(&p);
        assert_eq!(g.num_nodes(), 8);
        let ra = g.ref_node(a);
        // d ⊇ c: c → d
        assert!(g.adj[c.index()].contains(&d.as_u32()));
        // b ⊇ *a: *a → b
        assert!(g.adj[ra as usize].contains(&b.as_u32()));
        // *a ⊇ b: b → *a
        assert!(g.adj[b.index()].contains(&ra));
        // AddrOf contributes nothing.
        assert!(g.adj[a.index()].is_empty());
    }

    #[test]
    fn ref_node_mapping() {
        let (p, [a, ..]) = figure3();
        let g = OfflineGraph::build(&p);
        let r = g.ref_node(a);
        assert!(g.is_ref(r));
        assert!(!g.is_ref(a.as_u32()));
        assert_eq!(g.var_of(r), a);
        assert_eq!(g.var_of(a.as_u32()), a);
    }

    #[test]
    fn offset_constraints_are_skipped() {
        let mut pb = ProgramBuilder::new();
        let f = pb.function("f", 3);
        let p = pb.var("p");
        let x = pb.var("x");
        pb.addr_of(p, f);
        pb.store_offset(p, x, 2);
        pb.load_offset(x, p, 1);
        let prog = pb.finish();
        let g = OfflineGraph::build(&prog);
        for succs in &g.adj {
            assert!(succs.is_empty(), "offset constraints must add no edges");
        }
    }

    #[test]
    fn self_copy_skipped_and_dedup() {
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        pb.copy(a, a);
        pb.copy(b, a);
        pb.copy(b, a);
        let g = OfflineGraph::build(&pb.finish());
        assert!(g.adj[a.index()] == vec![b.as_u32()]);
    }
}
