//! The textual constraint-file format.
//!
//! The paper keeps constraint generation (CIL) separate from the solvers and
//! exchanges constraint *files*; this module plays the same role. One
//! constraint per line:
//!
//! ```text
//! # comment
//! fun f 4            # declare a function block: f plus 3 offset slots
//! p = &x             # base
//! q = p              # simple
//! r = *q             # complex 1
//! *p = r             # complex 2
//! ret = *(fp + 1)    # complex 1 with offset (indirect-call return)
//! *(fp + 2) = arg    # complex 2 with offset (indirect-call argument)
//! ```

use crate::{Program, ProgramBuilder};
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseProgramError {
    line: usize,
    message: String,
}

impl ParseProgramError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseProgramError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseProgramError {}

impl From<ParseProgramError> for ant_common::AntError {
    fn from(e: ParseProgramError) -> Self {
        ant_common::AntError::parse(e.to_string()).with_source(e)
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '$' | '#' | '.' | ':'))
}

/// A dereference expression `*v`, `*(v + k)`, or a bare identifier.
fn parse_side(s: &str) -> Option<(&str, bool, u32)> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("*(") {
        let inner = rest.strip_suffix(')')?;
        let (name, off) = inner.split_once('+')?;
        let name = name.trim();
        let off: u32 = off.trim().parse().ok()?;
        is_ident(name).then_some((name, true, off))
    } else if let Some(rest) = s.strip_prefix('*') {
        let name = rest.trim();
        is_ident(name).then_some((name, true, 0))
    } else {
        is_ident(s).then_some((s, false, 0))
    }
}

/// Parses the text constraint format into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseProgramError`] on malformed lines, unknown directives, or
/// `fun` declarations that appear after the name was already used.
///
/// # Example
///
/// ```
/// use ant_constraints::parse_program;
///
/// let p = parse_program("p = &x\nq = p\nr = *q\n")?;
/// assert_eq!(p.num_vars(), 4);
/// assert_eq!(p.stats().total(), 3);
/// # Ok::<(), ant_constraints::ParseProgramError>(())
/// ```
pub fn parse_program(text: &str) -> Result<Program, ParseProgramError> {
    let mut b = ProgramBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.split_once('#') {
            // `#` begins a comment unless it is part of an identifier
            // (function slot names contain `#`), so only strip comments that
            // start a token.
            Some((before, _)) if before.is_empty() || before.ends_with(char::is_whitespace) => {
                before
            }
            _ => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("fun ") {
            let mut parts = rest.split_whitespace();
            let (name, slots) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(s), None) => (n, s),
                _ => {
                    return Err(ParseProgramError::new(
                        lineno,
                        "expected `fun <name> <slots>`",
                    ))
                }
            };
            let slots: u32 = slots
                .parse()
                .map_err(|_| ParseProgramError::new(lineno, "bad slot count"))?;
            if slots == 0 {
                return Err(ParseProgramError::new(lineno, "slot count must be >= 1"));
            }
            if !is_ident(name) {
                return Err(ParseProgramError::new(lineno, "bad function name"));
            }
            if b.has_var(name) {
                return Err(ParseProgramError::new(
                    lineno,
                    "function declared after its name was already used \
                     (declare `fun` lines before referencing the name)",
                ));
            }
            b.function(name, slots);
            continue;
        }
        let (lhs_text, rhs_text) = line
            .split_once('=')
            .ok_or_else(|| ParseProgramError::new(lineno, "expected `lhs = rhs`"))?;
        let (lname, lderef, loff) = parse_side(lhs_text)
            .ok_or_else(|| ParseProgramError::new(lineno, "bad left-hand side"))?;
        let rhs_text = rhs_text.trim();
        if let Some(addr) = rhs_text.strip_prefix('&') {
            let addr = addr.trim();
            if lderef || !is_ident(addr) {
                return Err(ParseProgramError::new(lineno, "bad address-of constraint"));
            }
            let lhs = b.var(lname);
            let rhs = b.var(addr);
            b.addr_of(lhs, rhs);
            continue;
        }
        let (rname, rderef, roff) = parse_side(rhs_text)
            .ok_or_else(|| ParseProgramError::new(lineno, "bad right-hand side"))?;
        let lhs = b.var(lname);
        let rhs = b.var(rname);
        match (lderef, rderef) {
            (false, false) => b.copy(lhs, rhs),
            (false, true) => b.load_offset(lhs, rhs, roff),
            (true, false) => b.store_offset(lhs, rhs, loff),
            (true, true) => {
                return Err(ParseProgramError::new(
                    lineno,
                    "at most one dereference per constraint (introduce a temporary)",
                ))
            }
        }
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintKind;

    #[test]
    fn parses_all_forms() {
        let p = parse_program(
            "# a comment\n\
             p = &x\n\
             q = p\n\
             r = *q\n\
             *p = r\n\
             s = *(q + 2)\n\
             *(p + 1) = s\n",
        )
        .unwrap();
        let ks: Vec<_> = p.constraints().iter().map(|c| (c.kind, c.offset)).collect();
        use ConstraintKind::*;
        assert_eq!(
            ks,
            vec![
                (AddrOf, 0),
                (Copy, 0),
                (Load, 0),
                (Store, 0),
                (Load, 2),
                (Store, 1)
            ]
        );
    }

    #[test]
    fn fun_declares_slots() {
        let p = parse_program("fun f 3\np = &f\nx = *(p + 2)\n").unwrap();
        let f = p.var_by_name("f").unwrap();
        assert_eq!(p.offset_limit(f), 3);
        assert_eq!(p.var_by_name("f#2"), Some(f.offset(2)));
    }

    #[test]
    fn roundtrips_through_text() {
        let src = "fun f 3\np = &x\nq = p\nr = *q\n*p = r\ns = *(p + 1)\n*(p + 2) = s\nh = &f\n";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&p1.to_text()).unwrap();
        assert_eq!(p1.stats(), p2.stats());
        assert_eq!(p1.num_vars(), p2.num_vars());
        // Same shapes constraint-by-constraint.
        assert_eq!(p1.constraints().len(), p2.constraints().len());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse_program("\n   \n# only a comment\na = b # trailing\n").unwrap();
        assert_eq!(p.stats().total(), 1);
    }

    #[test]
    fn rejects_double_deref() {
        let err = parse_program("*a = *b\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("one dereference"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("hello world\n").is_err());
        assert!(parse_program("a = &*b\n").is_err());
        assert!(parse_program("fun f\n").is_err());
        assert!(parse_program("fun f 0\n").is_err());
        assert!(parse_program("a = *(b - 1)\n").is_err());
    }

    #[test]
    fn rejects_function_declared_after_use() {
        // A typed error, not the builder's panic — this text reaches the
        // parser from untrusted session input (`serve` load/add).
        let err = parse_program("q = &p\nfun p 2\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("already used"), "{err}");
        assert!(parse_program("fun f 2\nfun f 2\n").is_err());
    }

    #[test]
    fn error_is_std_error() {
        let err = parse_program("???\n").unwrap_err();
        let _: &dyn std::error::Error = &err;
        assert!(err.to_string().starts_with("line 1"));
    }
}
