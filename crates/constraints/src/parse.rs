//! The textual constraint-file format.
//!
//! The paper keeps constraint generation (CIL) separate from the solvers and
//! exchanges constraint *files*; this module plays the same role. One
//! constraint per line:
//!
//! ```text
//! # comment
//! fun f 4            # declare a function block: f plus 3 offset slots
//! p = &x             # base
//! q = p              # simple
//! r = *q             # complex 1
//! *p = r             # complex 2
//! ret = *(fp + 1)    # complex 1 with offset (indirect-call return)
//! *(fp + 2) = arg    # complex 2 with offset (indirect-call argument)
//! ```

// Untrusted input enters the system here (`serve` load/add, CLI files):
// every failure must surface as a typed error, never a panic. The fuzz
// harness (`ant_bench::fuzz`) and the corpus under `testdata/fuzz/` exercise
// this; the lints keep the audit from regressing.
#![warn(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable
)]

use crate::{Program, ProgramBuilder};
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseProgramError {
    line: usize,
    column: usize,
    message: String,
}

impl ParseProgramError {
    fn at(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseProgramError {
            line,
            column,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based byte column of the offending token (1 when the whole line is
    /// at fault).
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, col {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl Error for ParseProgramError {}

impl From<ParseProgramError> for ant_common::AntError {
    fn from(e: ParseProgramError) -> Self {
        ant_common::AntError::parse(e.to_string()).with_source(e)
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '$' | '#' | '.' | ':'))
}

/// 1-based byte column of `sub` within `raw`, where `sub` is a slice carved
/// out of `raw`. Falls back to the first non-whitespace column when `sub` is
/// not inside `raw` (e.g. a transformed token).
fn col_of(raw: &str, sub: &str) -> usize {
    let raw_start = raw.as_ptr() as usize;
    let sub_start = sub.as_ptr() as usize;
    if sub_start >= raw_start && sub_start + sub.len() <= raw_start + raw.len() {
        sub_start - raw_start + 1
    } else {
        raw.len() - raw.trim_start().len() + 1
    }
}

/// A dereference expression `*v`, `*(v + k)`, or a bare identifier.
fn parse_side(s: &str) -> Option<(&str, bool, u32)> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("*(") {
        let inner = rest.strip_suffix(')')?;
        let (name, off) = inner.split_once('+')?;
        let name = name.trim();
        let off: u32 = off.trim().parse().ok()?;
        is_ident(name).then_some((name, true, off))
    } else if let Some(rest) = s.strip_prefix('*') {
        let name = rest.trim();
        is_ident(name).then_some((name, true, 0))
    } else {
        is_ident(s).then_some((s, false, 0))
    }
}

/// Parses the text constraint format into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseProgramError`] — with 1-based line and column context — on
/// malformed lines, unknown directives, `fun` declarations that appear after
/// the name (or any of its slot names) was already used, slot counts above
/// [`ProgramBuilder::MAX_FUN_SLOTS`], and load/store offsets that no `fun`
/// block anywhere in the file makes addressable.
///
/// # Example
///
/// ```
/// use ant_constraints::parse_program;
///
/// let p = parse_program("p = &x\nq = p\nr = *q\n")?;
/// assert_eq!(p.num_vars(), 4);
/// assert_eq!(p.stats().total(), 3);
/// # Ok::<(), ant_constraints::ParseProgramError>(())
/// ```
pub fn parse_program(text: &str) -> Result<Program, ParseProgramError> {
    let mut b = ProgramBuilder::new();
    // Offsets used by load/store constraints, validated after the whole file
    // is read: a `fun` block big enough to make an offset addressable may
    // legally appear on a later line.
    let mut max_slots: u32 = 1;
    let mut pending_offsets: Vec<(usize, usize, u32)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.split_once('#') {
            // `#` begins a comment unless it is part of an identifier
            // (function slot names contain `#`), so only strip comments that
            // start a token.
            Some((before, _)) if before.is_empty() || before.ends_with(char::is_whitespace) => {
                before
            }
            _ => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("fun ") {
            let mut parts = rest.split_whitespace();
            let (name, slots_text) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(s), None) => (n, s),
                _ => {
                    return Err(ParseProgramError::at(
                        lineno,
                        col_of(raw, line),
                        "expected `fun <name> <slots>`",
                    ))
                }
            };
            let slots: u32 = slots_text.parse().map_err(|_| {
                ParseProgramError::at(lineno, col_of(raw, slots_text), "bad slot count")
            })?;
            if !is_ident(name) {
                return Err(ParseProgramError::at(
                    lineno,
                    col_of(raw, name),
                    "bad function name",
                ));
            }
            b.try_function(name, slots)
                .map_err(|msg| ParseProgramError::at(lineno, col_of(raw, name), msg))?;
            max_slots = max_slots.max(slots);
            continue;
        }
        let (lhs_text, rhs_text) = line.split_once('=').ok_or_else(|| {
            ParseProgramError::at(lineno, col_of(raw, line), "expected `lhs = rhs`")
        })?;
        let (lname, lderef, loff) = parse_side(lhs_text).ok_or_else(|| {
            ParseProgramError::at(lineno, col_of(raw, lhs_text.trim()), "bad left-hand side")
        })?;
        let rhs_text = rhs_text.trim();
        if let Some(addr) = rhs_text.strip_prefix('&') {
            let addr = addr.trim();
            if lderef || !is_ident(addr) {
                return Err(ParseProgramError::at(
                    lineno,
                    col_of(raw, rhs_text),
                    "bad address-of constraint",
                ));
            }
            let lhs = b.var(lname);
            let rhs = b.var(addr);
            b.addr_of(lhs, rhs);
            continue;
        }
        let (rname, rderef, roff) = parse_side(rhs_text).ok_or_else(|| {
            ParseProgramError::at(lineno, col_of(raw, rhs_text), "bad right-hand side")
        })?;
        let lhs = b.var(lname);
        let rhs = b.var(rname);
        match (lderef, rderef) {
            (false, false) => b.copy(lhs, rhs),
            (false, true) => {
                if roff > 0 {
                    pending_offsets.push((lineno, col_of(raw, rhs_text), roff));
                }
                b.load_offset(lhs, rhs, roff);
            }
            (true, false) => {
                if loff > 0 {
                    pending_offsets.push((lineno, col_of(raw, lhs_text.trim()), loff));
                }
                b.store_offset(lhs, rhs, loff);
            }
            (true, true) => {
                return Err(ParseProgramError::at(
                    lineno,
                    col_of(raw, line),
                    "at most one dereference per constraint (introduce a temporary)",
                ))
            }
        }
    }
    if let Some(&(lineno, col, off)) = pending_offsets
        .iter()
        .find(|&&(_, _, off)| off >= max_slots)
    {
        return Err(ParseProgramError::at(
            lineno,
            col,
            format!(
                "offset {off} is not addressable: the largest `fun` block \
                 declares {max_slots} slot(s), so offsets must be < {max_slots}"
            ),
        ));
    }
    Ok(b.finish())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::ConstraintKind;

    #[test]
    fn parses_all_forms() {
        let p = parse_program(
            "# a comment\n\
             fun f 3\n\
             p = &x\n\
             q = p\n\
             r = *q\n\
             *p = r\n\
             s = *(q + 2)\n\
             *(p + 1) = s\n",
        )
        .unwrap();
        let ks: Vec<_> = p.constraints().iter().map(|c| (c.kind, c.offset)).collect();
        use ConstraintKind::*;
        assert_eq!(
            ks,
            vec![
                (AddrOf, 0),
                (Copy, 0),
                (Load, 0),
                (Store, 0),
                (Load, 2),
                (Store, 1)
            ]
        );
    }

    #[test]
    fn fun_declares_slots() {
        let p = parse_program("fun f 3\np = &f\nx = *(p + 2)\n").unwrap();
        let f = p.var_by_name("f").unwrap();
        assert_eq!(p.offset_limit(f), 3);
        assert_eq!(p.var_by_name("f#2"), Some(f.offset(2)));
    }

    #[test]
    fn roundtrips_through_text() {
        let src = "fun f 3\np = &x\nq = p\nr = *q\n*p = r\ns = *(p + 1)\n*(p + 2) = s\nh = &f\n";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&p1.to_text()).unwrap();
        assert_eq!(p1.stats(), p2.stats());
        assert_eq!(p1.num_vars(), p2.num_vars());
        // Same shapes constraint-by-constraint.
        assert_eq!(p1.constraints().len(), p2.constraints().len());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse_program("\n   \n# only a comment\na = b # trailing\n").unwrap();
        assert_eq!(p.stats().total(), 1);
    }

    #[test]
    fn rejects_double_deref() {
        let err = parse_program("*a = *b\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("one dereference"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("hello world\n").is_err());
        assert!(parse_program("a = &*b\n").is_err());
        assert!(parse_program("fun f\n").is_err());
        assert!(parse_program("fun f 0\n").is_err());
        assert!(parse_program("a = *(b - 1)\n").is_err());
    }

    #[test]
    fn rejects_function_declared_after_use() {
        // A typed error, not the builder's panic — this text reaches the
        // parser from untrusted session input (`serve` load/add).
        let err = parse_program("q = &p\nfun p 2\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("already used"), "{err}");
        assert!(parse_program("fun f 2\nfun f 2\n").is_err());
    }

    #[test]
    fn error_is_std_error() {
        let err = parse_program("???\n").unwrap_err();
        let _: &dyn std::error::Error = &err;
        assert!(err.to_string().starts_with("line 1"));
    }

    #[test]
    fn rejects_fun_after_slot_name_use() {
        // `a#1` interned first makes the block for `fun a 2` non-contiguous;
        // this used to trip a debug_assert (and silently corrupt the block
        // in release builds).
        let err = parse_program("a#1 = x\nfun a 2\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("already in use"), "{err}");
    }

    #[test]
    fn rejects_oversized_fun_block() {
        // Used to allocate half a billion slot names before failing.
        let err = parse_program("fun f 536870911\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("exceeds the maximum"), "{err}");
    }

    #[test]
    fn rejects_dangling_offsets() {
        // No `fun` block spans 10 slots, so offset 9 can never resolve; this
        // used to pass parse and trip Program::validate downstream.
        let err = parse_program("a = *(b + 9)\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("not addressable"), "{err}");
        let err = parse_program("fun f 4\n*(a + 7) = b\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("not addressable"), "{err}");
    }

    #[test]
    fn fun_after_offset_use_makes_it_addressable() {
        // The addressability check is deferred to end-of-file: a big-enough
        // `fun` on a later line legitimizes an earlier offset.
        let p = parse_program("a = *(b + 7)\nfun f 8\n").unwrap();
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn errors_carry_column_context() {
        let err = parse_program("a = *(b + 9)\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 5));
        let err = parse_program("  fun f 1x\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 9));
        assert!(err.to_string().contains("col 9"), "{err}");
    }
}
