//! The offline half of Hybrid Cycle Detection (§4.2, Figures 3–4).
//!
//! A near-linear static analysis run before the pointer analysis. It finds
//! SCCs of the [offline constraint graph](crate::offline::OfflineGraph)
//! with Tarjan's algorithm and splits them into:
//!
//! * SCCs of only non-ref nodes — genuine copy cycles, collapsible
//!   immediately ([`HcdOffline::static_unions`]);
//! * SCCs containing ref nodes — for each ref node `*a` that lies on a
//!   cycle whose *other* nodes are all non-ref, record the pair `(a, b)`
//!   where `b` is a non-ref node on that cycle
//!   ([`HcdOffline::pair_of`]). At solve time, whenever node `a` is popped,
//!   every `v ∈ pts(a)` is preemptively collapsed with `b` — cycle
//!   collapsing with **zero** graph traversal.
//!
//! The ref-free-cycle restriction is what makes the pair list *exact*
//! rather than speculative. A cycle `x → *a → y → ⋯ → x` with only
//! non-ref interior nodes instantiates online as `x → v → y → ⋯ → x` for
//! every `v ∈ pts(a)` — the copy segment `y → ⋯ → x` exists from the
//! start, so `v` really does join a cycle with `b` and the preemptive
//! collapse preserves the solution bit for bit. A cycle that passes
//! through a *second* ref node `*c` only materializes when `pts(c)` turns
//! out non-empty; pairing on it merges variables that may never share a
//! cycle, which *grows* points-to sets. (Found by the differential fuzz
//! harness — `testdata/fuzz/diff-mismatch-*.consts` pin the reproducers;
//! DESIGN.md §15.) Such conditional cycles are left to the online
//! detectors (LCD), which only ever collapse cycles that actually exist.
//!
//! Copy-only sub-cycles *among* the non-ref members of a mixed SCC are
//! still genuine copy cycles no matter what any points-to set ends up
//! being, so they are collapsed statically like pure copy SCCs.

use crate::offline::OfflineGraph;
use crate::scc::tarjan_scc;
use crate::Program;
use ant_common::obs::{Obs, Phase, PhaseTimer};
use ant_common::VarId;
use std::time::{Duration, Instant};

/// Result of the HCD offline analysis.
#[derive(Clone, Debug)]
pub struct HcdOffline {
    /// `pair[a] = Some(b)` encodes the tuple `(a, b)` of Figure 5's list
    /// `L`: `pts(a)` belongs in a cycle with `b`.
    pair: Vec<Option<VarId>>,
    /// Copy cycles already present offline; each `(x, rep)` may be unioned
    /// before solving starts.
    pub static_unions: Vec<(VarId, VarId)>,
    /// Wall-clock time of the offline analysis (the "HCD-Offline" row of
    /// Table 3).
    pub elapsed: Duration,
    /// Number of non-trivial SCCs containing at least one ref node.
    pub ref_sccs: usize,
}

impl HcdOffline {
    /// Runs the offline analysis on `program`.
    pub fn analyze(program: &Program) -> Self {
        Self::analyze_with_obs(program, &mut Obs::none())
    }

    /// [`analyze`](Self::analyze) with telemetry: the Tarjan SCC pass is
    /// wrapped in a [`Phase::OfflineScc`] span. Callers typically nest this
    /// inside their own [`Phase::OfflineHcd`] span.
    pub fn analyze_with_obs(program: &Program, obs: &mut Obs<'_>) -> Self {
        let start = Instant::now();
        let g = OfflineGraph::build(program);
        let mut timer = PhaseTimer::new();
        timer.start(Phase::OfflineScc, obs);
        let scc = tarjan_scc(&g.adj);
        timer.stop(obs);
        let mut pair = vec![None; program.num_vars()];
        let mut static_unions = Vec::new();
        let mut ref_sccs = 0;

        let members = scc.members();
        // Stamp arrays shared across components (no per-SCC allocation).
        let mut in_comp = vec![0u32; g.adj.len()];
        let mut visited = vec![0u32; g.adj.len()];
        let mut epoch = 0u32;
        let mut dfs_epoch = 0u32;
        for comp in &members {
            if comp.len() <= 1 {
                continue;
            }
            let has_ref = comp.iter().any(|&n| g.is_ref(n));
            if !has_ref {
                // A pure copy cycle: collapsible before solving starts.
                let rep = VarId::from_u32(comp[0]);
                for &n in &comp[1..] {
                    static_unions.push((VarId::from_u32(n), rep));
                }
                continue;
            }
            ref_sccs += 1;
            epoch += 1;
            for &n in comp {
                in_comp[n as usize] = epoch;
            }
            // Copy-only sub-cycles among the non-ref members are real
            // cycles regardless of any points-to set: collapse them
            // statically, exactly like a pure copy SCC.
            let nonref: Vec<u32> = comp.iter().copied().filter(|&n| !g.is_ref(n)).collect();
            debug_assert!(
                !nonref.is_empty(),
                // There are no *p ⊇ *q constraints, so every edge touches a
                // non-ref node and no SCC is made of ref nodes alone.
                "non-trivial SCC of only ref nodes is impossible"
            );
            let local: ant_common::fx::FxHashMap<u32, usize> =
                nonref.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            let sub_adj: Vec<Vec<u32>> = nonref
                .iter()
                .map(|&u| {
                    g.adj[u as usize]
                        .iter()
                        .filter_map(|v| local.get(v).map(|&i| i as u32))
                        .collect()
                })
                .collect();
            let sub = tarjan_scc(&sub_adj);
            for sub_comp in &sub.members() {
                if sub_comp.len() > 1 {
                    let rep = VarId::from_u32(nonref[sub_comp[0] as usize]);
                    for &i in &sub_comp[1..] {
                        static_unions.push((VarId::from_u32(nonref[i as usize]), rep));
                    }
                }
            }
            // A ref node earns a pair only when it sits on a ref-free
            // cycle: walk forward from its successors through non-ref
            // members; an edge back into the ref node closes such a cycle
            // and its source is the online-collapse partner.
            for &r in comp.iter().filter(|&&n| g.is_ref(n)) {
                dfs_epoch += 1;
                let mut stack: Vec<u32> = g.adj[r as usize]
                    .iter()
                    .copied()
                    .filter(|&s| in_comp[s as usize] == epoch && !g.is_ref(s))
                    .collect();
                for &s in &stack {
                    visited[s as usize] = dfs_epoch;
                }
                while let Some(u) = stack.pop() {
                    if g.adj[u as usize].binary_search(&r).is_ok() {
                        pair[g.var_of(r).index()] = Some(VarId::from_u32(u));
                        break;
                    }
                    for &v in &g.adj[u as usize] {
                        if in_comp[v as usize] == epoch
                            && !g.is_ref(v)
                            && visited[v as usize] != dfs_epoch
                        {
                            visited[v as usize] = dfs_epoch;
                            stack.push(v);
                        }
                    }
                }
            }
        }
        HcdOffline {
            pair,
            static_unions,
            elapsed: start.elapsed(),
            ref_sccs,
        }
    }

    /// The online-collapse partner of `a`, if the offline analysis placed
    /// `*a` in a cycle with a non-ref node.
    pub fn pair_of(&self, a: VarId) -> Option<VarId> {
        self.pair[a.index()]
    }

    /// Number of `(a, b)` tuples in the list `L`.
    pub fn num_pairs(&self) -> usize {
        self.pair.iter().flatten().count()
    }

    /// Iterates over all `(a, b)` tuples.
    pub fn pairs(&self) -> impl Iterator<Item = (VarId, VarId)> + '_ {
        self.pair
            .iter()
            .enumerate()
            .filter_map(|(a, b)| b.map(|b| (VarId::new(a), b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    /// The paper's running example (Figures 3–4): `a = &c; d = c; b = *a;
    /// *a = b`. Offline, `*a` and `b` form an SCC, so `L = {(a, b)}`.
    #[test]
    fn figure3_produces_pair_a_b() {
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        let c = pb.var("c");
        let d = pb.var("d");
        pb.addr_of(a, c);
        pb.copy(d, c);
        pb.load(b, a);
        pb.store(a, b);
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.pair_of(a), Some(b));
        assert_eq!(hcd.pair_of(b), None);
        assert_eq!(hcd.pair_of(c), None);
        assert_eq!(hcd.pair_of(d), None);
        assert_eq!(hcd.num_pairs(), 1);
        assert_eq!(hcd.ref_sccs, 1);
        assert!(hcd.static_unions.is_empty());
        assert_eq!(hcd.pairs().collect::<Vec<_>>(), vec![(a, b)]);
    }

    #[test]
    fn pure_copy_cycle_is_statically_unioned() {
        let mut pb = ProgramBuilder::new();
        let x = pb.var("x");
        let y = pb.var("y");
        let z = pb.var("z");
        pb.copy(x, y);
        pb.copy(y, z);
        pb.copy(z, x);
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.num_pairs(), 0);
        assert_eq!(hcd.static_unions.len(), 2);
        // All unions share one representative.
        let rep = hcd.static_unions[0].1;
        assert!(hcd.static_unions.iter().all(|&(_, r)| r == rep));
    }

    #[test]
    fn double_ref_cycle_earns_no_pairs() {
        // b → *c → x → *a → b : refs {*a,*c} and non-refs {b,x} in one SCC,
        // but every cycle through either ref node crosses the *other* ref
        // node too. The cycle only materializes online if both pts(a) and
        // pts(c) are non-empty, so pairing on it would merge variables
        // that may never share a cycle.
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        let c = pb.var("c");
        let x = pb.var("x");
        pb.store(c, b); // *c ⊇ b : b → *c
        pb.load(x, c); // x ⊇ *c : *c → x
        pb.store(a, x); // *a ⊇ x : x → *a
        pb.load(b, a); // b ⊇ *a : *a → b
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.num_pairs(), 0);
        assert_eq!(hcd.ref_sccs, 1);
        // b and x must NOT be statically collapsed either: there is no
        // copy path between them.
        assert!(hcd.static_unions.is_empty());
    }

    /// Minimized from the differential fuzz harness
    /// (`testdata/fuzz/diff-mismatch-9ccec217.consts`): the SCC
    /// `{v1, *v6, v4, *v2}` holds two ref nodes. Every cycle through
    /// `*v6` crosses `*v2`, whose points-to set stays empty, so
    /// `pts(v6) = {v1}` never joins a cycle with `v4` — yet the old
    /// analysis paired *both* refs with one shared representative, and
    /// when that representative was `v4` the preemptive merge of `v1`
    /// into it grew four points-to sets. `*v2` keeps its pair: it sits on
    /// the genuine ref-free cycle `*v2 → v1 → v4 → *v2` (exact, and
    /// dormant while `pts(v2)` is empty).
    #[test]
    fn conditional_cycle_through_empty_ref_is_not_paired() {
        let mut pb = ProgramBuilder::new();
        let v5 = pb.var("v5");
        let v4 = pb.var("v4");
        let v1 = pb.var("v1");
        let v2 = pb.var("v2");
        let v6 = pb.var("v6");
        pb.load(v5, v4); // v5 ⊇ *v4
        pb.load(v1, v2); // v1 ⊇ *v2
        pb.addr_of(v4, v2);
        pb.store(v6, v1); // *v6 ⊇ v1
        pb.copy(v4, v1);
        pb.store(v2, v4); // *v2 ⊇ v4
        pb.load(v4, v6); // v4 ⊇ *v6
        pb.addr_of(v1, v1);
        pb.copy(v6, v5);
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.pair_of(v6), None);
        let partner = hcd.pair_of(v2).expect("*v2 is on a ref-free cycle");
        assert!(partner == v1 || partner == v4);
        assert_eq!(hcd.num_pairs(), 1);
        assert!(hcd.static_unions.is_empty());
        assert_eq!(hcd.ref_sccs, 1);
    }

    #[test]
    fn ref_free_cycle_inside_mixed_scc_still_pairs() {
        // *a sits on the ref-free cycle x → *a → y → x, and the SCC also
        // drags in a second conditional ref *c (y → *c → x). The exact
        // analysis keeps the (a, partner) pair, skips (c, _), and
        // statically collapses nothing (x ↔ y only connect through refs).
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let c = pb.var("c");
        let x = pb.var("x");
        let y = pb.var("y");
        pb.store(a, x); // x → *a
        pb.load(y, a); // *a → y
        pb.copy(x, y); // y → x : closes the ref-free cycle through *a
        pb.store(c, y); // y → *c
        pb.load(x, c); // *c → x : conditional second path
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.pair_of(c), None);
        let partner = hcd.pair_of(a).expect("*a lies on a ref-free cycle");
        assert!(partner == x || partner == y);
        assert_eq!(hcd.num_pairs(), 1);
    }

    #[test]
    fn copy_subcycle_inside_mixed_scc_is_statically_unioned() {
        // x ↔ y is a pure copy cycle; the store/load through *a pull the
        // pair into one big SCC with a ref node. The copy cycle is real
        // no matter what pts(a) is, so it still collapses statically.
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let x = pb.var("x");
        let y = pb.var("y");
        pb.copy(x, y);
        pb.copy(y, x);
        pb.store(a, x); // x → *a
        pb.load(y, a); // *a → y
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.static_unions.len(), 1);
        let (from, to) = hcd.static_unions[0];
        assert!((from == x && to == y) || (from == y && to == x));
        // *a also sits on the ref-free cycle x → *a → y → x.
        assert!(hcd.pair_of(a).is_some());
    }

    #[test]
    fn no_cycles_no_output() {
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        pb.copy(a, b);
        pb.load(b, a);
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.num_pairs(), 0);
        assert!(hcd.static_unions.is_empty());
        assert_eq!(hcd.ref_sccs, 0);
    }
}
