//! The offline half of Hybrid Cycle Detection (§4.2, Figures 3–4).
//!
//! A linear-time static analysis run before the pointer analysis. It finds
//! SCCs of the [offline constraint graph](crate::offline::OfflineGraph)
//! with Tarjan's algorithm and splits them into:
//!
//! * SCCs of only non-ref nodes — genuine copy cycles, collapsible
//!   immediately ([`HcdOffline::static_unions`]);
//! * SCCs containing ref nodes — for each ref node `*a` in such an SCC,
//!   record the pair `(a, b)` where `b` is a non-ref member
//!   ([`HcdOffline::pair_of`]). At solve time, whenever node `a` is popped,
//!   every `v ∈ pts(a)` is preemptively collapsed with `b` — cycle
//!   collapsing with **zero** graph traversal.

use crate::offline::OfflineGraph;
use crate::scc::tarjan_scc;
use crate::Program;
use ant_common::obs::{Obs, Phase, PhaseTimer};
use ant_common::VarId;
use std::time::{Duration, Instant};

/// Result of the HCD offline analysis.
#[derive(Clone, Debug)]
pub struct HcdOffline {
    /// `pair[a] = Some(b)` encodes the tuple `(a, b)` of Figure 5's list
    /// `L`: `pts(a)` belongs in a cycle with `b`.
    pair: Vec<Option<VarId>>,
    /// Copy cycles already present offline; each `(x, rep)` may be unioned
    /// before solving starts.
    pub static_unions: Vec<(VarId, VarId)>,
    /// Wall-clock time of the offline analysis (the "HCD-Offline" row of
    /// Table 3).
    pub elapsed: Duration,
    /// Number of non-trivial SCCs containing at least one ref node.
    pub ref_sccs: usize,
}

impl HcdOffline {
    /// Runs the offline analysis on `program`.
    pub fn analyze(program: &Program) -> Self {
        Self::analyze_with_obs(program, &mut Obs::none())
    }

    /// [`analyze`](Self::analyze) with telemetry: the Tarjan SCC pass is
    /// wrapped in a [`Phase::OfflineScc`] span. Callers typically nest this
    /// inside their own [`Phase::OfflineHcd`] span.
    pub fn analyze_with_obs(program: &Program, obs: &mut Obs<'_>) -> Self {
        let start = Instant::now();
        let g = OfflineGraph::build(program);
        let mut timer = PhaseTimer::new();
        timer.start(Phase::OfflineScc, obs);
        let scc = tarjan_scc(&g.adj);
        timer.stop(obs);
        let mut pair = vec![None; program.num_vars()];
        let mut static_unions = Vec::new();
        let mut ref_sccs = 0;

        let members = scc.members();
        for comp in &members {
            if comp.len() <= 1 {
                continue;
            }
            let rep = comp.iter().copied().find(|&n| !g.is_ref(n));
            let rep = match rep {
                Some(r) => VarId::from_u32(r),
                // The paper: "no ref node can have a reflexive edge and any
                // non-trivial SCC containing a ref node must also contain a
                // non-ref node" — there are no *p ⊇ *q constraints, so every
                // edge touches a non-ref node.
                None => unreachable!("non-trivial SCC of only ref nodes is impossible"),
            };
            let has_ref = comp.iter().any(|&n| g.is_ref(n));
            if has_ref {
                ref_sccs += 1;
            }
            for &n in comp {
                if g.is_ref(n) {
                    pair[g.var_of(n).index()] = Some(rep);
                } else if n != rep.as_u32() {
                    // Non-ref members of *any* non-trivial SCC are linked by
                    // genuine copy paths... only when the path avoids ref
                    // nodes. Only collapse components made purely of
                    // non-ref nodes; mixed components defer to the online
                    // pairs.
                    if !has_ref {
                        static_unions.push((VarId::from_u32(n), rep));
                    }
                }
            }
        }
        HcdOffline {
            pair,
            static_unions,
            elapsed: start.elapsed(),
            ref_sccs,
        }
    }

    /// The online-collapse partner of `a`, if the offline analysis placed
    /// `*a` in a cycle with a non-ref node.
    pub fn pair_of(&self, a: VarId) -> Option<VarId> {
        self.pair[a.index()]
    }

    /// Number of `(a, b)` tuples in the list `L`.
    pub fn num_pairs(&self) -> usize {
        self.pair.iter().flatten().count()
    }

    /// Iterates over all `(a, b)` tuples.
    pub fn pairs(&self) -> impl Iterator<Item = (VarId, VarId)> + '_ {
        self.pair
            .iter()
            .enumerate()
            .filter_map(|(a, b)| b.map(|b| (VarId::new(a), b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    /// The paper's running example (Figures 3–4): `a = &c; d = c; b = *a;
    /// *a = b`. Offline, `*a` and `b` form an SCC, so `L = {(a, b)}`.
    #[test]
    fn figure3_produces_pair_a_b() {
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        let c = pb.var("c");
        let d = pb.var("d");
        pb.addr_of(a, c);
        pb.copy(d, c);
        pb.load(b, a);
        pb.store(a, b);
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.pair_of(a), Some(b));
        assert_eq!(hcd.pair_of(b), None);
        assert_eq!(hcd.pair_of(c), None);
        assert_eq!(hcd.pair_of(d), None);
        assert_eq!(hcd.num_pairs(), 1);
        assert_eq!(hcd.ref_sccs, 1);
        assert!(hcd.static_unions.is_empty());
        assert_eq!(hcd.pairs().collect::<Vec<_>>(), vec![(a, b)]);
    }

    #[test]
    fn pure_copy_cycle_is_statically_unioned() {
        let mut pb = ProgramBuilder::new();
        let x = pb.var("x");
        let y = pb.var("y");
        let z = pb.var("z");
        pb.copy(x, y);
        pb.copy(y, z);
        pb.copy(z, x);
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.num_pairs(), 0);
        assert_eq!(hcd.static_unions.len(), 2);
        // All unions share one representative.
        let rep = hcd.static_unions[0].1;
        assert!(hcd.static_unions.iter().all(|&(_, r)| r == rep));
    }

    #[test]
    fn mixed_scc_defers_nonref_members_to_online_pairs() {
        // b → *c → x → *a → b : refs {*a,*c} and non-refs {b,x} in one SCC.
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        let c = pb.var("c");
        let x = pb.var("x");
        pb.store(c, b); // *c ⊇ b : b → *c
        pb.load(x, c); // x ⊇ *c : *c → x
        pb.store(a, x); // *a ⊇ x : x → *a
        pb.load(b, a); // b ⊇ *a : *a → b
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.num_pairs(), 2);
        let pa = hcd.pair_of(a).unwrap();
        let pc = hcd.pair_of(c).unwrap();
        assert_eq!(pa, pc);
        assert!(pa == b || pa == x);
        // b and x must NOT be statically collapsed: the cycle between them
        // only materializes if the ref nodes' points-to sets are non-empty.
        assert!(hcd.static_unions.is_empty());
    }

    #[test]
    fn no_cycles_no_output() {
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        pb.copy(a, b);
        pb.load(b, a);
        let hcd = HcdOffline::analyze(&pb.finish());
        assert_eq!(hcd.num_pairs(), 0);
        assert!(hcd.static_unions.is_empty());
        assert_eq!(hcd.ref_sccs, 0);
    }
}
