//! Inclusion-constraint IR and offline analyses.
//!
//! Inclusion-based (Andersen-style) pointer analysis is a set-constraint
//! problem. A linear pass through the program generates three kinds of
//! constraints (Table 1 of the paper):
//!
//! | program code | constraint   | meaning                                |
//! |--------------|--------------|----------------------------------------|
//! | `a = &b`     | `a ⊇ {b}`    | `loc(b) ∈ pts(a)`                      |
//! | `a = b`      | `a ⊇ b`      | `pts(a) ⊇ pts(b)`                      |
//! | `a = *b`     | `a ⊇ *b`     | `∀v ∈ pts(b): pts(a) ⊇ pts(v)`         |
//! | `*a = b`     | `*a ⊇ b`     | `∀v ∈ pts(a): pts(v) ⊇ pts(b)`         |
//!
//! This crate defines that IR ([`Constraint`], [`Program`],
//! [`ProgramBuilder`]), a human-readable text format ([`parse_program`]),
//! and the two *offline* (pre-solve) analyses the paper relies on:
//!
//! * [`ovs`] — a variant of Rountev & Chandra's Offline Variable
//!   Substitution, which the paper uses to shrink the constraint files by
//!   60–77% before solving (§5.1);
//! * [`hcd`] — the offline half of Hybrid Cycle Detection (§4.2): SCCs of
//!   the offline constraint graph yield `(a, b)` pairs telling the online
//!   solver that everything in `pts(a)` can be preemptively collapsed with
//!   `b`.
//!
//! The [`pipeline`] module composes these (plus a normalize/dedup pass)
//! into an ordered [`pipeline::PassPipeline`] accumulating one
//! [`pipeline::SolutionMapping`], so a solution of the preprocessed program
//! expands back to the original variables in a single step.
//!
//! Indirect function calls follow Pearce et al.: the parameters of a
//! function variable `f` are numbered contiguously after `f`, and call
//! constraints carry an offset `k` resolved as `t + k` for each
//! call-target `t ∈ pts(f)` (see [`Constraint::offset`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hcd;
mod ir;
pub mod offline;
pub mod ovs;
mod parse;
pub mod pipeline;
pub mod scc;

pub use ir::{Constraint, ConstraintKind, ConstraintStats, Program, ProgramBuilder, ProgramDelta};
pub use parse::{parse_program, ParseProgramError};
