//! Iterative Tarjan strongly-connected components.
//!
//! Used by the offline analyses (HCD, OVS). The online solvers use
//! Nuutila's variant specialized to the mutable constraint graph; this one
//! works on a plain immutable adjacency list.

/// Result of a strongly-connected-component decomposition.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// Component id per node. For every edge `u → v` crossing components,
    /// `comp[v] < comp[u]`: iterating component ids in *increasing* order
    /// visits successors before predecessors; decreasing order is a
    /// topological order of the condensation.
    pub comp: Vec<u32>,
    /// Number of components.
    pub num_comps: usize,
}

impl SccResult {
    /// Groups node ids by component: `members()[c]` lists the nodes of
    /// component `c`.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_comps];
        for (n, &c) in self.comp.iter().enumerate() {
            out[c as usize].push(n as u32);
        }
        out
    }
}

const UNVISITED: u32 = u32::MAX;

/// Computes strongly connected components of the graph given as adjacency
/// lists, using an iterative Tarjan (linear time, no recursion so arbitrary
/// graph depth is fine).
pub fn tarjan_scc(adj: &[Vec<u32>]) -> SccResult {
    let n = adj.len();
    let mut index = vec![UNVISITED; n]; // discovery index
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new(); // Tarjan's component stack
    let mut next_index = 0u32;
    let mut num_comps = 0u32;
    // Explicit DFS: (node, next child position).
    let mut dfs: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        dfs.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if let Some(&w) = adj[v as usize].get(*ci) {
                *ci += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    dfs.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of a component: pop it.
                    loop {
                        let w = stack.pop().expect("component stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = num_comps;
                        if w == v {
                            break;
                        }
                    }
                    num_comps += 1;
                }
            }
        }
    }
    SccResult {
        comp,
        num_comps: num_comps as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(edges: &[(u32, u32)], n: usize) -> Vec<Vec<u32>> {
        let mut a = vec![Vec::new(); n];
        for &(u, v) in edges {
            a[u as usize].push(v);
        }
        a
    }

    #[test]
    fn empty_graph() {
        let r = tarjan_scc(&[]);
        assert_eq!(r.num_comps, 0);
        assert!(r.members().is_empty());
    }

    #[test]
    fn singletons_without_edges() {
        let r = tarjan_scc(&adj(&[], 3));
        assert_eq!(r.num_comps, 3);
        for m in r.members() {
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn simple_cycle() {
        let r = tarjan_scc(&adj(&[(0, 1), (1, 2), (2, 0)], 3));
        assert_eq!(r.num_comps, 1);
        assert_eq!(r.members()[0], vec![0, 1, 2]);
    }

    #[test]
    fn self_loop_is_a_singleton_component() {
        let r = tarjan_scc(&adj(&[(0, 0)], 1));
        assert_eq!(r.num_comps, 1);
    }

    #[test]
    fn chain_is_reverse_topological() {
        // 0 → 1 → 2: component ids must satisfy comp[succ] < comp[pred].
        let r = tarjan_scc(&adj(&[(0, 1), (1, 2)], 3));
        assert_eq!(r.num_comps, 3);
        assert!(r.comp[1] < r.comp[0]);
        assert!(r.comp[2] < r.comp[1]);
    }

    #[test]
    fn two_cycles_linked() {
        // {0,1} → {2,3}, plus an isolated 4.
        let r = tarjan_scc(&adj(&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)], 5));
        assert_eq!(r.num_comps, 3);
        assert_eq!(r.comp[0], r.comp[1]);
        assert_eq!(r.comp[2], r.comp[3]);
        assert_ne!(r.comp[0], r.comp[2]);
        assert!(r.comp[2] < r.comp[0], "successor component has smaller id");
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let n = 200_000;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let r = tarjan_scc(&adj(&edges, n as usize));
        assert_eq!(r.num_comps, n as usize);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index pairs are the point here
    fn dense_random_graph_partitions_correctly() {
        // Deterministic pseudo-random graph; verify the component relation
        // is an equivalence consistent with mutual reachability on a small
        // instance by brute force.
        let n = 40usize;
        let mut x = 7u64;
        let mut edges = Vec::new();
        for _ in 0..90 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((x >> 20) % n as u64) as u32;
            let v = ((x >> 40) % n as u64) as u32;
            edges.push((u, v));
        }
        let a = adj(&edges, n);
        let r = tarjan_scc(&a);
        // Brute-force reachability (by paths of length >= 1).
        let mut reach = vec![vec![false; n]; n];
        for s in 0..n {
            let mut expanded = vec![false; n];
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                if expanded[u] {
                    continue;
                }
                expanded[u] = true;
                for &v in &a[u] {
                    reach[s][v as usize] = true;
                    stack.push(v as usize);
                }
            }
        }
        for u in 0..n {
            for v in 0..n {
                let same = u == v || (reach[u][v] && reach[v][u]);
                assert_eq!(r.comp[u] == r.comp[v], same, "nodes {u},{v}");
            }
        }
    }
}
