//! Offline Variable Substitution (Rountev & Chandra), the constraint
//! pre-processing the paper applies before every solver run.
//!
//! §5.1: "We pre-process the resulting constraint files using a variant of
//! Offline Variable Substitution, which reduces the number of constraints
//! by 60–77%."
//!
//! The variant implemented here is hash-based value numbering of *pointer
//! equivalence* labels, run on the copy subgraph:
//!
//! 1. Classify variables as **indirect** when their points-to set can be
//!    modified by something other than static copy edges — address-of
//!    targets, load left-hand sides, offset slots of address-taken function
//!    blocks — and as **direct** otherwise.
//! 2. Condense copy-edge SCCs (Tarjan).
//! 3. In topological order, label each component: indirect components get a
//!    fresh label; direct components get the label determined by the *set*
//!    of predecessor labels (same set ⟹ same points-to set at fixpoint;
//!    the empty set gets the distinguished label 0 = "always empty").
//! 4. Merge every direct variable into the canonical variable of its label
//!    and rewrite the constraints, dropping no-ops (self-copies,
//!    constraints reading a provably-empty pointer) and duplicates.
//!
//! The rewritten program has the same variable space — locations are never
//! renamed — so a solution of the reduced program extends to the original
//! via [`OvsResult::rep_of`]: `pts(v) = pts(rep_of(v))`.

use crate::scc::tarjan_scc;
use crate::{Constraint, ConstraintKind, Program};
use ant_common::fx::{FxHashMap, FxHashSet};
use ant_common::obs::{Obs, Phase, PhaseTimer};
use ant_common::VarId;
use std::time::{Duration, Instant};

/// Statistics from one substitution run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OvsStats {
    /// Constraints before reduction.
    pub constraints_before: usize,
    /// Constraints after reduction.
    pub constraints_after: usize,
    /// Variables merged into a representative other than themselves.
    pub vars_merged: usize,
    /// Distinct pointer-equivalence labels assigned (excluding label 0).
    pub labels: usize,
}

impl OvsStats {
    /// Fraction of constraints eliminated, in percent.
    pub fn reduction_percent(&self) -> f64 {
        if self.constraints_before == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.constraints_after as f64 / self.constraints_before as f64)
        }
    }
}

/// Result of [`substitute`].
#[derive(Clone, Debug)]
pub struct OvsResult {
    /// The reduced program (same variable space, fewer constraints).
    pub program: Program,
    pub(crate) subst: Vec<VarId>,
    /// Wall-clock time of the substitution.
    pub elapsed: Duration,
    /// Reduction statistics.
    pub stats: OvsStats,
}

impl OvsResult {
    /// The representative whose solved points-to set equals `v`'s.
    pub fn rep_of(&self, v: VarId) -> VarId {
        self.subst[v.index()]
    }
}

/// Runs offline variable substitution on `program`.
pub fn substitute(program: &Program) -> OvsResult {
    substitute_with_obs(program, &mut Obs::none())
}

/// [`substitute`] with telemetry: the whole pass is wrapped in a
/// [`Phase::OfflineOvs`] span, with the Tarjan condensation reported as a
/// nested [`Phase::OfflineScc`] span.
pub fn substitute_with_obs(program: &Program, obs: &mut Obs<'_>) -> OvsResult {
    let mut timer = PhaseTimer::new();
    timer.start(Phase::OfflineOvs, obs);
    let start = Instant::now();
    let n = program.num_vars();

    // Step 1: indirect classification.
    let mut indirect = vec![false; n];
    for c in program.constraints() {
        match c.kind {
            ConstraintKind::AddrOf => {
                indirect[c.lhs.index()] = true;
                // The target is a location: stores through pointers can add
                // edges into it (and into its offset slots) at solve time.
                let limit = program.offset_limit(c.rhs);
                for k in 0..limit {
                    if c.rhs.index() + (k as usize) < n {
                        indirect[c.rhs.index() + k as usize] = true;
                    }
                }
            }
            ConstraintKind::Load => indirect[c.lhs.index()] = true,
            _ => {}
        }
    }

    // Step 2: copy-edge SCCs. Successor adjacency: rhs → lhs.
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for c in program.constraints() {
        if c.kind == ConstraintKind::Copy && c.lhs != c.rhs {
            succs[c.rhs.index()].push(c.lhs.as_u32());
            preds[c.lhs.index()].push(c.rhs.as_u32());
        }
    }
    timer.start(Phase::OfflineScc, obs);
    let scc = tarjan_scc(&succs);
    timer.stop(obs);
    let members = scc.members();

    // Component classification.
    let mut comp_indirect = vec![false; scc.num_comps];
    for (v, &c) in scc.comp.iter().enumerate() {
        if indirect[v] {
            comp_indirect[c as usize] = true;
        }
    }

    // Step 3: labels, predecessors first. Cross-component copy edges go
    // from higher component id to lower, so descending id order is
    // topological.
    let mut comp_label = vec![0u32; scc.num_comps];
    let mut next_label = 1u32;
    let mut set_table: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    // Canonical variable per label (for merging across components).
    let mut canon: FxHashMap<u32, VarId> = FxHashMap::default();

    for c in (0..scc.num_comps).rev() {
        if comp_indirect[c] {
            comp_label[c] = next_label;
            // Any member works as the canonical variable: all members of a
            // copy cycle share one points-to set. Prefer an indirect member
            // so locations/function slots keep their identity.
            let rep = members[c]
                .iter()
                .copied()
                .find(|&m| indirect[m as usize])
                .expect("indirect component has an indirect member");
            canon.insert(next_label, VarId::from_u32(rep));
            next_label += 1;
            continue;
        }
        let mut labels: Vec<u32> = Vec::new();
        for &m in &members[c] {
            for &p in &preds[m as usize] {
                let pc = scc.comp[p as usize] as usize;
                if pc != c {
                    let l = comp_label[pc];
                    if l != 0 {
                        labels.push(l);
                    }
                }
            }
        }
        labels.sort_unstable();
        labels.dedup();
        comp_label[c] = match labels.len() {
            0 => 0,
            1 => labels[0],
            _ => *set_table.entry(labels).or_insert_with(|| {
                let l = next_label;
                next_label += 1;
                l
            }),
        };
    }

    // Step 4: merge map.
    let mut subst: Vec<VarId> = (0..n).map(VarId::new).collect();
    for c in 0..scc.num_comps {
        let label = comp_label[c];
        for &m in &members[c] {
            if indirect[m as usize] || label == 0 {
                continue; // keep identity
            }
            let rep = *canon.entry(label).or_insert(VarId::from_u32(m));
            subst[m as usize] = rep;
        }
    }

    // Rewrite constraints.
    let var_label = |v: VarId| comp_label[scc.comp[v.index()] as usize];
    let mut seen: FxHashSet<Constraint> = FxHashSet::default();
    let mut out: Vec<Constraint> = Vec::new();
    for c in program.constraints() {
        let mapped = match c.kind {
            ConstraintKind::AddrOf => Constraint {
                kind: c.kind,
                lhs: subst[c.lhs.index()],
                rhs: c.rhs, // locations are never renamed
                offset: 0,
            },
            ConstraintKind::Copy => {
                if var_label(c.rhs) == 0 {
                    continue; // right-hand side is provably empty
                }
                let lhs = subst[c.lhs.index()];
                let rhs = subst[c.rhs.index()];
                if lhs == rhs {
                    continue;
                }
                Constraint {
                    kind: c.kind,
                    lhs,
                    rhs,
                    offset: 0,
                }
            }
            ConstraintKind::Load => {
                if var_label(c.rhs) == 0 {
                    continue; // dereferencing an always-null pointer
                }
                Constraint {
                    kind: c.kind,
                    lhs: subst[c.lhs.index()],
                    rhs: subst[c.rhs.index()],
                    offset: c.offset,
                }
            }
            ConstraintKind::Store => {
                if var_label(c.lhs) == 0 || var_label(c.rhs) == 0 {
                    continue; // target set or stored set provably empty
                }
                Constraint {
                    kind: c.kind,
                    lhs: subst[c.lhs.index()],
                    rhs: subst[c.rhs.index()],
                    offset: c.offset,
                }
            }
        };
        if seen.insert(mapped) {
            out.push(mapped);
        }
    }

    let stats = OvsStats {
        constraints_before: program.constraints().len(),
        constraints_after: out.len(),
        vars_merged: subst
            .iter()
            .enumerate()
            .filter(|&(i, &r)| r.index() != i)
            .count(),
        labels: (next_label - 1) as usize,
    };
    let elapsed = start.elapsed();
    timer.stop(obs);
    OvsResult {
        program: program.with_constraints(out),
        subst,
        elapsed,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn copy_chain_collapses_to_one_variable() {
        // p = &x; a = p; b = a; c = b — a, b, c are all pointer-equivalent
        // to p... not to p (p is indirect, AddrOf lhs), but to each other?
        // a's only pred is p → singleton label of p → a ≡ p's label; same
        // for b, c transitively. All three merge with the canonical variable
        // of p's label (p's own component).
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let a = pb.var("a");
        let b = pb.var("b");
        let c = pb.var("c");
        pb.addr_of(p, x);
        pb.copy(a, p);
        pb.copy(b, a);
        pb.copy(c, b);
        let r = substitute(&pb.finish());
        assert_eq!(r.rep_of(a), p);
        assert_eq!(r.rep_of(b), p);
        assert_eq!(r.rep_of(c), p);
        // Only the base constraint survives: every copy became a self-loop.
        assert_eq!(r.program.stats().total(), 1);
        assert_eq!(r.stats.vars_merged, 3);
        assert!(r.stats.reduction_percent() > 70.0);
    }

    #[test]
    fn diamonds_with_equal_sources_merge() {
        // a = p; a = q; b = p; b = q — a and b have equal label sets.
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let q = pb.var("q");
        let x = pb.var("x");
        let y = pb.var("y");
        let a = pb.var("a");
        let b = pb.var("b");
        pb.addr_of(p, x);
        pb.addr_of(q, y);
        pb.copy(a, p);
        pb.copy(a, q);
        pb.copy(b, p);
        pb.copy(b, q);
        let r = substitute(&pb.finish());
        assert_eq!(r.rep_of(a), r.rep_of(b));
        assert_ne!(r.rep_of(a), r.rep_of(p));
        // 2 base + 2 copies into the merged node.
        assert_eq!(r.program.stats().total(), 4);
    }

    #[test]
    fn unreachable_pointers_get_label_zero() {
        // u = w (neither has a base constraint): both always empty; the
        // copy and the load through them are dropped.
        let mut pb = ProgramBuilder::new();
        let u = pb.var("u");
        let w = pb.var("w");
        let z = pb.var("z");
        pb.copy(u, w);
        pb.load(z, u); // z = *u — never fires
        pb.store(u, z); // *u = z — never fires
        let r = substitute(&pb.finish());
        assert_eq!(r.program.stats().total(), 0);
    }

    #[test]
    fn address_taken_vars_keep_identity() {
        // x is address-taken and also copies from p: it must not merge.
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let q = pb.var("q");
        let x = pb.var("x");
        pb.addr_of(q, x);
        pb.addr_of(p, q);
        pb.copy(x, p);
        let r = substitute(&pb.finish());
        assert_eq!(r.rep_of(x), x);
        assert_eq!(r.rep_of(p), p);
        assert_eq!(r.program.stats().total(), 3);
    }

    #[test]
    fn copy_cycle_members_merge_into_indirect_member() {
        // Cycle x → y → x where x is address-taken: y merges into x.
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let y = pb.var("y");
        pb.addr_of(p, x);
        pb.copy(x, y);
        pb.copy(y, x);
        let r = substitute(&pb.finish());
        assert_eq!(r.rep_of(y), x);
        assert_eq!(r.rep_of(x), x);
    }

    #[test]
    fn function_slots_stay_distinct() {
        let mut pb = ProgramBuilder::new();
        let f = pb.function("f", 3);
        let p = pb.var("p");
        let a = pb.var("a");
        pb.addr_of(p, f);
        pb.copy(f.offset(1), a); // ret = a
        pb.copy(f.offset(2), a); // param = a — same preds as ret!
        let r = substitute(&pb.finish());
        // Both slots belong to an address-taken function block: indirect,
        // never merged despite equal predecessor sets.
        assert_eq!(r.rep_of(f.offset(1)), f.offset(1));
        assert_eq!(r.rep_of(f.offset(2)), f.offset(2));
    }

    #[test]
    fn load_lhs_not_merged() {
        // a = *p and b = *p: a, b have equal "sources" but are indirect
        // (their points-to sets grow via dynamic edges), so HVN must not
        // merge them... they actually are pointer-equivalent here, but the
        // conservative classification keeps them separate.
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let a = pb.var("a");
        let b = pb.var("b");
        pb.addr_of(p, x);
        pb.load(a, p);
        pb.load(b, p);
        let r = substitute(&pb.finish());
        assert_eq!(r.rep_of(a), a);
        assert_eq!(r.rep_of(b), b);
        assert_eq!(r.program.stats().total(), 3);
    }

    #[test]
    fn duplicate_constraints_dedup() {
        // x is address-taken so it cannot merge with p; the three identical
        // copies into it must collapse to one.
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        pb.addr_of(p, x);
        pb.copy(x, p);
        pb.copy(x, p);
        pb.copy(x, p);
        pb.load(p, x);
        pb.load(p, x);
        let r = substitute(&pb.finish());
        assert_eq!(r.program.stats().simple, 1);
        assert_eq!(r.program.stats().complex1, 1);
    }

    #[test]
    fn copy_of_copy_into_addressed_pointer_becomes_self_loop() {
        // a = p; a = p duplicated via merging: a merges into p, so the
        // copies vanish entirely rather than deduplicate.
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let a = pb.var("a");
        pb.addr_of(p, x);
        pb.copy(a, p);
        pb.copy(a, p);
        let r = substitute(&pb.finish());
        assert_eq!(r.rep_of(a), p);
        assert_eq!(r.program.stats().simple, 0);
    }

    #[test]
    fn stats_are_consistent() {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let a = pb.var("a");
        let b = pb.var("b");
        pb.addr_of(p, x);
        pb.copy(a, p);
        pb.copy(b, a);
        let before = pb.finish();
        let r = substitute(&before);
        assert_eq!(r.stats.constraints_before, 3);
        assert_eq!(r.stats.constraints_after, r.program.stats().total());
        assert!(r.stats.labels >= 1);
    }
}
