//! The inclusion-constraint intermediate representation.

use ant_common::VarId;
use std::fmt;

/// The four constraint forms of Table 1 (with Pearce-style offsets for
/// indirect calls).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ConstraintKind {
    /// Base: `lhs ⊇ {rhs}` — from `lhs = &rhs`.
    AddrOf,
    /// Simple: `lhs ⊇ rhs` — from `lhs = rhs`.
    Copy,
    /// Complex 1: `lhs ⊇ *(rhs)+k` — from `lhs = *rhs` (k = 0) or an
    /// indirect-call result/parameter read (k > 0).
    Load,
    /// Complex 2: `*(lhs)+k ⊇ rhs` — from `*lhs = rhs` (k = 0) or an
    /// indirect-call argument write (k > 0).
    Store,
}

/// One inclusion constraint.
///
/// For [`Load`](ConstraintKind::Load) the `offset` applies to the
/// dereference: for every `t ∈ pts(rhs)` with `offset < offset_limit(t)`,
/// the solver adds the copy edge `t+offset → lhs`. For
/// [`Store`](ConstraintKind::Store), symmetrically, `rhs → t+offset` for
/// every `t ∈ pts(lhs)`. Offsets implement Pearce et al.'s indirect-call
/// encoding: a function variable is followed contiguously by its return and
/// parameter variables, so offset `k` addresses the `k`-th slot of whichever
/// function `rhs`/`lhs` points to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Constraint {
    /// Constraint form.
    pub kind: ConstraintKind,
    /// Left-hand side (the superset side).
    pub lhs: VarId,
    /// Right-hand side (the subset side).
    pub rhs: VarId,
    /// Dereference offset; `0` for ordinary constraints.
    pub offset: u32,
}

impl Constraint {
    /// `lhs = &rhs`.
    pub fn addr_of(lhs: VarId, rhs: VarId) -> Self {
        Constraint {
            kind: ConstraintKind::AddrOf,
            lhs,
            rhs,
            offset: 0,
        }
    }

    /// `lhs = rhs`.
    pub fn copy(lhs: VarId, rhs: VarId) -> Self {
        Constraint {
            kind: ConstraintKind::Copy,
            lhs,
            rhs,
            offset: 0,
        }
    }

    /// `lhs = *rhs`.
    pub fn load(lhs: VarId, rhs: VarId) -> Self {
        Constraint {
            kind: ConstraintKind::Load,
            lhs,
            rhs,
            offset: 0,
        }
    }

    /// `lhs = *(rhs + offset)` — indirect-call slot read.
    pub fn load_offset(lhs: VarId, rhs: VarId, offset: u32) -> Self {
        Constraint {
            kind: ConstraintKind::Load,
            lhs,
            rhs,
            offset,
        }
    }

    /// `*lhs = rhs`.
    pub fn store(lhs: VarId, rhs: VarId) -> Self {
        Constraint {
            kind: ConstraintKind::Store,
            lhs,
            rhs,
            offset: 0,
        }
    }

    /// `*(lhs + offset) = rhs` — indirect-call slot write.
    pub fn store_offset(lhs: VarId, rhs: VarId, offset: u32) -> Self {
        Constraint {
            kind: ConstraintKind::Store,
            lhs,
            rhs,
            offset,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.kind, self.offset) {
            (ConstraintKind::AddrOf, _) => write!(f, "{} = &{}", self.lhs, self.rhs),
            (ConstraintKind::Copy, _) => write!(f, "{} = {}", self.lhs, self.rhs),
            (ConstraintKind::Load, 0) => write!(f, "{} = *{}", self.lhs, self.rhs),
            (ConstraintKind::Load, k) => write!(f, "{} = *({} + {k})", self.lhs, self.rhs),
            (ConstraintKind::Store, 0) => write!(f, "*{} = {}", self.lhs, self.rhs),
            (ConstraintKind::Store, k) => write!(f, "*({} + {k}) = {}", self.lhs, self.rhs),
        }
    }
}

/// Per-form constraint counts — the breakdown reported in Table 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConstraintStats {
    /// `a = &b` constraints.
    pub base: usize,
    /// `a = b` constraints.
    pub simple: usize,
    /// `a = *b` constraints (any offset).
    pub complex1: usize,
    /// `*a = b` constraints (any offset).
    pub complex2: usize,
}

impl ConstraintStats {
    /// Total number of constraints.
    pub fn total(&self) -> usize {
        self.base + self.simple + self.complex1 + self.complex2
    }
}

impl fmt::Display for ConstraintStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} constraints (base {}, simple {}, complex1 {}, complex2 {})",
            self.total(),
            self.base,
            self.simple,
            self.complex1,
            self.complex2
        )
    }
}

/// A complete constraint program: the input to every solver.
///
/// Variables are dense ids `0..num_vars`. Function variables own a block of
/// `offset_limit` consecutive ids (the function variable itself, then its
/// return/parameter slots) addressed by [`Constraint::offset`]; ordinary
/// variables have `offset_limit == 1`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    names: Vec<String>,
    offset_limit: Vec<u32>,
    constraints: Vec<Constraint>,
}

impl Program {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// The constraints, in generation order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Name of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// Looks up a variable by name (linear scan; intended for tests and
    /// examples).
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.names.iter().position(|n| n == name).map(VarId::new)
    }

    /// Number of offset slots rooted at `v` (1 for ordinary variables).
    pub fn offset_limit(&self, v: VarId) -> u32 {
        self.offset_limit[v.index()]
    }

    /// The raw offset-limit table, indexed by variable.
    pub fn offset_limits(&self) -> &[u32] {
        &self.offset_limit
    }

    /// Iterates over all variables.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.num_vars()).map(VarId::new)
    }

    /// Per-form constraint counts (Table 2 columns).
    pub fn stats(&self) -> ConstraintStats {
        let mut s = ConstraintStats::default();
        for c in &self.constraints {
            match c.kind {
                ConstraintKind::AddrOf => s.base += 1,
                ConstraintKind::Copy => s.simple += 1,
                ConstraintKind::Load => s.complex1 += 1,
                ConstraintKind::Store => s.complex2 += 1,
            }
        }
        s
    }

    /// Replaces the constraint list (used by the offline reductions), keeping
    /// the variable space intact.
    pub fn with_constraints(&self, constraints: Vec<Constraint>) -> Program {
        let mut p = self.clone();
        p.constraints = constraints;
        p
    }

    /// Checks the structural invariants every offline pass must preserve:
    /// variable ids in range, a sane offset-limit table (every limit ≥ 1,
    /// function blocks fully inside the variable space), no address-of
    /// constraint carrying an offset, and every load/store offset
    /// addressable by at least one function block.
    ///
    /// The pass pipeline calls this between stages under
    /// `debug_assertions`; release builds skip it.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vars();
        if self.offset_limit.len() != n {
            return Err(format!(
                "offset-limit table has {} entries for {n} variables",
                self.offset_limit.len()
            ));
        }
        let mut max_limit = 1u32;
        for (i, &limit) in self.offset_limit.iter().enumerate() {
            if limit < 1 {
                return Err(format!("variable v{i} has offset_limit 0"));
            }
            if i + limit as usize > n {
                return Err(format!(
                    "function block at v{i} (offset_limit {limit}) overruns the \
                     variable space of {n}"
                ));
            }
            max_limit = max_limit.max(limit);
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if c.lhs.index() >= n || c.rhs.index() >= n {
                return Err(format!(
                    "constraint #{i} `{c}` references a variable outside 0..{n}"
                ));
            }
            match c.kind {
                ConstraintKind::AddrOf | ConstraintKind::Copy => {
                    if c.offset != 0 {
                        return Err(format!(
                            "constraint #{i} `{c}` is a {:?} with non-zero offset {}",
                            c.kind, c.offset
                        ));
                    }
                }
                ConstraintKind::Load | ConstraintKind::Store => {
                    if c.offset >= max_limit {
                        return Err(format!(
                            "constraint #{i} `{c}` has offset {} but the largest \
                             function block only spans {max_limit} slots",
                            c.offset
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Computes the delta that grafts `addition` onto `self` by *name*:
    /// variables of `addition` whose names already exist in `self` are
    /// identified with the existing variable, fresh names become new
    /// variables appended after `self`'s id space (in `addition`'s
    /// declaration order), and `addition`'s constraints are rewritten into
    /// the union id space. [`append_delta`](Self::append_delta) then builds
    /// the union program.
    ///
    /// The construction is canonical: the union program depends only on the
    /// two inputs, so two sessions that load the same base and add the same
    /// translation unit produce byte-identical union programs (and therefore
    /// share solve-cache entries keyed by content).
    ///
    /// # Errors
    ///
    /// Rejects merges that would change the meaning of either side: a shared
    /// name whose declared `offset_limit` differs between base and addition
    /// (a bare reference — `offset_limit` 1 in the addition — composes with
    /// any base declaration; the union keeps the base's function block), a
    /// function block torn apart by the name-level merge (its slots must
    /// stay contiguous in the union id space), duplicate names within
    /// `addition`, or a union that fails [`validate`](Self::validate).
    pub fn delta_from(&self, addition: &Program) -> Result<ProgramDelta, String> {
        use std::collections::HashMap;
        let mut by_name: HashMap<&str, VarId> = HashMap::with_capacity(self.names.len());
        for (i, n) in self.names.iter().enumerate() {
            by_name.insert(n.as_str(), VarId::new(i));
        }
        let mut map: Vec<VarId> = Vec::with_capacity(addition.num_vars());
        let mut new_names: Vec<String> = Vec::new();
        let mut new_offset_limits: Vec<u32> = Vec::new();
        let mut fresh: HashMap<&str, VarId> = HashMap::new();
        for (i, name) in addition.names.iter().enumerate() {
            let limit = addition.offset_limit[i];
            if let Some(&v) = by_name.get(name.as_str()) {
                // A bare reference (offset_limit 1) composes with whatever
                // the base declared — the union keeps the base's function
                // block. Explicit declarations must agree exactly.
                if self.offset_limit[v.index()] != limit && limit != 1 {
                    return Err(format!(
                        "variable `{name}` has offset_limit {} in the base but \
                         {limit} in the addition",
                        self.offset_limit[v.index()]
                    ));
                }
                map.push(v);
            } else {
                if fresh.contains_key(name.as_str()) {
                    return Err(format!("addition declares `{name}` more than once"));
                }
                let v = VarId::new(self.num_vars() + new_names.len());
                fresh.insert(name.as_str(), v);
                new_names.push(name.clone());
                new_offset_limits.push(limit);
                map.push(v);
            }
        }
        for (i, &limit) in addition.offset_limit.iter().enumerate() {
            for k in 1..limit {
                let slot = i + k as usize;
                if slot >= map.len() || map[slot].as_u32() != map[i].as_u32() + k {
                    return Err(format!(
                        "function block at `{}` is not contiguous after the \
                         name-level merge",
                        addition.names[i]
                    ));
                }
            }
        }
        let constraints = addition
            .constraints
            .iter()
            .map(|c| Constraint {
                kind: c.kind,
                lhs: map[c.lhs.index()],
                rhs: map[c.rhs.index()],
                offset: c.offset,
            })
            .collect();
        let delta = ProgramDelta {
            new_names,
            new_offset_limits,
            constraints,
        };
        self.append_delta(&delta).validate()?;
        Ok(delta)
    }

    /// Builds the union program: `self`'s variables and constraints first
    /// (ids unchanged), then `delta`'s new variables and rewritten
    /// constraints appended in order. Deterministic given the two inputs —
    /// see [`delta_from`](Self::delta_from) for why that matters.
    ///
    /// Because `self` is a strict prefix of the result (both in the variable
    /// table and the constraint list), a solver fixpoint for `self` is a
    /// sound warm start for the union: inclusion constraints are monotone,
    /// so re-running the solver from the old fixpoint plus the delta reaches
    /// the union's (unique) least fixpoint.
    pub fn append_delta(&self, delta: &ProgramDelta) -> Program {
        let mut p = self.clone();
        p.names.extend(delta.new_names.iter().cloned());
        p.offset_limit.extend_from_slice(&delta.new_offset_limits);
        p.constraints.extend_from_slice(&delta.constraints);
        p
    }

    /// Serializes to the text format accepted by
    /// [`parse_program`](crate::parse_program).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for v in self.vars() {
            let limit = self.offset_limit(v);
            if limit > 1 {
                let _ = writeln!(out, "fun {} {}", self.var_name(v), limit);
            }
        }
        for c in &self.constraints {
            let lhs = self.var_name(c.lhs);
            let rhs = self.var_name(c.rhs);
            let line = match (c.kind, c.offset) {
                (ConstraintKind::AddrOf, _) => format!("{lhs} = &{rhs}"),
                (ConstraintKind::Copy, _) => format!("{lhs} = {rhs}"),
                (ConstraintKind::Load, 0) => format!("{lhs} = *{rhs}"),
                (ConstraintKind::Load, k) => format!("{lhs} = *({rhs} + {k})"),
                (ConstraintKind::Store, 0) => format!("*{lhs} = {rhs}"),
                (ConstraintKind::Store, k) => format!("*({lhs} + {k}) = {rhs}"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// The difference between a base [`Program`] and a name-level union with a
/// second program: the freshly introduced variables plus the addition's
/// constraints rewritten into the union id space.
///
/// Produced by [`Program::delta_from`]; consumed by
/// [`Program::append_delta`]. Existing base variables keep their ids, so
/// any solver state or solution indexed by base `VarId`s remains valid in
/// the union — the property the incremental (warm-start) solve path relies
/// on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramDelta {
    new_names: Vec<String>,
    new_offset_limits: Vec<u32>,
    constraints: Vec<Constraint>,
}

impl ProgramDelta {
    /// Number of variables the delta introduces beyond the base.
    pub fn num_new_vars(&self) -> usize {
        self.new_names.len()
    }

    /// Names of the new variables, in union id order.
    pub fn new_names(&self) -> &[String] {
        &self.new_names
    }

    /// The addition's constraints, rewritten into the union id space.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// `true` when the delta adds neither variables nor constraints.
    pub fn is_empty(&self) -> bool {
        self.new_names.is_empty() && self.constraints.is_empty()
    }
}

/// Incremental construction of a [`Program`].
///
/// # Example
///
/// ```
/// use ant_constraints::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// let p = b.var("p");
/// let x = b.var("x");
/// b.addr_of(p, x);        // p = &x
/// let q = b.var("q");
/// b.copy(q, p);           // q = p
/// let program = b.finish();
/// assert_eq!(program.num_vars(), 3);
/// assert_eq!(program.stats().total(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    names: Vec<String>,
    offset_limit: Vec<u32>,
    by_name: std::collections::HashMap<String, VarId>,
    constraints: Vec<Constraint>,
    temps: usize,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Interns `name`, creating the variable on first use.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = VarId::new(self.names.len());
        self.names.push(name.to_owned());
        self.offset_limit.push(1);
        self.by_name.insert(name.to_owned(), v);
        v
    }

    /// Creates a fresh anonymous temporary (used to flatten nested
    /// dereferences so each constraint has at most one `*`).
    pub fn temp(&mut self) -> VarId {
        let name = format!("$t{}", self.temps);
        self.temps += 1;
        self.var(&name)
    }

    /// Declares a function variable named `name` with `slots - 1` contiguous
    /// offset slots after it (slot 1 is conventionally the return value,
    /// slots 2.. the parameters). Returns the function variable; slot `k` is
    /// `f.offset(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or if `name` was already interned (a function
    /// block must be allocated contiguously).
    pub fn function(&mut self, name: &str, slots: u32) -> VarId {
        assert!(slots >= 1, "a function needs at least its own slot");
        assert!(
            !self.by_name.contains_key(name),
            "function variable {name} already exists"
        );
        let f = self.var(name);
        self.offset_limit[f.index()] = slots;
        for k in 1..slots {
            let slot = self.var(&format!("{name}#{k}"));
            debug_assert_eq!(slot, f.offset(k));
        }
        f
    }

    /// Largest slot count [`try_function`](Self::try_function) accepts. A
    /// `fun f 536870911` line would otherwise intern half a billion slot
    /// names before anything notices; real indirect-call blocks are tiny.
    pub const MAX_FUN_SLOTS: u32 = 1 << 16;

    /// Fallible variant of [`function`](Self::function) for untrusted input
    /// (the text parser, `serve` load/add). Checks everything `function`
    /// asserts — and the slot-name collisions it only `debug_assert`s — and
    /// reports them as values instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns a description when `slots` is 0 or above
    /// [`MAX_FUN_SLOTS`](Self::MAX_FUN_SLOTS), when `name` is already
    /// interned, or when any slot name `name#k` is already interned (the
    /// block could not be allocated contiguously).
    pub fn try_function(&mut self, name: &str, slots: u32) -> Result<VarId, String> {
        if slots == 0 {
            return Err("slot count must be >= 1".to_owned());
        }
        if slots > Self::MAX_FUN_SLOTS {
            return Err(format!(
                "slot count {slots} exceeds the maximum of {}",
                Self::MAX_FUN_SLOTS
            ));
        }
        if self.by_name.contains_key(name) {
            return Err(format!(
                "function `{name}` declared after its name was already used \
                 (declare `fun` lines before referencing the name)"
            ));
        }
        for k in 1..slots {
            let slot = format!("{name}#{k}");
            if self.by_name.contains_key(&slot) {
                return Err(format!(
                    "slot name `{slot}` is already in use, so the block for \
                     `fun {name} {slots}` cannot be allocated contiguously"
                ));
            }
        }
        Ok(self.function(name, slots))
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Whether `name` has already been interned (by [`var`](Self::var) or
    /// [`function`](Self::function)). Callers accepting untrusted input use
    /// this to reject a function re-declaration before
    /// [`function`](Self::function) panics on it.
    pub fn has_var(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Adds `lhs = &rhs`.
    pub fn addr_of(&mut self, lhs: VarId, rhs: VarId) {
        self.constraints.push(Constraint::addr_of(lhs, rhs));
    }

    /// Adds `lhs = rhs`.
    pub fn copy(&mut self, lhs: VarId, rhs: VarId) {
        self.constraints.push(Constraint::copy(lhs, rhs));
    }

    /// Adds `lhs = *rhs`.
    pub fn load(&mut self, lhs: VarId, rhs: VarId) {
        self.constraints.push(Constraint::load(lhs, rhs));
    }

    /// Adds `lhs = *(rhs + offset)`.
    pub fn load_offset(&mut self, lhs: VarId, rhs: VarId, offset: u32) {
        self.constraints
            .push(Constraint::load_offset(lhs, rhs, offset));
    }

    /// Adds `*lhs = rhs`.
    pub fn store(&mut self, lhs: VarId, rhs: VarId) {
        self.constraints.push(Constraint::store(lhs, rhs));
    }

    /// Adds `*(lhs + offset) = rhs`.
    pub fn store_offset(&mut self, lhs: VarId, rhs: VarId, offset: u32) {
        self.constraints
            .push(Constraint::store_offset(lhs, rhs, offset));
    }

    /// Adds a pre-built constraint.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Finalizes the program.
    pub fn finish(self) -> Program {
        Program {
            names: self.names,
            offset_limit: self.offset_limit,
            constraints: self.constraints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_names() {
        let mut b = ProgramBuilder::new();
        let a1 = b.var("a");
        let a2 = b.var("a");
        assert_eq!(a1, a2);
        let t1 = b.temp();
        let t2 = b.temp();
        assert_ne!(t1, t2);
        assert_eq!(b.num_vars(), 3);
    }

    #[test]
    fn function_blocks_are_contiguous() {
        let mut b = ProgramBuilder::new();
        let _x = b.var("x");
        let f = b.function("f", 4); // f, ret, p1, p2
        assert_eq!(f.offset(1).index(), f.index() + 1);
        let p = b.finish();
        assert_eq!(p.offset_limit(f), 4);
        assert_eq!(p.offset_limit(VarId::new(0)), 1);
        assert_eq!(p.var_name(f.offset(2)), "f#2");
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn function_rejects_existing_name() {
        let mut b = ProgramBuilder::new();
        b.var("f");
        b.function("f", 2);
    }

    #[test]
    fn try_function_reports_instead_of_panicking() {
        let mut b = ProgramBuilder::new();
        assert!(b.try_function("f", 0).is_err());
        assert!(b
            .try_function("f", ProgramBuilder::MAX_FUN_SLOTS + 1)
            .is_err());
        b.var("g#1");
        let err = b.try_function("g", 2).unwrap_err();
        assert!(err.contains("g#1"), "{err}");
        b.var("h");
        assert!(b.try_function("h", 2).is_err());
        let f = b.try_function("f", 3).unwrap();
        assert_eq!(b.var("f#2"), f.offset(2));
    }

    #[test]
    fn stats_count_forms() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.addr_of(x, y);
        b.copy(x, y);
        b.copy(y, x);
        b.load(x, y);
        b.store(y, x);
        b.store_offset(y, x, 2);
        let p = b.finish();
        let s = p.stats();
        assert_eq!((s.base, s.simple, s.complex1, s.complex2), (1, 2, 1, 2));
        assert_eq!(s.total(), 6);
        assert!(s.to_string().contains("6 constraints"));
    }

    #[test]
    fn display_forms() {
        let a = VarId::new(0);
        let b = VarId::new(1);
        assert_eq!(Constraint::addr_of(a, b).to_string(), "v0 = &v1");
        assert_eq!(Constraint::copy(a, b).to_string(), "v0 = v1");
        assert_eq!(Constraint::load(a, b).to_string(), "v0 = *v1");
        assert_eq!(Constraint::store(a, b).to_string(), "*v0 = v1");
        assert_eq!(
            Constraint::load_offset(a, b, 3).to_string(),
            "v0 = *(v1 + 3)"
        );
        assert_eq!(
            Constraint::store_offset(a, b, 1).to_string(),
            "*(v0 + 1) = v1"
        );
    }

    #[test]
    fn lookup_by_name() {
        let mut b = ProgramBuilder::new();
        b.var("hello");
        let p = b.finish();
        assert_eq!(p.var_by_name("hello"), Some(VarId::new(0)));
        assert_eq!(p.var_by_name("nope"), None);
        assert_eq!(p.var_name(VarId::new(0)), "hello");
    }

    #[test]
    fn delta_merges_shared_names_and_appends_fresh() {
        let mut b = ProgramBuilder::new();
        let p = b.var("p");
        let x = b.var("x");
        b.addr_of(p, x);
        let base = b.finish();

        let mut a = ProgramBuilder::new();
        let q = a.var("q"); // fresh
        let p2 = a.var("p"); // shared
        let z = a.var("z"); // fresh
        a.copy(q, p2);
        a.addr_of(p2, z);
        let addition = a.finish();

        let delta = base.delta_from(&addition).unwrap();
        assert_eq!(delta.num_new_vars(), 2);
        assert_eq!(delta.new_names(), ["q", "z"]);
        assert_eq!(delta.constraints().len(), 2);
        assert!(!delta.is_empty());

        let union = base.append_delta(&delta);
        assert_eq!(union.num_vars(), 4);
        assert_eq!(union.var_by_name("q"), Some(VarId::new(2)));
        assert_eq!(union.var_by_name("z"), Some(VarId::new(3)));
        // q = p became v2 = v0; p = &z became v0 = &v3.
        assert_eq!(
            union.constraints()[1],
            Constraint::copy(VarId::new(2), VarId::new(0))
        );
        assert_eq!(
            union.constraints()[2],
            Constraint::addr_of(VarId::new(0), VarId::new(3))
        );
        // The base is a strict prefix of the union.
        assert_eq!(&union.constraints()[..1], base.constraints());
        union.validate().unwrap();
    }

    #[test]
    fn delta_is_canonical() {
        let base = {
            let mut b = ProgramBuilder::new();
            let p = b.var("p");
            let x = b.var("x");
            b.addr_of(p, x);
            b.finish()
        };
        let addition = {
            let mut a = ProgramBuilder::new();
            let q = a.var("q");
            let p = a.var("p");
            a.copy(q, p);
            a.finish()
        };
        let u1 = base.append_delta(&base.delta_from(&addition).unwrap());
        let u2 = base.append_delta(&base.delta_from(&addition).unwrap());
        assert_eq!(u1, u2);
    }

    #[test]
    fn delta_rejects_offset_limit_conflict() {
        let base = {
            let mut b = ProgramBuilder::new();
            b.var("f");
            b.finish()
        };
        let addition = {
            let mut a = ProgramBuilder::new();
            a.function("f", 3);
            a.finish()
        };
        let err = base.delta_from(&addition).unwrap_err();
        assert!(err.contains("offset_limit"), "{err}");
    }

    #[test]
    fn delta_allows_bare_references_to_base_functions() {
        // The addition copies out of a base *function* without re-declaring
        // its arity; the parsed reference carries the default offset_limit 1
        // and must compose, with the union keeping the base's block.
        let base = {
            let mut b = ProgramBuilder::new();
            b.function("f", 3);
            b.finish()
        };
        let addition = {
            let mut a = ProgramBuilder::new();
            let q = a.var("q");
            let f = a.var("f");
            a.copy(q, f);
            a.finish()
        };
        let union = base.append_delta(&base.delta_from(&addition).unwrap());
        assert_eq!(union.offset_limits()[0], 3);
        assert_eq!(
            union.constraints().last(),
            Some(&Constraint::copy(VarId::new(3), VarId::new(0)))
        );
        union.validate().unwrap();
    }

    #[test]
    fn delta_rejects_torn_function_block() {
        // The base already owns the name of f's first slot, so the merge
        // would scatter the block: f fresh, f#1 mapped to an old id.
        let base = {
            let mut b = ProgramBuilder::new();
            b.var("f#1");
            b.finish()
        };
        let addition = {
            let mut a = ProgramBuilder::new();
            a.function("f", 2);
            a.finish()
        };
        let err = base.delta_from(&addition).unwrap_err();
        assert!(err.contains("not contiguous"), "{err}");
    }

    #[test]
    fn delta_rejects_duplicate_addition_names() {
        let base = ProgramBuilder::new().finish();
        let addition = Program {
            names: vec!["a".into(), "a".into()],
            offset_limit: vec![1, 1],
            constraints: vec![],
        };
        let err = base.delta_from(&addition).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn empty_delta_roundtrips() {
        let base = {
            let mut b = ProgramBuilder::new();
            let p = b.var("p");
            let x = b.var("x");
            b.addr_of(p, x);
            b.finish()
        };
        let delta = base.delta_from(&ProgramBuilder::new().finish()).unwrap();
        assert!(delta.is_empty());
        assert_eq!(base.append_delta(&delta), base);
    }

    #[test]
    fn with_constraints_preserves_vars() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.copy(x, y);
        let p = b.finish();
        let q = p.with_constraints(vec![]);
        assert_eq!(q.num_vars(), 2);
        assert_eq!(q.stats().total(), 0);
    }
}
