//! Property-based testing of the offline analyses' structural invariants.

use ant_common::VarId;
use ant_constraints::hcd::HcdOffline;
use ant_constraints::offline::OfflineGraph;
use ant_constraints::scc::tarjan_scc;
use ant_constraints::{ovs, Constraint, ConstraintKind, Program, ProgramBuilder};
use proptest::prelude::*;

const NVARS: usize = 20;

fn programs() -> impl Strategy<Value = Program> {
    prop::collection::vec((0u8..4, 0..NVARS, 0..NVARS), 1..60).prop_map(|raw| {
        let mut b = ProgramBuilder::new();
        let vars: Vec<VarId> = (0..NVARS).map(|i| b.var(&format!("v{i}"))).collect();
        for (k, l, r) in raw {
            match k {
                0 => b.addr_of(vars[l], vars[r]),
                1 => b.copy(vars[l], vars[r]),
                2 => b.load(vars[l], vars[r]),
                _ => b.store(vars[l], vars[r]),
            }
        }
        b.finish()
    })
}

proptest! {
    #[test]
    fn scc_component_ids_are_reverse_topological(program in programs()) {
        let g = OfflineGraph::build(&program);
        let scc = tarjan_scc(&g.adj);
        for (u, succs) in g.adj.iter().enumerate() {
            for &v in succs {
                let (cu, cv) = (scc.comp[u], scc.comp[v as usize]);
                if cu != cv {
                    prop_assert!(cv < cu, "edge {u}→{v} violates order");
                }
            }
        }
        // members() partitions the nodes.
        let total: usize = scc.members().iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_nodes());
    }

    #[test]
    fn hcd_pairs_reference_real_cycles(program in programs()) {
        let hcd = HcdOffline::analyze(&program);
        let g = OfflineGraph::build(&program);
        let scc = tarjan_scc(&g.adj);
        for (a, b) in hcd.pairs() {
            // (a, b) means ref(a) and b share an offline SCC.
            prop_assert_eq!(
                scc.comp[g.ref_node(a) as usize],
                scc.comp[b.index()],
                "pair ({}, {}) not in one SCC",
                a,
                b
            );
        }
        // Static unions only join plain variables in one SCC.
        for &(x, rep) in &hcd.static_unions {
            prop_assert_eq!(scc.comp[x.index()], scc.comp[rep.index()]);
        }
    }

    #[test]
    fn ovs_never_grows_and_stays_parseable(program in programs()) {
        let r = ovs::substitute(&program);
        prop_assert!(r.program.constraints().len() <= program.constraints().len());
        prop_assert_eq!(r.program.num_vars(), program.num_vars());
        // No duplicate constraints survive.
        let mut seen = std::collections::HashSet::new();
        for c in r.program.constraints() {
            prop_assert!(seen.insert(*c), "duplicate {c} after OVS");
        }
        // Substitution targets are representatives of merged groups: a
        // variable never maps to a variable that itself maps elsewhere.
        for v in program.vars() {
            let rep = r.rep_of(v);
            prop_assert_eq!(r.rep_of(rep), rep, "non-idempotent substitution");
        }
        // The reduced program round-trips through the text format.
        let text = r.program.to_text();
        let reparsed = ant_constraints::parse_program(&text).unwrap();
        prop_assert_eq!(reparsed.stats(), r.program.stats());
    }

    #[test]
    fn ovs_rewrites_preserve_location_identity(program in programs()) {
        let r = ovs::substitute(&program);
        let originals: std::collections::HashSet<(VarId, VarId)> = program
            .constraints()
            .iter()
            .filter(|c| c.kind == ConstraintKind::AddrOf)
            .map(|c| (c.lhs, c.rhs))
            .collect();
        for c in r.program.constraints() {
            if c.kind == ConstraintKind::AddrOf {
                // The location side is never renamed; the pointer side is a
                // substitution of some original constraint.
                let matched = originals
                    .iter()
                    .any(|&(l, rhs)| rhs == c.rhs && r.rep_of(l) == c.lhs);
                prop_assert!(matched, "AddrOf {c} has no original counterpart");
            }
        }
    }

    #[test]
    fn constraint_text_roundtrip(cs in prop::collection::vec((0u8..4, 0..8usize, 0..8usize), 0..30)) {
        let mut b = ProgramBuilder::new();
        let vars: Vec<VarId> = (0..8).map(|i| b.var(&format!("x{i}"))).collect();
        for (k, l, r) in cs {
            let c = match k {
                0 => Constraint::addr_of(vars[l], vars[r]),
                1 => Constraint::copy(vars[l], vars[r]),
                2 => Constraint::load(vars[l], vars[r]),
                _ => Constraint::store(vars[l], vars[r]),
            };
            b.push(c);
        }
        let p = b.finish();
        let q = ant_constraints::parse_program(&p.to_text()).unwrap();
        prop_assert_eq!(p.stats(), q.stats());
    }
}
