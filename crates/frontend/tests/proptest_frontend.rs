//! Robustness properties of the mini-C front end: the parser must never
//! panic (only return errors), and generated constraint programs must be
//! structurally well-formed.

use ant_constraints::ConstraintKind;
use ant_frontend::{compile_c, parse_c};
use proptest::prelude::*;

proptest! {
    /// Arbitrary printable soup: the lexer/parser must reject or accept,
    /// never panic.
    #[test]
    fn parser_never_panics_on_noise(src in "[ -~\n]{0,200}") {
        let _ = parse_c(&src);
    }

    /// Token-shaped noise: sequences of C-ish tokens.
    #[test]
    fn parser_never_panics_on_token_soup(
        toks in prop::collection::vec(
            prop_oneof![
                Just("int".to_owned()), Just("*".to_owned()), Just("x".to_owned()),
                Just("y".to_owned()), Just("&".to_owned()), Just("=".to_owned()),
                Just(";".to_owned()), Just("(".to_owned()), Just(")".to_owned()),
                Just("{".to_owned()), Just("}".to_owned()), Just("if".to_owned()),
                Just("struct".to_owned()), Just("return".to_owned()),
                Just(",".to_owned()), Just("[".to_owned()), Just("]".to_owned()),
                Just("42".to_owned()),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_c(&src);
    }

    /// Structured random programs always compile, and the constraints they
    /// generate are in range and respect the one-deref normal form.
    #[test]
    fn generated_constraints_are_wellformed(
        n_globals in 1usize..6,
        stmts in prop::collection::vec((0u8..6, 0usize..6, 0usize..6), 0..25),
    ) {
        let mut src = String::new();
        for i in 0..n_globals {
            src.push_str(&format!("int *g{i};\nint v{i};\n"));
        }
        src.push_str("void main() {\n");
        for (kind, a, b) in &stmts {
            let a = a % n_globals;
            let b = b % n_globals;
            match kind {
                0 => src.push_str(&format!("g{a} = &v{b};\n")),
                1 => src.push_str(&format!("g{a} = g{b};\n")),
                2 => src.push_str(&format!("g{a} = *(int**)g{b};\n")),
                3 => src.push_str(&format!("*(int**)g{a} = g{b};\n")),
                4 => src.push_str(&format!("if (v{a}) g{a} = g{b};\n")),
                _ => src.push_str(&format!("g{a} = v{b} ? g{b} : g{a};\n")),
            }
        }
        src.push_str("}\n");
        let out = compile_c(&src).expect("structured program parses");
        let p = &out.program;
        for c in p.constraints() {
            prop_assert!(c.lhs.index() < p.num_vars());
            prop_assert!(c.rhs.index() < p.num_vars());
            if c.kind == ConstraintKind::AddrOf {
                prop_assert_eq!(c.offset, 0);
            }
        }
        // The generated program solves without issue under every algorithm
        // (smoke: just one fast one here; full equivalence lives in the
        // root integration tests).
        let solved = ant_core::solve_dyn(
            p,
            &ant_core::SolverConfig::new(ant_core::Algorithm::LcdHcd),
        ant_core::PtsKind::Bitmap,
        );
        prop_assert!(ant_core::verify::check_soundness(p, &solved.solution).is_empty());
    }
}

#[test]
fn qsort_callback_reaches_comparator() {
    let out = compile_c(
        "int cmp(int *a, int *b) { return *a - *b; }\n\
         int *table[8]; int x;\n\
         void main() { table[0] = &x; qsort(table, 8, 8, cmp); }",
    )
    .unwrap();
    let solved = ant_core::solve_dyn(
        &out.program,
        &ant_core::SolverConfig::new(ant_core::Algorithm::LcdHcd),
        ant_core::PtsKind::Bitmap,
    );
    let a_param = out.program.var_by_name("cmp#2").unwrap();
    let table = out.program.var_by_name("table").unwrap();
    assert!(
        solved.solution.may_point_to(a_param, table),
        "the comparator's parameter receives pointers into the array"
    );
}
