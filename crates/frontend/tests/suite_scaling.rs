//! Scaling behaviour of the benchmark suite: sizes track the paper's
//! counts linearly, workloads are deterministic, and the per-benchmark
//! character knobs hold across scales.

use ant_frontend::suite::suite;

#[test]
fn sizes_scale_linearly() {
    let small = suite(0.01);
    let big = suite(0.04);
    for (s, b) in small.iter().zip(&big) {
        let rs = s.program().stats().total() as f64;
        let rb = b.program().stats().total() as f64;
        let ratio = rb / rs;
        assert!(
            (3.2..=4.8).contains(&ratio),
            "{}: 4x scale gave {ratio:.2}x constraints",
            s.name()
        );
    }
}

#[test]
fn paper_ratios_embedded() {
    // original/reduced ratios from Table 2 survive the spec construction.
    let s = suite(0.02);
    let expect = [3.88, 2.52, 4.27, 2.85, 4.16, 2.82];
    for (b, e) in s.iter().zip(expect) {
        assert!(
            (b.spec.redundancy - e).abs() < 0.05,
            "{}: redundancy {} vs paper {e}",
            b.name(),
            b.spec.redundancy
        );
    }
}

#[test]
fn deterministic_across_calls_and_scales() {
    for scale in [0.01, 0.03] {
        let a = suite(scale);
        let b = suite(scale);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.program(), y.program(), "{} at {scale}", x.name());
        }
    }
}

#[test]
fn reduction_lands_in_paper_band() {
    use ant_constraints::pipeline::{OvsPass, PassPipeline};
    for b in suite(0.03) {
        let program = b.program();
        let r = PassPipeline::empty().push(OvsPass).run(&program);
        let pct = r.reduction_percent();
        assert!(
            (55.0..=85.0).contains(&pct),
            "{}: OVS reduced {pct:.0}% (paper band 60-77%)",
            b.name()
        );
    }
}

#[test]
fn every_benchmark_solves_quickly_at_tiny_scale() {
    use ant_constraints::pipeline::PassPipeline;
    use ant_core::{solve_prepared, Algorithm, PtsKind, SolverConfig};
    for b in suite(0.005) {
        let program = b.program();
        let prepared = PassPipeline::standard().run(&program);
        let out = solve_prepared(
            &prepared,
            &SolverConfig::new(Algorithm::LcdHcd),
            PtsKind::Bitmap,
        );
        // `solve_prepared` hands back the expanded solution, so soundness
        // is checked against the *original* program.
        ant_core::verify::assert_sound(&program, &out.solution);
        assert!(out.stats.nodes_processed > 0);
    }
}
