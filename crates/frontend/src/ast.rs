//! Abstract syntax for the mini-C subset.
//!
//! Types are kept only to the extent the analysis needs them: whether a
//! declarator is an array (arrays are treated as single monolithic objects,
//! field-insensitively) and function signatures. Everything else — `int`
//! versus `char*`, qualifiers, struct layouts — is irrelevant to a
//! field-insensitive Andersen analysis and is parsed but discarded.

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A name.
    Id(String),
    /// `*e`.
    Deref(Box<Expr>),
    /// `&e`.
    AddrOf(Box<Expr>),
    /// `e.f` or `e->f` (`arrow = true`). Field-insensitive: `e.f ≡ e`,
    /// `e->f ≡ *e`.
    Field(Box<Expr>, String, bool),
    /// `e[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `f(args)`.
    Call(Box<Expr>, Vec<Expr>),
    /// `l = r` (compound assignments are desugared to plain `=`).
    Assign(Box<Expr>, Box<Expr>),
    /// `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Any binary operator — pointer values flow from both operands.
    Binary(Box<Expr>, Box<Expr>),
    /// Unary operators that preserve no pointer value (`!e`, `-e`, `~e`)
    /// still evaluate their operand for side effects.
    Unary(Box<Expr>),
    /// `,` — evaluate both, value of the second.
    Comma(Box<Expr>, Box<Expr>),
    /// Integer/string/char literal, `sizeof`, etc. — no pointer value.
    Opaque,
}

impl Expr {
    pub(crate) fn boxed(self) -> Box<Expr> {
        Box::new(self)
    }
}

/// One declared name.
#[derive(Clone, Debug, PartialEq)]
pub struct Declarator {
    /// Variable name.
    pub name: String,
    /// Declared with array brackets (`int *a[10]`)?
    pub is_array: bool,
    /// Initializer expressions: empty for none, one for `= e`, several for
    /// a brace initializer `= {e1, e2, ...}` (each flows into the object,
    /// weakly).
    pub inits: Vec<Expr>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Local/global declaration.
    Decl(Vec<Declarator>),
    /// Expression statement.
    Expr(Expr),
    /// `return e;`.
    Return(Option<Expr>),
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// `if (c) t else e` — flow-insensitively, all three are just visited.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (c) body`, `do body while (c)`, and `switch` bodies.
    Loop(Expr, Box<Stmt>),
    /// `for (init; cond; step) body`.
    For(Option<Expr>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `;`, `break;`, `continue;`, labels.
    Empty,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names in order.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A parsed translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TranslationUnit {
    /// Global declarations.
    pub globals: Vec<Declarator>,
    /// Function definitions.
    pub functions: Vec<Function>,
}
