//! Hand-crafted summaries for external library calls.
//!
//! The paper (§5.1): "External library calls are summarized using
//! hand-crafted function stubs." Each stub states how pointer values flow
//! through the callee without analyzing its body.

use crate::constgen::Gen;
use ant_common::VarId;

/// Applies the stub for external function `name` to already-evaluated
/// argument values; returns the call's pointer value, if any.
pub(crate) fn apply(g: &mut Gen, name: &str, args: &[Option<VarId>]) -> Option<VarId> {
    match name {
        // Allocators: return a fresh heap object per call site.
        "malloc" | "calloc" | "valloc" | "alloca" | "strdup" | "strndup" => {
            let obj = g.heap_object();
            let t = g.b.temp();
            g.b.addr_of(t, obj);
            Some(t)
        }
        // realloc: fresh object, but may also return its first argument.
        "realloc" => {
            let obj = g.heap_object();
            let t = g.b.temp();
            g.b.addr_of(t, obj);
            if let Some(Some(a0)) = args.first() {
                g.b.copy(t, *a0);
            }
            Some(t)
        }
        // Copiers: *dst gets what *src holds; return dst.
        "memcpy" | "memmove" | "strcpy" | "strncpy" | "strcat" | "strncat" | "bcopy" => {
            if let (Some(Some(dst)), Some(Some(src))) = (args.first(), args.get(1)) {
                let t = g.b.temp();
                g.b.load(t, *src);
                g.b.store(*dst, t);
            }
            args.first().copied().flatten()
        }
        // memset returns its argument; contents become non-pointers.
        "memset" | "bzero" => args.first().copied().flatten(),
        // Searchers return (an alias of) the searched buffer.
        "strchr" | "strrchr" | "strstr" | "memchr" | "strpbrk" | "index" | "rindex" => {
            args.first().copied().flatten()
        }
        // getenv and friends: a fresh static buffer per call site.
        "getenv" | "ttyname" | "ctime" | "asctime" | "gets" => {
            let obj = g.heap_object();
            let t = g.b.temp();
            g.b.addr_of(t, obj);
            Some(t)
        }
        // Callback-driven: qsort/bsearch invoke the comparator on pointers
        // into the array — model as an indirect call whose arguments alias
        // the base buffer's contents' addresses (conservatively, the base
        // pointer itself, which is where the elements live after the
        // array-collapsing abstraction).
        "qsort" | "bsearch" => {
            let (base, cmp) = match name {
                "qsort" => (args.first(), args.get(3)),
                _ => (args.get(1), args.get(4)),
            };
            if let (Some(Some(base)), Some(Some(cmp))) = (base, cmp) {
                g.b.store_offset(*cmp, *base, 2);
                g.b.store_offset(*cmp, *base, 3);
            }
            // bsearch returns a pointer into the array.
            if name == "bsearch" {
                args.get(1).copied().flatten()
            } else {
                None
            }
        }
        // Pure / value-returning / output-only externals.
        "free" | "printf" | "fprintf" | "sprintf" | "snprintf" | "puts" | "putchar" | "exit"
        | "abort" | "atoi" | "atol" | "strlen" | "strcmp" | "strncmp" | "memcmp" | "abs"
        | "rand" | "srand" | "open" | "close" | "read" | "write" | "assert" => None,
        other => {
            g.warnings.push(format!(
                "unknown external `{other}` summarized as pointer-pure"
            ));
            None
        }
    }
}
