//! Recursive-descent parser for the mini-C subset.
//!
//! Faithful to what a field-insensitive constraint generator needs: names,
//! address-of/dereference structure, assignments, calls (direct and through
//! function pointers), declarations (including arrays and function
//! pointers), struct/union definitions (fields are collapsed), typedefs,
//! casts (transparent), and all control flow (visited flow-insensitively).
//! Varargs are rejected, exactly as in the paper ("handle all aspects of
//! the C language except for varargs").

use crate::ast::{Declarator, Expr, Function, Stmt, TranslationUnit};
use crate::lexer::{lex, Token};
use ant_common::fx::FxHashSet;
use std::fmt;

/// Parse error with a source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseCError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseCError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCError {}

const TYPE_KEYWORDS: [&str; 16] = [
    "void", "int", "char", "long", "short", "unsigned", "signed", "float", "double", "const",
    "volatile", "static", "extern", "register", "inline", "_Bool",
];

struct Parser {
    toks: Vec<(Token, usize)>,
    pos: usize,
    typedefs: FxHashSet<String>,
}

type PResult<T> = Result<T, ParseCError>;

/// Parses a mini-C translation unit.
///
/// # Errors
///
/// Returns [`ParseCError`] on lexical errors, malformed syntax, or varargs.
pub fn parse_c(src: &str) -> PResult<TranslationUnit> {
    let toks = lex(src).map_err(|e| ParseCError {
        line: e.line,
        message: e.to_string(),
    })?;
    let mut p = Parser {
        toks,
        pos: 0,
        typedefs: FxHashSet::default(),
    };
    p.translation_unit()
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].0
    }

    fn peek_at(&self, off: usize) -> &Token {
        let i = (self.pos + off).min(self.toks.len() - 1);
        &self.toks[i].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseCError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_ident(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    /// Does the current token begin a type?
    fn at_type_start(&self) -> bool {
        match self.peek() {
            Token::Ident(s) => {
                TYPE_KEYWORDS.contains(&s.as_str())
                    || s == "struct"
                    || s == "union"
                    || s == "enum"
                    || s == "typedef"
                    || self.typedefs.contains(s)
            }
            _ => false,
        }
    }

    /// Consumes a type specifier (keywords, `struct X`, possibly an inline
    /// `struct {...}` body whose fields are irrelevant field-insensitively).
    fn type_specifier(&mut self) -> PResult<()> {
        let mut any = false;
        loop {
            match self.peek().clone() {
                Token::Ident(s) if s == "struct" || s == "union" || s == "enum" => {
                    self.bump();
                    if matches!(self.peek(), Token::Ident(_)) && !self.peek().is_punct("{") {
                        self.bump(); // tag
                    }
                    if self.peek().is_punct("{") {
                        self.skip_balanced("{", "}")?;
                    }
                    any = true;
                }
                Token::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()) => {
                    self.bump();
                    any = true;
                }
                Token::Ident(s) if !any && self.typedefs.contains(&s) => {
                    self.bump();
                    any = true;
                }
                _ => break,
            }
        }
        if any {
            Ok(())
        } else {
            self.err(format!("expected type, found {}", self.peek()))
        }
    }

    fn skip_balanced(&mut self, open: &str, close: &str) -> PResult<()> {
        self.expect_punct(open)?;
        let mut depth = 1;
        loop {
            match self.peek() {
                Token::Eof => return self.err(format!("unterminated `{open}`")),
                t if t.is_punct(open) => depth += 1,
                t if t.is_punct(close) => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return Ok(());
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    fn translation_unit(&mut self) -> PResult<TranslationUnit> {
        let mut tu = TranslationUnit::default();
        while !matches!(self.peek(), Token::Eof) {
            if self.eat_punct(";") {
                continue;
            }
            if self.peek().is_ident("typedef") {
                self.typedef_decl()?;
                continue;
            }
            self.type_specifier()?;
            if self.eat_punct(";") {
                continue; // bare struct/enum definition
            }
            self.external_declarators(&mut tu)?;
        }
        Ok(tu)
    }

    fn typedef_decl(&mut self) -> PResult<()> {
        self.bump(); // typedef
                     // Heuristic: the typedef'd name is the last plain identifier before
                     // the `;` (skipping over array bounds and parameter lists).
        let mut name = None;
        while !self.peek().is_punct(";") {
            match self.bump() {
                Token::Ident(s)
                    if !TYPE_KEYWORDS.contains(&s.as_str())
                        && s != "struct"
                        && s != "union"
                        && s != "enum" =>
                {
                    name = Some(s);
                }
                Token::Punct("{") => {
                    // Rewind one token and skip the body.
                    self.pos -= 1;
                    self.skip_balanced("{", "}")?;
                }
                Token::Punct("(") => {
                    // A function-pointer typedef: the name is inside these
                    // parens; scan them without descending into the
                    // parameter list that follows.
                    let mut depth = 1;
                    while depth > 0 {
                        match self.bump() {
                            Token::Punct("(") => depth += 1,
                            Token::Punct(")") => depth -= 1,
                            Token::Ident(s)
                                if !TYPE_KEYWORDS.contains(&s.as_str()) && depth == 1 =>
                            {
                                name = Some(s);
                            }
                            Token::Eof => return self.err("unterminated typedef"),
                            _ => {}
                        }
                    }
                    if self.peek().is_punct("(") {
                        self.skip_balanced("(", ")")?;
                    }
                    break;
                }
                Token::Eof => return self.err("unterminated typedef"),
                _ => {}
            }
        }
        while !self.eat_punct(";") {
            if matches!(self.peek(), Token::Eof) {
                return self.err("unterminated typedef");
            }
            self.bump();
        }
        match name {
            Some(n) => {
                self.typedefs.insert(n);
                Ok(())
            }
            None => self.err("typedef without a name"),
        }
    }

    /// After a type specifier at file scope: either a function definition or
    /// a list of global declarators.
    fn external_declarators(&mut self, tu: &mut TranslationUnit) -> PResult<()> {
        let first = self.declarator()?;
        // Function definition or prototype?
        if let DeclaratorKind::Function(params) = first.kind {
            if self.peek().is_punct("{") {
                let body = self.block()?;
                tu.functions.push(Function {
                    name: first.name,
                    params,
                    body,
                });
                return Ok(());
            }
            // Prototype: ignore.
            self.expect_punct(";")?;
            return Ok(());
        }
        let mut decls = vec![self.finish_var(first)?];
        while self.eat_punct(",") {
            let d = self.declarator()?;
            decls.push(self.finish_var(d)?);
        }
        self.expect_punct(";")?;
        tu.globals.extend(decls);
        Ok(())
    }

    fn finish_var(&mut self, d: ParsedDeclarator) -> PResult<Declarator> {
        let inits = if self.eat_punct("=") {
            if self.peek().is_punct("{") {
                self.brace_init()?
            } else {
                vec![self.assign_expr()?]
            }
        } else {
            Vec::new()
        };
        Ok(Declarator {
            name: d.name,
            is_array: d.is_array,
            inits,
        })
    }

    fn brace_init(&mut self) -> PResult<Vec<Expr>> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.peek().is_punct("}") {
            if self.peek().is_punct("{") {
                out.extend(self.brace_init()?);
            } else if self.eat_punct(".") {
                // Designated initializer: `.field = expr`.
                let _ = self.ident()?;
                self.expect_punct("=")?;
                out.push(self.assign_expr()?);
            } else {
                out.push(self.assign_expr()?);
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct("}")?;
        Ok(out)
    }

    /// Parses one declarator: stars, the name (possibly inside a
    /// function-pointer grouping), array suffixes, parameter lists.
    fn declarator(&mut self) -> PResult<ParsedDeclarator> {
        while self.eat_punct("*") || self.eat_kw("const") || self.eat_kw("volatile") {}
        if self.eat_punct("(") {
            // Function pointer (or array-of-function-pointers) grouping.
            while self.eat_punct("*") || self.eat_kw("const") {}
            let name = self.ident()?;
            let mut is_array = false;
            while self.peek().is_punct("[") {
                self.skip_balanced("[", "]")?;
                is_array = true;
            }
            self.expect_punct(")")?;
            if self.peek().is_punct("(") {
                self.skip_balanced("(", ")")?; // parameter types, irrelevant
            }
            return Ok(ParsedDeclarator {
                name,
                is_array,
                kind: DeclaratorKind::Var,
            });
        }
        let name = self.ident()?;
        if self.peek().is_punct("(") {
            let params = self.param_names()?;
            return Ok(ParsedDeclarator {
                name,
                is_array: false,
                kind: DeclaratorKind::Function(params),
            });
        }
        let mut is_array = false;
        while self.peek().is_punct("[") {
            self.skip_balanced("[", "]")?;
            is_array = true;
        }
        Ok(ParsedDeclarator {
            name,
            is_array,
            kind: DeclaratorKind::Var,
        })
    }

    fn param_names(&mut self) -> PResult<Vec<String>> {
        self.expect_punct("(")?;
        let mut names = Vec::new();
        if self.eat_punct(")") {
            return Ok(names);
        }
        if self.peek().is_ident("void") && self.peek_at(1).is_punct(")") {
            self.bump();
            self.bump();
            return Ok(names);
        }
        loop {
            if self.peek().is_punct("...") {
                return self.err("varargs are not supported (as in the paper)");
            }
            self.type_specifier()?;
            if self.peek().is_punct(",") || self.peek().is_punct(")") {
                // Unnamed parameter (prototype style).
                names.push(format!("$anon{}", names.len()));
            } else {
                let d = self.declarator()?;
                names.push(d.name);
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(names)
    }

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Token::Eof) {
                return self.err("unterminated block");
            }
            out.push(self.statement()?);
        }
        Ok(out)
    }

    fn statement(&mut self) -> PResult<Stmt> {
        // Labels: `name:` — but not the ternary `? :`.
        if matches!(self.peek(), Token::Ident(s) if !self.at_type_start() && s != "case" && s != "default")
            && self.peek_at(1).is_punct(":")
        {
            self.bump();
            self.bump();
            return self.statement();
        }
        if self.peek().is_punct("{") {
            return Ok(Stmt::Block(self.block()?));
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            let t = Box::new(self.statement()?);
            let e = if self.eat_kw("else") {
                Some(Box::new(self.statement()?))
            } else {
                None
            };
            return Ok(Stmt::If(c, t, e));
        }
        if self.eat_kw("while") || self.eat_kw("switch") {
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            let body = Box::new(self.statement()?);
            return Ok(Stmt::Loop(c, body));
        }
        if self.eat_kw("do") {
            let body = Box::new(self.statement()?);
            if !self.eat_kw("while") {
                return self.err("expected `while` after `do` body");
            }
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Loop(c, body));
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.peek().is_punct(";") {
                None
            } else if self.at_type_start() {
                // C99 for-scope declaration: desugar into a block.
                let d = self.declaration()?;
                self.pos -= 1; // declaration consumed the `;`; re-align
                self.bump();
                let cond = if self.peek().is_punct(";") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(";")?;
                let step = if self.peek().is_punct(")") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(")")?;
                let body = Box::new(self.statement()?);
                return Ok(Stmt::Block(vec![d, Stmt::For(None, cond, step, body)]));
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let cond = if self.peek().is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if self.peek().is_punct(")") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = Box::new(self.statement()?);
            return Ok(Stmt::For(init, cond, step, body));
        }
        if self.eat_kw("return") {
            let e = if self.peek().is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(e));
        }
        if self.eat_kw("break") || self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Empty);
        }
        if self.eat_kw("goto") {
            let _ = self.ident()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Empty);
        }
        if self.eat_kw("case") {
            // Skip the constant expression up to `:`.
            while !self.peek().is_punct(":") {
                if matches!(self.peek(), Token::Eof) {
                    return self.err("unterminated case label");
                }
                self.bump();
            }
            self.bump();
            return self.statement();
        }
        if self.eat_kw("default") {
            self.expect_punct(":")?;
            return self.statement();
        }
        if self.at_type_start() {
            return self.declaration();
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    /// A local declaration statement (consumes the trailing `;`).
    fn declaration(&mut self) -> PResult<Stmt> {
        if self.peek().is_ident("typedef") {
            self.typedef_decl()?;
            return Ok(Stmt::Empty);
        }
        self.type_specifier()?;
        if self.eat_punct(";") {
            return Ok(Stmt::Empty); // bare struct definition in a block
        }
        let mut decls = Vec::new();
        loop {
            let d = self.declarator()?;
            if let DeclaratorKind::Function(_) = d.kind {
                // Local prototype: ignore.
                break;
            }
            decls.push(self.finish_var(d)?);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(Stmt::Decl(decls))
    }

    // ----- expressions -----

    fn expr(&mut self) -> PResult<Expr> {
        let mut e = self.assign_expr()?;
        while self.eat_punct(",") {
            let r = self.assign_expr()?;
            e = Expr::Comma(e.boxed(), r.boxed());
        }
        Ok(e)
    }

    fn assign_expr(&mut self) -> PResult<Expr> {
        let lhs = self.ternary_expr()?;
        const ASSIGN_OPS: [&str; 11] = [
            "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
        ];
        for op in ASSIGN_OPS {
            if self.peek().is_punct(op) {
                self.bump();
                let rhs = self.assign_expr()?;
                let rhs = if op == "=" {
                    rhs
                } else {
                    // l op= r  ⟹  l = l ⊕ r.
                    Expr::Binary(lhs.clone().boxed(), rhs.boxed())
                };
                return Ok(Expr::Assign(lhs.boxed(), rhs.boxed()));
            }
        }
        Ok(lhs)
    }

    fn ternary_expr(&mut self) -> PResult<Expr> {
        let c = self.binary_expr(0)?;
        if self.eat_punct("?") {
            let t = self.expr()?;
            self.expect_punct(":")?;
            let e = self.ternary_expr()?;
            return Ok(Expr::Ternary(c.boxed(), t.boxed(), e.boxed()));
        }
        Ok(c)
    }

    fn binary_expr(&mut self, level: usize) -> PResult<Expr> {
        const LEVELS: [&[&str]; 10] = [
            &["||"],
            &["&&"],
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", ">", "<=", ">="],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if level == LEVELS.len() {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(level + 1)?;
        loop {
            let matched = LEVELS[level].iter().find(|op| self.peek().is_punct(op));
            match matched {
                Some(_) => {
                    self.bump();
                    let rhs = self.binary_expr(level + 1)?;
                    lhs = Expr::Binary(lhs.boxed(), rhs.boxed());
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        if self.eat_punct("*") {
            return Ok(Expr::Deref(self.unary_expr()?.boxed()));
        }
        if self.eat_punct("&") {
            return Ok(Expr::AddrOf(self.unary_expr()?.boxed()));
        }
        if self.eat_punct("!") || self.eat_punct("~") || self.eat_punct("-") || self.eat_punct("+")
        {
            return Ok(Expr::Unary(self.unary_expr()?.boxed()));
        }
        if self.eat_punct("++") || self.eat_punct("--") {
            // Pre-increment: value is the operand.
            return self.unary_expr();
        }
        if self.eat_kw("sizeof") {
            if self.peek().is_punct("(") {
                self.skip_balanced("(", ")")?;
            } else {
                let _ = self.unary_expr()?;
            }
            return Ok(Expr::Opaque);
        }
        // Cast: `(` type `)` unary.
        if self.peek().is_punct("(") {
            let is_cast = match self.peek_at(1) {
                Token::Ident(s) => {
                    TYPE_KEYWORDS.contains(&s.as_str())
                        || s == "struct"
                        || s == "union"
                        || s == "enum"
                        || self.typedefs.contains(s)
                }
                _ => false,
            };
            if is_cast {
                self.skip_balanced("(", ")")?;
                // Casts are transparent to a field-insensitive analysis.
                // A compound literal `(type){...}` is opaque.
                if self.peek().is_punct("{") {
                    self.skip_balanced("{", "}")?;
                    return Ok(Expr::Opaque);
                }
                return self.unary_expr();
            }
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.peek().is_punct(")") {
                    loop {
                        args.push(self.assign_expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
                e = Expr::Call(e.boxed(), args);
            } else if self.eat_punct("[") {
                let i = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(e.boxed(), i.boxed());
            } else if self.eat_punct(".") {
                let f = self.ident()?;
                e = Expr::Field(e.boxed(), f, false);
            } else if self.eat_punct("->") {
                let f = self.ident()?;
                e = Expr::Field(e.boxed(), f, true);
            } else if self.eat_punct("++") || self.eat_punct("--") {
                // Post-increment: value is the operand (conservatively).
            } else {
                return Ok(e);
            }
        }
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        match self.bump() {
            Token::Ident(s) => Ok(Expr::Id(s)),
            Token::Int(_) | Token::Str | Token::Char => Ok(Expr::Opaque),
            Token::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected expression, found {other}"))
            }
        }
    }
}

struct ParsedDeclarator {
    name: String,
    is_array: bool,
    kind: DeclaratorKind,
}

enum DeclaratorKind {
    Var,
    Function(Vec<String>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_and_functions() {
        let tu = parse_c(
            "int x;\n\
             int *p = &x, **q;\n\
             int *id(int *a) { return a; }\n",
        )
        .unwrap();
        assert_eq!(tu.globals.len(), 3);
        assert_eq!(tu.globals[1].name, "p");
        assert_eq!(tu.globals[1].inits.len(), 1);
        assert_eq!(tu.functions.len(), 1);
        assert_eq!(tu.functions[0].params, vec!["a"]);
    }

    #[test]
    fn struct_fields_are_skipped() {
        let tu = parse_c(
            "struct node { struct node *next; int *data; };\n\
             struct node n, *head;\n",
        )
        .unwrap();
        assert_eq!(tu.globals.len(), 2);
        assert_eq!(tu.globals[0].name, "n");
    }

    #[test]
    fn typedefs_enable_declarations() {
        let tu = parse_c(
            "typedef struct node node_t;\n\
             typedef int (*fnptr)(int *);\n\
             node_t *head;\n\
             fnptr callback;\n",
        )
        .unwrap();
        assert_eq!(tu.globals.len(), 2);
        assert_eq!(tu.globals[1].name, "callback");
    }

    #[test]
    fn function_pointers_and_arrays() {
        let tu = parse_c(
            "int (*fp)(int *);\n\
             int *table[16];\n\
             int (*handlers[4])(void);\n",
        )
        .unwrap();
        assert_eq!(tu.globals[0].name, "fp");
        assert!(!tu.globals[0].is_array);
        assert!(tu.globals[1].is_array);
        assert_eq!(tu.globals[2].name, "handlers");
        assert!(tu.globals[2].is_array);
    }

    #[test]
    fn statements_and_expressions() {
        let tu = parse_c(
            "int *g;\n\
             void f(int *p) {\n\
               int *q = p;\n\
               if (p) { g = q; } else g = p;\n\
               while (q) q = *(int**)q;\n\
               for (int i = 0; i < 10; ++i) { g = p; }\n\
               do { g = q; } while (0);\n\
               switch (1) { case 1: g = p; break; default: break; }\n\
               lbl: g = p ? p : q;\n\
               goto lbl;\n\
               return;\n\
             }\n",
        )
        .unwrap();
        assert_eq!(tu.functions.len(), 1);
        assert!(tu.functions[0].body.len() >= 8);
    }

    #[test]
    fn casts_are_transparent() {
        let tu = parse_c("void f(void *v) { int *p; p = (int *) v; }").unwrap();
        let body = &tu.functions[0].body;
        match &body[1] {
            Stmt::Expr(Expr::Assign(_, rhs)) => {
                assert_eq!(**rhs, Expr::Id("v".into()), "cast must be transparent");
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn brace_initializers_collect_elements() {
        let tu = parse_c("int x; int y; int *a[2] = { &x, &y };").unwrap();
        assert_eq!(tu.globals[2].inits.len(), 2);
    }

    #[test]
    fn varargs_rejected() {
        let err = parse_c("int printf(char *fmt, ...);").unwrap_err();
        assert!(err.to_string().contains("varargs"));
    }

    #[test]
    fn compound_assign_desugars() {
        let tu = parse_c("void f(int *p, int n) { p += n; }").unwrap();
        match &tu.functions[0].body[0] {
            Stmt::Expr(Expr::Assign(l, r)) => {
                assert_eq!(**l, Expr::Id("p".into()));
                assert!(matches!(**r, Expr::Binary(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn calls_parse() {
        let tu = parse_c(
            "int *f(int *a, int *b) { return a; }\n\
             int (*fp)(int*);\n\
             void g(int *x) { f(x, x); fp(x); (*fp)(x); }\n",
        )
        .unwrap();
        assert_eq!(tu.functions.len(), 2);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_c("int x;\nint = 3;\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
