//! Deterministic synthetic constraint workloads.
//!
//! The paper evaluates on six open-source C programs we do not have; this
//! generator produces constraint sets with the same *shape*: program-like
//! structure (functions with parameters and returns, globals, address-taken
//! locals, multi-level pointers, direct and indirect calls), the same
//! base/simple/complex proportions (scaled from Table 2), latent cycles
//! that only materialize online, and points-to sets that fatten as the
//! richness parameter grows (Wine's distinguishing trait in §5.2).
//!
//! Every dereferenced pointer is seeded with at least one address-of
//! constraint, as in real programs (dereferencing a never-assigned pointer
//! is a bug); this also matches the materialization assumption underlying
//! Hybrid Cycle Detection's precision argument.

use ant_common::VarId;
use ant_constraints::{Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for one synthetic workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (for reports).
    pub name: String,
    /// Nominal source size, printed in Table 2.
    pub loc: usize,
    /// Target number of base (`a = &b`) constraints.
    pub base: usize,
    /// Target number of simple (`a = b`) constraints.
    pub simple: usize,
    /// Target number of complex (`a = *b` / `*a = b`) constraints.
    pub complex: usize,
    /// Number of functions (each carries a return slot and two parameters).
    pub functions: usize,
    /// Fraction of complex constraints that are indirect-call offsets.
    pub indirect_call_fraction: f64,
    /// Fraction of complex constraints arranged as *ref cycles* —
    /// `t = *p; …; *p = t` patterns whose cycle passes through a ref node.
    /// These are what Hybrid Cycle Detection's offline analysis predicts
    /// (Figure 3 of the paper is exactly this shape) and are ubiquitous in
    /// real C code (container traversal, in-place updates).
    pub ref_cycle_fraction: f64,
    /// Fraction of simple constraints that deliberately close copy cycles.
    pub cycle_density: f64,
    /// Average number of distinct objects seeded per pointer: larger values
    /// fatten points-to sets (Wine-like behaviour).
    pub richness: f64,
    /// Ratio of original to essential constraints (≥ 1). A CIL-style front
    /// end routes nearly every access through single-use temporaries, which
    /// is why the paper's offline variable substitution removes 60–77% of
    /// the constraints; the generator reproduces that structure by padding
    /// with `redundancy − 1` times as many collapsible temporary chains and
    /// duplicated statements.
    pub redundancy: f64,
    /// RNG seed (workloads are fully deterministic).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A small smoke-test workload.
    pub fn tiny(seed: u64) -> Self {
        WorkloadSpec {
            name: "tiny".into(),
            loc: 1_000,
            base: 60,
            simple: 150,
            complex: 90,
            functions: 8,
            indirect_call_fraction: 0.2,
            ref_cycle_fraction: 0.2,
            cycle_density: 0.1,
            richness: 1.5,
            redundancy: 3.0,
            seed,
        }
    }

    /// Generates the workload.
    pub fn generate(&self) -> Program {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA57_600D);
        let mut b = ProgramBuilder::new();

        // Functions first so their slots are contiguous.
        let mut funcs = Vec::with_capacity(self.functions.max(1));
        for i in 0..self.functions.max(1) {
            funcs.push(b.function(&format!("f{i}"), 4)); // fn, ret, p1, p2
        }

        // Variable pools. Pointers outnumber objects; a modest pool of
        // "hub" objects makes points-to sets overlap and grow.
        let total = self.base + self.simple + self.complex;
        let num_ptrs = (total / 3).max(8);
        let num_objs = ((self.base as f64 / self.richness).ceil() as usize).clamp(4, num_ptrs);
        let ptrs: Vec<VarId> = (0..num_ptrs).map(|i| b.var(&format!("p{i}"))).collect();
        let objs: Vec<VarId> = (0..num_objs).map(|i| b.var(&format!("o{i}"))).collect();

        let pick = |rng: &mut StdRng, v: &[VarId]| v[rng.gen_range(0..v.len())];

        // Function-pointer globals used by the indirect-call sites.
        let nfp = (self.functions / 4).max(1);
        let fps: Vec<VarId> = (0..nfp).map(|i| b.var(&format!("fp{i}"))).collect();
        for &fp in &fps {
            let f = pick(&mut rng, &funcs);
            b.addr_of(fp, f);
        }

        // --- base constraints ---
        // Seed every pointer at least once (round-robin), then distribute
        // the remainder zipf-ishly over the pointer pool so some pointers
        // become fat.
        let mut emitted_base = 0;
        let mut i = 0;
        while emitted_base < self.base {
            let p = if emitted_base < num_ptrs {
                ptrs[emitted_base]
            } else if rng.gen_bool(0.3) {
                // Hub pointers: reuse a small prefix.
                ptrs[rng.gen_range(0..(num_ptrs / 8).max(1))]
            } else {
                pick(&mut rng, &ptrs)
            };
            // Objects are sometimes pointers themselves: multi-level chains.
            let o = if rng.gen_bool(0.35) {
                pick(&mut rng, &ptrs)
            } else {
                objs[rng.gen_range(0..num_objs)]
            };
            b.addr_of(p, o);
            emitted_base += 1;
            i += 1;
            let _ = i;
        }

        // --- complex constraints (and the copy chains their ref cycles
        // thread through) ---
        // Dereferenced pointers are always seeded (every pointer got a base
        // constraint above when num_ptrs <= base; otherwise restrict to the
        // seeded prefix).
        let seeded = num_ptrs.min(self.base.max(1));
        let mut core_loads: Vec<(VarId, VarId)> = Vec::new();
        let mut core_stores: Vec<(VarId, VarId)> = Vec::new();
        let mut chain_simple = 0usize;
        let mut emitted_complex = 0;
        while emitted_complex < self.complex {
            let roll = rng.gen::<f64>();
            if roll < self.ref_cycle_fraction * 0.5 {
                // A ref *ring*: R load/store segments chained through R
                // distinct dereferenced pointers —
                //   t_i = *p_i;  *p_(i+1) = t_i;  (indices mod R)
                // Offline this is one big SCC containing R ref nodes, so
                // HCD collapses the points-to sets of every p_i with one
                // representative the moment any p_i is processed; a lazy
                // detector instead watches points-to information circle a
                // cycle spanning all the rings' members until the equality
                // heuristic fires. This is the generalization of Figure 3
                // that dominates real constraint graphs (the paper's
                // benchmarks have SCCs with thousands of nodes).
                let budget = ((self.complex - emitted_complex) / 2).max(1);
                let r = rng.gen_range(4..=16).min(budget);
                let ps: Vec<VarId> = (0..r).map(|_| ptrs[rng.gen_range(0..seeded)]).collect();
                let ts: Vec<VarId> = (0..r).map(|_| pick(&mut rng, &ptrs)).collect();
                for i in 0..r {
                    b.load(ts[i], ps[i]);
                    core_loads.push((ts[i], ps[i]));
                    emitted_complex += 1;
                    if emitted_complex >= self.complex {
                        break;
                    }
                    b.store(ps[(i + 1) % r], ts[i]);
                    core_stores.push((ps[(i + 1) % r], ts[i]));
                    emitted_complex += 1;
                    if emitted_complex >= self.complex {
                        break;
                    }
                }
            } else if roll < self.ref_cycle_fraction {
                // Figure 3 shape, stretched: `t = *p; o1 = t; ...; ok = o(k-1);
                // *p = ok`. Offline, `*p` and the chain form one SCC, so HCD
                // records the pair (p, t) and collapses the whole cycle the
                // moment p is processed; a lazy detector instead lets
                // points-to sets circulate the k+2-hop cycle until the
                // equality heuristic finally fires. The chain runs through
                // address-taken objects so variable substitution keeps it.
                let p = ptrs[rng.gen_range(0..seeded)];
                let t = pick(&mut rng, &ptrs);
                b.load(t, p);
                core_loads.push((t, p));
                emitted_complex += 1;
                let budget_left = self.simple.saturating_sub(chain_simple);
                let k = rng.gen_range(2..=8).min(budget_left);
                let mut prev = t;
                for _ in 0..k {
                    let o = objs[rng.gen_range(0..num_objs)];
                    if o != prev {
                        b.copy(o, prev);
                        chain_simple += 1;
                        prev = o;
                    }
                }
                if emitted_complex < self.complex {
                    b.store(p, prev);
                    core_stores.push((p, prev));
                    emitted_complex += 1;
                }
            } else if roll < self.ref_cycle_fraction + self.indirect_call_fraction {
                // Indirect call site: pass an argument and read the return.
                let fp = pick(&mut rng, &fps);
                let arg = pick(&mut rng, &ptrs);
                b.store_offset(fp, arg, rng.gen_range(2..4));
                emitted_complex += 1;
                if emitted_complex < self.complex {
                    let dst = pick(&mut rng, &ptrs);
                    b.load_offset(dst, fp, 1);
                    emitted_complex += 1;
                }
            } else {
                let p = ptrs[rng.gen_range(0..seeded)];
                if rng.gen_bool(0.5) {
                    let dst = pick(&mut rng, &ptrs);
                    b.load(dst, p);
                    core_loads.push((dst, p));
                } else {
                    let src = pick(&mut rng, &ptrs);
                    b.store(p, src);
                    core_stores.push((p, src));
                }
                emitted_complex += 1;
            }
        }

        // --- simple constraints ---
        // Mostly forward chains clustered into "functions" (consecutive id
        // ranges), with a cycle_density fraction of back edges, plus
        // call-like copies into function parameter/return slots. The ref
        // cycles above already consumed part of the budget.
        let mut emitted_simple = 0;
        let cluster = 16usize;
        while emitted_simple < self.simple.saturating_sub(chain_simple) {
            let r = rng.gen::<f64>();
            if r < self.cycle_density {
                // Close a cycle inside a cluster: an edge from a later
                // pointer back to an earlier one it (likely) flows from.
                let start = rng.gen_range(0..num_ptrs);
                let len = rng.gen_range(2..=cluster.min(num_ptrs));
                let a = ptrs[start];
                let z = ptrs[(start + len - 1) % num_ptrs];
                b.copy(a, z);
            } else if r < self.cycle_density + 0.15 {
                // Direct call: argument copy into a parameter slot, or a
                // return copy out.
                let f = pick(&mut rng, &funcs);
                if rng.gen_bool(0.5) {
                    let arg = pick(&mut rng, &ptrs);
                    let slot = f.offset(rng.gen_range(2..4));
                    b.copy(slot, arg);
                } else {
                    let dst = pick(&mut rng, &ptrs);
                    b.copy(dst, f.offset(1));
                }
            } else if r < self.cycle_density + 0.55 {
                // Copy into an address-taken object (`x = p` where x's
                // address escapes): these survive variable substitution,
                // like most of the reduced simple constraints in Table 2.
                let o = objs[rng.gen_range(0..num_objs)];
                let a = pick(&mut rng, &ptrs);
                b.copy(o, a);
            } else {
                // Forward chain edge within a cluster.
                let start = rng.gen_range(0..num_ptrs);
                let a = ptrs[start];
                let z = ptrs[(start + 1 + rng.gen_range(0..cluster)) % num_ptrs];
                b.copy(z, a);
            }
            emitted_simple += 1;
        }

        // --- CIL-style redundancy ---
        // Pad with the temporary-copy chains and repeated statements a real
        // front end produces; offline variable substitution removes these,
        // reproducing the paper's 60–77% reduction.
        let core = self.base + self.simple + self.complex;
        let extra = ((self.redundancy.max(1.0) - 1.0) * core as f64) as usize;
        let mut temps: Vec<VarId> = Vec::new();
        for t in 0..extra {
            let r = rng.gen::<f64>();
            if r < 0.55 {
                // Fresh temporary copying an existing pointer.
                let tv = b.var(&format!("t{t}"));
                let src = pick(&mut rng, &ptrs);
                b.copy(tv, src);
                temps.push(tv);
            } else if r < 0.80 && !temps.is_empty() {
                // Chain extension: temp of a temp.
                let tv = b.var(&format!("t{t}"));
                let src = pick(&mut rng, &temps);
                b.copy(tv, src);
                temps.push(tv);
            } else if r < 0.92 && !(core_loads.is_empty() && core_stores.is_empty()) {
                // Repeated statement: an exact duplicate of a core
                // load/store — deduplicated by variable substitution.
                if rng.gen_bool(0.5) && !core_loads.is_empty() {
                    let (dst, p) = core_loads[rng.gen_range(0..core_loads.len())];
                    b.load(dst, p);
                } else if !core_stores.is_empty() {
                    let (p, src) = core_stores[rng.gen_range(0..core_stores.len())];
                    b.store(p, src);
                }
            } else if !core_loads.is_empty() {
                // A core access re-expressed through a temporary alias:
                // OVS merges the temp into the pointer, turning this into a
                // duplicate of the original load.
                let (dst, p) = core_loads[rng.gen_range(0..core_loads.len())];
                let tv = b.var(&format!("t{t}"));
                b.copy(tv, p);
                temps.push(tv);
                b.load(dst, tv);
            } else {
                // Degenerate spec without loads: plain temp chain.
                let tv = b.var(&format!("t{t}"));
                let src = pick(&mut rng, &ptrs);
                b.copy(tv, src);
                temps.push(tv);
            }
        }

        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let spec = WorkloadSpec::tiny(42);
        let p1 = spec.generate();
        let p2 = spec.generate();
        assert_eq!(p1, p2);
        let p3 = WorkloadSpec::tiny(43).generate();
        assert_ne!(p1, p3);
    }

    #[test]
    fn hits_constraint_targets() {
        let spec = WorkloadSpec {
            base: 100,
            simple: 200,
            complex: 150,
            redundancy: 1.0,
            ..WorkloadSpec::tiny(7)
        };
        let p = spec.generate();
        let s = p.stats();
        // Base also includes function-pointer seeds; totals are close to
        // the targets.
        assert!(s.base >= 100 && s.base <= 110, "base = {}", s.base);
        assert_eq!(s.simple, 200);
        assert_eq!(s.complex1 + s.complex2, 150);
    }

    #[test]
    fn redundancy_pads_collapsible_constraints() {
        let lean = WorkloadSpec {
            redundancy: 1.0,
            ..WorkloadSpec::tiny(7)
        };
        let fat = WorkloadSpec {
            redundancy: 4.0,
            ..WorkloadSpec::tiny(7)
        };
        let pl = lean.generate();
        let pf = fat.generate();
        assert!(pf.stats().total() > 3 * pl.stats().total());
        // OVS removes most of the padding.
        use ant_constraints::pipeline::{OvsPass, PassPipeline};
        let rl = PassPipeline::empty().push(OvsPass).run(&pl);
        let rf = PassPipeline::empty().push(OvsPass).run(&pf);
        let lean_red = rl.reduction_percent();
        let fat_red = rf.reduction_percent();
        assert!(fat_red > 55.0, "fat reduction only {fat_red:.0}%");
        assert!(fat_red > lean_red);
    }

    #[test]
    fn dereferenced_pointers_are_seeded() {
        use ant_constraints::ConstraintKind;
        let p = WorkloadSpec::tiny(3).generate();
        // A dereferenced variable must have a non-empty points-to set at
        // the fixpoint: a base constraint, or a copy path from one.
        let mut has_pts = vec![false; p.num_vars()];
        for c in p.constraints() {
            if c.kind == ConstraintKind::AddrOf {
                has_pts[c.lhs.index()] = true;
            }
        }
        loop {
            let mut changed = false;
            for c in p.constraints() {
                if c.kind == ConstraintKind::Copy
                    && has_pts[c.rhs.index()]
                    && !has_pts[c.lhs.index()]
                {
                    has_pts[c.lhs.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for c in p.constraints() {
            match c.kind {
                ConstraintKind::Load if c.offset == 0 => {
                    assert!(has_pts[c.rhs.index()], "deref of empty pointer")
                }
                ConstraintKind::Store if c.offset == 0 => {
                    assert!(has_pts[c.lhs.index()], "store through empty pointer")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn offsets_stay_in_function_blocks() {
        let p = WorkloadSpec::tiny(11).generate();
        for c in p.constraints() {
            if c.offset > 0 {
                // Offsets come from indirect-call encoding: 1..=3.
                assert!(c.offset <= 3);
            }
        }
    }
}
