//! The benchmark suite: six synthetic workloads shaped like the paper's
//! Table 2 benchmarks, scaled by a common factor.
//!
//! | name        |   LOC | original constraints | base | simple | complex |
//! |-------------|-------|----------------------|------|--------|---------|
//! | emacs       |  169K |               83,213 | 4,088| 11,095 |  6,277  |
//! | ghostscript |  242K |              169,312 |12,154| 25,880 | 29,276  |
//! | gimp        |  554K |              411,783 |17,083| 43,878 | 35,522  |
//! | insight     |  603K |              243,404 |13,198| 35,382 | 36,795  |
//! | wine        |1,338K |              713,065 |39,166| 62,499 | 69,572  |
//! | linux       |2,172K |              574,788 |25,678| 77,936 |100,119  |
//!
//! The base/simple/complex columns are the paper's *reduced* breakdown; we
//! generate original constraints in those proportions (scaled up by the
//! original/reduced ratio) and let our own OVS pass reduce them, mirroring
//! the paper's pipeline. Per-benchmark character knobs: Wine gets the
//! highest richness (fat points-to sets — its final graph is an order of
//! magnitude larger than Linux's despite fewer constraints), Linux gets the
//! most functions and complex constraints.

use crate::workload::WorkloadSpec;
use ant_constraints::Program;

/// Default scale factor relative to the paper's constraint counts. At 0.03
/// the largest benchmark is ≈ 17K original constraints — sized so the full
/// 9-algorithm × 6-benchmark sweep (including the BDD-heavy BLQ runs)
/// finishes in a few minutes on a laptop. Raise `ANT_SCALE` to stress the
/// solvers.
pub const DEFAULT_SCALE: f64 = 0.03;

/// Scale factor from the `ANT_SCALE` environment variable, defaulting to
/// [`DEFAULT_SCALE`]. Raise it to stress the solvers.
pub fn scale_from_env() -> f64 {
    std::env::var("ANT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// One benchmark of the suite.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The workload parameters.
    pub spec: WorkloadSpec,
}

impl Benchmark {
    /// Generates the constraint program.
    pub fn program(&self) -> Program {
        self.spec.generate()
    }

    /// Benchmark name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }
}

struct Row {
    name: &'static str,
    loc: usize,
    original: usize,
    base: usize,
    simple: usize,
    complex: usize,
    richness: f64,
    functions_per_kc: f64, // functions per 1000 original constraints
    indirect: f64,
    ref_cycles: f64,
    cycles: f64,
    seed: u64,
}

const ROWS: [Row; 6] = [
    Row {
        name: "emacs",
        loc: 169_000,
        original: 83_213,
        base: 4_088,
        simple: 11_095,
        complex: 6_277,
        richness: 1.6,
        functions_per_kc: 10.0,
        indirect: 0.10,
        ref_cycles: 0.22,
        cycles: 0.06,
        seed: 0xE14AC5,
    },
    Row {
        name: "ghostscript",
        loc: 242_000,
        original: 169_312,
        base: 12_154,
        simple: 25_880,
        complex: 29_276,
        richness: 2.2,
        functions_per_kc: 9.0,
        indirect: 0.14,
        ref_cycles: 0.28,
        cycles: 0.08,
        seed: 0x6057,
    },
    Row {
        name: "gimp",
        loc: 554_000,
        original: 411_783,
        base: 17_083,
        simple: 43_878,
        complex: 35_522,
        richness: 2.4,
        functions_per_kc: 8.0,
        indirect: 0.12,
        ref_cycles: 0.25,
        cycles: 0.09,
        seed: 0x617B,
    },
    Row {
        name: "insight",
        loc: 603_000,
        original: 243_404,
        base: 13_198,
        simple: 35_382,
        complex: 36_795,
        richness: 2.4,
        functions_per_kc: 8.5,
        indirect: 0.15,
        ref_cycles: 0.3,
        cycles: 0.09,
        seed: 0x1256,
    },
    Row {
        name: "wine",
        loc: 1_338_000,
        original: 713_065,
        base: 39_166,
        simple: 62_499,
        complex: 69_572,
        // Wine's signature: fat points-to sets (its final constraint graph
        // is an order of magnitude larger than Linux's, §5.2).
        richness: 4.5,
        functions_per_kc: 7.0,
        indirect: 0.18,
        ref_cycles: 0.3,
        cycles: 0.12,
        seed: 0x817E,
    },
    Row {
        name: "linux",
        loc: 2_172_000,
        original: 574_788,
        base: 25_678,
        simple: 77_936,
        complex: 100_119,
        richness: 2.0,
        functions_per_kc: 11.0,
        indirect: 0.16,
        ref_cycles: 0.28,
        cycles: 0.08,
        seed: 0x11A0,
    },
];

/// Builds the six-benchmark suite at the given scale factor.
pub fn suite(scale: f64) -> Vec<Benchmark> {
    assert!(scale > 0.0, "scale must be positive");
    ROWS.iter()
        .map(|r| {
            // The essential constraints follow the paper's *reduced*
            // breakdown; the generator pads with collapsible CIL-style
            // temporaries up to the paper's *original* count, so our OVS
            // pass reproduces the 60–77% reduction.
            let reduced_total = (r.base + r.simple + r.complex) as f64;
            let redundancy = r.original as f64 / reduced_total;
            Benchmark {
                spec: WorkloadSpec {
                    name: r.name.to_owned(),
                    loc: (r.loc as f64 * scale) as usize,
                    base: ((r.base as f64 * scale) as usize).max(8),
                    simple: ((r.simple as f64 * scale) as usize).max(8),
                    complex: ((r.complex as f64 * scale) as usize).max(8),
                    functions: ((r.original as f64 * scale * r.functions_per_kc / 1000.0) as usize)
                        .max(4),
                    indirect_call_fraction: r.indirect,
                    ref_cycle_fraction: r.ref_cycles,
                    cycle_density: r.cycles,
                    richness: r.richness,
                    redundancy,
                    seed: r.seed,
                },
            }
        })
        .collect()
}

/// The suite at the environment-selected scale.
pub fn default_suite() -> Vec<Benchmark> {
    suite(scale_from_env())
}

/// Looks up one benchmark by name at the given scale.
pub fn benchmark(name: &str, scale: f64) -> Option<Benchmark> {
    suite(scale).into_iter().find(|b| b.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_benchmarks_in_paper_order() {
        let s = suite(0.01);
        let names: Vec<&str> = s.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["emacs", "ghostscript", "gimp", "insight", "wine", "linux"]
        );
    }

    #[test]
    fn scaled_sizes_track_the_paper() {
        let s = suite(0.01);
        let totals: Vec<usize> = s.iter().map(|b| b.program().stats().total()).collect();
        // Original constraint counts scaled by 0.01 (±10% for rounding and
        // generator structure).
        let expect = [832.0, 1693.0, 4117.0, 2434.0, 7130.0, 5747.0];
        for (t, e) in totals.iter().zip(expect) {
            let ratio = *t as f64 / e;
            assert!((0.85..=1.15).contains(&ratio), "total {t} vs expected {e}");
        }
    }

    #[test]
    fn wine_is_richest() {
        let s = suite(0.01);
        let wine = &s[4];
        for (i, b) in s.iter().enumerate() {
            if i != 4 {
                assert!(wine.spec.richness > b.spec.richness);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("wine", 0.01).is_some());
        assert!(benchmark("nope", 0.01).is_none());
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let a = benchmark("emacs", 0.02).unwrap().program();
        let b = benchmark("emacs", 0.02).unwrap().program();
        assert_eq!(a, b);
    }
}
