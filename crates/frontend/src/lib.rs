//! Constraint generation for the ant-grasshopper pointer analysis: a mini-C
//! front end (the stand-in for the paper's CIL-based generator) and a
//! deterministic synthetic workload generator (the stand-in for the paper's
//! six open-source benchmark programs).
//!
//! # Example
//!
//! ```
//! use ant_frontend::compile_c;
//!
//! let out = compile_c(
//!     "int x;\n\
//!      int *id(int *a) { return a; }\n\
//!      int *p;\n\
//!      void main() { p = id(&x); }",
//! )?;
//! assert!(out.program.stats().total() > 0);
//! # Ok::<(), ant_frontend::FrontendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod constgen;
mod lexer;
mod parser;
mod stubs;
pub mod suite;
pub mod workload;

pub use constgen::{generate, GenOutput};
pub use lexer::{lex, LexError, Token};
pub use parser::{parse_c, ParseCError};

/// Error from [`compile_c`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontendError(ParseCError);

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for FrontendError {}

impl From<FrontendError> for ant_common::AntError {
    fn from(e: FrontendError) -> Self {
        ant_common::AntError::parse(e.to_string()).with_source(e)
    }
}

/// Parses mini-C source and generates its inclusion constraints.
///
/// # Errors
///
/// Returns [`FrontendError`] on lexical or syntactic errors (including
/// varargs, which the analysis does not handle — exactly as in the paper).
pub fn compile_c(src: &str) -> Result<GenOutput, FrontendError> {
    let tu = parse_c(src).map_err(FrontendError)?;
    Ok(generate(&tu))
}
