//! Tokenizer for the mini-C front end.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (value irrelevant to the analysis).
    Int(i64),
    /// String literal (contents irrelevant).
    Str,
    /// Character literal.
    Char,
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl Token {
    /// Is this exactly the punctuation `p`?
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Token::Punct(q) if *q == p)
    }

    /// Is this exactly the identifier/keyword `kw`?
    pub fn is_ident(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Int(v) => write!(f, "integer {v}"),
            Token::Str => write!(f, "string literal"),
            Token::Char => write!(f, "character literal"),
            Token::Punct(p) => write!(f, "`{p}`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// Error produced when the source contains an unrecognized character.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number.
    pub line: usize,
    /// The offending character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: unexpected character {:?}", self.line, self.ch)
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first.
const PUNCTS: [&str; 38] = [
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",", ".", "?",
    ":", "~", "=", "<", ">", "!",
];
const SINGLE: &str = "*&+-/%|^";

/// Tokenizes `src`, returning tokens with their 1-based line numbers.
///
/// # Errors
///
/// Returns [`LexError`] on characters that cannot start any token.
pub fn lex(src: &str) -> Result<Vec<(Token, usize)>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] as char {
                '/' => {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    i += 2;
                    while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i = (i + 2).min(bytes.len());
                    continue;
                }
                _ => {}
            }
        }
        // Preprocessor lines are ignored (the front end expects
        // already-preprocessed or preprocessor-free sources).
        if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((Token::Ident(src[start..i].to_owned()), line));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'.' || bytes[i] == b'x')
            {
                i += 1;
            }
            let text = &src[start..i];
            let suffix: &[char] = &['u', 'U', 'l', 'L'];
            let value =
                if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                    i64::from_str_radix(hex.trim_end_matches(suffix), 16).unwrap_or(0)
                } else {
                    // The numeric value is irrelevant to the analysis; floats
                    // and exotic forms simply lex to 0.
                    text.trim_end_matches(|c: char| c.is_ascii_alphabetic())
                        .parse()
                        .unwrap_or(0)
                };
            out.push((Token::Int(value), line));
            continue;
        }
        if c == '"' {
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 1;
            out.push((Token::Str, line));
            continue;
        }
        if c == '\'' {
            i += 1;
            while i < bytes.len() && bytes[i] != b'\'' {
                if bytes[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
            out.push((Token::Char, line));
            continue;
        }
        // Operators, longest match first.
        let rest = &src[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            out.push((Token::Punct(p), line));
            i += p.len();
            continue;
        }
        if SINGLE.contains(c) {
            let p = match c {
                '*' => "*",
                '&' => "&",
                '+' => "+",
                '-' => "-",
                '/' => "/",
                '%' => "%",
                '|' => "|",
                '^' => "^",
                _ => unreachable!(),
            };
            out.push((Token::Punct(p), line));
            i += 1;
            continue;
        }
        return Err(LexError { line, ch: c });
    }
    out.push((Token::Eof, line));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = toks("p = &x;");
        assert_eq!(
            t,
            vec![
                Token::Ident("p".into()),
                Token::Punct("="),
                Token::Punct("&"),
                Token::Ident("x".into()),
                Token::Punct(";"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        let t = toks("a->b != c && d <<= 2");
        assert!(t.contains(&Token::Punct("->")));
        assert!(t.contains(&Token::Punct("!=")));
        assert!(t.contains(&Token::Punct("&&")));
        assert!(t.contains(&Token::Punct("<<=")));
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let t = toks("#include <stdio.h>\n// nope\n/* multi\nline */ x");
        assert_eq!(t, vec![Token::Ident("x".into()), Token::Eof]);
    }

    #[test]
    fn literals() {
        let t = toks("42 0x1f 'a' \"str\\\"ing\" 10L");
        assert_eq!(
            t,
            vec![
                Token::Int(42),
                Token::Int(0x1f),
                Token::Char,
                Token::Str,
                Token::Int(10),
                Token::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let lexed = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = lexed.iter().map(|&(_, l)| l).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn rejects_garbage() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.ch, '@');
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("unexpected character"));
    }
}
