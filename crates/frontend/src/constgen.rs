//! Constraint generation: AST → inclusion constraints.
//!
//! Implements the standard field-insensitive Andersen generation rules
//! (Table 1 of the paper) with auxiliary temporaries so that every
//! constraint carries at most one dereference, Pearce-style indirect-call
//! encoding (offsets into function variable blocks), array collapsing
//! (an array is one object; `a` decays to `&a`, `a[i]` to `*a`), and
//! per-call-site heap abstraction for the allocator stubs.

use crate::ast::{Declarator, Expr, Function, Stmt, TranslationUnit};
use crate::stubs;
use ant_common::fx::FxHashMap;
use ant_common::VarId;
use ant_constraints::{Program, ProgramBuilder};

#[derive(Clone, Copy, Debug)]
struct Binding {
    var: VarId,
    is_array: bool,
}

#[derive(Clone, Copy, Debug)]
struct FuncInfo {
    var: VarId,
    nparams: usize,
}

/// Result of constraint generation.
#[derive(Debug)]
pub struct GenOutput {
    /// The generated constraint program.
    pub program: Program,
    /// Non-fatal notes (implicitly declared identifiers, unknown externals
    /// summarized by the generic stub).
    pub warnings: Vec<String>,
}

pub(crate) struct Gen {
    pub b: ProgramBuilder,
    scopes: Vec<FxHashMap<String, Binding>>,
    funcs: FxHashMap<String, FuncInfo>,
    current_ret: Option<VarId>,
    heap_count: usize,
    uniq: usize,
    pub warnings: Vec<String>,
}

/// Generates constraints for a parsed translation unit.
pub fn generate(tu: &TranslationUnit) -> GenOutput {
    let mut g = Gen {
        b: ProgramBuilder::new(),
        scopes: vec![FxHashMap::default()],
        funcs: FxHashMap::default(),
        current_ret: None,
        heap_count: 0,
        uniq: 0,
        warnings: Vec::new(),
    };
    // Pass 1: allocate every function block (function variable, then its
    // return slot at offset 1 and parameters at offsets 2..).
    for f in &tu.functions {
        if g.funcs.contains_key(&f.name) {
            g.warnings.push(format!("duplicate function {}", f.name));
            continue;
        }
        let slots = 2 + f.params.len() as u32;
        let var = g.b.function(&f.name, slots);
        g.funcs.insert(
            f.name.clone(),
            FuncInfo {
                var,
                nparams: f.params.len(),
            },
        );
    }
    // Pass 2: globals.
    for d in &tu.globals {
        g.declare(d);
    }
    // Pass 3: function bodies.
    for f in &tu.functions {
        g.function_body(f);
    }
    GenOutput {
        program: g.b.finish(),
        warnings: g.warnings,
    }
}

impl Gen {
    fn temp(&mut self) -> VarId {
        self.b.temp()
    }

    /// Declares `d` in the current scope and processes its initializers.
    fn declare(&mut self, d: &Declarator) {
        let mangled = if self.scopes.len() == 1 {
            d.name.clone()
        } else {
            self.uniq += 1;
            format!("{}.{}", d.name, self.uniq)
        };
        let var = self.b.var(&mangled);
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .insert(
                d.name.clone(),
                Binding {
                    var,
                    is_array: d.is_array,
                },
            );
        let inits = d.inits.clone();
        for init in &inits {
            if let Some(rv) = self.rvalue(init) {
                // Initialization flows into the object (weakly for arrays
                // and braces — exactly what flow-insensitivity gives us).
                self.b.copy(var, rv);
            }
        }
    }

    fn lookup(&mut self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(&b) = scope.get(name) {
                return Some(b);
            }
        }
        None
    }

    /// Looks up `name`, implicitly declaring it as a global if unknown
    /// (pre-C99 implicit declaration; also how extern objects appear).
    fn lookup_or_declare(&mut self, name: &str) -> Binding {
        if let Some(b) = self.lookup(name) {
            return b;
        }
        let var = self.b.var(name);
        let b = Binding {
            var,
            is_array: false,
        };
        self.scopes[0].insert(name.to_owned(), b);
        self.warnings
            .push(format!("implicitly declared identifier `{name}`"));
        b
    }

    fn function_body(&mut self, f: &Function) {
        let info = self.funcs[&f.name];
        self.current_ret = Some(info.var.offset(1));
        self.scopes.push(FxHashMap::default());
        for (i, p) in f.params.iter().enumerate() {
            self.scopes.last_mut().expect("scope").insert(
                p.clone(),
                Binding {
                    var: info.var.offset(2 + i as u32),
                    is_array: false,
                },
            );
        }
        for s in &f.body {
            self.stmt(s);
        }
        self.scopes.pop();
        self.current_ret = None;
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(ds) => {
                for d in ds {
                    self.declare(d);
                }
            }
            Stmt::Expr(e) => {
                self.rvalue(e);
            }
            Stmt::Return(Some(e)) => {
                if let (Some(rv), Some(ret)) = (self.rvalue(e), self.current_ret) {
                    self.b.copy(ret, rv);
                }
            }
            Stmt::Return(None) | Stmt::Empty => {}
            Stmt::Block(body) => {
                self.scopes.push(FxHashMap::default());
                for s in body {
                    self.stmt(s);
                }
                self.scopes.pop();
            }
            Stmt::If(c, t, e) => {
                self.rvalue(c);
                self.stmt(t);
                if let Some(e) = e {
                    self.stmt(e);
                }
            }
            Stmt::Loop(c, body) => {
                self.rvalue(c);
                self.stmt(body);
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(e) = init {
                    self.rvalue(e);
                }
                if let Some(e) = cond {
                    self.rvalue(e);
                }
                if let Some(e) = step {
                    self.rvalue(e);
                }
                self.stmt(body);
            }
        }
    }

    /// Evaluates `e` for its pointer value, emitting constraints for its
    /// side effects. `None` means "no pointer value" (integers, etc.).
    pub(crate) fn rvalue(&mut self, e: &Expr) -> Option<VarId> {
        match e {
            Expr::Id(name) => {
                if let Some(&f) = self.funcs.get(name) {
                    // A function designator decays to its address.
                    let t = self.temp();
                    self.b.addr_of(t, f.var);
                    return Some(t);
                }
                let b = self.lookup_or_declare(name);
                if b.is_array {
                    // Array-to-pointer decay: the value is &object.
                    let t = self.temp();
                    self.b.addr_of(t, b.var);
                    Some(t)
                } else {
                    Some(b.var)
                }
            }
            Expr::Deref(inner) => {
                let p = self.rvalue(inner)?;
                let t = self.temp();
                self.b.load(t, p);
                Some(t)
            }
            Expr::AddrOf(inner) => self.addr_of(inner),
            Expr::Field(base, _, arrow) => {
                if *arrow {
                    // p->f ≡ *p, field-insensitively.
                    let p = self.rvalue(base)?;
                    let t = self.temp();
                    self.b.load(t, p);
                    Some(t)
                } else {
                    // s.f ≡ s.
                    self.rvalue(base)
                }
            }
            Expr::Index(base, idx) => {
                self.rvalue(idx);
                // a[i] ≡ *(a decayed); p[i] ≡ *p.
                let p = self.rvalue(base)?;
                let t = self.temp();
                self.b.load(t, p);
                Some(t)
            }
            Expr::Call(callee, args) => self.call(callee, args),
            Expr::Assign(l, r) => {
                let rv = self.rvalue(r);
                self.assign_to(l, rv);
                rv
            }
            Expr::Ternary(c, t, e) => {
                self.rvalue(c);
                let a = self.rvalue(t);
                let b = self.rvalue(e);
                self.merge(a, b)
            }
            Expr::Binary(a, b) => {
                // Pointer arithmetic and comparisons: the value may derive
                // from either operand (conservative).
                let ra = self.rvalue(a);
                let rb = self.rvalue(b);
                self.merge(ra, rb)
            }
            Expr::Unary(inner) => {
                self.rvalue(inner);
                None
            }
            Expr::Comma(a, b) => {
                self.rvalue(a);
                self.rvalue(b)
            }
            Expr::Opaque => None,
        }
    }

    fn merge(&mut self, a: Option<VarId>, b: Option<VarId>) -> Option<VarId> {
        match (a, b) {
            (None, None) => None,
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (Some(x), Some(y)) => {
                let t = self.temp();
                self.b.copy(t, x);
                self.b.copy(t, y);
                Some(t)
            }
        }
    }

    /// `&lvalue`.
    fn addr_of(&mut self, inner: &Expr) -> Option<VarId> {
        match inner {
            Expr::Id(name) => {
                if let Some(&f) = self.funcs.get(name) {
                    let t = self.temp();
                    self.b.addr_of(t, f.var);
                    return Some(t);
                }
                let b = self.lookup_or_declare(name);
                let t = self.temp();
                self.b.addr_of(t, b.var);
                Some(t)
            }
            // &*e ≡ e.
            Expr::Deref(e) => self.rvalue(e),
            // &a[i] ≡ a (decayed) or p (pointer indexing).
            Expr::Index(e, idx) => {
                self.rvalue(idx);
                self.rvalue(e)
            }
            // &s.f ≡ &s; &p->f ≡ p.
            Expr::Field(base, _, arrow) => {
                if *arrow {
                    self.rvalue(base)
                } else {
                    self.addr_of(base)
                }
            }
            other => self.rvalue(other),
        }
    }

    /// Assignment into an lvalue.
    fn assign_to(&mut self, l: &Expr, rv: Option<VarId>) {
        match l {
            Expr::Id(name) => {
                let b = self.lookup_or_declare(name);
                if let Some(rv) = rv {
                    self.b.copy(b.var, rv);
                }
            }
            Expr::Deref(e) => {
                let p = self.rvalue(e);
                if let (Some(p), Some(rv)) = (p, rv) {
                    self.b.store(p, rv);
                }
            }
            Expr::Index(e, idx) => {
                self.rvalue(idx);
                let p = self.rvalue(e);
                if let (Some(p), Some(rv)) = (p, rv) {
                    self.b.store(p, rv);
                }
            }
            Expr::Field(base, _, arrow) => {
                if *arrow {
                    let p = self.rvalue(base);
                    if let (Some(p), Some(rv)) = (p, rv) {
                        self.b.store(p, rv);
                    }
                } else {
                    self.assign_to(base, rv);
                }
            }
            Expr::Ternary(c, t, e) => {
                self.rvalue(c);
                self.assign_to(t, rv);
                self.assign_to(e, rv);
            }
            Expr::Comma(a, b) => {
                self.rvalue(a);
                self.assign_to(b, rv);
            }
            // Assignments into casts of lvalues arrive as the inner lvalue
            // (casts are transparent); anything else has no effect on the
            // points-to solution.
            _ => {
                self.rvalue(l);
            }
        }
    }

    /// A fresh heap object for an allocation site.
    pub(crate) fn heap_object(&mut self) -> VarId {
        let name = format!("heap${}", self.heap_count);
        self.heap_count += 1;
        self.b.var(&name)
    }

    fn call(&mut self, callee: &Expr, args: &[Expr]) -> Option<VarId> {
        // `(*fp)(...)` ≡ `fp(...)`: a dereffed function designator decays
        // right back.
        let callee = match callee {
            Expr::Deref(inner) => inner,
            other => other,
        };
        if let Expr::Id(name) = callee {
            if let Some(&info) = self.funcs.get(name) {
                // Direct call to a defined function.
                let rvs: Vec<Option<VarId>> = args.iter().map(|a| self.rvalue(a)).collect();
                for (i, rv) in rvs.iter().enumerate() {
                    if let Some(rv) = rv {
                        if i < info.nparams {
                            self.b.copy(info.var.offset(2 + i as u32), *rv);
                        }
                    }
                }
                let t = self.temp();
                self.b.copy(t, info.var.offset(1));
                return Some(t);
            }
            if self.lookup(name).is_none() {
                // Undefined function: libc stub summary.
                let rvs: Vec<Option<VarId>> = args.iter().map(|a| self.rvalue(a)).collect();
                return stubs::apply(self, name, &rvs);
            }
        }
        // Indirect call through a function pointer.
        let fp = self.rvalue(callee)?;
        let rvs: Vec<Option<VarId>> = args.iter().map(|a| self.rvalue(a)).collect();
        for (i, rv) in rvs.iter().enumerate() {
            if let Some(rv) = rv {
                self.b.store_offset(fp, *rv, 2 + i as u32);
            }
        }
        let t = self.temp();
        self.b.load_offset(t, fp, 1);
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_c;
    use ant_constraints::ConstraintKind;

    fn gen(src: &str) -> GenOutput {
        generate(&parse_c(src).unwrap())
    }

    /// Convenience: solve with the basic algorithm and check a points-to
    /// relationship by variable names.
    fn solve(out: &GenOutput) -> ant_core::Solution {
        ant_core::solve_dyn(
            &out.program,
            &ant_core::SolverConfig::new(ant_core::Algorithm::Basic),
            ant_core::PtsKind::Bitmap,
        )
        .solution
    }

    fn points_to(out: &GenOutput, sol: &ant_core::Solution, p: &str, x: &str) -> bool {
        let pv = out.program.var_by_name(p).unwrap();
        let xv = out.program.var_by_name(x).unwrap();
        sol.may_point_to(pv, xv)
    }

    #[test]
    fn basic_address_flow() {
        let out = gen("int x; int *p; int *q; void main() { p = &x; q = p; }");
        let sol = solve(&out);
        assert!(points_to(&out, &sol, "p", "x"));
        assert!(points_to(&out, &sol, "q", "x"));
    }

    #[test]
    fn loads_and_stores() {
        let out = gen("int x; int *p; int **pp; int *r;\n\
             void main() { p = &x; pp = &p; r = *pp; **pp = x; }");
        let sol = solve(&out);
        assert!(points_to(&out, &sol, "pp", "p"));
        assert!(points_to(&out, &sol, "r", "x"));
    }

    #[test]
    fn direct_calls_flow_args_and_returns() {
        let out = gen("int *id(int *a) { return a; }\n\
             int x; int *p;\n\
             void main() { p = id(&x); }");
        let sol = solve(&out);
        assert!(points_to(&out, &sol, "p", "x"));
    }

    #[test]
    fn indirect_calls_via_function_pointer() {
        let out = gen("int *id(int *a) { return a; }\n\
             int *(*fp)(int *);\n\
             int x; int *p; int *q;\n\
             void main() { fp = id; p = fp(&x); q = (*fp)(&x); }");
        let sol = solve(&out);
        assert!(points_to(&out, &sol, "fp", "id"));
        assert!(points_to(&out, &sol, "p", "x"));
        assert!(points_to(&out, &sol, "q", "x"));
    }

    #[test]
    fn fields_collapse() {
        let out = gen("struct s { int *f; int *g; };\n\
             struct s obj; struct s *sp; int x; int *r;\n\
             void main() { obj.f = &x; sp = &obj; sp->g = obj.f; r = sp->f; }");
        let sol = solve(&out);
        // Field-insensitive: obj.f and obj.g are both just obj.
        assert!(points_to(&out, &sol, "obj", "x"));
        assert!(points_to(&out, &sol, "r", "x"));
    }

    #[test]
    fn arrays_collapse_to_one_object() {
        let out = gen("int x; int y; int *a[4]; int *r;\n\
             void main() { a[0] = &x; a[1] = &y; r = a[2]; }");
        let sol = solve(&out);
        assert!(points_to(&out, &sol, "a", "x"));
        assert!(points_to(&out, &sol, "r", "x"));
        assert!(points_to(&out, &sol, "r", "y"));
    }

    #[test]
    fn array_decay_and_address() {
        let out = gen("int *a[4]; int **p; int **q; int x;\n\
             void main() { p = a; q = &a[1]; *p = &x; }");
        let sol = solve(&out);
        assert!(points_to(&out, &sol, "p", "a"));
        assert!(points_to(&out, &sol, "q", "a"));
        assert!(points_to(&out, &sol, "a", "x"));
    }

    #[test]
    fn malloc_heap_objects_per_site() {
        let out = gen("int *p; int *q;\n\
             void main() { p = malloc(4); q = malloc(8); }");
        let sol = solve(&out);
        assert!(points_to(&out, &sol, "p", "heap$0"));
        assert!(points_to(&out, &sol, "q", "heap$1"));
        assert!(!points_to(&out, &sol, "p", "heap$1"), "per-site heap");
    }

    #[test]
    fn locals_shadow_globals() {
        let out = gen("int x; int *p;\n\
             void main() { int x; p = &x; }");
        let sol = solve(&out);
        let p = out.program.var_by_name("p").unwrap();
        let global_x = out.program.var_by_name("x").unwrap();
        assert!(!sol.may_point_to(p, global_x), "p points to the local x");
        assert_eq!(sol.points_to(p).len(), 1);
    }

    #[test]
    fn ternary_and_arith_merge_values() {
        let out = gen("int x; int y; int *p; int c;\n\
             void main() { p = c ? &x : &y; p = p + 1; }");
        let sol = solve(&out);
        assert!(points_to(&out, &sol, "p", "x"));
        assert!(points_to(&out, &sol, "p", "y"));
    }

    #[test]
    fn global_initializers() {
        let out = gen("int x; int *p = &x; int *a[2] = { &x, p };");
        let sol = solve(&out);
        assert!(points_to(&out, &sol, "p", "x"));
        assert!(points_to(&out, &sol, "a", "x"));
    }

    #[test]
    fn string_copy_stub_copies_contents() {
        let out = gen("int x; char *src; char *dst; char *r; char buf[8];\n\
             void main() { src = &x; r = strcpy(&buf[0], src); }");
        let sol = solve(&out);
        // r aliases the destination buffer.
        assert!(points_to(&out, &sol, "r", "buf"));
    }

    #[test]
    fn unknown_externals_warn() {
        let out = gen("void main() { frobnicate(0); }");
        assert!(out.warnings.iter().any(|w| w.contains("frobnicate")));
    }

    #[test]
    fn generated_constraints_have_offsets_for_indirect_calls() {
        let out = gen("int *id(int *a) { return a; }\n\
             int *(*fp)(int *); int x;\n\
             void main() { fp = id; fp(&x); }");
        let stats = out.program.stats();
        assert!(stats.complex2 >= 1);
        assert!(out
            .program
            .constraints()
            .iter()
            .any(|c| c.kind == ConstraintKind::Store && c.offset == 2));
        assert!(out
            .program
            .constraints()
            .iter()
            .any(|c| c.kind == ConstraintKind::Load && c.offset == 1));
    }
}
