//! Worklist strategies for the fixpoint solvers.
//!
//! The paper (§5.1): "LCD and HCD are both worklist algorithms — we use the
//! worklist strategy LRF (Least Recently Fired: the node processed furthest
//! back in time is given priority), suggested by Pearce et al., to prioritize
//! the worklist. We also divide the worklist into two sections, *current* and
//! *next*, as described by Nielson et al.; items are selected from *current*
//! and pushed onto *next*, and the two are swapped when *current* becomes
//! empty."
//!
//! All strategies de-duplicate: pushing a node that is already queued is a
//! no-op, exactly like the membership flag on GCC's worklists.

use crate::VarId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A queue of constraint-graph nodes awaiting processing.
///
/// Implementations de-duplicate pushes of already-queued nodes.
pub trait Worklist {
    /// Enqueues `n` (no-op if already queued).
    fn push(&mut self, n: VarId);
    /// Dequeues the next node, recording it as *fired now* for LRF
    /// strategies.
    fn pop(&mut self) -> Option<VarId>;
    /// Returns `true` if no node is queued.
    fn is_empty(&self) -> bool;
    /// Number of queued nodes.
    fn len(&self) -> usize;
}

/// Which worklist strategy a solver should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum WorklistKind {
    /// First-in first-out.
    Fifo,
    /// Last-in first-out.
    Lifo,
    /// Least-recently-fired priority over a single section.
    Lrf,
    /// LRF within the divided *current*/*next* worklist — the paper's
    /// configuration and the default.
    #[default]
    DividedLrf,
}

impl WorklistKind {
    /// Builds a worklist of this kind for a graph of `n` nodes.
    pub fn build(self, n: usize) -> Box<dyn Worklist> {
        match self {
            WorklistKind::Fifo => Box::new(Fifo::new(n)),
            WorklistKind::Lifo => Box::new(Lifo::new(n)),
            WorklistKind::Lrf => Box::new(Lrf::new(n)),
            WorklistKind::DividedLrf => Box::new(DividedLrf::new(n)),
        }
    }

    /// All strategies, for ablation sweeps.
    pub const ALL: [WorklistKind; 4] = [
        WorklistKind::Fifo,
        WorklistKind::Lifo,
        WorklistKind::Lrf,
        WorklistKind::DividedLrf,
    ];
}

impl std::fmt::Display for WorklistKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorklistKind::Fifo => "fifo",
            WorklistKind::Lifo => "lifo",
            WorklistKind::Lrf => "lrf",
            WorklistKind::DividedLrf => "divided-lrf",
        };
        f.write_str(s)
    }
}

/// First-in first-out worklist.
///
/// # Example
///
/// ```
/// use ant_common::{Fifo, Worklist, VarId};
/// let mut w = Fifo::new(4);
/// w.push(VarId::new(2));
/// w.push(VarId::new(0));
/// w.push(VarId::new(2)); // duplicate: ignored
/// assert_eq!(w.pop(), Some(VarId::new(2)));
/// assert_eq!(w.pop(), Some(VarId::new(0)));
/// assert!(w.pop().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct Fifo {
    queue: VecDeque<VarId>,
    queued: Vec<bool>,
}

impl Fifo {
    /// Creates an empty FIFO worklist for `n` nodes.
    pub fn new(n: usize) -> Self {
        Fifo {
            queue: VecDeque::new(),
            queued: vec![false; n],
        }
    }
}

impl Worklist for Fifo {
    fn push(&mut self, n: VarId) {
        let q = &mut self.queued[n.index()];
        if !*q {
            *q = true;
            self.queue.push_back(n);
        }
    }

    fn pop(&mut self) -> Option<VarId> {
        let n = self.queue.pop_front()?;
        self.queued[n.index()] = false;
        Some(n)
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Last-in first-out worklist.
#[derive(Clone, Debug)]
pub struct Lifo {
    stack: Vec<VarId>,
    queued: Vec<bool>,
}

impl Lifo {
    /// Creates an empty LIFO worklist for `n` nodes.
    pub fn new(n: usize) -> Self {
        Lifo {
            stack: Vec::new(),
            queued: vec![false; n],
        }
    }
}

impl Worklist for Lifo {
    fn push(&mut self, n: VarId) {
        let q = &mut self.queued[n.index()];
        if !*q {
            *q = true;
            self.stack.push(n);
        }
    }

    fn pop(&mut self) -> Option<VarId> {
        let n = self.stack.pop()?;
        self.queued[n.index()] = false;
        Some(n)
    }

    fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

/// Single-section least-recently-fired priority worklist.
///
/// The node whose last processing lies furthest in the past is popped first;
/// never-fired nodes come before all fired ones, in id order.
///
/// # Example
///
/// ```
/// use ant_common::{Lrf, Worklist, VarId};
/// let mut w = Lrf::new(2);
/// w.push(VarId::new(0));
/// w.push(VarId::new(1));
/// w.pop(); // fires 0
/// w.pop(); // fires 1
/// w.push(VarId::new(1));
/// w.push(VarId::new(0));
/// // 0 fired longer ago, so it comes out first.
/// assert_eq!(w.pop(), Some(VarId::new(0)));
/// ```
#[derive(Clone, Debug)]
pub struct Lrf {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    last_fired: Vec<u64>,
    queued: Vec<bool>,
    clock: u64,
}

impl Lrf {
    /// Creates an empty LRF worklist for `n` nodes.
    pub fn new(n: usize) -> Self {
        Lrf {
            heap: BinaryHeap::new(),
            last_fired: vec![0; n],
            queued: vec![false; n],
            clock: 1,
        }
    }
}

impl Worklist for Lrf {
    fn push(&mut self, n: VarId) {
        let q = &mut self.queued[n.index()];
        if !*q {
            *q = true;
            self.heap
                .push(Reverse((self.last_fired[n.index()], n.as_u32())));
        }
    }

    fn pop(&mut self) -> Option<VarId> {
        let Reverse((_, raw)) = self.heap.pop()?;
        let n = VarId::from_u32(raw);
        self.queued[n.index()] = false;
        self.last_fired[n.index()] = self.clock;
        self.clock += 1;
        Some(n)
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// The divided *current*/*next* worklist of Nielson et al. with LRF priority
/// inside each section — the configuration the paper uses for LCD and HCD.
///
/// Pops come from *current*; pushes go to *next*; when *current* drains the
/// two sections are swapped. This batches each "pass" over the graph, which
/// the paper reports is significantly faster than a single worklist.
///
/// # Example
///
/// ```
/// use ant_common::{DividedLrf, Worklist, VarId};
/// let mut w = DividedLrf::new(3);
/// w.push(VarId::new(0));
/// assert_eq!(w.pop(), Some(VarId::new(0)));
/// w.push(VarId::new(1)); // lands in the *next* section
/// assert_eq!(w.pop(), Some(VarId::new(1))); // served after a swap
/// assert_eq!(w.swaps(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct DividedLrf {
    current: BinaryHeap<Reverse<(u64, u32)>>,
    next: Vec<VarId>,
    last_fired: Vec<u64>,
    queued: Vec<bool>,
    clock: u64,
    /// Number of section swaps so far (one per "pass"); solvers that act
    /// periodically — PKH's cycle sweeps — key off this.
    swaps: u64,
}

impl DividedLrf {
    /// Creates an empty divided worklist for `n` nodes.
    pub fn new(n: usize) -> Self {
        DividedLrf {
            current: BinaryHeap::new(),
            next: Vec::new(),
            last_fired: vec![0; n],
            queued: vec![false; n],
            clock: 1,
            swaps: 0,
        }
    }

    /// Number of *current*/*next* swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    fn refill(&mut self) {
        if self.current.is_empty() && !self.next.is_empty() {
            self.swaps += 1;
            for n in self.next.drain(..) {
                self.current
                    .push(Reverse((self.last_fired[n.index()], n.as_u32())));
            }
        }
    }
}

impl Worklist for DividedLrf {
    fn push(&mut self, n: VarId) {
        let q = &mut self.queued[n.index()];
        if !*q {
            *q = true;
            self.next.push(n);
        }
    }

    fn pop(&mut self) -> Option<VarId> {
        self.refill();
        let Reverse((_, raw)) = self.current.pop()?;
        let n = VarId::from_u32(raw);
        self.queued[n.index()] = false;
        self.last_fired[n.index()] = self.clock;
        self.clock += 1;
        Some(n)
    }

    fn is_empty(&self) -> bool {
        self.current.is_empty() && self.next.is_empty()
    }

    fn len(&self) -> usize {
        self.current.len() + self.next.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    fn drain(w: &mut dyn Worklist) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some(n) = w.pop() {
            out.push(n.index());
        }
        out
    }

    #[test]
    fn fifo_order_and_dedup() {
        let mut w = Fifo::new(4);
        w.push(v(2));
        w.push(v(0));
        w.push(v(2)); // duplicate
        assert_eq!(w.len(), 2);
        assert_eq!(drain(&mut w), vec![2, 0]);
        assert!(w.is_empty());
    }

    #[test]
    fn lifo_order() {
        let mut w = Lifo::new(4);
        w.push(v(1));
        w.push(v(3));
        assert_eq!(drain(&mut w), vec![3, 1]);
    }

    #[test]
    fn repush_after_pop_is_allowed() {
        let mut w = Fifo::new(2);
        w.push(v(0));
        assert_eq!(w.pop(), Some(v(0)));
        w.push(v(0));
        assert_eq!(w.pop(), Some(v(0)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn lrf_prefers_least_recently_fired() {
        let mut w = Lrf::new(3);
        w.push(v(0));
        w.push(v(1));
        assert_eq!(w.pop(), Some(v(0))); // never fired: id order
        assert_eq!(w.pop(), Some(v(1)));
        // Now 0 fired before 1. Pushing both again: 0 is least recent.
        w.push(v(1));
        w.push(v(0));
        assert_eq!(w.pop(), Some(v(0)));
        assert_eq!(w.pop(), Some(v(1)));
        // Fire 2 for the first time; it must precede both fired nodes.
        w.push(v(0));
        w.push(v(2));
        assert_eq!(w.pop(), Some(v(2)));
    }

    #[test]
    fn divided_defers_pushes_to_next_section() {
        let mut w = DividedLrf::new(4);
        w.push(v(0));
        w.push(v(1));
        assert_eq!(w.pop(), Some(v(0)));
        // Pushed while current is non-empty: must wait for the swap even
        // though node 2 has never fired.
        w.push(v(2));
        assert_eq!(w.pop(), Some(v(1)));
        assert_eq!(w.swaps(), 1);
        assert_eq!(w.pop(), Some(v(2)));
        assert_eq!(w.swaps(), 2);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn divided_lrf_orders_within_section() {
        let mut w = DividedLrf::new(3);
        w.push(v(2));
        w.push(v(1));
        // Same section, neither fired: id order.
        assert_eq!(drain(&mut w), vec![1, 2]);
        w.push(v(2));
        w.push(v(1));
        // 1 fired before 2 above, so 1 is least recently fired.
        assert_eq!(drain(&mut w), vec![1, 2]);
    }

    #[test]
    fn kind_builds_all() {
        for kind in WorklistKind::ALL {
            let mut w = kind.build(8);
            assert!(w.is_empty());
            w.push(v(5));
            w.push(v(5));
            assert_eq!(w.len(), 1);
            assert_eq!(w.pop(), Some(v(5)));
            assert!(w.pop().is_none());
            assert!(!kind.to_string().is_empty());
        }
    }
}
