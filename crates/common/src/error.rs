//! The crate-wide typed error, [`AntError`].
//!
//! Every public entry point of the workspace that can fail — parsing a
//! constraint file, assembling a pass pipeline, running a solver, or
//! answering a query — reports an `AntError`. The error carries a
//! machine-readable [`AntErrorKind`], a human-readable message, and an
//! optional source error ([`std::error::Error::source`]), so callers can
//! branch on the kind (the CLI maps each kind to a distinct exit code, the
//! query service maps it to a typed wire envelope) while still printing a
//! useful chain.

use std::error::Error;
use std::fmt;

/// What went wrong, at the granularity callers branch on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AntErrorKind {
    /// The invocation itself is malformed: unknown flag, missing argument,
    /// mutually exclusive options.
    Usage,
    /// Input could not be parsed into a constraint program (constraint
    /// files, mini-C sources).
    Parse,
    /// The offline pass pipeline was mis-assembled or violated an
    /// invariant (e.g. a rewriting pass ordered after `hcd`).
    Pipeline,
    /// The online solver failed (internal panic caught at a service
    /// boundary, impossible configuration).
    Solver,
    /// A query against a solution could not be answered; the
    /// [`QueryErrorKind`] says why.
    Query(QueryErrorKind),
    /// An I/O failure (reading an input file, binding a socket).
    Io,
}

/// The reasons a query can fail, mirrored one-to-one onto the serve
/// protocol's `error` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum QueryErrorKind {
    /// The request line was not a well-formed protocol object.
    MalformedRequest,
    /// The request's `op` is not part of the protocol.
    UnknownOp,
    /// A named variable does not exist in the loaded program.
    UnknownVar,
    /// The queried fact does not hold (e.g. `explain` on `x ∉ pts(p)`).
    NotFound,
    /// The per-request deadline elapsed before the answer was ready.
    DeadlineExceeded,
    /// The query needs a recorded solve (`explain`) but provenance
    /// recording is unavailable.
    NoProvenance,
}

impl AntErrorKind {
    /// Stable machine-readable name: the serve protocol's `error` field
    /// and the vocabulary of scripted consumers.
    pub fn wire_name(self) -> &'static str {
        match self {
            AntErrorKind::Usage => "usage",
            AntErrorKind::Parse => "parse",
            AntErrorKind::Pipeline => "pipeline",
            AntErrorKind::Solver => "solver",
            AntErrorKind::Io => "io",
            AntErrorKind::Query(q) => match q {
                QueryErrorKind::MalformedRequest => "malformed_request",
                QueryErrorKind::UnknownOp => "unknown_op",
                QueryErrorKind::UnknownVar => "unknown_var",
                QueryErrorKind::NotFound => "not_found",
                QueryErrorKind::DeadlineExceeded => "deadline_exceeded",
                QueryErrorKind::NoProvenance => "no_provenance",
            },
        }
    }

    /// The process exit code the CLI uses for this kind. Distinct per
    /// kind so scripts can branch without parsing stderr; `1` stays
    /// reserved for unclassified failures.
    pub fn exit_code(self) -> u8 {
        match self {
            AntErrorKind::Usage => 2,
            AntErrorKind::Parse => 3,
            AntErrorKind::Pipeline => 4,
            AntErrorKind::Solver => 5,
            AntErrorKind::Query(_) => 6,
            AntErrorKind::Io => 7,
        }
    }
}

/// The workspace-wide error: a kind, a message, and an optional source.
///
/// ```
/// use ant_common::{AntError, AntErrorKind, QueryErrorKind};
///
/// let e = AntError::query(QueryErrorKind::UnknownVar, "no variable named `z`");
/// assert_eq!(e.kind(), AntErrorKind::Query(QueryErrorKind::UnknownVar));
/// assert_eq!(e.kind().wire_name(), "unknown_var");
/// assert_eq!(e.kind().exit_code(), 6);
/// assert_eq!(e.to_string(), "no variable named `z`");
/// ```
#[derive(Debug)]
pub struct AntError {
    kind: AntErrorKind,
    message: String,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

impl AntError {
    /// An error of the given kind with no source.
    pub fn new(kind: AntErrorKind, message: impl Into<String>) -> Self {
        AntError {
            kind,
            message: message.into(),
            source: None,
        }
    }

    /// A [`AntErrorKind::Usage`] error.
    pub fn usage(message: impl Into<String>) -> Self {
        AntError::new(AntErrorKind::Usage, message)
    }

    /// A [`AntErrorKind::Parse`] error.
    pub fn parse(message: impl Into<String>) -> Self {
        AntError::new(AntErrorKind::Parse, message)
    }

    /// A [`AntErrorKind::Pipeline`] error.
    pub fn pipeline(message: impl Into<String>) -> Self {
        AntError::new(AntErrorKind::Pipeline, message)
    }

    /// A [`AntErrorKind::Solver`] error.
    pub fn solver(message: impl Into<String>) -> Self {
        AntError::new(AntErrorKind::Solver, message)
    }

    /// A [`AntErrorKind::Query`] error of the given query kind.
    pub fn query(kind: QueryErrorKind, message: impl Into<String>) -> Self {
        AntError::new(AntErrorKind::Query(kind), message)
    }

    /// An [`AntErrorKind::Io`] error.
    pub fn io(message: impl Into<String>) -> Self {
        AntError::new(AntErrorKind::Io, message)
    }

    /// Attaches the underlying error, reachable via
    /// [`Error::source`](std::error::Error::source).
    pub fn with_source(mut self, source: impl Error + Send + Sync + 'static) -> Self {
        self.source = Some(Box::new(source));
        self
    }

    /// The error's kind.
    pub fn kind(&self) -> AntErrorKind {
        self.kind
    }

    /// The human-readable message (without the source chain).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for AntError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_deref().map(|s| s as &(dyn Error + 'static))
    }
}

impl From<std::io::Error> for AntError {
    fn from(e: std::io::Error) -> Self {
        AntError::io(e.to_string()).with_source(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_distinct_exit_codes_and_wire_names() {
        let kinds = [
            AntErrorKind::Usage,
            AntErrorKind::Parse,
            AntErrorKind::Pipeline,
            AntErrorKind::Solver,
            AntErrorKind::Query(QueryErrorKind::UnknownVar),
            AntErrorKind::Io,
        ];
        let mut codes: Vec<u8> = kinds.iter().map(|k| k.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len(), "exit codes collide");
        assert!(!codes.contains(&0), "0 is success");
        assert!(!codes.contains(&1), "1 is the unclassified failure");
        let query_kinds = [
            QueryErrorKind::MalformedRequest,
            QueryErrorKind::UnknownOp,
            QueryErrorKind::UnknownVar,
            QueryErrorKind::NotFound,
            QueryErrorKind::DeadlineExceeded,
            QueryErrorKind::NoProvenance,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.wire_name()).collect();
        names.extend(
            query_kinds
                .iter()
                .map(|&q| AntErrorKind::Query(q).wire_name()),
        );
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len() + query_kinds.len() - 1);
    }

    #[test]
    fn source_chain_is_reachable() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = AntError::io("cannot read f.consts").with_source(io);
        assert_eq!(e.to_string(), "cannot read f.consts");
        assert_eq!(e.source().unwrap().to_string(), "gone");
        assert!(AntError::parse("x").source().is_none());
    }
}
