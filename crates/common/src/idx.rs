use std::fmt;

/// A compact identifier for a program variable (a node of the constraint
/// graph and/or an abstract memory location).
///
/// Inclusion-based pointer analysis identifies variables and the memory
/// locations they denote: `loc(v)` in the paper is simply `v`'s own id, so a
/// points-to set is a set of `VarId`s.
///
/// `VarId` is a `u32` newtype: the analyses in this workspace routinely
/// manipulate hundreds of thousands of variables, and halving the id width
/// halves the size of every edge list and worklist entry.
///
/// # Example
///
/// ```
/// use ant_common::VarId;
/// let v = VarId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(v.to_string(), "v7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        VarId(u32::try_from(index).expect("variable index exceeds u32::MAX"))
    }

    /// Creates a variable id from a raw `u32`.
    #[inline]
    pub const fn from_u32(raw: u32) -> Self {
        VarId(raw)
    }

    /// Returns the dense index of this variable, suitable for `Vec` indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the variable `offset` slots after this one.
    ///
    /// Used for Pearce-style indirect-call resolution, where the `k`-th
    /// parameter of a function variable `f` lives at id `f + k`.
    #[inline]
    pub const fn offset(self, offset: u32) -> Self {
        VarId(self.0 + offset)
    }
}

impl From<u32> for VarId {
    #[inline]
    fn from(raw: u32) -> Self {
        VarId(raw)
    }
}

impl From<VarId> for u32 {
    #[inline]
    fn from(v: VarId) -> u32 {
        v.0
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = VarId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.as_u32(), 42);
        assert_eq!(VarId::from(42u32), v);
        assert_eq!(u32::from(v), 42);
    }

    #[test]
    fn offsets_address_parameters() {
        let f = VarId::new(10);
        assert_eq!(f.offset(0), f);
        assert_eq!(f.offset(3), VarId::new(13));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VarId::new(1) < VarId::new(2));
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn new_rejects_huge_indices() {
        let _ = VarId::new(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
