//! Union-find with union-by-rank and path compression.
//!
//! The paper (§5.1): "cycles … are collapsed using a union-find data
//! structure with both union-by-rank and path compression heuristics."

use crate::VarId;

/// A disjoint-set forest over dense `VarId`s.
///
/// Collapsing a constraint-graph cycle unions all its nodes; afterwards the
/// solver keeps points-to sets, edge sets and complex-constraint lists only
/// on representatives.
///
/// # Example
///
/// ```
/// use ant_common::{UnionFind, VarId};
///
/// let mut uf = UnionFind::new(4);
/// let (a, b) = (VarId::new(0), VarId::new(1));
/// let winner = uf.union(a, b);
/// assert_eq!(uf.find(a), winner);
/// assert_eq!(uf.find(b), winner);
/// assert!(uf.same_set(a, b));
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..u32::try_from(n).expect("too many nodes")).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Number of unions performed so far (nodes collapsed away).
    pub fn merged_count(&self) -> usize {
        self.parent.len() - self.sets
    }

    /// Appends a fresh singleton and returns its id.
    pub fn push(&mut self) -> VarId {
        let id = u32::try_from(self.parent.len()).expect("too many nodes");
        self.parent.push(id);
        self.rank.push(0);
        self.sets += 1;
        VarId::from_u32(id)
    }

    /// Finds the representative of `x`, compressing the path.
    pub fn find(&mut self, x: VarId) -> VarId {
        let mut i = x.as_u32();
        // Path halving: every node on the path points to its grandparent.
        loop {
            let p = self.parent[i as usize];
            if p == i {
                return VarId::from_u32(i);
            }
            let gp = self.parent[p as usize];
            self.parent[i as usize] = gp;
            i = gp;
        }
    }

    /// Finds the representative of `x` without mutating the forest.
    pub fn find_no_compress(&self, x: VarId) -> VarId {
        let mut i = x.as_u32();
        while self.parent[i as usize] != i {
            i = self.parent[i as usize];
        }
        VarId::from_u32(i)
    }

    /// Returns `true` if `x` is the representative of its set.
    pub fn is_rep(&self, x: VarId) -> bool {
        self.parent[x.index()] == x.as_u32()
    }

    /// Unions the sets of `a` and `b`; returns the surviving representative.
    ///
    /// Union-by-rank decides the winner; the caller must merge any per-node
    /// solver data from the loser into the winner.
    pub fn union(&mut self, a: VarId, b: VarId) -> VarId {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        self.sets -= 1;
        let (win, lose) = if self.rank[ra.index()] >= self.rank[rb.index()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        if self.rank[win.index()] == self.rank[lose.index()] {
            self.rank[win.index()] += 1;
        }
        self.parent[lose.index()] = win.as_u32();
        win
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: VarId, b: VarId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Heap bytes owned by the forest.
    pub fn heap_bytes(&self) -> usize {
        self.parent.capacity() * std::mem::size_of::<u32>()
            + self.rank.capacity() * std::mem::size_of::<u8>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn singletons_are_their_own_reps() {
        let mut uf = UnionFind::new(3);
        for i in 0..3 {
            assert_eq!(uf.find(v(i)), v(i));
            assert!(uf.is_rep(v(i)));
        }
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.merged_count(), 0);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        let r1 = uf.union(v(0), v(1));
        let r2 = uf.union(v(2), v(3));
        assert_ne!(uf.find(v(0)), uf.find(v(2)));
        let r3 = uf.union(v(1), v(3));
        assert_eq!(uf.find(v(0)), uf.find(v(2)));
        assert_eq!(uf.set_count(), 2);
        assert_eq!(uf.merged_count(), 3);
        // The final representative must be one of the two previous winners.
        assert!(r3 == r1 || r3 == r2);
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(2);
        let w1 = uf.union(v(0), v(1));
        let w2 = uf.union(v(0), v(1));
        assert_eq!(w1, w2);
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn path_compression_converges() {
        let mut uf = UnionFind::new(64);
        for i in 1..64 {
            uf.union(v(i - 1), v(i));
        }
        let rep = uf.find(v(0));
        for i in 0..64 {
            assert_eq!(uf.find(v(i)), rep);
            assert_eq!(uf.find_no_compress(v(i)), rep);
        }
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn push_appends_singletons() {
        let mut uf = UnionFind::new(1);
        let n = uf.push();
        assert_eq!(n, v(1));
        assert_eq!(uf.set_count(), 2);
        assert!(uf.is_rep(n));
    }

    #[test]
    fn no_compress_find_matches() {
        let mut uf = UnionFind::new(8);
        uf.union(v(0), v(3));
        uf.union(v(3), v(7));
        let frozen = uf.clone();
        for i in [0usize, 3, 7] {
            assert_eq!(frozen.find_no_compress(v(i)), uf.find(v(i)));
        }
    }
}
