//! A fast, non-cryptographic hasher for internal tables.
//!
//! This is the multiply-and-rotate scheme used by the Rust compiler's
//! `FxHasher` (itself derived from Firefox). Hash-consing a BDD performs a
//! unique-table lookup on every node creation, so hashing speed is directly
//! on the solver's critical path; SipHash (the std default) is several times
//! slower for these small fixed-width keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast hasher for small integer-like keys. Not DoS-resistant; use only for
/// internal tables keyed by trusted data.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1, i + 2), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i + 1, i + 2)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh = BuildHasherDefault::<FxHasher>::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(bh.hash_one(i));
        }
        // A decent hash should not collide on sequential integers.
        assert_eq!(seen.len(), 10_000);
    }
}
