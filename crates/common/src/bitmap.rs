//! A sparse bitmap of 128-bit elements, modeled on the GCC `bitmap`
//! structure that the paper uses for points-to sets and edge sets.
//!
//! GCC chains 128-bit *elements* (an element index plus two 64-bit words) in
//! a linked list ordered by index. We keep the same element granularity and
//! ordering but store the elements in a sorted `Vec`, which preserves the
//! asymptotics of every set operation while being considerably more cache
//! friendly; `DESIGN.md` records this substitution.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Number of bits covered by one element.
const ELT_BITS: u32 = 128;
/// Number of 64-bit words per element.
const WORDS: usize = 2;

/// One 128-bit chunk of the bitmap, covering bits
/// `[idx * 128, (idx + 1) * 128)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Element {
    idx: u32,
    words: [u64; WORDS],
}

impl Element {
    #[inline]
    fn is_zero(&self) -> bool {
        self.words[0] == 0 && self.words[1] == 0
    }

    #[inline]
    fn popcount(&self) -> u32 {
        self.words[0].count_ones() + self.words[1].count_ones()
    }
}

#[inline]
fn split(bit: u32) -> (u32, usize, u32) {
    let idx = bit / ELT_BITS;
    let rem = bit % ELT_BITS;
    ((idx), (rem / 64) as usize, rem % 64)
}

/// A sparse set of `u32` values stored as a sorted sequence of 128-bit
/// elements, in the style of GCC's `bitmap` type.
///
/// This is the representation the paper uses for points-to sets and for the
/// successor-edge sets of the online constraint graph (every solver except
/// BLQ). The critical operation is [`union_with`](SparseBitmap::union_with),
/// which performs an in-place `ior` and reports whether the destination
/// changed — the "propagate and test" step at the heart of the dynamic
/// transitive closure.
///
/// # Example
///
/// ```
/// use ant_common::SparseBitmap;
///
/// let mut pts = SparseBitmap::new();
/// assert!(pts.insert(3));
/// assert!(!pts.insert(3));
/// let other: SparseBitmap = [3u32, 1000].into_iter().collect();
/// assert!(pts.union_with(&other));
/// assert!(!pts.union_with(&other)); // already a superset
/// assert_eq!(pts.len(), 2);
/// ```
#[derive(Clone, Default)]
pub struct SparseBitmap {
    /// Non-zero elements sorted by `idx`.
    elems: Vec<Element>,
}

impl SparseBitmap {
    /// Creates an empty bitmap.
    #[inline]
    pub fn new() -> Self {
        SparseBitmap { elems: Vec::new() }
    }

    /// Creates an empty bitmap with room for `n` elements (not bits).
    pub fn with_element_capacity(n: usize) -> Self {
        SparseBitmap {
            elems: Vec::with_capacity(n),
        }
    }

    /// Returns the position of the element with index `idx`, or where it
    /// would be inserted.
    #[inline]
    fn search(&self, idx: u32) -> Result<usize, usize> {
        // Most workloads touch the highest element repeatedly while a set
        // grows; probe the ends before falling back to binary search.
        match self.elems.last() {
            None => return Err(0),
            Some(last) => match last.idx.cmp(&idx) {
                Ordering::Equal => return Ok(self.elems.len() - 1),
                Ordering::Less => return Err(self.elems.len()),
                Ordering::Greater => {}
            },
        }
        self.elems.binary_search_by_key(&idx, |e| e.idx)
    }

    /// Inserts `bit`; returns `true` if the bit was not already present.
    pub fn insert(&mut self, bit: u32) -> bool {
        let (idx, word, pos) = split(bit);
        let mask = 1u64 << pos;
        match self.search(idx) {
            Ok(i) => {
                let w = &mut self.elems[i].words[word];
                let was = *w & mask != 0;
                *w |= mask;
                !was
            }
            Err(i) => {
                let mut words = [0u64; WORDS];
                words[word] = mask;
                self.elems.insert(i, Element { idx, words });
                true
            }
        }
    }

    /// Removes `bit`; returns `true` if the bit was present.
    pub fn remove(&mut self, bit: u32) -> bool {
        let (idx, word, pos) = split(bit);
        let mask = 1u64 << pos;
        match self.search(idx) {
            Ok(i) => {
                let e = &mut self.elems[i];
                let was = e.words[word] & mask != 0;
                e.words[word] &= !mask;
                if e.is_zero() {
                    self.elems.remove(i);
                }
                was
            }
            Err(_) => false,
        }
    }

    /// Returns `true` if `bit` is in the set.
    #[inline]
    pub fn contains(&self, bit: u32) -> bool {
        let (idx, word, pos) = split(bit);
        match self.search(idx) {
            Ok(i) => self.elems[i].words[word] & (1 << pos) != 0,
            Err(_) => false,
        }
    }

    /// Number of bits set. O(#elements).
    pub fn len(&self) -> usize {
        self.elems.iter().map(|e| e.popcount() as usize).sum()
    }

    /// Returns `true` if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Removes all bits.
    pub fn clear(&mut self) {
        self.elems.clear();
    }

    /// Smallest bit in the set, if any.
    pub fn first(&self) -> Option<u32> {
        self.elems.first().map(|e| {
            let base = e.idx * ELT_BITS;
            if e.words[0] != 0 {
                base + e.words[0].trailing_zeros()
            } else {
                base + 64 + e.words[1].trailing_zeros()
            }
        })
    }

    /// Largest bit in the set, if any.
    pub fn last(&self) -> Option<u32> {
        self.elems.last().map(|e| {
            let base = e.idx * ELT_BITS;
            if e.words[1] != 0 {
                base + 127 - e.words[1].leading_zeros()
            } else {
                base + 63 - e.words[0].leading_zeros()
            }
        })
    }

    /// In-place union (`self |= other`); returns `true` if `self` changed.
    ///
    /// This is GCC's `bitmap_ior_into`, the single hottest operation of the
    /// bitmap-based solvers: every points-to propagation along a constraint
    /// edge is one call.
    pub fn union_with(&mut self, other: &SparseBitmap) -> bool {
        if other.elems.is_empty() || std::ptr::eq(self, other) {
            return false;
        }
        if self.elems.is_empty() {
            self.elems = other.elems.clone();
            return true;
        }
        // Pass 1 (allocation-free): would the union change `self`?
        // In a converging fixpoint most propagations are no-ops, so this
        // fast path pays for itself many times over.
        if self.superset_of(other) {
            return false;
        }
        // Pass 2: merge into a fresh vector.
        let mut out = Vec::with_capacity(self.elems.len() + other.elems.len());
        let (a, b) = (&self.elems, &other.elems);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].idx.cmp(&b[j].idx) {
                Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                Ordering::Equal => {
                    out.push(Element {
                        idx: a[i].idx,
                        words: [a[i].words[0] | b[j].words[0], a[i].words[1] | b[j].words[1]],
                    });
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.elems = out;
        true
    }

    /// Returns `true` if every bit of `other` is in `self`.
    pub fn superset_of(&self, other: &SparseBitmap) -> bool {
        let (a, b) = (&self.elems, &other.elems);
        let mut i = 0;
        for be in b {
            while i < a.len() && a[i].idx < be.idx {
                i += 1;
            }
            if i == a.len() || a[i].idx != be.idx {
                return false;
            }
            let ae = &a[i];
            if be.words[0] & !ae.words[0] != 0 || be.words[1] & !ae.words[1] != 0 {
                return false;
            }
        }
        true
    }

    /// Returns `true` if every bit of `self` is in `other`.
    #[inline]
    pub fn subset_of(&self, other: &SparseBitmap) -> bool {
        other.superset_of(self)
    }

    /// In-place intersection (`self &= other`); returns `true` if `self`
    /// changed.
    pub fn intersect_with(&mut self, other: &SparseBitmap) -> bool {
        if std::ptr::eq(self, other) {
            return false;
        }
        let mut changed = false;
        let mut j = 0;
        self.elems.retain_mut(|e| {
            while j < other.elems.len() && other.elems[j].idx < e.idx {
                j += 1;
            }
            if j < other.elems.len() && other.elems[j].idx == e.idx {
                let oe = &other.elems[j];
                let w0 = e.words[0] & oe.words[0];
                let w1 = e.words[1] & oe.words[1];
                if w0 != e.words[0] || w1 != e.words[1] {
                    changed = true;
                }
                e.words = [w0, w1];
                !e.is_zero()
            } else {
                changed = true;
                false
            }
        });
        changed
    }

    /// In-place difference (`self -= other`); returns `true` if `self`
    /// changed.
    pub fn subtract(&mut self, other: &SparseBitmap) -> bool {
        if std::ptr::eq(self, other) {
            let changed = !self.is_empty();
            self.clear();
            return changed;
        }
        let mut changed = false;
        let mut j = 0;
        self.elems.retain_mut(|e| {
            while j < other.elems.len() && other.elems[j].idx < e.idx {
                j += 1;
            }
            if j < other.elems.len() && other.elems[j].idx == e.idx {
                let oe = &other.elems[j];
                let w0 = e.words[0] & !oe.words[0];
                let w1 = e.words[1] & !oe.words[1];
                if w0 != e.words[0] || w1 != e.words[1] {
                    changed = true;
                }
                e.words = [w0, w1];
                !e.is_zero()
            } else {
                true
            }
        });
        changed
    }

    /// Returns `true` if the two sets share no bit.
    pub fn is_disjoint(&self, other: &SparseBitmap) -> bool {
        let (a, b) = (&self.elems, &other.elems);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].idx.cmp(&b[j].idx) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    if a[i].words[0] & b[j].words[0] != 0 || a[i].words[1] & b[j].words[1] != 0 {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// Iterates over the set bits in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            elems: &self.elems,
            pos: 0,
            word: 0,
            bits: self.elems.first().map_or(0, |e| e.words[0]),
        }
    }

    /// Iterates over the bits of `self` that are *not* in `other`, in
    /// ascending order — the delta iteration at the heart of incremental
    /// complex-constraint processing. Allocation-free element-wise merge.
    pub fn difference<'a>(&'a self, other: &'a SparseBitmap) -> Difference<'a> {
        Difference {
            a: &self.elems,
            b: &other.elems,
            pos: 0,
            b_pos: 0,
            word: 0,
            bits: 0,
            primed: false,
        }
    }

    /// Heap bytes owned by this bitmap (the paper's Table 4/6 accounting).
    pub fn heap_bytes(&self) -> usize {
        self.elems.capacity() * std::mem::size_of::<Element>()
    }

    /// Releases spare capacity (the byte accounting above charges capacity,
    /// not length, so long-lived sets should be shrunk once they stop
    /// growing).
    pub fn shrink_to_fit(&mut self) {
        self.elems.shrink_to_fit();
    }
}

impl PartialEq for SparseBitmap {
    fn eq(&self, other: &Self) -> bool {
        // Zero elements are never stored, so the element list is canonical.
        self.elems == other.elems
    }
}

impl Eq for SparseBitmap {}

impl Hash for SparseBitmap {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for e in &self.elems {
            e.hash(state);
        }
    }
}

impl fmt::Debug for SparseBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u32> for SparseBitmap {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = SparseBitmap::new();
        s.extend(iter);
        s
    }
}

impl Extend<u32> for SparseBitmap {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl<'a> IntoIterator for &'a SparseBitmap {
    type Item = u32;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over the bits of a [`SparseBitmap`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    elems: &'a [Element],
    pos: usize,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.pos >= self.elems.len() {
                return None;
            }
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                let e = &self.elems[self.pos];
                return Some(e.idx * ELT_BITS + self.word as u32 * 64 + tz);
            }
            if self.word + 1 < WORDS {
                self.word += 1;
            } else {
                self.pos += 1;
                self.word = 0;
                if self.pos >= self.elems.len() {
                    return None;
                }
            }
            self.bits = self.elems[self.pos].words[self.word];
        }
    }
}

/// Iterator over `a - b` produced by [`SparseBitmap::difference`].
#[derive(Clone, Debug)]
pub struct Difference<'a> {
    a: &'a [Element],
    b: &'a [Element],
    pos: usize,
    b_pos: usize,
    word: usize,
    bits: u64,
    primed: bool,
}

impl Difference<'_> {
    /// Loads `self.bits` with the masked word at (pos, word).
    fn load(&mut self) {
        let ae = &self.a[self.pos];
        while self.b_pos < self.b.len() && self.b[self.b_pos].idx < ae.idx {
            self.b_pos += 1;
        }
        let mask = if self.b_pos < self.b.len() && self.b[self.b_pos].idx == ae.idx {
            !self.b[self.b_pos].words[self.word]
        } else {
            !0
        };
        self.bits = ae.words[self.word] & mask;
        self.primed = true;
    }
}

impl Iterator for Difference<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.pos >= self.a.len() {
                return None;
            }
            if !self.primed {
                self.load();
            }
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                let e = &self.a[self.pos];
                return Some(e.idx * ELT_BITS + self.word as u32 * 64 + tz);
            }
            if self.word + 1 < WORDS {
                self.word += 1;
            } else {
                self.pos += 1;
                self.word = 0;
            }
            self.primed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn from_slice(bits: &[u32]) -> SparseBitmap {
        bits.iter().copied().collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = SparseBitmap::new();
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(127));
        assert!(s.insert(128));
        assert!(!s.insert(127));
        assert!(s.contains(0) && s.contains(127) && s.contains(128));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(127));
        assert!(!s.remove(127));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn removing_last_bit_drops_element() {
        let mut s = from_slice(&[1000]);
        assert!(s.remove(1000));
        assert!(s.is_empty());
        assert_eq!(s.elems.len(), 0);
    }

    #[test]
    fn first_and_last() {
        assert_eq!(SparseBitmap::new().first(), None);
        let s = from_slice(&[64, 5, 1_000_000]);
        assert_eq!(s.first(), Some(5));
        assert_eq!(s.last(), Some(1_000_000));
        let t = from_slice(&[70]);
        assert_eq!(t.first(), Some(70));
        assert_eq!(t.last(), Some(70));
    }

    #[test]
    fn union_reports_change() {
        let mut a = from_slice(&[1, 2, 3]);
        let b = from_slice(&[2, 3]);
        assert!(!a.union_with(&b));
        let c = from_slice(&[4]);
        assert!(a.union_with(&c));
        assert!(a.contains(4));
        let mut empty = SparseBitmap::new();
        assert!(empty.union_with(&a));
        assert_eq!(empty, a);
        assert!(!a.union_with(&SparseBitmap::new()));
    }

    #[test]
    fn union_merges_distant_elements() {
        let mut a = from_slice(&[1]);
        let b = from_slice(&[100_000]);
        assert!(a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 100_000]);
    }

    #[test]
    fn subset_superset() {
        let a = from_slice(&[1, 200, 4000]);
        let b = from_slice(&[200, 4000]);
        assert!(a.superset_of(&b));
        assert!(b.subset_of(&a));
        assert!(!b.superset_of(&a));
        assert!(a.superset_of(&SparseBitmap::new()));
    }

    #[test]
    fn intersection() {
        let mut a = from_slice(&[1, 2, 300, 4000]);
        let b = from_slice(&[2, 300, 9999]);
        assert!(a.intersect_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 300]);
        assert!(!a.intersect_with(&b));
    }

    #[test]
    fn subtraction() {
        let mut a = from_slice(&[1, 2, 300]);
        let b = from_slice(&[2, 7]);
        assert!(a.subtract(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 300]);
        assert!(!a.subtract(&b));
    }

    #[test]
    fn disjointness() {
        let a = from_slice(&[1, 130]);
        let b = from_slice(&[2, 131]);
        assert!(a.is_disjoint(&b));
        let c = from_slice(&[130]);
        assert!(!a.is_disjoint(&c));
    }

    #[test]
    fn equality_is_canonical() {
        let mut a = from_slice(&[5, 600]);
        let mut b = from_slice(&[600]);
        b.insert(5);
        assert_eq!(a, b);
        a.remove(600);
        assert_ne!(a, b);
    }

    #[test]
    fn difference_iterator() {
        let a = from_slice(&[1, 2, 3, 500]);
        let b = from_slice(&[2, 500]);
        let d: Vec<u32> = a.difference(&b).collect();
        assert_eq!(d, vec![1, 3]);
    }

    #[test]
    fn iterates_in_ascending_order_across_words() {
        let bits = [0u32, 63, 64, 65, 127, 128, 129, 255, 256, 100_000];
        let s = from_slice(&bits);
        assert_eq!(s.iter().collect::<Vec<_>>(), bits);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", SparseBitmap::new()), "{}");
        assert_eq!(format!("{:?}", from_slice(&[3])), "{3}");
    }

    #[test]
    fn model_check_small_ops() {
        // Deterministic cross-check against BTreeSet over a few thousand
        // mixed operations.
        let mut model = BTreeSet::new();
        let mut s = SparseBitmap::new();
        let mut x: u32 = 12345;
        for step in 0..4000 {
            // Simple LCG so the test needs no external crates.
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let bit = (x >> 7) % 1500;
            match step % 3 {
                0 | 1 => {
                    assert_eq!(s.insert(bit), model.insert(bit));
                }
                _ => {
                    assert_eq!(s.remove(bit), model.remove(&bit));
                }
            }
        }
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>()
        );
        assert_eq!(s.len(), model.len());
    }
}
