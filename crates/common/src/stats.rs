//! Solver statistics — the quantities §5.3 of the paper uses to explain the
//! relative performance of the algorithms.

use std::fmt;
use std::ops::AddAssign;
use std::time::Duration;

/// Counters and byte accounting collected by every solver run.
///
/// §5.3 names three decisive metrics: "(1) the number of nodes collapsed due
/// to strongly-connected components; (2) the number of nodes searched during
/// the depth-first traversals of the constraint graph; and (3) the number of
/// propagations of points-to information across the edges of the constraint
/// graph." The byte counters feed the memory tables (Tables 4 and 6).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Nodes merged away by cycle collapsing (paper metric 1).
    pub nodes_collapsed: u64,
    /// Nodes visited by cycle-detection depth-first searches (metric 2).
    pub nodes_searched: u64,
    /// Points-to set propagations across constraint edges (metric 3).
    pub propagations: u64,
    /// Propagations whose union actually changed the destination.
    pub propagations_changed: u64,
    /// Cycle-detection attempts that were triggered.
    pub cycle_searches: u64,
    /// Cycles actually found and collapsed.
    pub cycles_found: u64,
    /// Edges added to the online constraint graph by complex constraints.
    pub edges_added: u64,
    /// Inner iterations of complex-constraint resolution (locations ×
    /// attached constraints) — the work `process_complex` performs.
    pub complex_iters: u64,
    /// Nodes popped from the worklist.
    pub nodes_processed: u64,
    /// Bytes held by points-to set representations at the end of the run.
    pub pts_bytes: usize,
    /// Bytes held by the constraint graph (edge sets) at the end of the run.
    pub graph_bytes: usize,
    /// Bytes held by auxiliary structures (union-find, caches, BDD manager).
    pub aux_bytes: usize,
    /// Wall-clock time of the online solve.
    pub solve_time: Duration,
    /// Wall-clock time of offline pre-analyses run by the solver (HCD).
    pub offline_time: Duration,
}

impl SolverStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        SolverStats::default()
    }

    /// Total bytes across all accounted structures.
    pub fn total_bytes(&self) -> usize {
        self.pts_bytes + self.graph_bytes + self.aux_bytes
    }

    /// Total bytes in mebibytes, as the paper's memory tables report.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

impl AddAssign<&SolverStats> for SolverStats {
    fn add_assign(&mut self, rhs: &SolverStats) {
        self.nodes_collapsed += rhs.nodes_collapsed;
        self.nodes_searched += rhs.nodes_searched;
        self.propagations += rhs.propagations;
        self.propagations_changed += rhs.propagations_changed;
        self.cycle_searches += rhs.cycle_searches;
        self.cycles_found += rhs.cycles_found;
        self.edges_added += rhs.edges_added;
        self.complex_iters += rhs.complex_iters;
        self.nodes_processed += rhs.nodes_processed;
        self.pts_bytes += rhs.pts_bytes;
        self.graph_bytes += rhs.graph_bytes;
        self.aux_bytes += rhs.aux_bytes;
        self.solve_time += rhs.solve_time;
        self.offline_time += rhs.offline_time;
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "collapsed {} | searched {} | propagations {} ({} changed)",
            self.nodes_collapsed, self.nodes_searched, self.propagations, self.propagations_changed
        )?;
        writeln!(
            f,
            "cycle searches {} | cycles found {} | edges added {} ({} iters) | nodes processed {}",
            self.cycle_searches, self.cycles_found, self.edges_added, self.complex_iters, self.nodes_processed
        )?;
        write!(
            f,
            "memory {:.1} MiB (pts {:.1}, graph {:.1}, aux {:.1}) | solve {:.3}s | offline {:.3}s",
            self.total_mib(),
            self.pts_bytes as f64 / (1024.0 * 1024.0),
            self.graph_bytes as f64 / (1024.0 * 1024.0),
            self.aux_bytes as f64 / (1024.0 * 1024.0),
            self.solve_time.as_secs_f64(),
            self.offline_time.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = SolverStats {
            pts_bytes: 1024 * 1024,
            graph_bytes: 1024 * 1024,
            aux_bytes: 0,
            ..SolverStats::default()
        };
        assert_eq!(s.total_bytes(), 2 * 1024 * 1024);
        assert!((s.total_mib() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = SolverStats {
            propagations: 5,
            ..SolverStats::default()
        };
        let b = SolverStats {
            propagations: 7,
            nodes_collapsed: 2,
            ..SolverStats::default()
        };
        a += &b;
        assert_eq!(a.propagations, 12);
        assert_eq!(a.nodes_collapsed, 2);
    }

    #[test]
    fn display_is_nonempty() {
        let s = SolverStats::new();
        let text = s.to_string();
        assert!(text.contains("propagations"));
        assert!(text.contains("memory"));
    }
}
