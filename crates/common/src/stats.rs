//! Solver statistics — the quantities §5.3 of the paper uses to explain the
//! relative performance of the algorithms.

use std::fmt;
use std::ops::AddAssign;
use std::time::Duration;

/// Counters and byte accounting collected by every solver run.
///
/// §5.3 names three decisive metrics: "(1) the number of nodes collapsed due
/// to strongly-connected components; (2) the number of nodes searched during
/// the depth-first traversals of the constraint graph; and (3) the number of
/// propagations of points-to information across the edges of the constraint
/// graph." The byte counters feed the memory tables (Tables 4 and 6).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Nodes merged away by cycle collapsing (paper metric 1).
    pub nodes_collapsed: u64,
    /// Nodes visited by cycle-detection depth-first searches (metric 2).
    pub nodes_searched: u64,
    /// Points-to set propagations across constraint edges (metric 3).
    pub propagations: u64,
    /// Propagations whose union actually changed the destination.
    pub propagations_changed: u64,
    /// Cycle-detection attempts that were triggered.
    pub cycle_searches: u64,
    /// Cycles actually found and collapsed.
    pub cycles_found: u64,
    /// Edges added to the online constraint graph by complex constraints.
    pub edges_added: u64,
    /// Inner iterations of complex-constraint resolution (locations ×
    /// attached constraints) — the work `process_complex` performs.
    pub complex_iters: u64,
    /// Nodes popped from the worklist.
    pub nodes_processed: u64,
    /// Bytes actually pushed along constraint edges: the source set's heap
    /// bytes per propagation under full propagation, the delta's heap bytes
    /// under difference propagation (`--prop diff`). Representations that
    /// report zero `heap_bytes` per set (shared, BDD) leave this zero.
    pub propagated_bytes: u64,
    /// Bytes a *full-set* propagation would have pushed for the same edge
    /// visits — the baseline `propagated_bytes` is compared against. Equal
    /// to `propagated_bytes` under full propagation.
    pub propagated_full_bytes: u64,
    /// Intern-table lookups that found the set already stored (shared
    /// representations only; zero otherwise).
    pub intern_hits: u64,
    /// Intern-table lookups that stored a new distinct set.
    pub intern_misses: u64,
    /// Set operations answered by the representation's memo cache.
    pub memo_hits: u64,
    /// Set operations the representation had to compute.
    pub memo_misses: u64,
    /// Distinct points-to sets stored by the representation at the end of
    /// the run (interned representations only; zero otherwise).
    pub distinct_sets: u64,
    /// Bytes held by points-to set representations at the end of the run.
    pub pts_bytes: usize,
    /// Bytes held by the constraint graph (edge sets) at the end of the run.
    pub graph_bytes: usize,
    /// Bytes held by auxiliary structures (union-find, caches, BDD manager).
    pub aux_bytes: usize,
    /// Wall-clock time of the online solve.
    pub solve_time: Duration,
    /// Wall-clock time of offline pre-analyses run by the solver (HCD).
    pub offline_time: Duration,
    /// Time inside complex-constraint resolution (`process_complex`).
    ///
    /// The per-phase durations below are collected only when an observer is
    /// attached; un-observed runs skip the clock reads and leave them zero.
    pub complex_time: Duration,
    /// Time propagating points-to sets across constraint edges.
    pub propagate_time: Duration,
    /// Time in online cycle detection (searches, collapses, order repair).
    pub cycle_time: Duration,
}

impl SolverStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        SolverStats::default()
    }

    /// Total bytes across all accounted structures.
    pub fn total_bytes(&self) -> usize {
        self.pts_bytes + self.graph_bytes + self.aux_bytes
    }

    /// Total bytes in mebibytes, as the paper's memory tables report.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

impl AddAssign<&SolverStats> for SolverStats {
    fn add_assign(&mut self, rhs: &SolverStats) {
        // Exhaustive destructuring (no `..`): adding a field to the struct
        // without extending this impl is a compile error, not a silently
        // dropped counter.
        let SolverStats {
            nodes_collapsed,
            nodes_searched,
            propagations,
            propagations_changed,
            cycle_searches,
            cycles_found,
            edges_added,
            complex_iters,
            nodes_processed,
            propagated_bytes,
            propagated_full_bytes,
            intern_hits,
            intern_misses,
            memo_hits,
            memo_misses,
            distinct_sets,
            pts_bytes,
            graph_bytes,
            aux_bytes,
            solve_time,
            offline_time,
            complex_time,
            propagate_time,
            cycle_time,
        } = rhs;
        self.nodes_collapsed += nodes_collapsed;
        self.nodes_searched += nodes_searched;
        self.propagations += propagations;
        self.propagations_changed += propagations_changed;
        self.cycle_searches += cycle_searches;
        self.cycles_found += cycles_found;
        self.edges_added += edges_added;
        self.complex_iters += complex_iters;
        self.nodes_processed += nodes_processed;
        self.propagated_bytes += propagated_bytes;
        self.propagated_full_bytes += propagated_full_bytes;
        self.intern_hits += intern_hits;
        self.intern_misses += intern_misses;
        self.memo_hits += memo_hits;
        self.memo_misses += memo_misses;
        self.distinct_sets += distinct_sets;
        self.pts_bytes += pts_bytes;
        self.graph_bytes += graph_bytes;
        self.aux_bytes += aux_bytes;
        self.solve_time += *solve_time;
        self.offline_time += *offline_time;
        self.complex_time += *complex_time;
        self.propagate_time += *propagate_time;
        self.cycle_time += *cycle_time;
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "collapsed {} | searched {} | propagations {} ({} changed)",
            self.nodes_collapsed, self.nodes_searched, self.propagations, self.propagations_changed
        )?;
        writeln!(
            f,
            "cycle searches {} | cycles found {} | edges added {} ({} iters) | nodes processed {}",
            self.cycle_searches,
            self.cycles_found,
            self.edges_added,
            self.complex_iters,
            self.nodes_processed
        )?;
        writeln!(
            f,
            "memory {:.1} MiB (pts {:.1}, graph {:.1}, aux {:.1}) | solve {:.3}s | offline {:.3}s",
            self.total_mib(),
            self.pts_bytes as f64 / (1024.0 * 1024.0),
            self.graph_bytes as f64 / (1024.0 * 1024.0),
            self.aux_bytes as f64 / (1024.0 * 1024.0),
            self.solve_time.as_secs_f64(),
            self.offline_time.as_secs_f64(),
        )?;
        if self.propagated_full_bytes > 0 {
            let saved =
                self.propagated_full_bytes - self.propagated_bytes.min(self.propagated_full_bytes);
            writeln!(
                f,
                "propagation bytes: sent {:.1} MiB | full-set equivalent {:.1} MiB ({:.1}% saved)",
                self.propagated_bytes as f64 / (1024.0 * 1024.0),
                self.propagated_full_bytes as f64 / (1024.0 * 1024.0),
                100.0 * saved as f64 / self.propagated_full_bytes as f64,
            )?;
        }
        if self.distinct_sets > 0 {
            writeln!(
                f,
                "repr cache: {} distinct sets | intern hits {} / misses {} | memo hits {} / misses {}",
                self.distinct_sets,
                self.intern_hits,
                self.intern_misses,
                self.memo_hits,
                self.memo_misses,
            )?;
        }
        write!(
            f,
            "phase time: complex {:.3}s | propagate {:.3}s | cycle {:.3}s",
            self.complex_time.as_secs_f64(),
            self.propagate_time.as_secs_f64(),
            self.cycle_time.as_secs_f64(),
        )
    }
}

/// Final cache statistics reported by a shared (interned) points-to
/// representation: how effective deduplication and operation memoization
/// were over a run. Produced by `PtsRepr::ctx_stats` implementations and
/// carried by the `SolveEvent::ReprCache` telemetry event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReprCacheStats {
    /// Intern-table lookups that found the set already stored.
    pub intern_hits: u64,
    /// Intern-table lookups that stored a new distinct set.
    pub intern_misses: u64,
    /// Set operations answered from the memo cache.
    pub memo_hits: u64,
    /// Set operations that had to be computed.
    pub memo_misses: u64,
    /// Distinct sets stored at the end of the run.
    pub distinct_sets: u64,
}

impl ReprCacheStats {
    /// Intern-table hit rate in `[0, 1]` (1.0 when no lookups happened).
    pub fn intern_hit_rate(&self) -> f64 {
        rate(self.intern_hits, self.intern_misses)
    }

    /// Memo-cache hit rate in `[0, 1]` (1.0 when no lookups happened).
    pub fn memo_hit_rate(&self) -> f64 {
        rate(self.memo_hits, self.memo_misses)
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = SolverStats {
            pts_bytes: 1024 * 1024,
            graph_bytes: 1024 * 1024,
            aux_bytes: 0,
            ..SolverStats::default()
        };
        assert_eq!(s.total_bytes(), 2 * 1024 * 1024);
        assert!((s.total_mib() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = SolverStats {
            propagations: 5,
            ..SolverStats::default()
        };
        let b = SolverStats {
            propagations: 7,
            nodes_collapsed: 2,
            ..SolverStats::default()
        };
        a += &b;
        assert_eq!(a.propagations, 12);
        assert_eq!(a.nodes_collapsed, 2);
    }

    #[test]
    fn display_is_nonempty() {
        let s = SolverStats::new();
        let text = s.to_string();
        assert!(text.contains("propagations"));
        assert!(text.contains("memory"));
        assert!(text.contains("phase time"));
        // Repr-cache counters only appear when a shared repr ran.
        assert!(!text.contains("repr cache"));
        let shared = SolverStats {
            distinct_sets: 7,
            intern_hits: 5,
            ..SolverStats::default()
        };
        assert!(shared.to_string().contains("repr cache: 7 distinct sets"));
    }

    #[test]
    fn repr_cache_hit_rates() {
        let s = ReprCacheStats {
            intern_hits: 3,
            intern_misses: 1,
            memo_hits: 0,
            memo_misses: 10,
            distinct_sets: 2,
        };
        assert!((s.intern_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.memo_hit_rate() - 0.0).abs() < 1e-12);
        assert!((ReprCacheStats::default().intern_hit_rate() - 1.0).abs() < 1e-12);
    }

    /// Every field participates in `+=`. The `AddAssign` impl destructures
    /// its operand exhaustively, so adding a field without extending it is
    /// a compile error; this test additionally checks the arithmetic by
    /// exhaustively destructuring the sum — it too must be updated when a
    /// field is added, keeping the three definitions in lockstep.
    #[test]
    fn add_assign_covers_every_field() {
        let one = SolverStats {
            nodes_collapsed: 1,
            nodes_searched: 2,
            propagations: 3,
            propagations_changed: 4,
            cycle_searches: 5,
            cycles_found: 6,
            edges_added: 7,
            complex_iters: 8,
            nodes_processed: 9,
            propagated_bytes: 23,
            propagated_full_bytes: 24,
            intern_hits: 18,
            intern_misses: 19,
            memo_hits: 20,
            memo_misses: 21,
            distinct_sets: 22,
            pts_bytes: 10,
            graph_bytes: 11,
            aux_bytes: 12,
            solve_time: Duration::from_millis(13),
            offline_time: Duration::from_millis(14),
            complex_time: Duration::from_millis(15),
            propagate_time: Duration::from_millis(16),
            cycle_time: Duration::from_millis(17),
        };
        let mut sum = one.clone();
        sum += &one;
        let SolverStats {
            nodes_collapsed,
            nodes_searched,
            propagations,
            propagations_changed,
            cycle_searches,
            cycles_found,
            edges_added,
            complex_iters,
            nodes_processed,
            propagated_bytes,
            propagated_full_bytes,
            intern_hits,
            intern_misses,
            memo_hits,
            memo_misses,
            distinct_sets,
            pts_bytes,
            graph_bytes,
            aux_bytes,
            solve_time,
            offline_time,
            complex_time,
            propagate_time,
            cycle_time,
        } = sum;
        assert_eq!(nodes_collapsed, 2);
        assert_eq!(nodes_searched, 4);
        assert_eq!(propagations, 6);
        assert_eq!(propagations_changed, 8);
        assert_eq!(cycle_searches, 10);
        assert_eq!(cycles_found, 12);
        assert_eq!(edges_added, 14);
        assert_eq!(complex_iters, 16);
        assert_eq!(nodes_processed, 18);
        assert_eq!(propagated_bytes, 46);
        assert_eq!(propagated_full_bytes, 48);
        assert_eq!(intern_hits, 36);
        assert_eq!(intern_misses, 38);
        assert_eq!(memo_hits, 40);
        assert_eq!(memo_misses, 42);
        assert_eq!(distinct_sets, 44);
        assert_eq!(pts_bytes, 20);
        assert_eq!(graph_bytes, 22);
        assert_eq!(aux_bytes, 24);
        assert_eq!(solve_time, Duration::from_millis(26));
        assert_eq!(offline_time, Duration::from_millis(28));
        assert_eq!(complex_time, Duration::from_millis(30));
        assert_eq!(propagate_time, Duration::from_millis(32));
        assert_eq!(cycle_time, Duration::from_millis(34));
    }
}
