//! A hash-consed intern table for [`SparseBitmap`]s — shared storage for
//! points-to sets.
//!
//! §5.4 of the paper explains why BDDs use ~5× less memory than bitmaps:
//! thousands of variables end up with *identical* points-to sets, and the
//! BDD node table stores each distinct function once. This module applies
//! the same idea to the bitmap representation directly: every distinct set
//! is stored exactly once in a [`PtsInterner`] and referred to by a dense
//! [`SetId`]. Because interning is canonical, two ids are equal **iff** the
//! sets are equal — the O(1) equality test Lazy Cycle Detection's
//! `pts(n) == pts(z)` probe wants, with none of BDDs' `bdd_allsat`
//! materialization cost.
//!
//! Mutation is copy-on-write: `insert`/`union`/… never modify a stored set,
//! they produce the id of the (possibly newly interned) result. Since ids
//! are immutable values, set operations are pure functions of their ids and
//! can be memoized in a BuDDy-style direct-mapped lossy cache (the same
//! apply-cache trick `crates/bdd/src/manager.rs` uses for ITE): collisions
//! simply overwrite — that *is* the eviction policy — and entries can never
//! go stale, even when the solver collapses constraint-graph nodes, because
//! a `(op, a, b) → result` triple remains true forever.

use crate::bitmap::SparseBitmap;
use crate::fx::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};

/// Identifier of an interned set. Dense, starting at 0 (the empty set).
///
/// Ids are only meaningful together with the [`PtsInterner`] that created
/// them. Equality of ids is equality of sets (hash-consing invariant).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetId(u32);

impl SetId {
    /// The empty set — pre-interned by every table as id 0, so a
    /// default-constructed id is valid and empty.
    pub const EMPTY: SetId = SetId(0);

    /// The raw index.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from [`SetId::as_u32`]. Only meaningful for raw
    /// values obtained from the same table — e.g. through the remap table
    /// of [`PtsInterner::compact`].
    #[inline]
    pub fn from_u32(raw: u32) -> SetId {
        SetId(raw)
    }
}

/// Operation tags for the memo cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum SetOp {
    Union = 1,
    Insert = 2,
    Minus = 3,
    Intersect = 4,
}

/// Direct-mapped, lossy memo cache for `(op, a, b) → result`, modeled on
/// the BDD manager's operation cache: far faster than an exact map, and a
/// collision merely costs recomputing one set operation.
#[derive(Clone, Debug)]
struct MemoCache {
    entries: Vec<MemoEntry>,
    mask: usize,
}

#[derive(Clone, Copy, Debug)]
struct MemoEntry {
    a: u32,
    b: u32,
    op: u8,
    result: u32,
}

const EMPTY_ENTRY: MemoEntry = MemoEntry {
    a: u32::MAX,
    b: u32::MAX,
    op: 0,
    result: 0,
};

/// Memo capacity at construction (2^10 entries); grows with the table.
const MEMO_INITIAL_LOG2: u32 = 10;
/// Memo growth cap (2^20 entries × 16 bytes = 16 MiB) — beyond this,
/// collisions evict rather than the table growing further.
const MEMO_MAX_LOG2: u32 = 20;

impl MemoCache {
    fn new(log2: u32) -> Self {
        let size = 1usize << log2;
        MemoCache {
            entries: vec![EMPTY_ENTRY; size],
            mask: size - 1,
        }
    }

    #[inline]
    fn slot(&self, op: SetOp, a: u32, b: u32) -> usize {
        let mut h = (a as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((b as u64).rotate_left(21))
            .wrapping_add(op as u64);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        (h >> 13) as usize & self.mask
    }

    #[inline]
    fn get(&self, op: SetOp, a: u32, b: u32) -> Option<u32> {
        let e = &self.entries[self.slot(op, a, b)];
        (e.op == op as u8 && e.a == a && e.b == b).then_some(e.result)
    }

    #[inline]
    fn put(&mut self, op: SetOp, a: u32, b: u32, result: u32) {
        let slot = self.slot(op, a, b);
        self.entries[slot] = MemoEntry {
            a,
            b,
            op: op as u8,
            result,
        };
    }

    /// Doubles the table (lossy — old entries are dropped) while the number
    /// of distinct interned sets outgrows it, up to the cap. Keeping the
    /// cache proportional to the table keeps small solves from paying a
    /// fixed multi-MiB footprint.
    fn maybe_grow(&mut self, distinct_sets: usize) {
        let len = self.entries.len();
        if distinct_sets > len && len < (1 << MEMO_MAX_LOG2) {
            *self = MemoCache::new(len.trailing_zeros() + 1);
        }
    }

    fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<MemoEntry>()
    }
}

/// Hit/miss counters for the intern table and its memo cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// `intern` calls that found the set already stored (dedup hits).
    pub intern_hits: u64,
    /// `intern` calls that stored a new distinct set.
    pub intern_misses: u64,
    /// Set operations answered from the memo cache.
    pub memo_hits: u64,
    /// Set operations that had to be computed.
    pub memo_misses: u64,
}

/// The intern table: canonical storage for a family of bitmaps.
///
/// See the module docs for the design; the short version is
/// *hash-consing* (each distinct set stored once, looked up through a
/// content-hash index) plus a *memo cache* for the set operations.
#[derive(Clone, Debug)]
pub struct PtsInterner {
    /// `sets[id]` — the canonical bitmap for each id. `sets[0]` is empty.
    sets: Vec<SparseBitmap>,
    /// `lens[id]` — cached cardinality (used to detect no-op results
    /// without an O(elements) comparison).
    lens: Vec<u32>,
    /// Content hash → ids of sets with that hash (collision bucket; almost
    /// always a single entry).
    index: FxHashMap<u64, Vec<u32>>,
    memo: MemoCache,
    /// Hit/miss counters.
    pub stats: InternStats,
}

fn content_hash(set: &SparseBitmap) -> u64 {
    let mut h = FxHasher::default();
    set.hash(&mut h);
    h.finish()
}

impl PtsInterner {
    /// An empty table holding only the empty set (id 0).
    pub fn new() -> Self {
        let empty = SparseBitmap::new();
        let mut index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        index.insert(content_hash(&empty), vec![0]);
        PtsInterner {
            sets: vec![empty],
            lens: vec![0],
            index,
            memo: MemoCache::new(MEMO_INITIAL_LOG2),
            stats: InternStats::default(),
        }
    }

    /// The canonical bitmap for `id`.
    #[inline]
    pub fn get(&self, id: SetId) -> &SparseBitmap {
        &self.sets[id.0 as usize]
    }

    /// Cardinality of `id`'s set (cached, O(1)).
    #[inline]
    pub fn len(&self, id: SetId) -> usize {
        self.lens[id.0 as usize] as usize
    }

    /// Returns `true` when the table holds only the empty set.
    pub fn is_empty(&self) -> bool {
        self.sets.len() == 1
    }

    /// Number of distinct sets stored (including the empty set).
    pub fn distinct_sets(&self) -> usize {
        self.sets.len()
    }

    /// Interns `set`, returning the id of its canonical copy.
    pub fn intern(&mut self, set: SparseBitmap) -> SetId {
        let h = content_hash(&set);
        let bucket = self.index.entry(h).or_default();
        for &id in bucket.iter() {
            if self.sets[id as usize] == set {
                self.stats.intern_hits += 1;
                return SetId(id);
            }
        }
        self.stats.intern_misses += 1;
        let id = u32::try_from(self.sets.len()).expect("fewer than 2^32 distinct sets");
        bucket.push(id);
        self.lens.push(set.len() as u32);
        self.sets.push(set);
        self.memo.maybe_grow(self.sets.len());
        SetId(id)
    }

    /// `a ∪ {loc}` — the id of the set with `loc` added.
    pub fn insert(&mut self, a: SetId, loc: u32) -> SetId {
        if let Some(r) = self.memo.get(SetOp::Insert, a.0, loc) {
            self.stats.memo_hits += 1;
            return SetId(r);
        }
        self.stats.memo_misses += 1;
        let result = if self.sets[a.0 as usize].contains(loc) {
            a
        } else {
            let mut grown = self.sets[a.0 as usize].clone();
            grown.insert(loc);
            self.intern(grown)
        };
        self.memo.put(SetOp::Insert, a.0, loc, result.0);
        result
    }

    /// `a ∪ b` — the id of the union. The hot path of propagation.
    pub fn union(&mut self, a: SetId, b: SetId) -> SetId {
        if b == SetId::EMPTY || a == b {
            return a;
        }
        if a == SetId::EMPTY {
            return b;
        }
        if let Some(r) = self.memo.get(SetOp::Union, a.0, b.0) {
            self.stats.memo_hits += 1;
            return SetId(r);
        }
        self.stats.memo_misses += 1;
        let result = if self.sets[a.0 as usize].superset_of(&self.sets[b.0 as usize]) {
            a
        } else {
            let mut u = self.sets[a.0 as usize].clone();
            u.union_with(&self.sets[b.0 as usize]);
            self.intern(u)
        };
        self.memo.put(SetOp::Union, a.0, b.0, result.0);
        if result != a {
            // The fixpoint entry: re-propagating `b` into the grown set is a
            // guaranteed no-op; seed the cache so it is answered in O(1).
            self.memo.put(SetOp::Union, result.0, b.0, result.0);
        }
        result
    }

    /// `a − b` — the id of the difference.
    pub fn minus(&mut self, a: SetId, b: SetId) -> SetId {
        if a == SetId::EMPTY || a == b {
            return SetId::EMPTY;
        }
        if b == SetId::EMPTY {
            return a;
        }
        if let Some(r) = self.memo.get(SetOp::Minus, a.0, b.0) {
            self.stats.memo_hits += 1;
            return SetId(r);
        }
        self.stats.memo_misses += 1;
        let mut d = self.sets[a.0 as usize].clone();
        d.subtract(&self.sets[b.0 as usize]);
        let result = if d.len() == self.len(a) {
            a
        } else {
            self.intern(d)
        };
        self.memo.put(SetOp::Minus, a.0, b.0, result.0);
        result
    }

    /// `a ∩ b` — the id of the intersection.
    pub fn intersect(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        if a == SetId::EMPTY || b == SetId::EMPTY {
            return SetId::EMPTY;
        }
        if let Some(r) = self.memo.get(SetOp::Intersect, a.0, b.0) {
            self.stats.memo_hits += 1;
            return SetId(r);
        }
        self.stats.memo_misses += 1;
        let mut m = self.sets[a.0 as usize].clone();
        m.intersect_with(&self.sets[b.0 as usize]);
        let result = if m.len() == self.len(a) {
            a
        } else {
            self.intern(m)
        };
        self.memo.put(SetOp::Intersect, a.0, b.0, result.0);
        result
    }

    /// Rebuilds the table keeping only the `live` ids (the empty set is
    /// always retained), returning a remap table `old id → new id` (dead
    /// ids map to `u32::MAX`). Callers must rewrite every handle they hold
    /// through the remap.
    ///
    /// A monotone solve leaves the table full of intermediate sets — every
    /// growth step of every variable interned one — so compaction at the
    /// end of a solve typically frees the large majority of the storage.
    /// The memo cache is cleared: its entries may name ids that no longer
    /// exist. The canonical-id invariant survives because only unreachable
    /// ids are dropped; content equal to a *live* id still interns to that
    /// id.
    pub fn compact(&mut self, live: &[SetId]) -> Vec<u32> {
        let mut keep = vec![false; self.sets.len()];
        keep[0] = true;
        for &id in live {
            keep[id.0 as usize] = true;
        }
        let mut remap = vec![u32::MAX; self.sets.len()];
        let mut sets = Vec::new();
        let mut lens = Vec::new();
        for (old, &k) in keep.iter().enumerate() {
            if k {
                remap[old] = sets.len() as u32;
                let mut set = std::mem::take(&mut self.sets[old]);
                set.shrink_to_fit();
                sets.push(set);
                lens.push(self.lens[old]);
            }
        }
        self.sets = sets;
        self.lens = lens;
        self.index.clear();
        for (id, set) in self.sets.iter().enumerate() {
            self.index
                .entry(content_hash(set))
                .or_default()
                .push(id as u32);
        }
        self.index.shrink_to_fit();
        self.memo = MemoCache::new(MEMO_INITIAL_LOG2);
        remap
    }

    /// Heap bytes owned by the table: the deduplicated set storage plus the
    /// index and memo cache. This is what a solver should report as its
    /// points-to bytes — each distinct set is counted once, however many
    /// variables share it.
    pub fn heap_bytes(&self) -> usize {
        let elems: usize = self
            .sets
            .iter()
            .map(SparseBitmap::heap_bytes)
            .sum::<usize>();
        let slots = self.sets.capacity() * std::mem::size_of::<SparseBitmap>();
        let lens = self.lens.capacity() * std::mem::size_of::<u32>();
        let index = self.index.capacity()
            * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>())
            + self
                .index
                .values()
                .map(|b| b.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>();
        elems + slots + lens + index + self.memo.heap_bytes()
    }
}

impl Default for PtsInterner {
    fn default() -> Self {
        PtsInterner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(bits: &[u32]) -> SparseBitmap {
        let mut s = SparseBitmap::new();
        for &b in bits {
            s.insert(b);
        }
        s
    }

    #[test]
    fn empty_set_is_id_zero() {
        let mut t = PtsInterner::new();
        assert_eq!(t.intern(SparseBitmap::new()), SetId::EMPTY);
        assert_eq!(t.len(SetId::EMPTY), 0);
        assert_eq!(t.distinct_sets(), 1);
        assert_eq!(SetId::default(), SetId::EMPTY);
    }

    #[test]
    fn interning_is_canonical() {
        let mut t = PtsInterner::new();
        let a = t.intern(set_of(&[1, 5, 900]));
        let b = t.intern(set_of(&[1, 5, 900]));
        let c = t.intern(set_of(&[1, 5]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.distinct_sets(), 3);
        assert_eq!(t.stats.intern_hits, 1);
        assert_eq!(t.stats.intern_misses, 2);
    }

    #[test]
    fn insert_is_copy_on_write() {
        let mut t = PtsInterner::new();
        let a = t.intern(set_of(&[3]));
        let b = t.insert(a, 9);
        assert_ne!(a, b);
        // The original is untouched.
        assert_eq!(t.get(a).iter().collect::<Vec<_>>(), vec![3]);
        assert_eq!(t.get(b).iter().collect::<Vec<_>>(), vec![3, 9]);
        // Inserting an existing bit is the identity.
        assert_eq!(t.insert(b, 3), b);
        // And memoized: repeating the first insert hits the cache.
        let before = t.stats.memo_hits;
        assert_eq!(t.insert(a, 9), b);
        assert_eq!(t.stats.memo_hits, before + 1);
    }

    #[test]
    fn union_identities_and_memo() {
        let mut t = PtsInterner::new();
        let a = t.intern(set_of(&[1, 2]));
        let b = t.intern(set_of(&[2, 3]));
        assert_eq!(t.union(a, SetId::EMPTY), a);
        assert_eq!(t.union(SetId::EMPTY, b), b);
        assert_eq!(t.union(a, a), a);
        let u = t.union(a, b);
        assert_eq!(t.get(u).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        // Subset union is the identity (no new set interned).
        assert_eq!(t.union(u, a), u);
        // The fixpoint entry makes re-unioning b into u a memo hit.
        let before = t.stats.memo_hits;
        assert_eq!(t.union(u, b), u);
        assert_eq!(t.stats.memo_hits, before + 1);
        // Recomputing the original union is also a hit.
        assert_eq!(t.union(a, b), u);
        assert_eq!(t.stats.memo_hits, before + 2);
    }

    #[test]
    fn minus_and_intersect() {
        let mut t = PtsInterner::new();
        let a = t.intern(set_of(&[1, 2, 3]));
        let b = t.intern(set_of(&[2]));
        let d = t.minus(a, b);
        assert_eq!(t.get(d).iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(t.minus(a, a), SetId::EMPTY);
        assert_eq!(t.minus(a, SetId::EMPTY), a);
        assert_eq!(t.minus(SetId::EMPTY, a), SetId::EMPTY);
        // Disjoint subtraction is the identity.
        let c = t.intern(set_of(&[7]));
        assert_eq!(t.minus(a, c), a);
        let i = t.intersect(a, b);
        assert_eq!(i, b, "a ∩ b interns to the existing {{2}}");
        assert_eq!(t.intersect(a, SetId::EMPTY), SetId::EMPTY);
        assert_eq!(t.intersect(a, a), a);
        // Superset intersection is the identity.
        let sup = t.intern(set_of(&[1, 2, 3, 4]));
        assert_eq!(t.intersect(a, sup), a);
    }

    #[test]
    fn memo_is_lossy_but_correct() {
        // Force collisions by filling a tiny cache far beyond its size; every
        // answer must still be right (recomputed on eviction).
        let mut t = PtsInterner::new();
        let singles: Vec<SetId> = (0..500).map(|i| t.intern(set_of(&[i]))).collect();
        let mut acc = SetId::EMPTY;
        for &s in &singles {
            acc = t.union(acc, s);
        }
        assert_eq!(t.len(acc), 500);
        for &s in &singles {
            assert_eq!(t.union(acc, s), acc);
            assert_eq!(t.intersect(acc, s), s);
        }
        assert!(t.stats.memo_misses > 0);
    }

    #[test]
    fn memo_grows_with_table() {
        let mut t = PtsInterner::new();
        let before = t.heap_bytes();
        for i in 0..3000u32 {
            t.intern(set_of(&[i, i + 1]));
        }
        // 3000 distinct sets outgrow the 1024-entry initial cache; growth is
        // visible through byte accounting.
        assert!(t.heap_bytes() > before);
        assert!(t.memo.entries.len() >= 2048);
    }

    #[test]
    fn heap_bytes_counts_each_distinct_set_once() {
        let mut t = PtsInterner::new();
        let a = t.intern(set_of(&[1, 2, 3]));
        let grew = t.heap_bytes();
        // A thousand aliases of the same set cost nothing further.
        for _ in 0..1000 {
            assert_eq!(t.intern(set_of(&[1, 2, 3])), a);
        }
        assert_eq!(t.heap_bytes(), grew);
    }

    #[test]
    fn compact_keeps_live_sets_and_reclaims_the_rest() {
        let mut t = PtsInterner::new();
        // Grow one set a step at a time, as a solve does: each step interns
        // an intermediate that immediately becomes garbage.
        let mut cur = SetId::EMPTY;
        for loc in 0..100 {
            cur = t.insert(cur, loc);
        }
        let other = t.intern(set_of(&[7, 9]));
        assert_eq!(t.distinct_sets(), 102);
        let before = t.heap_bytes();

        let remap = t.compact(&[cur, other]);
        let cur2 = SetId::from_u32(remap[cur.as_u32() as usize]);
        let other2 = SetId::from_u32(remap[other.as_u32() as usize]);
        // Empty + the two live sets survive; contents are intact.
        assert_eq!(t.distinct_sets(), 3);
        assert!(t.heap_bytes() < before);
        assert_eq!(remap[SetId::EMPTY.as_u32() as usize], 0);
        assert_eq!(t.len(cur2), 100);
        assert_eq!(t.get(other2).iter().collect::<Vec<_>>(), vec![7, 9]);
        // Canonical ids still hold after compaction: re-interning a live
        // set's contents finds it, new contents get fresh ids, and the
        // operations stay correct with the cleared memo.
        assert_eq!(t.intern(set_of(&[7, 9])), other2);
        let joined = t.union(cur2, other2);
        assert_eq!(joined, cur2, "cur ⊇ other, union is a no-op");
        let fresh = t.insert(other2, 500);
        assert_eq!(t.get(fresh).iter().collect::<Vec<_>>(), vec![7, 9, 500]);
    }
}
