//! Shared infrastructure for the `ant-grasshopper` pointer analysis.
//!
//! This crate contains the domain-independent building blocks that the
//! PLDI 2007 paper *The Ant and the Grasshopper* (Hardekopf & Lin) names as
//! the common substrate of all its solver implementations:
//!
//! * [`SparseBitmap`] — a GCC-style sparse bitmap of 128-bit elements, used
//!   for both points-to sets and constraint-graph edge sets,
//! * [`UnionFind`] — union-by-rank with path compression, used to collapse
//!   strongly connected components of the constraint graph,
//! * [`worklist`] — FIFO / LIFO / least-recently-fired worklists, including
//!   the divided *current*/*next* worklist of Nielson et al.,
//! * [`PtsInterner`] — a hash-consed intern table of sparse bitmaps with
//!   copy-on-write mutation and a memoized operation cache, giving the
//!   bitmap representation the O(1) set equality and shared storage that
//!   §5.4 credits to BDDs,
//! * [`SolverStats`] — the counters reported in §5.3 of the paper (nodes
//!   collapsed, nodes searched, propagations) plus byte accounting,
//! * [`obs`] — the telemetry layer: phase-scoped timers, progress
//!   snapshots and JSON-lines trace export shared by every solver.
//!
//! # Example
//!
//! ```
//! use ant_common::SparseBitmap;
//!
//! let mut a: SparseBitmap = [1u32, 500, 100_000].into_iter().collect();
//! let b: SparseBitmap = [2u32, 500].into_iter().collect();
//! let changed = a.union_with(&b);
//! assert!(changed);
//! assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 500, 100_000]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod error;
pub mod fx;
mod idx;
mod intern;
mod mem;
pub mod obs;
mod stats;
mod union_find;
pub mod worklist;

pub use bitmap::SparseBitmap;
pub use error::{AntError, AntErrorKind, QueryErrorKind};
pub use idx::VarId;
pub use intern::{InternStats, PtsInterner, SetId};
pub use mem::{vec_bytes, HeapBytes};
pub use stats::{ReprCacheStats, SolverStats};
pub use union_find::UnionFind;
pub use worklist::{DividedLrf, Fifo, Lifo, Lrf, Worklist, WorklistKind};
