//! [`PhaseTimer`]: a span stack that attributes wall time to [`Phase`]s,
//! keeping both whole-span time and exclusive self time (span minus nested
//! children) per phase.

use std::time::{Duration, Instant};

use super::event::{Phase, SolveEvent};
use super::observer::Obs;

struct Span {
    phase: Phase,
    started: Instant,
    /// Wall time spent in already-closed child spans.
    child: Duration,
}

/// A stack of open phase spans plus accumulated per-phase totals.
///
/// `start`/`stop` emit [`SolveEvent::PhaseStart`]/[`SolveEvent::PhaseEnd`]
/// through the supplied [`Obs`] handle, so the same calls drive both the
/// trace and the timing tables. Spans nest: stopping a span adds its wall
/// time to the parent's child-time, so [`PhaseTimer::self_time`] reports
/// time spent in a phase *excluding* nested phases while
/// [`PhaseTimer::span_time`] reports the whole span.
#[derive(Default)]
pub struct PhaseTimer {
    stack: Vec<Span>,
    self_time: [Duration; Phase::COUNT],
    span_time: [Duration; Phase::COUNT],
    counts: [u64; Phase::COUNT],
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Opens a span for `phase` and emits `PhaseStart`.
    pub fn start(&mut self, phase: Phase, obs: &mut Obs<'_>) {
        obs.emit(&SolveEvent::PhaseStart { phase });
        self.stack.push(Span {
            phase,
            started: Instant::now(),
            child: Duration::ZERO,
        });
    }

    /// Closes the innermost span, emits `PhaseEnd`, and returns the span's
    /// wall time. Panics if no span is open.
    pub fn stop(&mut self, obs: &mut Obs<'_>) -> Duration {
        let span = self
            .stack
            .pop()
            .expect("PhaseTimer::stop with no open span");
        let wall = span.started.elapsed();
        let i = span.phase.index();
        self.span_time[i] += wall;
        self.self_time[i] += wall.saturating_sub(span.child);
        self.counts[i] += 1;
        if let Some(parent) = self.stack.last_mut() {
            parent.child += wall;
        }
        obs.emit(&SolveEvent::PhaseEnd {
            phase: span.phase,
            duration: wall,
        });
        wall
    }

    /// Total wall time of closed `phase` spans, including nested phases.
    pub fn span_time(&self, phase: Phase) -> Duration {
        self.span_time[phase.index()]
    }

    /// Total time attributed exclusively to `phase` (nested spans deducted).
    pub fn self_time(&self, phase: Phase) -> Duration {
        self.self_time[phase.index()]
    }

    /// How many `phase` spans have been closed.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// The phase of the innermost open span, if any.
    pub fn current(&self) -> Option<Phase> {
        self.stack.last().map(|s| s.phase)
    }

    /// Number of open spans.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::Phase;
    use super::super::observer::{Obs, Observer};
    use super::*;
    use std::thread::sleep;

    #[test]
    fn nesting_attributes_self_time() {
        let mut timer = PhaseTimer::new();
        let mut obs = Obs::none();
        let outer_sleep = Duration::from_millis(8);
        let inner_sleep = Duration::from_millis(8);

        timer.start(Phase::Solve, &mut obs);
        assert_eq!(timer.current(), Some(Phase::Solve));
        sleep(outer_sleep);
        timer.start(Phase::Complex, &mut obs);
        assert_eq!(timer.depth(), 2);
        sleep(inner_sleep);
        let inner_wall = timer.stop(&mut obs);
        let outer_wall = timer.stop(&mut obs);
        assert_eq!(timer.depth(), 0);
        assert_eq!(timer.current(), None);

        // The outer span covers both sleeps; its self time excludes the
        // inner span, so it must be at least the outer sleep but at most
        // the outer wall minus the inner sleep.
        assert!(outer_wall >= outer_sleep + inner_sleep);
        assert!(inner_wall >= inner_sleep);
        let self_outer = timer.self_time(Phase::Solve);
        assert!(self_outer >= outer_sleep, "self {self_outer:?}");
        assert!(self_outer <= outer_wall - inner_sleep + Duration::from_millis(1));
        assert_eq!(timer.span_time(Phase::Solve), outer_wall);
        assert_eq!(timer.span_time(Phase::Complex), inner_wall);
        assert_eq!(timer.self_time(Phase::Complex), inner_wall);
        assert_eq!(timer.count(Phase::Solve), 1);
        assert_eq!(timer.count(Phase::Complex), 1);
    }

    #[test]
    fn repeated_spans_accumulate() {
        let mut timer = PhaseTimer::new();
        let mut obs = Obs::none();
        for _ in 0..3 {
            timer.start(Phase::Propagate, &mut obs);
            timer.stop(&mut obs);
        }
        assert_eq!(timer.count(Phase::Propagate), 3);
        assert!(timer.span_time(Phase::Propagate) >= timer.self_time(Phase::Propagate));
    }

    #[test]
    fn start_stop_emit_events() {
        struct Log(Vec<&'static str>);
        impl Observer for Log {
            fn on_event(&mut self, event: &SolveEvent) {
                self.0.push(match event {
                    SolveEvent::PhaseStart { .. } => "start",
                    SolveEvent::PhaseEnd { .. } => "end",
                    _ => "other",
                });
            }
        }
        let mut log = Log(Vec::new());
        {
            let mut obs = Obs::new(&mut log, 0);
            let mut timer = PhaseTimer::new();
            timer.start(Phase::Parse, &mut obs);
            timer.start(Phase::OfflineScc, &mut obs);
            timer.stop(&mut obs);
            timer.stop(&mut obs);
        }
        assert_eq!(log.0, vec!["start", "start", "end", "end"]);
    }
}
