//! Hand-rolled JSON support for the trace format and the serve protocol:
//! an escaping object builder for emission and a small flat-object parser
//! for reading lines back (tests, `trace_report`, `ant serve`). No
//! external crates; the subset handled is exactly what those schemas use —
//! one object per line with string, number, boolean and null values, plus
//! single-level arrays of such scalars (points-to sets and derivation
//! chains in serve responses). Nested objects and nested arrays remain
//! rejected.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` per JSON string rules into `out` (without quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Builds one flat JSON object incrementally.
///
/// ```
/// use ant_common::obs::JsonObject;
/// let mut o = JsonObject::new();
/// o.str_field("event", "phase_start");
/// o.uint_field("n", 3);
/// assert_eq!(o.finish(), r#"{"event":"phase_start","n":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds a string field (value is escaped).
    pub fn str_field(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
    }

    /// Adds an unsigned integer field.
    pub fn uint_field(&mut self, k: &str, v: u64) {
        self.key(k);
        let _ = write!(self.buf, "{v}");
    }

    /// Adds a float field with six decimal places (used for timestamps and
    /// durations in seconds — microsecond resolution).
    pub fn float_field(&mut self, k: &str, v: f64) {
        self.key(k);
        let _ = write!(self.buf, "{v:.6}");
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Adds an array of strings (each element escaped).
    pub fn str_list_field<I, S>(&mut self, k: &str, items: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.key(k);
        self.buf.push('[');
        for (i, item) in items.into_iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push('"');
            escape_into(item.as_ref(), &mut self.buf);
            self.buf.push('"');
        }
        self.buf.push(']');
    }

    /// Adds an array of unsigned integers.
    pub fn uint_list_field<I>(&mut self, k: &str, items: I)
    where
        I: IntoIterator<Item = u64>,
    {
        self.key(k);
        self.buf.push('[');
        for (i, item) in items.into_iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{item}");
        }
        self.buf.push(']');
    }

    /// No field added yet?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Splices every field of `other` into this object, in order (used to
    /// wrap an op-specific payload in the serve response envelope).
    pub fn extend(&mut self, other: &JsonObject) {
        if other.buf.is_empty() {
            return;
        }
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        self.buf.push_str(&other.buf[1..]);
    }

    /// Closes the object and returns its text (no trailing newline).
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            self.buf.push('{');
        }
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value: a scalar, or a single-level array of scalars.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A string.
    Str(String),
    /// Any number (integers included), as `f64`.
    Num(f64),
    /// `true`/`false`.
    Bool(bool),
    /// `null`.
    Null,
    /// A flat array of scalar values (arrays never nest in our schemas).
    Arr(Vec<JsonValue>),
}

impl JsonValue {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean, if this is `true` or `false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The elements as strings, if this is an array of strings (an empty
    /// array qualifies).
    pub fn as_str_arr(&self) -> Option<Vec<&str>> {
        self.as_arr()?.iter().map(JsonValue::as_str).collect()
    }
}

/// Parses one flat JSON object (`{"k": v, ...}` with scalar or
/// scalar-array values) into a key → value map. Returns a human-readable
/// error on malformed input or on nested objects/nested arrays, which
/// neither the trace format nor the serve protocol produces.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            got => Err(format!("expected {:?}, got {got:?}", b as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad hex in \\u escape")?;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a multi-byte UTF-8 sequence; the input is
                    // a &str so it is valid by construction.
                    let start = self.pos - 1;
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    self.skip_ws();
                    if self.peek() == Some(b'[') {
                        return Err("nested arrays are not part of the schema".into());
                    }
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(JsonValue::Arr(items)),
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
            }
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|e| format!("bad number {text:?}: {e}"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("expected literal {text}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_parse_roundtrip() {
        let mut o = JsonObject::new();
        o.str_field("event", "progress");
        o.str_field("path", "a\\b \"q\"\n\u{1}");
        o.float_field("t", 1.5);
        o.uint_field("n", u64::MAX);
        o.bool_field("done", true);
        let line = o.finish();
        let map = parse_object(&line).unwrap();
        assert_eq!(map["event"].as_str(), Some("progress"));
        assert_eq!(map["path"].as_str(), Some("a\\b \"q\"\n\u{1}"));
        assert_eq!(map["t"].as_f64(), Some(1.5));
        // u64::MAX is not exactly representable in f64; it parses as a
        // large number rather than an error.
        assert!(map["n"].as_f64().unwrap() > 1e19);
        assert_eq!(map["done"], JsonValue::Bool(true));
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert!(parse_object("{}").unwrap().is_empty());
        assert!(parse_object("  { }  ").unwrap().is_empty());
    }

    #[test]
    fn parses_whitespace_null_and_unicode() {
        let map = parse_object(r#"{ "a" : null , "b" : -2.5e3, "s": "πA" }"#).unwrap();
        assert_eq!(map["a"], JsonValue::Null);
        assert_eq!(map["b"].as_f64(), Some(-2500.0));
        assert_eq!(map["s"].as_str(), Some("πA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a":}"#).is_err());
        assert!(parse_object(r#"{"a":1,}"#).is_err());
        assert!(parse_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_object(r#"{"a":{}}"#).is_err());
        assert!(parse_object(r#"{"a":[[1]]}"#).is_err());
        assert!(parse_object(r#"{"a":[1,]}"#).is_err());
        assert!(parse_object(r#"{"a":[1"#).is_err());
        assert!(parse_object(r#"{"a":"unterminated}"#).is_err());
    }

    #[test]
    fn list_fields_roundtrip() {
        let mut o = JsonObject::new();
        o.str_list_field("names", ["p", "a \"q\""]);
        o.uint_list_field("ids", [0, 42]);
        o.str_list_field("empty", std::iter::empty::<&str>());
        let line = o.finish();
        assert_eq!(line, r#"{"names":["p","a \"q\""],"ids":[0,42],"empty":[]}"#);
        let map = parse_object(&line).unwrap();
        assert_eq!(map["names"].as_str_arr(), Some(vec!["p", "a \"q\""]));
        let ids: Vec<u64> = map["ids"]
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![0, 42]);
        assert_eq!(map["empty"].as_arr(), Some(&[][..]));
        assert_eq!(map["ids"].as_str_arr(), None);
        let spaced = parse_object(r#"{ "a" : [ 1 , "x" , null ] }"#).unwrap();
        assert_eq!(spaced["a"].as_arr().unwrap().len(), 3);
    }
}
