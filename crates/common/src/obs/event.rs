//! The telemetry event model: named phases, progress snapshots and the
//! [`SolveEvent`] enum every observer receives.

use std::time::Duration;

/// A named unit of solver work that wall time is attributed to.
///
/// The coarse phases (`Parse` through `Solve`) follow the lifecycle of a
/// run: front-end parsing, the offline pre-passes of the paper (§4: offline
/// variable substitution, the HCD offline pass and its SCC detection), then
/// the online solve. The fine phases (`Complex`, `Propagate`,
/// `CycleSearch`) subdivide the online solve into the three activities §5.3
/// of the paper measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Reading and parsing the input program into constraints.
    Parse = 0,
    /// Constraint normalization (canonicalization, duplicate and self-copy
    /// elimination) in the offline pass pipeline.
    OfflineNormalize = 1,
    /// Offline variable substitution (Rountev & Chandra).
    OfflineOvs = 2,
    /// The HCD offline pass over the (ref-augmented) constraint graph.
    OfflineHcd = 3,
    /// SCC detection inside the offline passes.
    OfflineScc = 4,
    /// The online worklist solve as a whole.
    Solve = 5,
    /// Complex-constraint resolution (loads/stores adding edges).
    Complex = 6,
    /// Points-to propagation across constraint edges.
    Propagate = 7,
    /// Online cycle detection (LCD/PKH searches, HT queries).
    CycleSearch = 8,
}

impl Phase {
    /// Number of distinct phases (for fixed-size per-phase tables).
    pub const COUNT: usize = 9;

    /// Every phase, in declaration order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Parse,
        Phase::OfflineNormalize,
        Phase::OfflineOvs,
        Phase::OfflineHcd,
        Phase::OfflineScc,
        Phase::Solve,
        Phase::Complex,
        Phase::Propagate,
        Phase::CycleSearch,
    ];

    /// Stable machine-readable name, used as the `phase` field in traces.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::OfflineNormalize => "offline_normalize",
            Phase::OfflineOvs => "offline_ovs",
            Phase::OfflineHcd => "offline_hcd",
            Phase::OfflineScc => "offline_scc",
            Phase::Solve => "solve",
            Phase::Complex => "complex",
            Phase::Propagate => "propagate",
            Phase::CycleSearch => "cycle_search",
        }
    }

    /// Index into per-phase tables; the inverse of [`Phase::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Parses the [`Phase::name`] spelling back into a phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// A point-in-time measurement of solver progress, emitted every N
/// worklist pops (see `Obs::tick`) and once at the end of every solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Nodes currently awaiting processing on the worklist.
    pub worklist_len: usize,
    /// Worklist pops performed so far.
    pub nodes_processed: u64,
    /// Points-to propagations performed so far.
    pub propagations: u64,
    /// Bytes currently held by points-to set representations (an estimate
    /// during the run; exact byte accounting happens at finalization).
    pub pts_bytes: usize,
}

/// One telemetry event, delivered to [`Observer::on_event`].
///
/// [`Observer::on_event`]: crate::obs::Observer::on_event
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveEvent {
    /// A solver run begins; subsequent events belong to `name` until the
    /// next `SolverStart`.
    SolverStart {
        /// Stable solver name (e.g. `"lcd"`, `"ht"`, `"blq"`).
        name: &'static str,
    },
    /// A phase span opened.
    PhaseStart {
        /// The phase being entered.
        phase: Phase,
    },
    /// A phase span closed.
    PhaseEnd {
        /// The phase being left.
        phase: Phase,
        /// Wall time of the whole span (including nested phases).
        duration: Duration,
    },
    /// A periodic progress measurement.
    Progress(ProgressSnapshot),
    /// A cycle was detected and collapsed into its representative.
    CycleCollapsed {
        /// Number of nodes merged away (cycle size minus the survivor).
        members: u64,
    },
    /// Complex-constraint resolution mutated the constraint graph.
    GraphMutation {
        /// Edges added by this resolution step.
        edges_added: u64,
    },
    /// Final cache statistics of a shared (interned) points-to
    /// representation, emitted once at the end of a solve. Absent for
    /// representations without shared caches.
    ReprCache(crate::stats::ReprCacheStats),
    /// One bulk-synchronous round of the parallel propagation engine
    /// finished: the round's batch was snapshotted, hint workers ran, and
    /// the deterministic sequential merge applied every node.
    RoundSummary {
        /// 1-based round number within the current solve.
        round: u64,
        /// Nodes in this round's batch.
        nodes: u64,
        /// Worker shards spawned for the hint phase (0 when the round ran
        /// purely sequentially).
        shards: u32,
        /// Delta/equality hints the workers produced.
        hints: u64,
        /// Hints that were still valid — and therefore consumed — during
        /// the sequential merge.
        hint_hits: u64,
        /// Wall time of the parallel worker phase, in microseconds.
        worker_micros: u64,
    },
    /// Per-shard utilization of one BSP round's worker phase, emitted once
    /// per shard just before the round's [`SolveEvent::RoundSummary`].
    ShardUtilization {
        /// 1-based round number within the current solve.
        round: u64,
        /// 0-based shard index within the round.
        shard: u32,
        /// Nodes assigned to this shard.
        nodes: u64,
        /// Busy wall time of the shard's worker thread, in microseconds.
        busy_micros: u64,
    },
    /// One offline pass of the preprocessing pipeline finished, with its
    /// constraint-reduction bookkeeping. Emitted once per pass, after the
    /// pass's phase span closes.
    PassSummary {
        /// Stable pass name (e.g. `"normalize"`, `"ovs"`, `"hcd"`).
        pass: &'static str,
        /// Constraints entering the pass.
        constraints_before: u64,
        /// Constraints leaving the pass.
        constraints_after: u64,
        /// Variables the pass merged into a representative other than
        /// themselves.
        vars_merged: u64,
        /// Wall time of the pass, in microseconds.
        micros: u64,
    },
    /// One request answered by a query session (`ant serve`). Emitted per
    /// request so traces can reconstruct per-op latency distributions.
    Query {
        /// Protocol operation name (e.g. `"points_to"`, `"may_alias"`).
        op: &'static str,
        /// Whether the request produced a success envelope.
        ok: bool,
        /// Wall time from receipt to answer, in microseconds.
        micros: u64,
    },
    /// The final metrics flush of a recorded solve: the counters,
    /// histograms and top-K cost tables accumulated by the run's
    /// `MetricsRegistry`. Emitted once, just before the solve phase
    /// closes, and only when provenance recording was enabled.
    Metrics(crate::obs::metrics::MetricsSnapshot),
    /// A warm-start resume: a retained solver fixpoint re-entered the solve
    /// loop after a constraint delta was grafted onto its program. Emitted
    /// once per resume, before the solver re-seeds its worklist, so traces
    /// distinguish incremental re-solves from from-scratch runs.
    Resume {
        /// Variables the delta introduced beyond the retained state.
        new_vars: u64,
        /// Constraints appended beyond the retained state's program.
        new_constraints: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
            assert_eq!(Phase::ALL[p.index()], p);
        }
        assert_eq!(Phase::from_name("bogus"), None);
    }
}
