//! Solver telemetry: phase-scoped tracing, live progress snapshots and
//! JSON-lines export.
//!
//! The model is deliberately small and dependency-free:
//!
//! * [`SolveEvent`] — what can happen: phase spans opening/closing,
//!   periodic [`ProgressSnapshot`]s, cycles collapsing, constraint-graph
//!   mutations, and a `SolverStart` marker that scopes subsequent events.
//! * [`Observer`] — where events go. [`NoopObserver`] reports itself
//!   disabled; [`FanOut`] broadcasts to several sinks; [`TraceWriter`]
//!   emits JSON lines; [`ProgressPrinter`] renders live progress for a
//!   terminal.
//! * [`Obs`] — the handle instrumented code carries. It caches the
//!   observer's enabled flag and owns the snapshot cadence counter, so an
//!   un-observed run pays one predictable branch per emission site and per
//!   worklist pop.
//! * [`PhaseTimer`] — a span stack attributing wall time (whole-span and
//!   exclusive self time) to [`Phase`]s while emitting the matching
//!   start/end events.
//!
//! The JSON layer ([`JsonObject`], [`parse_object`]) is hand-rolled for
//! the flat one-object-per-line trace schema, keeping the workspace free
//! of serialization crates.
//!
//! Two optional introspection layers sit on top of the event model:
//! [`prov`] records *why* each points-to tuple and copy edge was derived
//! (flat arenas, consumed by `ant_core::provenance`), and [`metrics`]
//! attributes solver cost to individual variables and constraints,
//! flushed once per recorded solve as [`SolveEvent::Metrics`].

mod event;
mod json;
pub mod metrics;
mod observer;
pub mod prov;
mod sink;
mod timer;

pub use event::{Phase, ProgressSnapshot, SolveEvent};
pub use json::{escape_into, parse_object, JsonObject, JsonValue};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, TopEntries};
pub use observer::{FanOut, NoopObserver, Obs, Observer};
pub use prov::{ProvRecord, ProvRecorder, Reason};
pub use sink::{ProgressPrinter, TraceWriter};
pub use timer::PhaseTimer;
