//! The metrics registry: monotonic counters, log2-bucket histograms and
//! dense per-id series that attribute solver cost to individual variables
//! and constraints.
//!
//! A [`MetricsRegistry`] is carried by the provenance recorder (see
//! [`prov`](super::prov)) and flushed once at the end of a solve as a
//! [`SolveEvent::Metrics`](super::SolveEvent::Metrics) record holding a
//! [`MetricsSnapshot`]: the counters, every histogram, and a top-K table
//! per series (hottest variables, fattest sets, most-retriggered
//! constraints). Everything is flat vectors — no per-observation
//! allocation once a named slot exists.

/// A histogram with log2-spaced buckets: bucket 0 counts the value `0`,
/// bucket `i ≥ 1` counts values in `[2^(i-1), 2^i)`. 33 buckets cover the
/// full `u32` range (and saturate for larger values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
}

impl Histogram {
    /// Number of buckets (value 0 plus one per power of two up to `2^32`).
    pub const BUCKETS: usize = 33;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
        }
    }

    /// The bucket index a value lands in.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(Histogram::BUCKETS - 1)
        }
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_low(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Counts one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> &[u64; Histogram::BUCKETS] {
        &self.buckets
    }

    /// Compact `bucket:count` encoding of the non-empty buckets (the trace
    /// format's flat-string representation, e.g. `"0:3 2:17"`).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&format!("{i}:{c}"));
            }
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// One top-K table of a [`MetricsSnapshot`]: the series name and its
/// largest entries as `(id, value)`, descending by value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopEntries {
    /// The series this table ranks (e.g. `"worklist_pops"`).
    pub name: &'static str,
    /// `(id, value)` pairs, largest value first. Ids are variable (or
    /// constraint-pivot) indices into the solved program.
    pub entries: Vec<(u32, u64)>,
}

/// The flushed form of a [`MetricsRegistry`], carried by
/// [`SolveEvent::Metrics`](super::SolveEvent::Metrics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, in registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Histograms: explicitly observed ones plus one derived per series
    /// (the distribution of the series' values).
    pub hists: Vec<(&'static str, Histogram)>,
    /// One top-K table per series.
    pub tops: Vec<TopEntries>,
}

impl MetricsSnapshot {
    /// The value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The top-K table of a series, if present.
    pub fn top(&self, name: &str) -> Option<&TopEntries> {
        self.tops.iter().find(|t| t.name == name)
    }
}

/// Monotonic counters, histograms and dense per-id series, addressed by
/// static names. Lookup is a linear scan over a handful of slots, so the
/// registry adds no hashing to instrumented paths.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Histogram)>,
    series: Vec<(&'static str, Vec<u64>)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name, delta)),
        }
    }

    /// Sets the named counter to `value` (used for end-of-run gauges such
    /// as byte totals; still monotone per run since it is written once).
    pub fn set(&mut self, name: &'static str, value: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.counters.push((name, value)),
        }
    }

    /// The current value of a counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        match self.hists.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.observe(value),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                self.hists.push((name, h));
            }
        }
    }

    /// Adds `delta` to entry `id` of the named dense series (growing it
    /// with zeros as needed).
    pub fn series_add(&mut self, name: &'static str, id: u32, delta: u64) {
        let v = match self.series.iter_mut().position(|(n, _)| *n == name) {
            Some(i) => &mut self.series[i].1,
            None => {
                self.series.push((name, Vec::new()));
                &mut self.series.last_mut().expect("just pushed").1
            }
        };
        let idx = id as usize;
        if v.len() <= idx {
            v.resize(idx + 1, 0);
        }
        v[idx] += delta;
    }

    /// Sets entry `id` of the named series to `value`.
    pub fn series_set(&mut self, name: &'static str, id: u32, value: u64) {
        self.series_add(name, id, 0);
        let v = &mut self
            .series
            .iter_mut()
            .find(|(n, _)| *n == name)
            .expect("series exists")
            .1;
        v[id as usize] = value;
    }

    /// One entry of a series (zero when absent or out of range).
    pub fn series_get(&self, name: &str, id: u32) -> u64 {
        self.series
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.get(id as usize).copied())
            .unwrap_or(0)
    }

    /// Heap bytes owned by the registry's tables.
    pub fn heap_bytes(&self) -> usize {
        self.counters.capacity() * std::mem::size_of::<(&str, u64)>()
            + self.hists.capacity() * std::mem::size_of::<(&str, Histogram)>()
            + self
                .series
                .iter()
                .map(|(_, v)| v.capacity() * std::mem::size_of::<u64>())
                .sum::<usize>()
    }

    /// Flushes the registry: counters verbatim, the explicit histograms
    /// plus one derived histogram per series (distribution of its values),
    /// and a top-`k` table per series (largest first, zeros excluded).
    pub fn snapshot(&self, k: usize) -> MetricsSnapshot {
        let mut hists = self.hists.clone();
        let mut tops = Vec::with_capacity(self.series.len());
        for (name, values) in &self.series {
            let mut h = Histogram::new();
            for &v in values {
                h.observe(v);
            }
            hists.push((name, h));
            let mut ranked: Vec<(u32, u64)> = values
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v > 0)
                .map(|(i, &v)| (i as u32, v))
                .collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            ranked.truncate(k);
            tops.push(TopEntries {
                name,
                entries: ranked,
            });
        }
        MetricsSnapshot {
            counters: self.counters.clone(),
            hists,
            tops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1 << 20), 21);
        assert_eq!(Histogram::bucket_of(u64::MAX), Histogram::BUCKETS - 1);
        assert_eq!(Histogram::bucket_low(0), 0);
        assert_eq!(Histogram::bucket_low(1), 1);
        assert_eq!(Histogram::bucket_low(3), 4);
    }

    #[test]
    fn histogram_encodes_non_empty_buckets() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(0);
        h.observe(5);
        assert_eq!(h.count(), 3);
        assert_eq!(h.encode(), "0:2 3:1");
    }

    #[test]
    fn counters_and_series() {
        let mut m = MetricsRegistry::new();
        m.add("pops", 3);
        m.add("pops", 2);
        m.set("bytes", 100);
        assert_eq!(m.counter("pops"), 5);
        assert_eq!(m.counter("bytes"), 100);
        assert_eq!(m.counter("missing"), 0);
        m.series_add("per_var", 4, 10);
        m.series_add("per_var", 1, 7);
        m.series_add("per_var", 4, 1);
        assert_eq!(m.series_get("per_var", 4), 11);
        assert_eq!(m.series_get("per_var", 0), 0);
        m.observe("delta", 3);
        let snap = m.snapshot(5);
        assert_eq!(snap.counter("pops"), Some(5));
        let top = snap.top("per_var").expect("table exists");
        assert_eq!(top.entries, vec![(4, 11), (1, 7)]);
        // Derived histogram for the series plus the explicit one.
        assert_eq!(snap.hists.len(), 2);
        assert!(m.heap_bytes() > 0);
    }

    #[test]
    fn snapshot_truncates_to_k_and_breaks_ties_by_id() {
        let mut m = MetricsRegistry::new();
        for i in 0..10u32 {
            m.series_add("s", i, 5);
        }
        let snap = m.snapshot(3);
        assert_eq!(snap.top("s").unwrap().entries, vec![(0, 5), (1, 5), (2, 5)]);
    }
}
