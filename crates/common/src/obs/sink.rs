//! Ready-made observers: [`TraceWriter`] (machine-readable JSON lines) and
//! [`ProgressPrinter`] (human-readable live progress, normally on stderr).

use std::io::{self, Write};
use std::time::Instant;

use super::event::{Phase, ProgressSnapshot, SolveEvent};
use super::json::JsonObject;
use super::metrics::MetricsSnapshot;
use super::observer::Observer;

/// Writes one flat JSON object per event (JSON Lines).
///
/// Every record carries `t` (seconds since the writer was created), `event`
/// (the event kind) and `solver` (the most recent
/// [`SolveEvent::SolverStart`] name, empty before the first solver starts),
/// plus the kind-specific fields:
///
/// | `event`           | extra fields                                        |
/// |-------------------|-----------------------------------------------------|
/// | `solver_start`    | —                                                   |
/// | `phase_start`     | `phase`                                             |
/// | `phase_end`       | `phase`, `seconds`                                  |
/// | `progress`        | `worklist`, `nodes`, `propagations`, `pts_bytes`    |
/// | `cycle_collapsed` | `members`                                           |
/// | `graph_mutation`  | `edges_added`                                       |
/// | `repr_cache`      | `intern_hits`, `intern_misses`, `memo_hits`, `memo_misses`, `distinct_sets` |
/// | `round_summary`   | `round`, `nodes`, `shards`, `hints`, `hint_hits`, `worker_micros` |
/// | `shard_utilization` | `round`, `shard`, `nodes`, `busy_micros`          |
/// | `pass_summary`    | `pass`, `constraints_before`, `constraints_after`, `vars_merged`, `micros` |
/// | `query`           | `op`, `ok`, `micros`                                |
/// | `resume`          | `new_vars`, `new_constraints`                       |
/// | `metrics`         | see below                                           |
///
/// A [`SolveEvent::Metrics`] flush expands into *several* flat lines (the
/// parser deliberately rejects nested values): first a `kind="summary"`
/// line with `counters`/`hists`/`tops` cardinalities, then one
/// `kind="counter"` line per counter (`name`, `value`), one `kind="hist"`
/// line per histogram (`name`, `count`, `buckets` as a `"bucket:count ..."`
/// string), and one `kind="top"` line per top-K table (`name`, `entries`
/// as an `"id:value ..."` string, largest first).
pub struct TraceWriter<W: Write> {
    out: W,
    epoch: Instant,
    solver: &'static str,
    /// First write error, if any (subsequent events are dropped).
    error: Option<io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out`; the timestamp epoch is "now".
    pub fn new(out: W) -> Self {
        TraceWriter {
            out,
            epoch: Instant::now(),
            solver: "",
            error: None,
        }
    }

    /// The first I/O error encountered while writing, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }

    fn record(&mut self, event: &SolveEvent) -> String {
        if let SolveEvent::Metrics(snap) = event {
            return self.record_metrics(snap);
        }
        let mut o = JsonObject::new();
        o.float_field("t", self.epoch.elapsed().as_secs_f64());
        match event {
            SolveEvent::SolverStart { name } => {
                self.solver = name;
                o.str_field("event", "solver_start");
                o.str_field("solver", name);
            }
            SolveEvent::PhaseStart { phase } => {
                o.str_field("event", "phase_start");
                o.str_field("solver", self.solver);
                o.str_field("phase", phase.name());
            }
            SolveEvent::PhaseEnd { phase, duration } => {
                o.str_field("event", "phase_end");
                o.str_field("solver", self.solver);
                o.str_field("phase", phase.name());
                o.float_field("seconds", duration.as_secs_f64());
            }
            SolveEvent::Progress(s) => {
                o.str_field("event", "progress");
                o.str_field("solver", self.solver);
                o.uint_field("worklist", s.worklist_len as u64);
                o.uint_field("nodes", s.nodes_processed);
                o.uint_field("propagations", s.propagations);
                o.uint_field("pts_bytes", s.pts_bytes as u64);
            }
            SolveEvent::CycleCollapsed { members } => {
                o.str_field("event", "cycle_collapsed");
                o.str_field("solver", self.solver);
                o.uint_field("members", *members);
            }
            SolveEvent::GraphMutation { edges_added } => {
                o.str_field("event", "graph_mutation");
                o.str_field("solver", self.solver);
                o.uint_field("edges_added", *edges_added);
            }
            SolveEvent::ReprCache(s) => {
                o.str_field("event", "repr_cache");
                o.str_field("solver", self.solver);
                o.uint_field("intern_hits", s.intern_hits);
                o.uint_field("intern_misses", s.intern_misses);
                o.uint_field("memo_hits", s.memo_hits);
                o.uint_field("memo_misses", s.memo_misses);
                o.uint_field("distinct_sets", s.distinct_sets);
            }
            SolveEvent::RoundSummary {
                round,
                nodes,
                shards,
                hints,
                hint_hits,
                worker_micros,
            } => {
                o.str_field("event", "round_summary");
                o.str_field("solver", self.solver);
                o.uint_field("round", *round);
                o.uint_field("nodes", *nodes);
                o.uint_field("shards", *shards as u64);
                o.uint_field("hints", *hints);
                o.uint_field("hint_hits", *hint_hits);
                o.uint_field("worker_micros", *worker_micros);
            }
            SolveEvent::ShardUtilization {
                round,
                shard,
                nodes,
                busy_micros,
            } => {
                o.str_field("event", "shard_utilization");
                o.str_field("solver", self.solver);
                o.uint_field("round", *round);
                o.uint_field("shard", *shard as u64);
                o.uint_field("nodes", *nodes);
                o.uint_field("busy_micros", *busy_micros);
            }
            SolveEvent::PassSummary {
                pass,
                constraints_before,
                constraints_after,
                vars_merged,
                micros,
            } => {
                o.str_field("event", "pass_summary");
                o.str_field("solver", self.solver);
                o.str_field("pass", pass);
                o.uint_field("constraints_before", *constraints_before);
                o.uint_field("constraints_after", *constraints_after);
                o.uint_field("vars_merged", *vars_merged);
                o.uint_field("micros", *micros);
            }
            SolveEvent::Query { op, ok, micros } => {
                o.str_field("event", "query");
                o.str_field("solver", self.solver);
                o.str_field("op", op);
                o.bool_field("ok", *ok);
                o.uint_field("micros", *micros);
            }
            SolveEvent::Resume {
                new_vars,
                new_constraints,
            } => {
                o.str_field("event", "resume");
                o.str_field("solver", self.solver);
                o.uint_field("new_vars", *new_vars);
                o.uint_field("new_constraints", *new_constraints);
            }
            // Handled by the early return above.
            SolveEvent::Metrics(_) => unreachable!("metrics records are multi-line"),
        }
        o.finish()
    }

    fn record_metrics(&mut self, snap: &MetricsSnapshot) -> String {
        let t = self.epoch.elapsed().as_secs_f64();
        let head = |kind: &str| {
            let mut o = JsonObject::new();
            o.float_field("t", t);
            o.str_field("event", "metrics");
            o.str_field("solver", self.solver);
            o.str_field("kind", kind);
            o
        };
        let mut lines =
            Vec::with_capacity(1 + snap.counters.len() + snap.hists.len() + snap.tops.len());
        let mut o = head("summary");
        o.uint_field("counters", snap.counters.len() as u64);
        o.uint_field("hists", snap.hists.len() as u64);
        o.uint_field("tops", snap.tops.len() as u64);
        lines.push(o.finish());
        for &(name, value) in &snap.counters {
            let mut o = head("counter");
            o.str_field("name", name);
            o.uint_field("value", value);
            lines.push(o.finish());
        }
        for (name, hist) in &snap.hists {
            let mut o = head("hist");
            o.str_field("name", name);
            o.uint_field("count", hist.count());
            o.str_field("buckets", &hist.encode());
            lines.push(o.finish());
        }
        for top in &snap.tops {
            let mut o = head("top");
            o.str_field("name", top.name);
            let mut entries = String::new();
            for &(id, value) in &top.entries {
                if !entries.is_empty() {
                    entries.push(' ');
                }
                entries.push_str(&format!("{id}:{value}"));
            }
            o.str_field("entries", &entries);
            lines.push(o.finish());
        }
        lines.join("\n")
    }
}

impl<W: Write> Observer for TraceWriter<W> {
    fn on_event(&mut self, event: &SolveEvent) {
        if self.error.is_some() {
            return;
        }
        let line = self.record(event);
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }
}

/// Prints human-readable progress lines — phase transitions and periodic
/// snapshots — meant for a terminal (stderr) while a long solve runs.
///
/// Every line is flushed as it is written (progress that sits in a
/// buffer is no progress at all), and the end of the solve phase always
/// prints a final summary line from the latest snapshot — even when the
/// solve finished before the first `--progress-every` interval.
pub struct ProgressPrinter<W: Write> {
    out: W,
    solver: &'static str,
    last: ProgressSnapshot,
}

impl ProgressPrinter<io::Stderr> {
    /// A printer writing to stderr.
    pub fn stderr() -> Self {
        ProgressPrinter::new(io::stderr())
    }
}

impl<W: Write> ProgressPrinter<W> {
    /// Wraps an arbitrary writer (used by tests).
    pub fn new(out: W) -> Self {
        ProgressPrinter {
            out,
            solver: "",
            last: ProgressSnapshot::default(),
        }
    }

    fn tag(&self) -> &'static str {
        if self.solver.is_empty() {
            "-"
        } else {
            self.solver
        }
    }

    fn print_metrics(&mut self, tag: &'static str, snap: &MetricsSnapshot) -> io::Result<()> {
        writeln!(
            self.out,
            "[{tag}] metrics: {} counters | {} histograms | {} hotspot tables",
            snap.counters.len(),
            snap.hists.len(),
            snap.tops.len()
        )?;
        for top in &snap.tops {
            if top.entries.is_empty() {
                continue;
            }
            let mut s = String::new();
            for &(id, value) in top.entries.iter().take(3) {
                if !s.is_empty() {
                    s.push_str(", ");
                }
                s.push_str(&format!("v{id}={value}"));
            }
            writeln!(self.out, "[{tag}]   hottest {}: {s}", top.name)?;
        }
        Ok(())
    }
}

impl<W: Write> Observer for ProgressPrinter<W> {
    fn on_event(&mut self, event: &SolveEvent) {
        let tag = self.tag();
        let result = match event {
            SolveEvent::SolverStart { name } => {
                self.solver = name;
                writeln!(self.out, "[{name}] start")
            }
            SolveEvent::PhaseStart { phase } => {
                writeln!(self.out, "[{tag}] {} ...", phase.name())
            }
            SolveEvent::PhaseEnd { phase, duration } => {
                let mut r = writeln!(
                    self.out,
                    "[{tag}] {} done in {:.3}s",
                    phase.name(),
                    duration.as_secs_f64()
                );
                // Always leave a final summary for the solve, even when it
                // finished before the first progress interval fired.
                if r.is_ok() && *phase == Phase::Solve {
                    let s = self.last;
                    r = writeln!(
                        self.out,
                        "[{tag}] summary: nodes {} | propagations {} | pts {:.1} MiB",
                        s.nodes_processed,
                        s.propagations,
                        s.pts_bytes as f64 / (1024.0 * 1024.0)
                    );
                }
                r
            }
            SolveEvent::Progress(s) => {
                self.last = *s;
                writeln!(
                    self.out,
                    "[{tag}] worklist {} | nodes {} | propagations {} | pts {:.1} MiB",
                    s.worklist_len,
                    s.nodes_processed,
                    s.propagations,
                    s.pts_bytes as f64 / (1024.0 * 1024.0)
                )
            }
            SolveEvent::ReprCache(s) => {
                writeln!(
                    self.out,
                    "[{tag}] repr cache: {} distinct sets | intern hit rate {:.1}% | memo hit rate {:.1}%",
                    s.distinct_sets,
                    100.0 * s.intern_hit_rate(),
                    100.0 * s.memo_hit_rate(),
                )
            }
            SolveEvent::RoundSummary {
                round,
                nodes,
                shards,
                hints,
                hint_hits,
                worker_micros,
            } => {
                writeln!(
                    self.out,
                    "[{tag}] round {round}: {nodes} nodes | {shards} shards | \
                     {hint_hits}/{hints} hints used | workers {:.1}ms",
                    *worker_micros as f64 / 1000.0
                )
            }
            SolveEvent::PassSummary {
                pass,
                constraints_before,
                constraints_after,
                vars_merged,
                micros,
            } => {
                let reduction = if *constraints_before == 0 {
                    0.0
                } else {
                    100.0 * (1.0 - *constraints_after as f64 / *constraints_before as f64)
                };
                writeln!(
                    self.out,
                    "[{tag}] pass {pass}: {constraints_before} -> {constraints_after} \
                     constraints ({reduction:.1}% cut) | {vars_merged} vars merged | {:.1}ms",
                    *micros as f64 / 1000.0
                )
            }
            SolveEvent::Resume {
                new_vars,
                new_constraints,
            } => {
                writeln!(
                    self.out,
                    "[{tag}] resume: +{new_vars} vars | +{new_constraints} constraints"
                )
            }
            SolveEvent::Metrics(snap) => self.print_metrics(tag, snap),
            // Cycle, mutation, per-shard and per-query events are too
            // frequent for a terminal; the detail stays in the JSONL trace.
            SolveEvent::CycleCollapsed { .. }
            | SolveEvent::GraphMutation { .. }
            | SolveEvent::ShardUtilization { .. }
            | SolveEvent::Query { .. } => Ok(()),
        };
        // Progress sitting in a buffer is no progress at all.
        let _ = result.and_then(|()| self.out.flush());
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::{Phase, ProgressSnapshot};
    use super::super::json::parse_object;
    use super::*;
    use std::time::Duration;

    fn drive(observer: &mut dyn Observer) {
        observer.on_event(&SolveEvent::SolverStart { name: "lcd" });
        observer.on_event(&SolveEvent::PhaseStart {
            phase: Phase::Solve,
        });
        observer.on_event(&SolveEvent::Progress(ProgressSnapshot {
            worklist_len: 7,
            nodes_processed: 40,
            propagations: 99,
            pts_bytes: 1 << 20,
        }));
        observer.on_event(&SolveEvent::CycleCollapsed { members: 3 });
        observer.on_event(&SolveEvent::GraphMutation { edges_added: 2 });
        observer.on_event(&SolveEvent::ReprCache(crate::ReprCacheStats {
            intern_hits: 30,
            intern_misses: 10,
            memo_hits: 75,
            memo_misses: 25,
            distinct_sets: 11,
        }));
        observer.on_event(&SolveEvent::ShardUtilization {
            round: 4,
            shard: 1,
            nodes: 128,
            busy_micros: 250,
        });
        observer.on_event(&SolveEvent::RoundSummary {
            round: 4,
            nodes: 256,
            shards: 2,
            hints: 90,
            hint_hits: 81,
            worker_micros: 500,
        });
        observer.on_event(&SolveEvent::Query {
            op: "points_to",
            ok: true,
            micros: 42,
        });
        observer.on_event(&SolveEvent::PassSummary {
            pass: "ovs",
            constraints_before: 200,
            constraints_after: 50,
            vars_merged: 60,
            micros: 1200,
        });
        observer.on_event(&SolveEvent::PhaseEnd {
            phase: Phase::Solve,
            duration: Duration::from_millis(1500),
        });
    }

    #[test]
    fn trace_writer_emits_parseable_jsonl() {
        let mut w = TraceWriter::new(Vec::new());
        drive(&mut w);
        assert!(w.error().is_none());
        let text = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 11);
        let maps: Vec<_> = lines.iter().map(|l| parse_object(l).unwrap()).collect();
        for m in &maps {
            assert!(m["t"].as_f64().unwrap() >= 0.0);
            assert!(m.contains_key("solver"));
        }
        assert_eq!(maps[0]["event"].as_str(), Some("solver_start"));
        assert_eq!(maps[1]["event"].as_str(), Some("phase_start"));
        assert_eq!(maps[1]["phase"].as_str(), Some("solve"));
        assert_eq!(maps[1]["solver"].as_str(), Some("lcd"));
        assert_eq!(maps[2]["worklist"].as_u64(), Some(7));
        assert_eq!(maps[2]["pts_bytes"].as_u64(), Some(1 << 20));
        assert_eq!(maps[3]["members"].as_u64(), Some(3));
        assert_eq!(maps[4]["edges_added"].as_u64(), Some(2));
        assert_eq!(maps[5]["event"].as_str(), Some("repr_cache"));
        assert_eq!(maps[5]["intern_hits"].as_u64(), Some(30));
        assert_eq!(maps[5]["memo_misses"].as_u64(), Some(25));
        assert_eq!(maps[5]["distinct_sets"].as_u64(), Some(11));
        assert_eq!(maps[6]["event"].as_str(), Some("shard_utilization"));
        assert_eq!(maps[6]["round"].as_u64(), Some(4));
        assert_eq!(maps[6]["shard"].as_u64(), Some(1));
        assert_eq!(maps[6]["busy_micros"].as_u64(), Some(250));
        assert_eq!(maps[7]["event"].as_str(), Some("round_summary"));
        assert_eq!(maps[7]["nodes"].as_u64(), Some(256));
        assert_eq!(maps[7]["shards"].as_u64(), Some(2));
        assert_eq!(maps[7]["hints"].as_u64(), Some(90));
        assert_eq!(maps[7]["hint_hits"].as_u64(), Some(81));
        assert_eq!(maps[8]["event"].as_str(), Some("query"));
        assert_eq!(maps[8]["op"].as_str(), Some("points_to"));
        assert_eq!(maps[8]["ok"], crate::obs::JsonValue::Bool(true));
        assert_eq!(maps[8]["micros"].as_u64(), Some(42));
        assert_eq!(maps[9]["event"].as_str(), Some("pass_summary"));
        assert_eq!(maps[9]["pass"].as_str(), Some("ovs"));
        assert_eq!(maps[9]["constraints_before"].as_u64(), Some(200));
        assert_eq!(maps[9]["constraints_after"].as_u64(), Some(50));
        assert_eq!(maps[9]["vars_merged"].as_u64(), Some(60));
        assert_eq!(maps[9]["micros"].as_u64(), Some(1200));
        assert!((maps[10]["seconds"].as_f64().unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn resume_event_renders_in_both_sinks() {
        let event = SolveEvent::Resume {
            new_vars: 3,
            new_constraints: 17,
        };
        let mut w = TraceWriter::new(Vec::new());
        w.on_event(&SolveEvent::SolverStart { name: "pkh" });
        w.on_event(&event);
        let text = String::from_utf8(w.into_inner()).unwrap();
        let m = parse_object(text.lines().nth(1).unwrap()).unwrap();
        assert_eq!(m["event"].as_str(), Some("resume"));
        assert_eq!(m["solver"].as_str(), Some("pkh"));
        assert_eq!(m["new_vars"].as_u64(), Some(3));
        assert_eq!(m["new_constraints"].as_u64(), Some(17));

        let mut p = ProgressPrinter::new(Vec::new());
        p.on_event(&SolveEvent::SolverStart { name: "pkh" });
        p.on_event(&event);
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("[pkh] resume: +3 vars | +17 constraints"));
    }

    #[test]
    fn progress_printer_is_human_readable() {
        let mut p = ProgressPrinter::new(Vec::new());
        drive(&mut p);
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("[lcd] start"));
        assert!(text.contains("[lcd] solve ..."));
        assert!(text.contains("worklist 7"));
        assert!(text.contains("done in 1.500s"));
        assert!(text.contains("repr cache: 11 distinct sets"));
        assert!(text.contains("intern hit rate 75.0%"));
        assert!(text.contains("round 4: 256 nodes | 2 shards | 81/90 hints used"));
        assert!(text.contains("pass ovs: 200 -> 50 constraints (75.0% cut) | 60 vars merged"));
        // The solve phase always closes with a summary of the last snapshot.
        assert!(text.contains("[lcd] summary: nodes 40 | propagations 99 | pts 1.0 MiB"));
        // Chatty events are suppressed.
        assert!(!text.contains("members"));
        assert!(!text.contains("busy"));
    }

    #[test]
    fn progress_printer_summarizes_even_without_progress_lines() {
        let mut p = ProgressPrinter::new(Vec::new());
        p.on_event(&SolveEvent::SolverStart { name: "lcd" });
        p.on_event(&SolveEvent::PhaseEnd {
            phase: Phase::Solve,
            duration: Duration::from_millis(2),
        });
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("[lcd] summary: nodes 0 | propagations 0"));
    }

    fn sample_metrics() -> SolveEvent {
        let mut m = crate::obs::MetricsRegistry::new();
        m.add("worklist_pops", 40);
        m.observe("propagation_delta", 3);
        m.series_add("pops_per_var", 2, 30);
        m.series_add("pops_per_var", 5, 10);
        SolveEvent::Metrics(m.snapshot(8))
    }

    #[test]
    fn trace_writer_expands_metrics_into_flat_lines() {
        let mut w = TraceWriter::new(Vec::new());
        w.on_event(&SolveEvent::SolverStart { name: "lcd" });
        w.on_event(&sample_metrics());
        assert!(w.error().is_none());
        let text = String::from_utf8(w.into_inner()).unwrap();
        let maps: Vec<_> = text
            .lines()
            .skip(1)
            .map(|l| parse_object(l).unwrap())
            .collect();
        // Summary + 1 counter + 2 hists (explicit + derived) + 1 top.
        assert_eq!(maps.len(), 5);
        for m in &maps {
            assert_eq!(m["event"].as_str(), Some("metrics"));
            assert_eq!(m["solver"].as_str(), Some("lcd"));
        }
        assert_eq!(maps[0]["kind"].as_str(), Some("summary"));
        assert_eq!(maps[0]["counters"].as_u64(), Some(1));
        assert_eq!(maps[0]["hists"].as_u64(), Some(2));
        assert_eq!(maps[0]["tops"].as_u64(), Some(1));
        assert_eq!(maps[1]["kind"].as_str(), Some("counter"));
        assert_eq!(maps[1]["name"].as_str(), Some("worklist_pops"));
        assert_eq!(maps[1]["value"].as_u64(), Some(40));
        assert_eq!(maps[2]["kind"].as_str(), Some("hist"));
        assert_eq!(maps[2]["name"].as_str(), Some("propagation_delta"));
        assert_eq!(maps[2]["buckets"].as_str(), Some("2:1"));
        assert_eq!(maps[4]["kind"].as_str(), Some("top"));
        assert_eq!(maps[4]["name"].as_str(), Some("pops_per_var"));
        assert_eq!(maps[4]["entries"].as_str(), Some("2:30 5:10"));
    }

    #[test]
    fn progress_printer_renders_metrics_hotspots() {
        let mut p = ProgressPrinter::new(Vec::new());
        p.on_event(&SolveEvent::SolverStart { name: "lcd" });
        p.on_event(&sample_metrics());
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("[lcd] metrics: 1 counters | 2 histograms | 1 hotspot tables"));
        assert!(text.contains("[lcd]   hottest pops_per_var: v2=30, v5=10"));
    }
}
