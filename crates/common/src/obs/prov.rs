//! The provenance recorder: flat arenas remembering, for every points-to
//! tuple and every copy edge the online solver derives, the constraint or
//! propagation step that *first* derived it.
//!
//! Three arenas of [`ProvRecord`] (`(target, source, Reason)`), keyed by
//! insertion order — no per-tuple allocation beyond the arena growth:
//!
//! * **tuples** — `target` is the variable, `source` the location; the
//!   reason says whether the tuple is a base `AddressOf` fact or was
//!   propagated along an edge from another variable.
//! * **edges** — `target` is the edge destination, `source` the edge
//!   source, always in *constraint direction* (`source ⊆ target`); the
//!   reason is the originating `Copy` constraint or the complex
//!   (load/store) constraint instance that added the edge online.
//! * **merges** — `target` is the variable collapsed away (the loser),
//!   `source` the surviving representative, in merge order. Offline
//!   collapses (OVS) are *not* recorded here; they are reconstructed from
//!   the pass pipeline's `SolutionMapping` at explanation time.
//!
//! Because every insertion into the solver's sets appends a record, the
//! *first* record for a fact (scanning in insertion order, identifying
//! variables up to the recorded merges) is a valid derivation whose
//! premises were recorded strictly earlier — so chains found by
//! first-record lookup always terminate at `AddressOf` facts. The
//! explainer that exploits this lives in `ant_core::provenance`.
//!
//! The recorder also owns the run's [`MetricsRegistry`], so a single
//! `Option<Box<ProvRecorder>>` test gates all recording.

use super::metrics::MetricsRegistry;
use crate::mem::vec_bytes;

/// Why a fact (points-to tuple or graph edge) holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reason {
    /// Base fact: an `AddressOf` constraint `target ⊇ {source}`.
    AddrOf,
    /// The tuple was copied into `target` by a propagation along the edge
    /// from the named variable.
    PropagatedFrom(u32),
    /// The edge comes verbatim from a `Copy` constraint of the solved
    /// program.
    CopyConstraint,
    /// The edge was added by a load constraint `target = *pivot` (plus
    /// offset) when `loc` entered `pts(pivot)`; `source` of the record is
    /// the variable `loc` resolved to.
    LoadEdge {
        /// The dereferenced pointer of the load constraint.
        pivot: u32,
        /// The location whose membership in `pts(pivot)` fired the edge.
        loc: u32,
    },
    /// The edge was added by a store constraint `*pivot = source` (plus
    /// offset) when `loc` entered `pts(pivot)`.
    StoreEdge {
        /// The dereferenced pointer of the store constraint.
        pivot: u32,
        /// The location whose membership in `pts(pivot)` fired the edge.
        loc: u32,
    },
    /// `target` was collapsed into `source` by online cycle detection
    /// (LCD, HCD, or a solver's own cycle elimination).
    MergedWith,
}

/// One derivation record: `(target, source, Reason)`. The meaning of the
/// two ids depends on the arena — see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProvRecord {
    /// Tuple arena: the variable. Edge arena: the edge destination.
    /// Merge arena: the collapsed (losing) variable.
    pub target: u32,
    /// Tuple arena: the location. Edge arena: the edge source. Merge
    /// arena: the surviving representative.
    pub source: u32,
    /// The step that derived the fact.
    pub reason: Reason,
}

/// The derivation recorder threaded through the online solvers, plus the
/// run's metrics registry. Construct with [`ProvRecorder::new`], hand to a
/// `solve_*_recorded` entry point, and query the returned recorder through
/// `ant_core::provenance::Explainer`.
#[derive(Clone, Debug, Default)]
pub struct ProvRecorder {
    /// Points-to tuple derivations, in insertion order.
    pub tuples: Vec<ProvRecord>,
    /// Copy-edge derivations (constraint direction), in insertion order.
    pub edges: Vec<ProvRecord>,
    /// Online collapses as `(loser, winner)` records, in merge order.
    pub merges: Vec<ProvRecord>,
    /// Counters, histograms and per-variable cost series for the run.
    pub metrics: MetricsRegistry,
}

impl ProvRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        ProvRecorder::default()
    }

    /// Records the first derivation of tuple `loc ∈ pts(var)`.
    #[inline]
    pub fn record_tuple(&mut self, var: u32, loc: u32, reason: Reason) {
        self.tuples.push(ProvRecord {
            target: var,
            source: loc,
            reason,
        });
    }

    /// Records the first derivation of the constraint-direction edge
    /// `src → dst` (i.e. `pts(src) ⊆ pts(dst)`).
    #[inline]
    pub fn record_edge(&mut self, src: u32, dst: u32, reason: Reason) {
        self.edges.push(ProvRecord {
            target: dst,
            source: src,
            reason,
        });
    }

    /// Records the online collapse of `loser` into `winner`.
    #[inline]
    pub fn record_merge(&mut self, loser: u32, winner: u32) {
        self.merges.push(ProvRecord {
            target: loser,
            source: winner,
            reason: Reason::MergedWith,
        });
    }

    /// Total records across the three arenas.
    pub fn len(&self) -> usize {
        self.tuples.len() + self.edges.len() + self.merges.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes owned by the arenas and the metrics registry.
    pub fn heap_bytes(&self) -> usize {
        vec_bytes(&self.tuples)
            + vec_bytes(&self.edges)
            + vec_bytes(&self.merges)
            + self.metrics.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arenas_preserve_insertion_order() {
        let mut p = ProvRecorder::new();
        assert!(p.is_empty());
        p.record_tuple(1, 9, Reason::AddrOf);
        p.record_tuple(2, 9, Reason::PropagatedFrom(1));
        p.record_edge(1, 2, Reason::CopyConstraint);
        p.record_edge(3, 4, Reason::LoadEdge { pivot: 2, loc: 9 });
        p.record_merge(5, 3);
        assert_eq!(p.len(), 5);
        assert_eq!(
            p.tuples[0],
            ProvRecord {
                target: 1,
                source: 9,
                reason: Reason::AddrOf
            }
        );
        assert_eq!(p.tuples[1].reason, Reason::PropagatedFrom(1));
        assert_eq!(p.edges[1].reason, Reason::LoadEdge { pivot: 2, loc: 9 });
        assert_eq!(p.merges[0].target, 5);
        assert_eq!(p.merges[0].source, 3);
        assert_eq!(p.merges[0].reason, Reason::MergedWith);
        assert!(p.heap_bytes() > 0);
    }
}
