//! The [`Observer`] trait, the no-op default, the [`FanOut`] combinator and
//! the [`Obs`] handle solvers carry through their hot loops.

use super::event::SolveEvent;

/// A sink for [`SolveEvent`]s.
///
/// Implementations must be cheap per event; solvers emit events from inside
/// their worklist loops. An observer that is not interested in a run can
/// return `false` from [`Observer::enabled`], which lets instrumented code
/// skip event construction (and the associated clock reads) entirely.
pub trait Observer {
    /// Receives one event.
    fn on_event(&mut self, event: &SolveEvent);

    /// Whether this observer wants events at all. Instrumentation is gated
    /// on this, so a disabled observer costs one cached boolean test per
    /// emission site.
    fn enabled(&self) -> bool {
        true
    }
}

/// The do-nothing observer: reports itself disabled so instrumented code
/// pays (almost) nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn on_event(&mut self, _event: &SolveEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Broadcasts every event to several observers (e.g. a JSONL trace file and
/// a live stderr progress printer at the same time).
#[derive(Default)]
pub struct FanOut<'a> {
    sinks: Vec<&'a mut dyn Observer>,
}

impl<'a> FanOut<'a> {
    /// Creates an empty fan-out (disabled until a sink is added).
    pub fn new() -> Self {
        FanOut::default()
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: &'a mut dyn Observer) {
        self.sinks.push(sink);
    }
}

impl Observer for FanOut<'_> {
    fn on_event(&mut self, event: &SolveEvent) {
        for sink in &mut self.sinks {
            if sink.enabled() {
                sink.on_event(event);
            }
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
}

/// The handle instrumented code holds: an optional observer plus the
/// progress-snapshot cadence counter.
///
/// `Obs::none()` is the default wiring; it caches `enabled = false`, so the
/// per-pop cost of an un-observed run is a single predictable branch.
pub struct Obs<'o> {
    inner: Option<&'o mut dyn Observer>,
    enabled: bool,
    every: u32,
    countdown: u32,
}

impl<'o> Obs<'o> {
    /// No observer attached; all emission sites become near-free.
    pub fn none() -> Self {
        Obs {
            inner: None,
            enabled: false,
            every: 0,
            countdown: 0,
        }
    }

    /// Attaches `observer`, emitting a progress snapshot every `every`
    /// worklist pops (`0` disables periodic snapshots; a final snapshot is
    /// still emitted at the end of a solve).
    pub fn new(observer: &'o mut dyn Observer, every: u32) -> Self {
        let enabled = observer.enabled();
        Obs {
            inner: Some(observer),
            enabled,
            every,
            countdown: every,
        }
    }

    /// Whether instrumentation should run (cached at attach time).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Delivers one event (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, event: &SolveEvent) {
        if self.enabled {
            if let Some(observer) = self.inner.as_deref_mut() {
                observer.on_event(event);
            }
        }
    }

    /// Counts one worklist pop; returns `true` when a progress snapshot is
    /// due. Call sites build the (comparatively expensive) snapshot only on
    /// a `true` return.
    #[inline]
    pub fn tick(&mut self) -> bool {
        if !self.enabled || self.every == 0 {
            return false;
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.every;
            true
        } else {
            false
        }
    }

    /// The configured snapshot cadence (pops between snapshots; 0 = off).
    pub fn every(&self) -> u32 {
        self.every
    }
}

impl Default for Obs<'_> {
    fn default() -> Self {
        Obs::none()
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::{Phase, ProgressSnapshot};
    use super::*;

    /// Records every event it sees.
    pub(crate) struct Recorder {
        pub events: Vec<SolveEvent>,
    }

    impl Recorder {
        pub fn new() -> Self {
            Recorder { events: Vec::new() }
        }
    }

    impl Observer for Recorder {
        fn on_event(&mut self, event: &SolveEvent) {
            self.events.push(event.clone());
        }
    }

    #[test]
    fn none_is_disabled_and_never_ticks() {
        let mut obs = Obs::none();
        assert!(!obs.enabled());
        for _ in 0..1000 {
            assert!(!obs.tick());
        }
        // Emitting into the void is fine.
        obs.emit(&SolveEvent::PhaseStart {
            phase: Phase::Solve,
        });
    }

    #[test]
    fn tick_fires_every_n_pops() {
        let mut rec = Recorder::new();
        let mut obs = Obs::new(&mut rec, 3);
        let fired: Vec<bool> = (0..10).map(|_| obs.tick()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true, false]
        );
    }

    #[test]
    fn zero_cadence_never_fires_but_still_emits() {
        let mut rec = Recorder::new();
        {
            let mut obs = Obs::new(&mut rec, 0);
            assert!(obs.enabled());
            for _ in 0..100 {
                assert!(!obs.tick());
            }
            obs.emit(&SolveEvent::Progress(ProgressSnapshot::default()));
        }
        assert_eq!(rec.events.len(), 1);
    }

    #[test]
    fn noop_observer_disables_the_handle() {
        let mut noop = NoopObserver;
        let mut obs = Obs::new(&mut noop, 1);
        assert!(!obs.enabled());
        assert!(!obs.tick());
    }

    #[test]
    fn fanout_broadcasts_and_reports_enabled() {
        let mut a = Recorder::new();
        let mut b = Recorder::new();
        {
            let mut fan = FanOut::new();
            assert!(!fan.enabled());
            fan.push(&mut a);
            fan.push(&mut b);
            assert!(fan.enabled());
            let mut obs = Obs::new(&mut fan, 0);
            obs.emit(&SolveEvent::CycleCollapsed { members: 4 });
        }
        assert_eq!(a.events, vec![SolveEvent::CycleCollapsed { members: 4 }]);
        assert_eq!(a.events, b.events);
    }
}
