//! Byte accounting for the paper's memory tables.
//!
//! The paper measures process memory; we instead instrument the dominant
//! data structures directly (bitmap elements, edge vectors, BDD node and
//! cache arrays), which measures exactly the quantity the paper's Tables 4
//! and 6 compare across representations.

/// Types that can report the heap bytes they own.
pub trait HeapBytes {
    /// Heap bytes owned by `self`, excluding `size_of::<Self>()` itself.
    fn heap_bytes(&self) -> usize;
}

impl HeapBytes for crate::SparseBitmap {
    fn heap_bytes(&self) -> usize {
        SparseBitmap::heap_bytes(self)
    }
}
use crate::SparseBitmap;

impl HeapBytes for crate::UnionFind {
    fn heap_bytes(&self) -> usize {
        crate::UnionFind::heap_bytes(self)
    }
}

impl<T: HeapBytes> HeapBytes for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapBytes::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapBytes> HeapBytes for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapBytes::heap_bytes)
    }
}

impl<T: HeapBytes> HeapBytes for Box<T> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<T>() + T::heap_bytes(self)
    }
}

impl HeapBytes for crate::obs::ProvRecorder {
    fn heap_bytes(&self) -> usize {
        crate::obs::ProvRecorder::heap_bytes(self)
    }
}

/// Heap bytes of a vector of plain (non-owning) elements.
pub fn vec_bytes<T>(v: &[T]) -> usize {
    std::mem::size_of_val(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_bytes_grow_with_elements() {
        let mut s = SparseBitmap::new();
        assert_eq!(s.heap_bytes(), 0);
        s.insert(1);
        s.insert(10_000);
        assert!(s.heap_bytes() >= 2 * 24);
    }

    #[test]
    fn vec_of_bitmaps_accounts_recursively() {
        let inner: SparseBitmap = [1u32, 500].into_iter().collect();
        let v = vec![inner.clone(), inner];
        assert!(v.heap_bytes() > 2 * std::mem::size_of::<SparseBitmap>());
    }

    #[test]
    fn plain_vec_bytes() {
        let v: Vec<u32> = vec![0; 16];
        assert_eq!(vec_bytes(&v), 64);
    }

    #[test]
    fn boxed_recorder_accounts_arena_bytes() {
        let mut p = crate::obs::ProvRecorder::new();
        p.record_tuple(1, 2, crate::obs::Reason::AddrOf);
        let boxed = Box::new(p);
        assert!(boxed.heap_bytes() >= std::mem::size_of::<crate::obs::ProvRecorder>());
    }
}
