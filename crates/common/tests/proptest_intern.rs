//! Property-based testing of the hash-consing intern table against a naive
//! model (`BTreeSet` per handle). The invariants under test are the ones
//! every `SharedPts` solver relies on:
//!
//! * **Canonical ids**: two handles have equal ids *iff* their sets have
//!   equal contents (this is what makes `set_eq` an O(1) id compare).
//! * **Copy-on-write**: no operation ever changes the contents behind a
//!   previously returned id.
//! * **Correctness under memoization**: results match the model whether
//!   they come from the memo cache or from a fresh computation.

use ant_common::{PtsInterner, SetId, SparseBitmap};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
enum Op {
    /// Intern a fresh set built from raw elements.
    Intern(Vec<u32>),
    /// `insert(ids[a], loc)`.
    Insert(usize, u32),
    /// `union(ids[a], ids[b])`.
    Union(usize, usize),
    /// `minus(ids[a], ids[b])`.
    Minus(usize, usize),
    /// `intersect(ids[a], ids[b])`.
    Intersect(usize, usize),
}

fn ops(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    // Handle indices are drawn large and reduced modulo the live handle
    // count when applied (the vendored proptest has no `any::<usize>()`).
    let idx = || 0usize..1_000_000;
    let op = prop_oneof![
        prop::collection::vec(0u32..200, 0..12).prop_map(Op::Intern),
        (idx(), 0u32..200).prop_map(|(a, l)| Op::Insert(a, l)),
        (idx(), idx()).prop_map(|(a, b)| Op::Union(a, b)),
        (idx(), idx()).prop_map(|(a, b)| Op::Minus(a, b)),
        (idx(), idx()).prop_map(|(a, b)| Op::Intersect(a, b)),
    ];
    prop::collection::vec(op, 1..max_ops)
}

fn contents(t: &PtsInterner, id: SetId) -> BTreeSet<u32> {
    t.get(id).iter().collect()
}

proptest! {
    #[test]
    fn interner_matches_model(ops in ops(60)) {
        let mut t = PtsInterner::new();
        // Parallel histories: ids[k] was returned alongside models[k].
        let mut ids: Vec<SetId> = vec![SetId::EMPTY];
        let mut models: Vec<BTreeSet<u32>> = vec![BTreeSet::new()];
        for op in ops {
            let (id, model) = match op {
                Op::Intern(elems) => {
                    let mut bm = SparseBitmap::new();
                    for &e in &elems {
                        bm.insert(e);
                    }
                    (t.intern(bm), elems.into_iter().collect())
                }
                Op::Insert(a, loc) => {
                    let a = a % ids.len();
                    let mut m = models[a].clone();
                    m.insert(loc);
                    (t.insert(ids[a], loc), m)
                }
                Op::Union(a, b) => {
                    let (a, b) = (a % ids.len(), b % ids.len());
                    let m = models[a].union(&models[b]).copied().collect();
                    (t.union(ids[a], ids[b]), m)
                }
                Op::Minus(a, b) => {
                    let (a, b) = (a % ids.len(), b % ids.len());
                    let m = models[a].difference(&models[b]).copied().collect();
                    (t.minus(ids[a], ids[b]), m)
                }
                Op::Intersect(a, b) => {
                    let (a, b) = (a % ids.len(), b % ids.len());
                    let m = models[a].intersection(&models[b]).copied().collect();
                    (t.intersect(ids[a], ids[b]), m)
                }
            };
            prop_assert_eq!(&contents(&t, id), &model, "result contents match the model");
            ids.push(id);
            models.push(model);
        }
        // Copy-on-write: every id ever returned still holds the contents it
        // had when it was returned.
        for (id, model) in ids.iter().zip(&models) {
            prop_assert_eq!(&contents(&t, *id), model, "stored sets are immutable");
        }
        // Canonical ids: id equality is exactly content equality.
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                prop_assert_eq!(
                    ids[i] == ids[j],
                    models[i] == models[j],
                    "ids {:?}/{:?} vs contents {:?}/{:?}",
                    ids[i],
                    ids[j],
                    &models[i],
                    &models[j]
                );
            }
        }
        // The table's distinct-set count agrees with the model's.
        let distinct: BTreeSet<&BTreeSet<u32>> = models.iter().collect();
        prop_assert!(t.distinct_sets() >= distinct.len());
    }
}
