//! Golden-file test for the JSONL trace format.
//!
//! A fixed event sequence is serialized through [`TraceWriter`] and
//! compared line by line against the checked-in fixture
//! `tests/fixtures/trace_golden.jsonl`. Timestamps and span durations are
//! wall-clock dependent, so the `t` and `seconds` fields are normalized to
//! `0.000000` on both sides before comparison — everything else (field
//! names, field order, value formatting, the multi-line metrics
//! expansion) must match byte for byte. Renaming an event or a field
//! breaks this test, which is the point: `trace_report` and any external
//! trace consumer parse these exact strings.
//!
//! To regenerate the fixture after an *intentional* schema change:
//!
//! ```text
//! TRACE_GOLDEN_REGENERATE=1 cargo test -p ant-common --test trace_golden
//! ```

use ant_common::obs::metrics::MetricsRegistry;
use ant_common::obs::{Observer, Phase, ProgressSnapshot, SolveEvent, TraceWriter};
use ant_common::ReprCacheStats;
use std::time::Duration;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/trace_golden.jsonl"
);

/// Every event kind the schema defines, once, with distinctive values.
fn fixed_events() -> Vec<SolveEvent> {
    let mut reg = MetricsRegistry::new();
    reg.add("worklist_pops", 42);
    reg.add("pts_bytes", 4096);
    reg.observe("propagation_delta", 1);
    reg.observe("propagation_delta", 7);
    reg.series_add("pops_per_var", 3, 19);
    reg.series_add("pops_per_var", 9, 2);
    vec![
        SolveEvent::PhaseStart {
            phase: Phase::Parse,
        },
        SolveEvent::PhaseEnd {
            phase: Phase::Parse,
            duration: Duration::from_micros(1500),
        },
        SolveEvent::PassSummary {
            pass: "ovs",
            constraints_before: 200,
            constraints_after: 50,
            vars_merged: 60,
            micros: 1200,
        },
        SolveEvent::SolverStart { name: "lcd+hcd" },
        SolveEvent::PhaseStart {
            phase: Phase::Solve,
        },
        SolveEvent::Progress(ProgressSnapshot {
            worklist_len: 10,
            nodes_processed: 5,
            propagations: 7,
            pts_bytes: 1 << 20,
        }),
        SolveEvent::CycleCollapsed { members: 3 },
        SolveEvent::GraphMutation { edges_added: 2 },
        SolveEvent::ShardUtilization {
            round: 2,
            shard: 0,
            nodes: 64,
            busy_micros: 400,
        },
        SolveEvent::RoundSummary {
            round: 2,
            nodes: 128,
            shards: 2,
            hints: 50,
            hint_hits: 45,
            worker_micros: 800,
        },
        SolveEvent::ReprCache(ReprCacheStats {
            intern_hits: 30,
            intern_misses: 10,
            memo_hits: 75,
            memo_misses: 25,
            distinct_sets: 11,
        }),
        SolveEvent::Metrics(reg.snapshot(10)),
        SolveEvent::PhaseEnd {
            phase: Phase::Solve,
            duration: Duration::from_micros(2500),
        },
    ]
}

/// Replaces the wall-clock dependent `"t":X` and `"seconds":X` values with
/// `0.000000` so runs are comparable.
fn normalize(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        let mut line = line.to_owned();
        for key in ["\"t\":", "\"seconds\":"] {
            if let Some(start) = line.find(key) {
                let vstart = start + key.len();
                let vend = line[vstart..]
                    .find([',', '}'])
                    .map(|i| vstart + i)
                    .unwrap_or(line.len());
                line.replace_range(vstart..vend, "0.000000");
            }
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[test]
fn trace_format_matches_checked_in_fixture() {
    let mut writer = TraceWriter::new(Vec::new());
    for event in fixed_events() {
        writer.on_event(&event);
    }
    let emitted = String::from_utf8(writer.into_inner()).unwrap();
    let emitted = normalize(&emitted);

    if std::env::var("TRACE_GOLDEN_REGENERATE").is_ok() {
        std::fs::write(FIXTURE, &emitted).unwrap();
        return;
    }

    let golden = normalize(&std::fs::read_to_string(FIXTURE).unwrap_or_else(|e| {
        panic!("missing fixture {FIXTURE}: {e}; run with TRACE_GOLDEN_REGENERATE=1 to create")
    }));
    for (i, (got, want)) in emitted.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "trace line {} drifted from the golden fixture — if the schema \
             change is intentional, regenerate with TRACE_GOLDEN_REGENERATE=1 \
             and update every trace consumer",
            i + 1
        );
    }
    assert_eq!(
        emitted.lines().count(),
        golden.lines().count(),
        "line count drifted from the golden fixture"
    );
}
