//! Property-based testing of the sparse bitmap against `BTreeSet`.

use ant_common::SparseBitmap;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn to_model(s: &SparseBitmap) -> BTreeSet<u32> {
    s.iter().collect()
}

fn sets() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    // Bits clustered in a smallish universe so elements overlap, plus a few
    // far-away outliers to exercise multi-element paths.
    let bit = prop_oneof![0u32..600, 100_000u32..100_200];
    (
        prop::collection::vec(bit.clone(), 0..120),
        prop::collection::vec(bit, 0..120),
    )
}

proptest! {
    #[test]
    fn insert_remove_contains((xs, ys) in sets()) {
        let mut s = SparseBitmap::new();
        let mut model = BTreeSet::new();
        for &x in &xs {
            prop_assert_eq!(s.insert(x), model.insert(x));
        }
        for &y in &ys {
            prop_assert_eq!(s.remove(y), model.remove(&y));
        }
        prop_assert_eq!(to_model(&s), model.clone());
        prop_assert_eq!(s.len(), model.len());
        prop_assert_eq!(s.is_empty(), model.is_empty());
        prop_assert_eq!(s.first(), model.iter().next().copied());
        prop_assert_eq!(s.last(), model.iter().next_back().copied());
    }

    #[test]
    fn union_matches_model((xs, ys) in sets()) {
        let a: SparseBitmap = xs.iter().copied().collect();
        let b: SparseBitmap = ys.iter().copied().collect();
        let (ma, mb): (BTreeSet<u32>, BTreeSet<u32>) =
            (xs.iter().copied().collect(), ys.iter().copied().collect());
        let mut u = a.clone();
        let changed = u.union_with(&b);
        let mu: BTreeSet<u32> = ma.union(&mb).copied().collect();
        prop_assert_eq!(to_model(&u), mu.clone());
        prop_assert_eq!(changed, mu != ma);
        // Union is idempotent.
        let mut u2 = u.clone();
        prop_assert!(!u2.union_with(&b));
        prop_assert!(!u2.union_with(&a));
    }

    #[test]
    fn intersection_difference_disjoint((xs, ys) in sets()) {
        let a: SparseBitmap = xs.iter().copied().collect();
        let b: SparseBitmap = ys.iter().copied().collect();
        let (ma, mb): (BTreeSet<u32>, BTreeSet<u32>) =
            (xs.iter().copied().collect(), ys.iter().copied().collect());

        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(to_model(&i), ma.intersection(&mb).copied().collect::<BTreeSet<_>>());

        let mut d = a.clone();
        d.subtract(&b);
        let md: BTreeSet<u32> = ma.difference(&mb).copied().collect();
        prop_assert_eq!(to_model(&d), md.clone());

        // The allocation-free difference iterator agrees with subtract.
        let iter_diff: Vec<u32> = a.difference(&b).collect();
        prop_assert_eq!(iter_diff, md.into_iter().collect::<Vec<_>>());

        prop_assert_eq!(a.is_disjoint(&b), ma.is_disjoint(&mb));
        prop_assert_eq!(a.superset_of(&b), mb.is_subset(&ma));
    }

    #[test]
    fn equality_is_extensional((xs, _) in sets()) {
        let a: SparseBitmap = xs.iter().copied().collect();
        // Insert in reverse order: same set, same representation.
        let b: SparseBitmap = xs.iter().rev().copied().collect();
        prop_assert_eq!(&a, &b);
        if let Some(first) = xs.first() {
            let mut c = b.clone();
            c.remove(*first);
            prop_assert_eq!(a == c, a.len() == c.len());
        }
    }
}
