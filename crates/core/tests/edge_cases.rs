//! Solver edge cases: degenerate constraint programs every algorithm must
//! handle identically.

use ant_constraints::{Program, ProgramBuilder};
use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig, VarId};

fn all_agree(program: &Program) -> ant_core::Solution {
    let reference = solve_dyn(
        program,
        &SolverConfig::new(Algorithm::Basic),
        PtsKind::Bitmap,
    );
    ant_core::verify::assert_sound(program, &reference.solution);
    for alg in Algorithm::ALL {
        let out = solve_dyn(program, &SolverConfig::new(alg), PtsKind::Bitmap);
        assert!(
            out.solution.equiv(&reference.solution),
            "{alg} differs at {:?}",
            out.solution.first_difference(&reference.solution)
        );
    }
    reference.solution
}

#[test]
fn empty_program() {
    let sol = all_agree(&ProgramBuilder::new().finish());
    assert_eq!(sol.num_vars(), 0);
}

#[test]
fn vars_without_constraints() {
    let mut pb = ProgramBuilder::new();
    pb.var("a");
    pb.var("b");
    let sol = all_agree(&pb.finish());
    assert!(sol.points_to(VarId::new(0)).is_empty());
}

#[test]
fn self_copy_and_self_points() {
    let mut pb = ProgramBuilder::new();
    let a = pb.var("a");
    pb.copy(a, a); // a = a
    pb.addr_of(a, a); // a = &a
    pb.load(a, a); // a = *a
    pb.store(a, a); // *a = a
    let sol = all_agree(&pb.finish());
    assert!(sol.may_point_to(a, a));
}

#[test]
fn two_node_cycle_through_stores() {
    let mut pb = ProgramBuilder::new();
    let p = pb.var("p");
    let q = pb.var("q");
    let x = pb.var("x");
    let y = pb.var("y");
    pb.addr_of(p, x);
    pb.addr_of(q, y);
    pb.store(p, q); // x ⊇ q
    pb.store(q, p); // y ⊇ p
    pb.load(p, q); // p ⊇ *q = y's pts
    pb.load(q, p); // q ⊇ *p
    let sol = all_agree(&pb.finish());
    // The fixpoint: p = {x}, q = {y}, and the two objects point at each
    // other through the stores.
    assert!(sol.may_point_to(p, x));
    assert!(sol.may_point_to(x, y));
    assert!(sol.may_point_to(y, x));
}

#[test]
fn duplicate_constraints_are_harmless() {
    let mut pb = ProgramBuilder::new();
    let p = pb.var("p");
    let x = pb.var("x");
    let q = pb.var("q");
    for _ in 0..5 {
        pb.addr_of(p, x);
        pb.copy(q, p);
        pb.load(x, q);
        pb.store(q, x);
    }
    all_agree(&pb.finish());
}

#[test]
fn offset_beyond_every_limit_is_dropped() {
    let mut pb = ProgramBuilder::new();
    let f = pb.function("f", 2);
    let p = pb.var("p");
    let r = pb.var("r");
    pb.addr_of(p, f);
    pb.load_offset(r, p, 9); // f has only 2 slots: resolves to nothing
    let sol = all_agree(&pb.finish());
    assert!(sol.points_to(r).is_empty());
}

#[test]
fn mixed_function_and_data_targets() {
    // A pointer that may point to a function *or* a plain variable; offset
    // resolution must skip the plain one.
    let mut pb = ProgramBuilder::new();
    let f = pb.function("f", 3);
    let g = pb.var("g");
    let p = pb.var("p");
    let arg = pb.var("arg");
    let x = pb.var("x");
    let r = pb.var("r");
    pb.addr_of(p, f);
    pb.addr_of(p, g);
    pb.addr_of(arg, x);
    pb.store_offset(p, arg, 2);
    pb.copy(f.offset(1), f.offset(2));
    pb.load_offset(r, p, 1);
    let sol = all_agree(&pb.finish());
    assert!(sol.may_point_to(r, x));
    assert!(
        sol.points_to(g).is_empty(),
        "g must not receive the argument"
    );
}

#[test]
fn long_copy_chain() {
    let mut pb = ProgramBuilder::new();
    let p = pb.var("p");
    let x = pb.var("x");
    pb.addr_of(p, x);
    let mut prev = p;
    for i in 0..300 {
        let v = pb.var(&format!("c{i}"));
        pb.copy(v, prev);
        prev = v;
    }
    let sol = all_agree(&pb.finish());
    assert!(sol.may_point_to(prev, x));
}

#[test]
fn giant_static_cycle() {
    let mut pb = ProgramBuilder::new();
    let p = pb.var("p");
    let x = pb.var("x");
    pb.addr_of(p, x);
    let first = pb.var("r0");
    let mut prev = first;
    for i in 1..200 {
        let v = pb.var(&format!("r{i}"));
        pb.copy(v, prev);
        prev = v;
    }
    pb.copy(first, prev); // close the ring
    pb.copy(first, p); // feed it
    let sol = all_agree(&pb.finish());
    assert!(sol.may_point_to(prev, x));
    assert!(sol.may_point_to(first, x));
}

#[test]
fn store_into_everything() {
    // A pointer to many objects: one store fans out to all of them.
    let mut pb = ProgramBuilder::new();
    let p = pb.var("p");
    let src = pb.var("src");
    let x = pb.var("x");
    pb.addr_of(src, x);
    let objs: Vec<VarId> = (0..50).map(|i| pb.var(&format!("o{i}"))).collect();
    for &o in &objs {
        pb.addr_of(p, o);
    }
    pb.store(p, src);
    let sol = all_agree(&pb.finish());
    for &o in &objs {
        assert!(sol.may_point_to(o, x));
    }
}

#[test]
fn load_from_empty_pointer_is_empty() {
    let mut pb = ProgramBuilder::new();
    let p = pb.var("p"); // never assigned
    let r = pb.var("r");
    pb.load(r, p);
    let sol = all_agree(&pb.finish());
    assert!(sol.points_to(r).is_empty());
}
