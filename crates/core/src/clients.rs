//! Client analyses built on the points-to solution — the consumers §1 of
//! the paper motivates ("pointer information is a prerequisite for most
//! program analyses").

use crate::Solution;
use ant_common::VarId;
use ant_constraints::{ConstraintKind, Program};

/// One resolved indirect call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// The function-pointer variable the call goes through.
    pub pointer: VarId,
    /// Functions the call may invoke (targets with a function block wide
    /// enough for the accessed slot).
    pub targets: Vec<VarId>,
}

/// Resolves every indirect call site of `program` against `solution`.
///
/// Indirect call sites are recognized by their Pearce-style encoding: a
/// load at offset 1 (the return-slot read). Targets are the function
/// variables in the pointer's points-to set.
///
/// # Example
///
/// ```
/// use ant_core::{clients, solve_dyn, Algorithm, PtsKind, SolverConfig};
/// use ant_constraints::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// let f = b.function("f", 3);
/// let fp = b.var("fp");
/// let r = b.var("r");
/// b.addr_of(fp, f);
/// b.load_offset(r, fp, 1); // r = fp(...)
/// let program = b.finish();
/// let out = solve_dyn(&program, &SolverConfig::new(Algorithm::Lcd), PtsKind::Bitmap);
/// let cg = clients::indirect_calls(&program, &out.solution);
/// assert_eq!(cg.len(), 1);
/// assert_eq!(cg[0].targets, vec![f]);
/// ```
pub fn indirect_calls(program: &Program, solution: &Solution) -> Vec<CallSite> {
    let mut out = Vec::new();
    for c in program.constraints() {
        if c.kind == ConstraintKind::Load && c.offset == 1 {
            let targets: Vec<VarId> = solution
                .points_to(c.rhs)
                .iter()
                .map(|&t| VarId::from_u32(t))
                .filter(|&t| program.offset_limit(t) > 1)
                .collect();
            out.push(CallSite {
                pointer: c.rhs,
                targets,
            });
        }
    }
    out
}

/// The *mod* set of a store constraint: every location the store may
/// write. Returns `None` for non-store constraints.
pub fn mod_set(program: &Program, solution: &Solution, constraint: usize) -> Option<Vec<VarId>> {
    let c = program.constraints().get(constraint)?;
    if c.kind != ConstraintKind::Store {
        return None;
    }
    Some(deref_targets(program, solution, c.lhs, c.offset))
}

/// The *ref* set of a load constraint: every location the load may read.
/// Returns `None` for non-load constraints.
pub fn ref_set(program: &Program, solution: &Solution, constraint: usize) -> Option<Vec<VarId>> {
    let c = program.constraints().get(constraint)?;
    if c.kind != ConstraintKind::Load {
        return None;
    }
    Some(deref_targets(program, solution, c.rhs, c.offset))
}

fn deref_targets(program: &Program, solution: &Solution, ptr: VarId, offset: u32) -> Vec<VarId> {
    solution
        .points_to(ptr)
        .iter()
        .map(|&v| VarId::from_u32(v))
        .filter(|&v| offset < program.offset_limit(v))
        .map(|v| v.offset(offset))
        .collect()
}

/// Locations whose address flows into some dereferenced pointer — i.e.
/// memory that can be accessed indirectly at all. Anything *not* in this
/// set can only be touched through its own name (a cheap escape-style
/// filter clients use to skip strong-update reasoning).
pub fn indirectly_accessed(program: &Program, solution: &Solution) -> Vec<VarId> {
    let mut hit = vec![false; program.num_vars()];
    for c in program.constraints() {
        let ptr = match c.kind {
            ConstraintKind::Load => c.rhs,
            ConstraintKind::Store => c.lhs,
            _ => continue,
        };
        for t in deref_targets(program, solution, ptr, c.offset) {
            hit[t.index()] = true;
        }
    }
    (0..program.num_vars())
        .map(VarId::new)
        .filter(|v| hit[v.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_dyn, Algorithm, PtsKind, SolverConfig};
    use ant_constraints::ProgramBuilder;

    fn setup() -> (Program, Solution) {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 3);
        let g = b.function("g", 3);
        let fp = b.var("fp");
        let p = b.var("p");
        let x = b.var("x");
        let y = b.var("y");
        let r = b.var("r");
        b.addr_of(fp, f);
        b.addr_of(fp, g);
        b.addr_of(p, x);
        b.addr_of(p, y);
        b.store(p, r); // *p = r
        b.load(r, p); // r = *p
        b.load_offset(r, fp, 1); // r = fp(..)
        let program = b.finish();
        let solution = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::Lcd),
            PtsKind::Bitmap,
        )
        .solution;
        (program, solution)
    }

    #[test]
    fn call_graph_resolves_both_targets() {
        let (program, solution) = setup();
        let cg = indirect_calls(&program, &solution);
        assert_eq!(cg.len(), 1);
        let names: Vec<&str> = cg[0].targets.iter().map(|&t| program.var_name(t)).collect();
        assert_eq!(names, vec!["f", "g"]);
    }

    #[test]
    fn mod_and_ref_sets() {
        let (program, solution) = setup();
        // Constraint 4 is the store, 5 the load (after 4 addr_ofs).
        let m = mod_set(&program, &solution, 4).expect("store");
        let names: Vec<&str> = m.iter().map(|&t| program.var_name(t)).collect();
        assert_eq!(names, vec!["x", "y"]);
        let r = ref_set(&program, &solution, 5).expect("load");
        assert_eq!(r, m);
        assert!(mod_set(&program, &solution, 5).is_none());
        assert!(ref_set(&program, &solution, 4).is_none());
        assert!(mod_set(&program, &solution, 999).is_none());
    }

    #[test]
    fn indirectly_accessed_excludes_named_only() {
        let (program, solution) = setup();
        let hit = indirectly_accessed(&program, &solution);
        let names: Vec<&str> = hit.iter().map(|&t| program.var_name(t)).collect();
        assert!(names.contains(&"x") && names.contains(&"y"));
        assert!(!names.contains(&"fp"), "fp is only accessed by name");
        // The call-site read hits the return slots of both callees.
        assert!(names.contains(&"f#1") && names.contains(&"g#1"));
    }
}
