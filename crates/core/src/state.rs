//! Shared machinery of the online (worklist) solvers: the mutable
//! constraint graph, node collapsing, complex-constraint resolution and
//! cycle search.
//!
//! This corresponds to the common infrastructure §5.1 of the paper says all
//! implementations share "to provide a fair comparison": sparse-bitmap edge
//! sets, union-find collapsing with union-by-rank and path compression, and
//! an iterative Tarjan-style SCC search (Nuutila's refinements affect only
//! constant factors; the collapse behaviour is identical).

use crate::algo::PropMode;
use crate::pts::PtsRepr;
use ant_common::fx::FxHashMap;
use ant_common::obs::prov::{ProvRecorder, Reason};
use ant_common::obs::{Obs, ProgressSnapshot, SolveEvent};
use ant_common::worklist::Worklist;
use ant_common::{SolverStats, SparseBitmap, UnionFind, VarId};
use ant_constraints::{ConstraintKind, Program};
use std::time::Instant;

/// A complex constraint attached to a node: `(other, offset)`.
///
/// For a load list entry on node `n`: `other ⊇ *(n)+offset`.
/// For a store list entry on node `n`: `*(n)+offset ⊇ other`.
pub(crate) type ComplexRef = (VarId, u32);

/// A precomputed answer for one `src → dst` edge, produced by the BSP
/// engine's parallel worker phase against a frozen snapshot of the round.
///
/// Both halves are *hints*: the sequential merge consumes them only when
/// the version stamps prove the snapshot is still current, so they can
/// never change the solution or the §5.3 counters — only skip redundant
/// set walks.
pub(crate) struct RoundHint<P> {
    /// `pts_ver[src]` at snapshot time.
    pub src_ver: u32,
    /// `pts_ver[dst]` at snapshot time.
    pub dst_ver: u32,
    /// Whether `pts(src) == pts(dst)` held in the snapshot (LCD's probe).
    pub eq: bool,
    /// `pts(src) − pts(dst)` in the snapshot.
    pub delta: P,
}

/// Difference-propagation bookkeeping (Pearce–Kelly–Hankin, SCAM 2003),
/// allocated only under [`PropMode::Diff`]: per node, the part of its
/// points-to set already delivered to its successors.
///
/// Invariant (whenever `epoch[n]` matches `stats.nodes_collapsed`):
/// `sent[n] ⊆ pts(z)` for every `z ∈ sent_to[n]`. Collapses redirect edges
/// and merge points-to sets wholesale, so rather than reconciling markers
/// at merge time the whole slot is invalidated by the epoch and rebuilt
/// lazily on the node's next pop — the same epoch discipline LCD's
/// `canonicalize_triggered` uses.
struct DiffState<P> {
    /// Locations already sent to every successor in `sent_to`.
    sent: Vec<P>,
    /// Successor representatives `sent` was delivered to, sorted ascending.
    sent_to: Vec<Vec<u32>>,
    /// `stats.nodes_collapsed` when the slot was last valid; `u64::MAX`
    /// initially so the first pop of each node starts from nothing.
    epoch: Vec<u64>,
}

/// One worklist pop's propagation plan under [`PropMode::Diff`]: the delta
/// `pts(n) − sent[n]` computed once, plus the successors that already hold
/// `sent[n]` (only the delta needs to travel to those; successors that
/// appeared since the last pop get a full send).
///
/// Owned by the pop loop (no borrows of the state), created by
/// [`OnlineState::begin_pop_delta`], consumed per edge by
/// [`OnlineState::propagate_edge`] and committed by
/// [`OnlineState::finish_pop_delta`].
pub(crate) struct DiffPlan<P> {
    /// The popped node the plan was built for.
    src: VarId,
    /// `stats.nodes_collapsed` at plan time; any mid-loop collapse
    /// invalidates the plan (remaining edges fall back to full sends and
    /// the markers are not committed).
    epoch: u64,
    /// Whether the delta is empty — an empty delta cannot change any
    /// already-seen successor, so the union walk is skipped outright.
    empty: bool,
    /// `heap_bytes` of the delta, counted per edge into
    /// `stats.propagated_bytes`.
    delta_bytes: u64,
    /// `pts(src) − sent[src]` at plan time.
    delta: P,
    /// The `sent_to` list, taken for the duration of the pop.
    known: Vec<u32>,
    /// Merge cursor into `known` (targets arrive sorted ascending).
    cursor: usize,
}

/// Mutable solver state shared by the Basic, LCD, HCD and PKH solvers (and
/// used by HT for its post-pass).
///
/// The `'o` lifetime is the attached telemetry observer's; states built by
/// [`OnlineState::new`] start with no observer (`Obs::none()`), so
/// un-instrumented callers are unaffected.
pub(crate) struct OnlineState<'o, P: PtsRepr> {
    pub n: usize,
    pub ctx: P::Ctx,
    pub uf: UnionFind,
    pub pts: Vec<P>,
    /// Successor edges, per node, as raw (possibly stale) node ids.
    pub succs: Vec<SparseBitmap>,
    pub loads: Vec<Vec<ComplexRef>>,
    pub stores: Vec<Vec<ComplexRef>>,
    /// Per node: the part of its points-to set already resolved against its
    /// complex constraints. [`process_complex`](Self::process_complex) only
    /// visits the delta — without this, re-processing a collapsed hub is
    /// quadratic (one of the "various optimizations" Figure 1 alludes to;
    /// GCC's solver keeps the same per-node `oldsolution`).
    done: Vec<P>,
    /// Like `done`, but for the HCD collapse step (which runs before
    /// `process_complex` and so needs its own marker).
    hcd_done: Vec<P>,
    /// Per *location* id: number of valid offset slots (≥ 1).
    pub offset_limit: Vec<u32>,
    /// HCD online pairs: when node `n` is processed, collapse every
    /// `v ∈ pts(n)` with each listed target. Empty when HCD is disabled.
    pub hcd_targets: Vec<Vec<VarId>>,
    pub stats: SolverStats,
    /// Telemetry handle; [`Obs::none`] by default. Event emission and the
    /// per-phase clock reads are gated on `obs.enabled()`.
    pub obs: Obs<'o>,
    /// Optional derivation recorder (see [`install_prov`]
    /// (Self::install_prov)); `None` by default, so every recording site
    /// costs one pointer-null test. When set, each first insertion into a
    /// points-to set, each added edge and each collapse appends one record
    /// to the recorder's flat arenas.
    pub(crate) prov: Option<Box<ProvRecorder>>,
    /// Per node: bumped whenever `pts[i]` changes content. Only consulted
    /// to validate [`RoundHint`]s, so staleness outside the BSP-covered
    /// mutation paths (propagation and collapsing) is harmless.
    pub(crate) pts_ver: Vec<u32>,
    /// The current BSP round's `(src, dst) → hint` table. Always empty in
    /// sequential solves, so the classic paths pay one `is_empty` branch.
    pub(crate) round_hints: FxHashMap<(u32, u32), RoundHint<P>>,
    /// Hints consumed this round (telemetry only; reported through
    /// `SolveEvent::RoundSummary`, never through [`SolverStats`]).
    pub(crate) hint_hits: u64,
    /// Scratch buffer reused by [`canonical_succs_into`]
    /// (Self::canonical_succs_into) across worklist pops, so the hot loop
    /// of every solver is allocation-free. Borrowed via
    /// [`take_succ_scratch`](Self::take_succ_scratch) /
    /// [`put_succ_scratch`](Self::put_succ_scratch) because callers mutate
    /// the state while iterating the targets.
    scratch_succs: Vec<u32>,
    /// Difference-propagation markers; `None` under [`PropMode::Full`], so
    /// the classic paths pay one null test per pop.
    diff: Option<DiffState<P>>,
    /// Per node: `stats.nodes_collapsed` when
    /// [`canonical_succs_into`](Self::canonical_succs_into) last rebuilt
    /// its successor bitmap. While no collapse intervenes the stored bitmap
    /// stays canonical (edge inserts only add representative ids distinct
    /// from the owner), so repeat pops skip the find-filter-sort rebuild.
    /// `u64::MAX` = never rebuilt.
    succ_canon: Vec<u64>,
    // Reusable Tarjan buffers (epoch-stamped so repeated searches are cheap).
    t_epoch: Vec<u32>,
    t_index: Vec<u32>,
    t_low: Vec<u32>,
    t_on_stack: Vec<bool>,
    t_cur_epoch: u32,
}

/// Result of a cycle search: the non-trivial SCCs found, plus the SCC
/// completion order (reverse topological).
pub(crate) struct CycleSearch {
    pub sccs: Vec<Vec<u32>>,
    /// One representative node per visited SCC, in completion order
    /// (successors before predecessors).
    pub completion: Vec<u32>,
}

impl CycleSearch {
    /// Returns `true` if at least one non-trivial SCC was found.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn found_cycle(&self) -> bool {
        !self.sccs.is_empty()
    }

    /// Visited SCC representatives in topological order (predecessors before
    /// successors along constraint edges).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn topo_order(mut self) -> Vec<u32> {
        self.completion.reverse();
        self.completion
    }
}

impl<'o, P: PtsRepr> OnlineState<'o, P> {
    /// Builds the initial online constraint graph of Figure 1: points-to
    /// sets from base constraints, edges from simple constraints, and
    /// per-node complex-constraint lists.
    pub fn new(program: &Program) -> Self {
        let n = program.num_vars();
        let mut ctx = P::make_ctx(n);
        let mut pts: Vec<P> = vec![P::default(); n];
        let mut succs = vec![SparseBitmap::new(); n];
        let mut loads = vec![Vec::new(); n];
        let mut stores = vec![Vec::new(); n];
        for c in program.constraints() {
            match c.kind {
                ConstraintKind::AddrOf => {
                    pts[c.lhs.index()].insert(&mut ctx, c.rhs.as_u32());
                }
                ConstraintKind::Copy => {
                    if c.lhs != c.rhs {
                        succs[c.rhs.index()].insert(c.lhs.as_u32());
                    }
                }
                ConstraintKind::Load => loads[c.rhs.index()].push((c.lhs, c.offset)),
                ConstraintKind::Store => stores[c.lhs.index()].push((c.rhs, c.offset)),
            }
        }
        OnlineState {
            n,
            ctx,
            uf: UnionFind::new(n),
            pts,
            succs,
            loads,
            stores,
            done: vec![P::default(); n],
            hcd_done: vec![P::default(); n],
            offset_limit: program.offset_limits().to_vec(),
            hcd_targets: vec![Vec::new(); n],
            stats: SolverStats::new(),
            obs: Obs::none(),
            prov: None,
            pts_ver: vec![0; n],
            round_hints: FxHashMap::default(),
            hint_hits: 0,
            scratch_succs: Vec::new(),
            diff: None,
            succ_canon: vec![u64::MAX; n],
            t_epoch: vec![0; n],
            t_index: vec![0; n],
            t_low: vec![0; n],
            t_on_stack: vec![false; n],
            t_cur_epoch: 0,
        }
    }

    /// Installs the derivation recorder and seeds it with the base facts of
    /// the solved program: one `AddrOf` tuple record per base constraint
    /// and one `CopyConstraint` edge record per simple constraint (matching
    /// what [`new`](Self::new) put into the initial graph).
    ///
    /// Must be called **before** [`install_hcd`](Self::install_hcd) so that
    /// HCD's static unions land in the merge arena.
    pub fn install_prov(&mut self, program: &Program, mut prov: Box<ProvRecorder>) {
        for c in program.constraints() {
            match c.kind {
                ConstraintKind::AddrOf => {
                    prov.record_tuple(c.lhs.as_u32(), c.rhs.as_u32(), Reason::AddrOf);
                }
                ConstraintKind::Copy => {
                    if c.lhs != c.rhs {
                        prov.record_edge(c.rhs.as_u32(), c.lhs.as_u32(), Reason::CopyConstraint);
                    }
                }
                ConstraintKind::Load | ConstraintKind::Store => {}
            }
        }
        self.prov = Some(prov);
    }

    /// Takes the recorder back out (end of a recorded solve).
    pub fn take_prov(&mut self) -> Option<Box<ProvRecorder>> {
        self.prov.take()
    }

    /// Records the derivation of the constraint-direction edge `src → dst`
    /// when recording is on — for solvers whose edge insertion does not go
    /// through [`apply_complex_lists`](Self::apply_complex_lists) or
    /// [`process_complex`](Self::process_complex) (HT stores edges
    /// reversed, so its call sites translate orientation themselves).
    #[inline]
    pub fn note_edge(&mut self, src: VarId, dst: VarId, reason: Reason) {
        if let Some(p) = self.prov.as_deref_mut() {
            p.record_edge(src.as_u32(), dst.as_u32(), reason);
        }
    }

    /// Counts one worklist pop of `v` against the per-variable cost series
    /// when recording is on.
    #[inline]
    pub fn note_pop(&mut self, v: VarId) {
        if let Some(p) = self.prov.as_deref_mut() {
            p.metrics.add("worklist_pops", 1);
            p.metrics.series_add("pops_per_var", v.as_u32(), 1);
        }
    }

    /// Installs the HCD offline results: static unions are applied now, the
    /// `(a, b)` pairs become per-node collapse targets for
    /// [`hcd_step`](Self::hcd_step).
    pub fn install_hcd(&mut self, hcd: &ant_constraints::hcd::HcdOffline) {
        for &(x, rep) in &hcd.static_unions {
            self.collapse(x, rep);
        }
        for (a, b) in hcd.pairs() {
            let ra = self.find(a);
            self.hcd_targets[ra.index()].push(b);
        }
    }

    #[inline]
    pub fn find(&mut self, v: VarId) -> VarId {
        self.uf.find(v)
    }

    /// Selects the propagation mode. [`PropMode::Diff`] allocates the
    /// per-node difference-propagation markers; [`PropMode::Full`] (the
    /// default) frees them. Must be called before the solve loop starts.
    pub fn set_prop(&mut self, prop: PropMode) {
        self.diff = match prop {
            PropMode::Full => None,
            PropMode::Diff => Some(DiffState {
                sent: vec![P::default(); self.n],
                sent_to: vec![Vec::new(); self.n],
                epoch: vec![u64::MAX; self.n],
            }),
        };
    }

    /// Seeds `wl` with every representative that has a non-empty points-to
    /// set (the worklist initialization of Figure 1).
    pub fn seed_worklist(&mut self, wl: &mut dyn Worklist) {
        for i in 0..self.n {
            let v = VarId::new(i);
            if self.uf.is_rep(v) && !self.pts[i].is_empty(&self.ctx) {
                wl.push(v);
            }
        }
    }

    /// Unions the nodes of `a` and `b`, merging all per-node data into the
    /// surviving representative, which is returned. Newly implied edges
    /// (from reconciling the two sides' complex-constraint progress) push
    /// their sources onto `wl`.
    pub fn collapse_with(&mut self, a: VarId, b: VarId, wl: &mut dyn Worklist) -> VarId {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return ra;
        }
        let w = self.uf.union(ra, rb);
        let l = if w == ra { rb } else { ra };
        self.stats.nodes_collapsed += 1;
        if let Some(p) = self.prov.as_deref_mut() {
            p.record_merge(l.as_u32(), w.as_u32());
        }
        // Reconcile the complex-constraint progress of the two sides first:
        // each side's constraint list must see the locations the *other*
        // side has already processed (and it hasn't). Afterwards every
        // location in either `done` marker is processed against both lists,
        // so the merged marker is their union — collapsing never forces
        // reprocessing. A side with no constraints has vacuously processed
        // everything.
        let l_vacuous = self.loads[l.index()].is_empty() && self.stores[l.index()].is_empty();
        let w_vacuous = self.loads[w.index()].is_empty() && self.stores[w.index()].is_empty();
        let dl = std::mem::take(&mut self.done[l.index()]);
        let mut dw = std::mem::take(&mut self.done[w.index()]);
        if !l_vacuous {
            let missing = dw.minus_to_vec(&mut self.ctx, &dl);
            self.apply_complex_lists(l, &missing, wl);
        }
        if !w_vacuous {
            let missing = dl.minus_to_vec(&mut self.ctx, &dw);
            self.apply_complex_lists(w, &missing, wl);
        }
        dw.union_from(&mut self.ctx, &dl);
        self.done[w.index()] = dw;
        // The HCD markers merge the same way, except the reconciliation is
        // a collapse rather than edge insertion; defer it by intersecting
        // (HCD target lists are rare, so this is almost always vacuous).
        let l_hcd_vacuous = self.hcd_targets[l.index()].is_empty();
        let w_hcd_vacuous = self.hcd_targets[w.index()].is_empty();
        let hl = std::mem::take(&mut self.hcd_done[l.index()]);
        let hw = std::mem::take(&mut self.hcd_done[w.index()]);
        self.hcd_done[w.index()] = match (w_hcd_vacuous, l_hcd_vacuous) {
            (_, true) => hw,
            (true, false) => hl,
            (false, false) => intersect(&mut self.ctx, hw, &hl),
        };
        let lp = std::mem::take(&mut self.pts[l.index()]);
        if self.pts[w.index()].union_from(&mut self.ctx, &lp) {
            self.pts_ver[w.index()] = self.pts_ver[w.index()].wrapping_add(1);
        }
        let ls = std::mem::take(&mut self.succs[l.index()]);
        self.succs[w.index()].union_with(&ls);
        let ll = std::mem::take(&mut self.loads[l.index()]);
        merge_dedup(&mut self.loads[w.index()], ll);
        let lt = std::mem::take(&mut self.stores[l.index()]);
        merge_dedup(&mut self.stores[w.index()], lt);
        let lh = std::mem::take(&mut self.hcd_targets[l.index()]);
        self.hcd_targets[w.index()].extend(lh);
        self.hcd_targets[w.index()].sort_unstable();
        self.hcd_targets[w.index()].dedup();
        w
    }

    /// [`collapse_with`](Self::collapse_with) using an internal throw-away
    /// queue — for callers that re-derive pending work by other means (HT's
    /// rounds, test setup).
    pub fn collapse(&mut self, a: VarId, b: VarId) -> VarId {
        let mut sink = ant_common::worklist::Fifo::new(self.n);
        self.collapse_with(a, b, &mut sink)
    }

    /// Resolves the complex constraints of `node` against exactly `locs`
    /// (which must already be in `pts(node)`), pushing sources of new edges.
    fn apply_complex_lists(&mut self, node: VarId, locs: &[u32], wl: &mut dyn Worklist) {
        if locs.is_empty() {
            return;
        }
        let loads = std::mem::take(&mut self.loads[node.index()]);
        for &(a, k) in &loads {
            let a_r = self.find(a);
            for &v in locs {
                self.stats.complex_iters += 1;
                if k >= self.offset_limit[v as usize] {
                    continue;
                }
                let t = self.find(VarId::from_u32(v + k));
                if t != a_r && self.insert_edge(t, a_r) {
                    self.note_edge(
                        t,
                        a_r,
                        Reason::LoadEdge {
                            pivot: node.as_u32(),
                            loc: v,
                        },
                    );
                    wl.push(t);
                }
            }
        }
        self.loads[node.index()] = loads;
        let stores = std::mem::take(&mut self.stores[node.index()]);
        for &(b, k) in &stores {
            let b_r = self.find(b);
            for &v in locs {
                self.stats.complex_iters += 1;
                if k >= self.offset_limit[v as usize] {
                    continue;
                }
                let t = self.find(VarId::from_u32(v + k));
                if t != b_r && self.insert_edge(b_r, t) {
                    self.note_edge(
                        b_r,
                        t,
                        Reason::StoreEdge {
                            pivot: node.as_u32(),
                            loc: v,
                        },
                    );
                    wl.push(b_r);
                }
            }
        }
        self.stores[node.index()] = stores;
    }

    /// Adds the edge `src → dst` (both must be representatives); returns
    /// `true` if it is new.
    pub fn insert_edge(&mut self, src: VarId, dst: VarId) -> bool {
        debug_assert!(self.uf.is_rep(src) && self.uf.is_rep(dst));
        if self.succs[src.index()].insert(dst.as_u32()) {
            self.stats.edges_added += 1;
            true
        } else {
            false
        }
    }

    /// Propagates `pts(src)` into `pts(dst)` (one paper "propagation");
    /// returns `true` if `pts(dst)` grew. With an observer attached the
    /// wall time is accumulated into `stats.propagate_time`.
    #[inline]
    pub fn propagate(&mut self, src: VarId, dst: VarId) -> bool {
        if !self.obs.enabled() {
            return self.propagate_inner(src, dst);
        }
        let t0 = Instant::now();
        let changed = self.propagate_inner(src, dst);
        self.stats.propagate_time += t0.elapsed();
        changed
    }

    fn propagate_inner(&mut self, src: VarId, dst: VarId) -> bool {
        debug_assert_ne!(src, dst);
        if self.prov.is_some() {
            return self.propagate_recorded(src, dst);
        }
        self.stats.propagations += 1;
        let full_bytes = self.pts[src.index()].heap_bytes() as u64;
        self.stats.propagated_bytes += full_bytes;
        self.stats.propagated_full_bytes += full_bytes;
        let changed = match self.take_hint_delta(src, dst) {
            // `dst ∪= (src − dst)` computed at snapshot time equals
            // `dst ∪= src` now: src is unchanged (version-checked) and dst
            // only grew since the snapshot, so the union — and whether it
            // changes dst — is identical. The delta is just smaller.
            Some(delta) => {
                self.hint_hits += 1;
                self.pts[dst.index()].union_from(&mut self.ctx, &delta)
            }
            None => {
                let s = std::mem::take(&mut self.pts[src.index()]);
                let changed = self.pts[dst.index()].union_from(&mut self.ctx, &s);
                self.pts[src.index()] = s;
                changed
            }
        };
        if changed {
            self.stats.propagations_changed += 1;
            self.pts_ver[dst.index()] = self.pts_ver[dst.index()].wrapping_add(1);
        }
        changed
    }

    /// The recording variant of [`propagate_inner`](Self::propagate_inner):
    /// computes the actual delta first so each newly inserted location gets
    /// one `PropagatedFrom` record. Counter-identical to the plain path
    /// (BSP delta hints are skipped, but hints never influence the §5.3
    /// counters — only `hint_hits`, which is round telemetry).
    fn propagate_recorded(&mut self, src: VarId, dst: VarId) -> bool {
        self.stats.propagations += 1;
        let full_bytes = self.pts[src.index()].heap_bytes() as u64;
        self.stats.propagated_bytes += full_bytes;
        self.stats.propagated_full_bytes += full_bytes;
        let s = std::mem::take(&mut self.pts[src.index()]);
        let new_locs = s.minus_to_vec(&mut self.ctx, &self.pts[dst.index()]);
        let changed = self.pts[dst.index()].union_from(&mut self.ctx, &s);
        self.pts[src.index()] = s;
        debug_assert_eq!(changed, !new_locs.is_empty());
        let p = self.prov.as_deref_mut().expect("recording enabled");
        p.metrics
            .observe("propagation_delta", new_locs.len() as u64);
        for &loc in &new_locs {
            p.record_tuple(dst.as_u32(), loc, Reason::PropagatedFrom(src.as_u32()));
        }
        if changed {
            self.stats.propagations_changed += 1;
            self.pts_ver[dst.index()] = self.pts_ver[dst.index()].wrapping_add(1);
        }
        changed
    }

    /// Unions `delta` into `pts(dst)` directly — the difference-propagation
    /// solver's one union site that bypasses [`propagate`](Self::propagate)
    /// — attributing each newly inserted location to `from` when recording.
    /// The §5.3 counters stay at the call site, exactly as before.
    pub fn union_delta_from(&mut self, dst: VarId, delta: &P, from: VarId) -> bool {
        if self.prov.is_none() {
            return self.pts[dst.index()].union_from(&mut self.ctx, delta);
        }
        let new_locs = delta.minus_to_vec(&mut self.ctx, &self.pts[dst.index()]);
        let changed = self.pts[dst.index()].union_from(&mut self.ctx, delta);
        debug_assert_eq!(changed, !new_locs.is_empty());
        let p = self.prov.as_deref_mut().expect("recording enabled");
        p.metrics
            .observe("propagation_delta", new_locs.len() as u64);
        for &loc in &new_locs {
            p.record_tuple(dst.as_u32(), loc, Reason::PropagatedFrom(from.as_u32()));
        }
        changed
    }

    /// Starts one pop's difference propagation for `n`: `None` under
    /// [`PropMode::Full`], else the pop's [`DiffPlan`] with
    /// `delta = pts(n) − sent[n]` computed exactly once. A stale slot
    /// (collapse since the node's markers were built) is reset wholesale
    /// first — the lazy half of the collapse reconciliation.
    ///
    /// On shared representations the `minus` goes through the interner's
    /// memo cache, so repeat pops of an unchanged node answer in O(1).
    pub fn begin_pop_delta(&mut self, n: VarId) -> Option<DiffPlan<P>> {
        let epoch_now = self.stats.nodes_collapsed;
        let d = self.diff.as_mut()?;
        let i = n.index();
        if d.epoch[i] != epoch_now {
            d.sent[i] = P::default();
            d.sent_to[i].clear();
            d.epoch[i] = epoch_now;
        }
        let known = std::mem::take(&mut d.sent_to[i]);
        let sent = std::mem::take(&mut d.sent[i]);
        let delta = self.pts[i].minus(&mut self.ctx, &sent);
        self.diff.as_mut().expect("still in diff mode").sent[i] = sent;
        let empty = delta.is_empty(&self.ctx);
        let delta_bytes = delta.heap_bytes() as u64;
        Some(DiffPlan {
            src: n,
            epoch: epoch_now,
            empty,
            delta_bytes,
            delta,
            known,
            cursor: 0,
        })
    }

    /// One edge of a pop loop: [`propagate`](Self::propagate) under
    /// [`PropMode::Full`] (`plan` is `None`); under [`PropMode::Diff`],
    /// pushes only the plan's delta to successors that already hold
    /// `sent[src]` and falls back to a full send for successors that
    /// appeared since the last pop — the generalized "invalidate only the
    /// *new* targets on degree growth". A mid-loop collapse (epoch
    /// mismatch) also falls back to full sends, which is counter-identical
    /// because the commit is skipped too.
    ///
    /// Returns whether `pts(dst)` grew — bit-identical to the full-mode
    /// answer: `sent[src] ⊆ pts(dst)` for known targets, so
    /// `pts(src) − pts(dst) = delta − pts(dst)` and the union's change bit
    /// is the same.
    #[inline]
    pub fn propagate_edge(
        &mut self,
        src: VarId,
        dst: VarId,
        plan: &mut Option<DiffPlan<P>>,
    ) -> bool {
        let Some(p) = plan else {
            return self.propagate(src, dst);
        };
        if p.src != src || p.epoch != self.stats.nodes_collapsed {
            return self.propagate(src, dst);
        }
        let dst_raw = dst.as_u32();
        while p.cursor < p.known.len() && p.known[p.cursor] < dst_raw {
            p.cursor += 1;
        }
        if p.cursor < p.known.len() && p.known[p.cursor] == dst_raw {
            self.propagate_known(dst, p)
        } else {
            self.propagate(src, dst)
        }
    }

    /// Delta-only propagation to an already-seen successor. Counts one
    /// §5.3 propagation exactly like [`propagate`](Self::propagate); with
    /// an observer attached the wall time lands in `propagate_time`.
    #[inline]
    fn propagate_known(&mut self, dst: VarId, plan: &DiffPlan<P>) -> bool {
        if !self.obs.enabled() {
            return self.propagate_known_inner(dst, plan);
        }
        let t0 = Instant::now();
        let changed = self.propagate_known_inner(dst, plan);
        self.stats.propagate_time += t0.elapsed();
        changed
    }

    fn propagate_known_inner(&mut self, dst: VarId, plan: &DiffPlan<P>) -> bool {
        self.stats.propagations += 1;
        self.stats.propagated_bytes += plan.delta_bytes;
        self.stats.propagated_full_bytes += self.pts[plan.src.index()].heap_bytes() as u64;
        // An empty delta cannot grow a successor that already holds `sent`
        // — skip the union walk entirely. With the recorder attached the
        // union still runs so the `propagation_delta` histogram observes
        // the same (empty) delta full mode would.
        let changed = if plan.empty && self.prov.is_none() {
            false
        } else {
            self.union_delta_from(dst, &plan.delta, plan.src)
        };
        if changed {
            self.stats.propagations_changed += 1;
            self.pts_ver[dst.index()] = self.pts_ver[dst.index()].wrapping_add(1);
        }
        changed
    }

    /// Ends one pop's difference propagation: commits `delta` into
    /// `sent[n]` and records `targets` as the delivered successor list —
    /// but only when no collapse intervened since
    /// [`begin_pop_delta`](Self::begin_pop_delta) (otherwise the slot is
    /// left stale; its epoch already mismatches and the next pop resets
    /// it). Targets the caller skipped propagation for because their sets
    /// compare equal (LCD's probe) are safe to commit: equality implies
    /// they contain the delta.
    pub fn finish_pop_delta(&mut self, n: VarId, targets: &[u32], plan: Option<DiffPlan<P>>) {
        let Some(mut p) = plan else { return };
        let valid = p.src == n && p.epoch == self.stats.nodes_collapsed;
        let i = n.index();
        p.known.clear();
        if !valid {
            // Return the buffer for its capacity; the epoch gate in
            // `begin_pop_delta` discards the rest of the slot.
            self.diff.as_mut().expect("plan implies diff mode").sent_to[i] = p.known;
            return;
        }
        p.known.extend_from_slice(targets);
        let d = self.diff.as_mut().expect("plan implies diff mode");
        d.sent_to[i] = p.known;
        let mut sent = std::mem::take(&mut d.sent[i]);
        sent.union_from(&mut self.ctx, &p.delta);
        self.diff.as_mut().expect("diff mode").sent[i] = sent;
    }

    /// Removes and returns the round's delta hint for the edge
    /// `src → dst`, if one exists and `pts(src)` is unchanged since the
    /// snapshot. The destination's version is deliberately *not* checked:
    /// points-to sets only grow, so a grown dst makes the snapshot delta an
    /// over-approximation of the true delta that still unions to the same
    /// result. Invalid entries are dropped too — versions only advance, so
    /// a stale hint can never become valid again.
    #[inline]
    fn take_hint_delta(&mut self, src: VarId, dst: VarId) -> Option<P> {
        if self.round_hints.is_empty() {
            return None;
        }
        let h = self.round_hints.remove(&(src.as_u32(), dst.as_u32()))?;
        (self.pts_ver[src.index()] == h.src_ver).then_some(h.delta)
    }

    /// `pts(src) == pts(dst)` — LCD's per-edge probe — answered from the
    /// round's precomputed hint when **both** endpoints are unchanged since
    /// the snapshot, else computed live. Exactly equivalent to calling
    /// [`PtsRepr::set_eq`] directly.
    #[inline]
    pub fn set_eq_hinted(&mut self, src: VarId, dst: VarId) -> bool {
        if !self.round_hints.is_empty() {
            if let Some(h) = self.round_hints.get(&(src.as_u32(), dst.as_u32())) {
                if self.pts_ver[src.index()] == h.src_ver && self.pts_ver[dst.index()] == h.dst_ver
                {
                    self.hint_hits += 1;
                    return h.eq;
                }
            }
        }
        self.pts[dst.index()].set_eq(&self.ctx, &self.pts[src.index()])
    }

    /// Resolves the complex constraints attached to `n` (step 1 of the
    /// Figure 1 worklist body): materializes new edges implied by the part
    /// of `pts(n)` not yet processed, and pushes nodes that gained an
    /// outgoing edge.
    ///
    /// With an observer attached, wall time goes to `stats.complex_time`
    /// and any net graph growth is reported as a
    /// [`SolveEvent::GraphMutation`].
    #[inline]
    pub fn process_complex(&mut self, n: VarId, wl: &mut dyn Worklist) {
        if !self.obs.enabled() {
            return self.process_complex_inner(n, wl);
        }
        let t0 = Instant::now();
        let edges_before = self.stats.edges_added;
        self.process_complex_inner(n, wl);
        self.stats.complex_time += t0.elapsed();
        let edges_added = self.stats.edges_added - edges_before;
        if edges_added > 0 {
            self.obs.emit(&SolveEvent::GraphMutation { edges_added });
        }
    }

    fn process_complex_inner(&mut self, n: VarId, wl: &mut dyn Worklist) {
        if self.loads[n.index()].is_empty() && self.stores[n.index()].is_empty() {
            return;
        }
        let prev = std::mem::take(&mut self.done[n.index()]);
        let locs = self.pts[n.index()].minus_to_vec(&mut self.ctx, &prev);
        if locs.is_empty() {
            self.done[n.index()] = prev;
            return;
        }
        self.done[n.index()] = self.pts[n.index()].clone();
        if let Some(p) = self.prov.as_deref_mut() {
            // One retrigger = one delta-resolution round of n's constraints.
            p.metrics.series_add("constraint_retriggers", n.as_u32(), 1);
        }
        // Canonicalize the lists through the union-find: entries that
        // differed before a collapse are duplicates afterwards.
        let mut loads = std::mem::take(&mut self.loads[n.index()]);
        for e in &mut loads {
            e.0 = self.find(e.0);
        }
        loads.sort_unstable();
        loads.dedup();
        for &(a, k) in &loads {
            let a_r = a;
            for &v in &locs {
                self.stats.complex_iters += 1;
                if k >= self.offset_limit[v as usize] {
                    continue;
                }
                let t = self.find(VarId::from_u32(v + k));
                if t != a_r && self.insert_edge(t, a_r) {
                    self.note_edge(
                        t,
                        a_r,
                        Reason::LoadEdge {
                            pivot: n.as_u32(),
                            loc: v,
                        },
                    );
                    wl.push(t);
                }
            }
        }
        self.loads[n.index()] = loads;
        let mut stores = std::mem::take(&mut self.stores[n.index()]);
        for e in &mut stores {
            e.0 = self.find(e.0);
        }
        stores.sort_unstable();
        stores.dedup();
        for &(b, k) in &stores {
            let b_r = b;
            for &v in &locs {
                self.stats.complex_iters += 1;
                if k >= self.offset_limit[v as usize] {
                    continue;
                }
                let t = self.find(VarId::from_u32(v + k));
                if t != b_r && self.insert_edge(b_r, t) {
                    self.note_edge(
                        b_r,
                        t,
                        Reason::StoreEdge {
                            pivot: n.as_u32(),
                            loc: v,
                        },
                    );
                    wl.push(b_r);
                }
            }
        }
        self.stores[n.index()] = stores;
    }

    /// Rewrites `n`'s successor set through the union-find, dropping self
    /// edges and duplicates left behind by collapsing, and returns the
    /// distinct successor representatives. Without this, edge sets bloat
    /// with stale ids after heavy collapsing and every pop re-propagates
    /// the same set many times (GCC's solver performs the same cleaning).
    pub fn canonical_succs(&mut self, n: VarId) -> Vec<u32> {
        let mut targets = Vec::new();
        self.canonical_succs_into(n, &mut targets);
        targets
    }

    /// Allocation-free form of [`canonical_succs`](Self::canonical_succs):
    /// fills `out` (cleared first) with the distinct successor
    /// representatives of `n`, sorted ascending. Worklist pop loops pass
    /// the scratch buffer from
    /// [`take_succ_scratch`](Self::take_succ_scratch) so steady-state pops
    /// allocate nothing.
    pub fn canonical_succs_into(&mut self, n: VarId, out: &mut Vec<u32>) {
        out.clear();
        if self.succ_canon[n.index()] == self.stats.nodes_collapsed {
            // No collapse since the last rebuild: the stored bitmap is
            // still canonical (edge inserts only ever add representative
            // ids distinct from the owner, in sorted order).
            out.extend(self.succs[n.index()].iter());
            return;
        }
        // Take the bitmap so it can be refilled in place (clearing keeps
        // its element storage) while `self.uf` is borrowed for finds.
        let mut bm = std::mem::take(&mut self.succs[n.index()]);
        out.extend(bm.iter());
        bm.clear();
        let n_raw = n.as_u32();
        let mut w = 0;
        for i in 0..out.len() {
            let z = self.uf.find(VarId::from_u32(out[i])).as_u32();
            if z != n_raw {
                out[w] = z;
                w += 1;
            }
        }
        out.truncate(w);
        out.sort_unstable();
        out.dedup();
        for &z in out.iter() {
            // Ascending inserts append to the element list — no searching.
            bm.insert(z);
        }
        self.succs[n.index()] = bm;
        self.succ_canon[n.index()] = self.stats.nodes_collapsed;
    }

    /// Borrows the successor scratch buffer (empty Vec if already taken).
    #[inline]
    pub fn take_succ_scratch(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.scratch_succs)
    }

    /// Returns the scratch buffer taken by
    /// [`take_succ_scratch`](Self::take_succ_scratch), preserving its
    /// capacity for the next pop.
    #[inline]
    pub fn put_succ_scratch(&mut self, v: Vec<u32>) {
        self.scratch_succs = v;
    }

    /// Step 2 of the Figure 1 body: propagate `pts(n)` along every outgoing
    /// edge, pushing changed targets.
    pub fn propagate_all(&mut self, n: VarId, wl: &mut dyn Worklist) {
        let mut targets = self.take_succ_scratch();
        self.canonical_succs_into(n, &mut targets);
        let mut plan = self.begin_pop_delta(n);
        for &z_raw in &targets {
            let z = VarId::from_u32(z_raw);
            if self.propagate_edge(n, z, &mut plan) {
                wl.push(z);
            }
        }
        self.finish_pop_delta(n, &targets, plan);
        self.put_succ_scratch(targets);
    }

    /// The Hybrid Cycle Detection online step (first block of Figure 5):
    /// if the offline analysis recorded pairs `(n, a)`, preemptively
    /// collapse every `v ∈ pts(n)` with `a` — no graph traversal needed.
    ///
    /// Returns the (possibly new) representative of `n`, since `n` itself
    /// may be swallowed by a collapse.
    ///
    /// With an observer attached, wall time goes to `stats.cycle_time` and
    /// collapses are reported as a [`SolveEvent::CycleCollapsed`].
    #[inline]
    pub fn hcd_step(&mut self, n: VarId, wl: &mut dyn Worklist) -> VarId {
        if !self.obs.enabled() {
            return self.hcd_step_inner(n, wl);
        }
        let t0 = Instant::now();
        let collapsed_before = self.stats.nodes_collapsed;
        let rep = self.hcd_step_inner(n, wl);
        self.stats.cycle_time += t0.elapsed();
        let members = self.stats.nodes_collapsed - collapsed_before;
        if members > 0 {
            self.obs.emit(&SolveEvent::CycleCollapsed { members });
        }
        rep
    }

    fn hcd_step_inner(&mut self, n: VarId, wl: &mut dyn Worklist) -> VarId {
        if self.hcd_targets[n.index()].is_empty() {
            return n;
        }
        let pairs = self.hcd_targets[n.index()].clone();
        // Only the locations that appeared since the last HCD step need
        // collapsing — earlier ones are already merged with the target.
        let prev = std::mem::take(&mut self.hcd_done[n.index()]);
        let locs = self.pts[n.index()].minus_to_vec(&mut self.ctx, &prev);
        if locs.is_empty() {
            self.hcd_done[n.index()] = prev;
            return n;
        }
        self.hcd_done[n.index()] = self.pts[n.index()].clone();
        let mut n_cur = n;
        for a in pairs {
            let mut rep = self.find(a);
            let mut collapsed_any = false;
            for &v in &locs {
                let v = VarId::from_u32(v);
                if self.find(v) != rep {
                    rep = self.collapse_with(v, rep, wl);
                    collapsed_any = true;
                }
            }
            // Figure 5 re-queues the collapse target; only necessary (and
            // safe against re-queue loops) when something actually merged.
            if collapsed_any {
                wl.push(rep);
            }
            n_cur = self.find(n_cur);
        }
        n_cur
    }

    /// Iterative Tarjan search over the current representative graph from
    /// the given roots. Does **not** mutate the graph; pair with
    /// [`collapse_sccs`](Self::collapse_sccs). With an observer attached,
    /// wall time goes to `stats.cycle_time`.
    #[inline]
    pub fn cycle_search(&mut self, roots: &[VarId]) -> CycleSearch {
        if !self.obs.enabled() {
            return self.cycle_search_inner(roots);
        }
        let t0 = Instant::now();
        let search = self.cycle_search_inner(roots);
        self.stats.cycle_time += t0.elapsed();
        search
    }

    fn cycle_search_inner(&mut self, roots: &[VarId]) -> CycleSearch {
        self.t_cur_epoch += 1;
        let epoch = self.t_cur_epoch;
        let mut next_index = 1u32;
        let mut sccs = Vec::new();
        let mut completion = Vec::new();
        let mut comp_stack: Vec<u32> = Vec::new();
        // Frames: (node, children snapshot, next child position).
        let mut dfs: Vec<(u32, Vec<u32>, usize)> = Vec::new();

        for &r in roots {
            let root = self.uf.find(r).as_u32();
            if self.t_epoch[root as usize] == epoch {
                continue;
            }
            self.visit_start(root, epoch, &mut next_index);
            comp_stack.push(root);
            self.t_on_stack[root as usize] = true;
            dfs.push((root, self.child_snapshot(root), 0));

            while let Some(frame) = dfs.last_mut() {
                let v = frame.0;
                if let Some(&w) = frame.1.get(frame.2) {
                    frame.2 += 1;
                    if w == v {
                        continue; // self edge after a collapse
                    }
                    if self.t_epoch[w as usize] != epoch {
                        self.visit_start(w, epoch, &mut next_index);
                        comp_stack.push(w);
                        self.t_on_stack[w as usize] = true;
                        let children = self.child_snapshot(w);
                        dfs.push((w, children, 0));
                    } else if self.t_on_stack[w as usize] {
                        self.t_low[v as usize] =
                            self.t_low[v as usize].min(self.t_index[w as usize]);
                    }
                } else {
                    dfs.pop();
                    if let Some(parent) = dfs.last() {
                        let p = parent.0 as usize;
                        self.t_low[p] = self.t_low[p].min(self.t_low[v as usize]);
                    }
                    if self.t_low[v as usize] == self.t_index[v as usize] {
                        completion.push(v);
                        let mut comp = Vec::new();
                        loop {
                            let w = comp_stack.pop().expect("scc stack underflow");
                            self.t_on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 {
                            sccs.push(comp);
                        }
                    }
                }
            }
        }
        CycleSearch { sccs, completion }
    }

    fn visit_start(&mut self, v: u32, epoch: u32, next_index: &mut u32) {
        self.t_epoch[v as usize] = epoch;
        self.t_index[v as usize] = *next_index;
        self.t_low[v as usize] = *next_index;
        *next_index += 1;
        self.stats.nodes_searched += 1;
    }

    /// Successor representatives of `v` (deduplicated via find).
    fn child_snapshot(&mut self, v: u32) -> Vec<u32> {
        let raw: Vec<u32> = self.succs[v as usize].iter().collect();
        let mut out: Vec<u32> = raw
            .into_iter()
            .map(|w| self.uf.find(VarId::from_u32(w)).as_u32())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Collapses every SCC found by a [`cycle_search`](Self::cycle_search),
    /// pushing each surviving representative. Returns the number of cycles
    /// collapsed. With an observer attached, wall time goes to
    /// `stats.cycle_time` and each SCC is reported as a
    /// [`SolveEvent::CycleCollapsed`].
    #[inline]
    pub fn collapse_sccs(&mut self, search: &CycleSearch, wl: &mut dyn Worklist) -> usize {
        if !self.obs.enabled() {
            return self.collapse_sccs_inner(search, wl);
        }
        let t0 = Instant::now();
        let n = self.collapse_sccs_inner(search, wl);
        self.stats.cycle_time += t0.elapsed();
        for comp in &search.sccs {
            self.obs.emit(&SolveEvent::CycleCollapsed {
                members: (comp.len() - 1) as u64,
            });
        }
        n
    }

    fn collapse_sccs_inner(&mut self, search: &CycleSearch, wl: &mut dyn Worklist) -> usize {
        for comp in &search.sccs {
            let mut rep = VarId::from_u32(comp[0]);
            for &m in &comp[1..] {
                rep = self.collapse_with(VarId::from_u32(m), rep, wl);
            }
            wl.push(rep);
        }
        self.stats.cycles_found += search.sccs.len() as u64;
        search.sccs.len()
    }

    /// A [`ProgressSnapshot`] of the current state. `pts_bytes` walks every
    /// points-to set, so this is O(n); it is only built when a snapshot is
    /// actually due.
    pub fn progress_snapshot(&self, worklist_len: usize) -> ProgressSnapshot {
        ProgressSnapshot {
            worklist_len,
            nodes_processed: self.stats.nodes_processed,
            propagations: self.stats.propagations,
            pts_bytes: self.pts.iter().map(P::heap_bytes).sum(),
        }
    }

    /// Counts one worklist pop against the snapshot cadence and emits a
    /// [`SolveEvent::Progress`] when it fires. Costs one branch when no
    /// observer is attached.
    #[inline]
    pub fn tick_progress(&mut self, worklist_len: impl FnOnce() -> usize) {
        if self.obs.tick() {
            let snapshot = self.progress_snapshot(worklist_len());
            self.obs.emit(&SolveEvent::Progress(snapshot));
        }
    }

    /// Rebinds the telemetry observer, changing the state's lifetime
    /// parameter. Used by the resumable solve path: a retained state is
    /// stored with `Obs::none()` (`'static`), then re-bound to the caller's
    /// observer for the duration of one resume and back afterwards.
    pub fn rebind_obs<'b>(self, obs: Obs<'b>) -> OnlineState<'b, P> {
        OnlineState {
            n: self.n,
            ctx: self.ctx,
            uf: self.uf,
            pts: self.pts,
            succs: self.succs,
            loads: self.loads,
            stores: self.stores,
            done: self.done,
            hcd_done: self.hcd_done,
            offset_limit: self.offset_limit,
            hcd_targets: self.hcd_targets,
            stats: self.stats,
            obs,
            prov: self.prov,
            pts_ver: self.pts_ver,
            round_hints: self.round_hints,
            hint_hits: self.hint_hits,
            scratch_succs: self.scratch_succs,
            diff: self.diff,
            succ_canon: self.succ_canon,
            t_epoch: self.t_epoch,
            t_index: self.t_index,
            t_low: self.t_low,
            t_on_stack: self.t_on_stack,
            t_cur_epoch: self.t_cur_epoch,
        }
    }

    /// Grafts a constraint delta onto a state already at its base fixpoint:
    /// grows every per-node table to `union.num_vars()` and applies the
    /// constraints appended after `base_constraints` exactly as
    /// [`new`](Self::new) would have (base facts into `pts`, simple
    /// constraints as raw edges — not counted in `edges_added`, matching
    /// the initial-graph convention — complex constraints onto their
    /// pivot's lists).
    ///
    /// `union` must extend the solved program: same variable prefix (the
    /// resumable entry points verify this by hashing) and its constraint
    /// list a strict prefix of `union`'s.
    ///
    /// Returns the sorted, deduplicated representatives the caller must
    /// seed the fresh worklist with: every node the delta touched. The
    /// base is at a fixpoint, so only these nodes can initiate change;
    /// monotonicity then drives the re-solve to the union program's (unique)
    /// least fixpoint. Complex pivots get their `done` marker reset, which
    /// deterministically re-resolves *all* of the pivot's constraints
    /// against its full points-to set — wasteful for the old entries but
    /// identical across representations, propagation modes and thread
    /// configurations, which is what the differential suite pins.
    pub fn apply_delta(&mut self, union: &Program, base_constraints: usize) -> Vec<VarId> {
        let new_n = union.num_vars();
        debug_assert!(new_n >= self.n);
        for _ in self.n..new_n {
            self.uf.push();
        }
        self.pts.resize_with(new_n, P::default);
        self.done.resize_with(new_n, P::default);
        self.hcd_done.resize_with(new_n, P::default);
        self.succs.resize_with(new_n, SparseBitmap::new);
        self.loads.resize_with(new_n, Vec::new);
        self.stores.resize_with(new_n, Vec::new);
        self.hcd_targets.resize_with(new_n, Vec::new);
        self.offset_limit
            .extend_from_slice(&union.offset_limits()[self.n..]);
        self.pts_ver.resize(new_n, 0);
        self.succ_canon.resize(new_n, u64::MAX);
        self.t_epoch.resize(new_n, 0);
        self.t_index.resize(new_n, 0);
        self.t_low.resize(new_n, 0);
        self.t_on_stack.resize(new_n, false);
        if let Some(d) = self.diff.as_mut() {
            d.sent.resize_with(new_n, P::default);
            d.sent_to.resize_with(new_n, Vec::new);
            d.epoch.resize(new_n, u64::MAX);
        }
        self.n = new_n;

        let mut seeds: Vec<VarId> = Vec::new();
        for c in &union.constraints()[base_constraints..] {
            match c.kind {
                ConstraintKind::AddrOf => {
                    let r = self.uf.find(c.lhs);
                    if self.pts[r.index()].insert(&mut self.ctx, c.rhs.as_u32()) {
                        self.pts_ver[r.index()] = self.pts_ver[r.index()].wrapping_add(1);
                    }
                    if let Some(p) = self.prov.as_deref_mut() {
                        p.record_tuple(c.lhs.as_u32(), c.rhs.as_u32(), Reason::AddrOf);
                    }
                    seeds.push(r);
                }
                ConstraintKind::Copy => {
                    let rl = self.uf.find(c.lhs);
                    let rr = self.uf.find(c.rhs);
                    if rl != rr {
                        // A raw insert, like `new`: representative ids keep
                        // any valid canonical-successor cache intact.
                        self.succs[rr.index()].insert(rl.as_u32());
                        if let Some(p) = self.prov.as_deref_mut() {
                            p.record_edge(c.rhs.as_u32(), c.lhs.as_u32(), Reason::CopyConstraint);
                        }
                        seeds.push(rr);
                    }
                }
                ConstraintKind::Load => {
                    let r = self.uf.find(c.rhs);
                    self.loads[r.index()].push((c.lhs, c.offset));
                    self.done[r.index()] = P::default();
                    seeds.push(r);
                }
                ConstraintKind::Store => {
                    let r = self.uf.find(c.lhs);
                    self.stores[r.index()].push((c.rhs, c.offset));
                    self.done[r.index()] = P::default();
                    seeds.push(r);
                }
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        seeds
    }

    /// The retained-state variant of [`finalize_bytes`](Self::finalize_bytes):
    /// records memory consumption *without* tearing anything down. The
    /// difference-propagation markers stay live (they are accounted in
    /// place) and no context compaction runs — a retained interner keeps
    /// its intermediate sets until the state is finally discarded, so a
    /// resumed solve may report more `pts_bytes` than a from-scratch one;
    /// the behavioral §5.3 counters are unaffected. `extra_aux` carries the
    /// solver driver's own structures (LCD's triggered set, PKH'03's
    /// topological order). Every byte field is *assigned*, not accumulated,
    /// so repeated finalization across resumes never double-counts.
    pub fn finalize_bytes_retained(&mut self, extra_aux: usize) {
        let mut diff_bytes = self.succ_canon.capacity() * std::mem::size_of::<u64>();
        if let Some(d) = self.diff.as_ref() {
            diff_bytes += d.sent.iter().map(P::heap_bytes).sum::<usize>()
                + d.sent_to
                    .iter()
                    .map(|v| v.capacity() * std::mem::size_of::<u32>())
                    .sum::<usize>()
                + d.epoch.capacity() * std::mem::size_of::<u64>();
        }
        if let Some(cs) = P::ctx_stats(&self.ctx) {
            self.stats.intern_hits = cs.intern_hits;
            self.stats.intern_misses = cs.intern_misses;
            self.stats.memo_hits = cs.memo_hits;
            self.stats.memo_misses = cs.memo_misses;
            self.stats.distinct_sets = cs.distinct_sets;
        }
        self.stats.pts_bytes = self.pts.iter().map(P::heap_bytes).sum::<usize>()
            + self.done.iter().map(P::heap_bytes).sum::<usize>()
            + self.hcd_done.iter().map(P::heap_bytes).sum::<usize>()
            + P::ctx_bytes(&self.ctx);
        self.stats.graph_bytes = self
            .succs
            .iter()
            .map(SparseBitmap::heap_bytes)
            .sum::<usize>()
            + self
                .loads
                .iter()
                .chain(self.stores.iter())
                .map(|v| v.capacity() * std::mem::size_of::<ComplexRef>())
                .sum::<usize>();
        self.stats.aux_bytes = self.uf.heap_bytes() + self.n * (4 * 4 + 1) + diff_bytes + extra_aux;
    }

    /// All current representative nodes.
    pub fn reps(&self) -> Vec<VarId> {
        (0..self.n)
            .map(VarId::new)
            .filter(|&v| self.uf.is_rep(v))
            .collect()
    }

    /// Records final memory consumption (and, for shared representations,
    /// the cache statistics) into the statistics.
    pub fn finalize_bytes(&mut self) {
        // Account (then drop) the difference-propagation markers before
        // compaction: their `sent` handles must not be retained, and on
        // plain representations their bytes belong in the memory tables.
        let mut diff_bytes = self.succ_canon.capacity() * std::mem::size_of::<u64>();
        if let Some(d) = self.diff.take() {
            diff_bytes += d.sent.iter().map(P::heap_bytes).sum::<usize>()
                + d.sent_to
                    .iter()
                    .map(|v| v.capacity() * std::mem::size_of::<u32>())
                    .sum::<usize>()
                + d.epoch.capacity() * std::mem::size_of::<u64>();
        }
        // Shared representations drop intermediate sets first: a monotone
        // solve interns one set per growth step, and what should count (and
        // be retained) is only the storage backing the final solution. The
        // three vectors below are every live handle once the solver loop
        // has returned.
        P::compact_ctx(
            &mut self.ctx,
            &mut [&mut self.pts, &mut self.done, &mut self.hcd_done],
        );
        if let Some(cs) = P::ctx_stats(&self.ctx) {
            self.stats.intern_hits = cs.intern_hits;
            self.stats.intern_misses = cs.intern_misses;
            self.stats.memo_hits = cs.memo_hits;
            self.stats.memo_misses = cs.memo_misses;
            self.stats.distinct_sets = cs.distinct_sets;
        }
        self.stats.pts_bytes = self.pts.iter().map(P::heap_bytes).sum::<usize>()
            + self.done.iter().map(P::heap_bytes).sum::<usize>()
            + self.hcd_done.iter().map(P::heap_bytes).sum::<usize>()
            + P::ctx_bytes(&self.ctx);
        self.stats.graph_bytes = self
            .succs
            .iter()
            .map(SparseBitmap::heap_bytes)
            .sum::<usize>()
            + self
                .loads
                .iter()
                .chain(self.stores.iter())
                .map(|v| v.capacity() * std::mem::size_of::<ComplexRef>())
                .sum::<usize>();
        // `+=`: solvers account their own auxiliary structures (LCD's
        // triggered set, the BSP round queue) before finalization runs.
        self.stats.aux_bytes += self.uf.heap_bytes() + self.n * (4 * 4 + 1) // Tarjan buffers
            + diff_bytes;
    }
}

/// Appends `extra` to `list`, deduplicating (collapsed hubs would otherwise
/// accumulate duplicate constraint entries).
fn merge_dedup(list: &mut Vec<ComplexRef>, extra: Vec<ComplexRef>) {
    list.extend(extra);
    list.sort_unstable();
    list.dedup();
}

/// `a ∩ b`, consuming `a`.
fn intersect<P: PtsRepr>(ctx: &mut P::Ctx, mut a: P, b: &P) -> P {
    a.intersect_from(ctx, b);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pts::BitmapPts;
    use ant_common::worklist::Fifo;
    use ant_constraints::ProgramBuilder;

    fn state_for(build: impl FnOnce(&mut ProgramBuilder)) -> OnlineState<'static, BitmapPts> {
        let mut pb = ProgramBuilder::new();
        build(&mut pb);
        OnlineState::new(&pb.finish())
    }

    #[test]
    fn init_from_constraints() {
        let st = state_for(|pb| {
            let p = pb.var("p");
            let x = pb.var("x");
            let q = pb.var("q");
            pb.addr_of(p, x);
            pb.copy(q, p);
            pb.load(x, q);
            pb.store(q, x);
        });
        assert_eq!(st.pts[0].to_vec(&st.ctx), vec![1]); // pts(p) = {x}
        assert!(st.succs[0].contains(2)); // edge p → q
        assert_eq!(st.loads[2], vec![(VarId::new(1), 0)]); // x ⊇ *q
        assert_eq!(st.stores[2], vec![(VarId::new(1), 0)]); // *q ⊇ x
    }

    #[test]
    fn collapse_merges_everything() {
        let mut st = state_for(|pb| {
            let a = pb.var("a");
            let b = pb.var("b");
            let c = pb.var("c");
            let d = pb.var("d");
            pb.addr_of(a, c);
            pb.addr_of(b, d);
            pb.copy(c, a);
            pb.copy(d, b);
            pb.load(c, a);
            pb.store(b, d);
        });
        let (a, b) = (VarId::new(0), VarId::new(1));
        let w = st.collapse(a, b);
        assert_eq!(st.find(a), w);
        assert_eq!(st.find(b), w);
        assert_eq!(st.pts[w.index()].to_vec(&st.ctx), vec![2, 3]);
        assert!(st.succs[w.index()].contains(2) && st.succs[w.index()].contains(3));
        assert_eq!(st.loads[w.index()].len(), 1);
        assert_eq!(st.stores[w.index()].len(), 1);
        assert_eq!(st.stats.nodes_collapsed, 1);
        // Idempotent.
        assert_eq!(st.collapse(a, b), w);
        assert_eq!(st.stats.nodes_collapsed, 1);
    }

    #[test]
    fn process_complex_materializes_edges() {
        let mut st = state_for(|pb| {
            let p = pb.var("p");
            let x = pb.var("x");
            let y = pb.var("y");
            let z = pb.var("z");
            pb.addr_of(p, x);
            pb.load(y, p); // y ⊇ *p  ⟹ edge x → y
            pb.store(p, z); // *p ⊇ z ⟹ edge z → x
        });
        let mut wl = Fifo::new(4);
        st.process_complex(VarId::new(0), &mut wl);
        assert!(st.succs[1].contains(2)); // x → y
        assert!(st.succs[3].contains(1)); // z → x
        assert_eq!(st.stats.edges_added, 2);
        // The sources of the new edges were pushed.
        let mut popped = Vec::new();
        while let Some(n) = wl.pop() {
            popped.push(n.index());
        }
        assert_eq!(popped, vec![1, 3]);
    }

    #[test]
    fn offsets_respect_limits() {
        let mut st = {
            let mut pb = ProgramBuilder::new();
            let f = pb.function("f", 3); // f, f#1, f#2
            let g = pb.var("g"); // plain var, limit 1
            let p = pb.var("p");
            let a = pb.var("a");
            pb.addr_of(p, f);
            pb.addr_of(p, g);
            pb.load_offset(a, p, 2); // a ⊇ *(p+2)
            let _ = f;
            OnlineState::<BitmapPts>::new(&pb.finish())
        };
        let mut wl = Fifo::new(6);
        // Ids: f=0, f#1=1, f#2=2, g=3, p=4, a=5.
        let p = VarId::new(4);
        st.process_complex(p, &mut wl);
        // Only f admits offset 2; g (limit 1) is skipped.
        assert!(st.succs[2].contains(5)); // f#2 → a
        assert!(st.succs[3].is_empty()); // nothing rooted at g
        assert_eq!(st.stats.edges_added, 1);
    }

    #[test]
    fn propagate_all_pushes_changed_targets() {
        let mut st = state_for(|pb| {
            let p = pb.var("p");
            let x = pb.var("x");
            let q = pb.var("q");
            let r = pb.var("r");
            pb.addr_of(p, x);
            pb.copy(q, p);
            pb.copy(r, p);
        });
        let mut wl = Fifo::new(4);
        st.propagate_all(VarId::new(0), &mut wl);
        assert_eq!(st.pts[2].to_vec(&st.ctx), vec![1]);
        assert_eq!(st.pts[3].to_vec(&st.ctx), vec![1]);
        assert_eq!(st.stats.propagations, 2);
        assert_eq!(st.stats.propagations_changed, 2);
        // Re-propagation changes nothing and pushes nothing.
        let mut wl2 = Fifo::new(4);
        st.propagate_all(VarId::new(0), &mut wl2);
        assert!(wl2.is_empty());
        assert_eq!(st.stats.propagations_changed, 2);
    }

    #[test]
    fn cycle_search_finds_and_collapses() {
        let mut st = state_for(|pb| {
            let a = pb.var("a");
            let b = pb.var("b");
            let c = pb.var("c");
            let d = pb.var("d");
            pb.copy(b, a); // a → b
            pb.copy(c, b); // b → c
            pb.copy(a, c); // c → a
            pb.copy(d, c); // c → d (out of the cycle)
        });
        let roots = [VarId::new(0)];
        let search = st.cycle_search(&roots);
        assert!(search.found_cycle());
        assert_eq!(search.sccs.len(), 1);
        assert_eq!(search.sccs[0].len(), 3);
        let mut wl = Fifo::new(4);
        st.collapse_sccs(&search, &mut wl);
        assert_eq!(st.stats.nodes_collapsed, 2);
        assert_eq!(st.stats.cycles_found, 1);
        let rep = st.find(VarId::new(0));
        assert_eq!(st.find(VarId::new(1)), rep);
        assert_eq!(st.find(VarId::new(2)), rep);
        assert_ne!(st.find(VarId::new(3)), rep);
        assert!(st.stats.nodes_searched >= 4);
    }

    #[test]
    fn cycle_search_topo_order() {
        let mut st = state_for(|pb| {
            let a = pb.var("a");
            let b = pb.var("b");
            let c = pb.var("c");
            pb.copy(b, a); // a → b
            pb.copy(c, b); // b → c
        });
        let reps = st.reps();
        let order = st.cycle_search(&reps).topo_order();
        let pos = |v: u32| order.iter().position(|&x| x == v).expect("in order");
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn hcd_step_collapses_pts_members() {
        // Figure 3/4: a = &c; d = c; b = *a; *a = b. HCD pair (a, b); when a
        // is processed, c (∈ pts(a)) is collapsed with b.
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        let c = pb.var("c");
        let d = pb.var("d");
        pb.addr_of(a, c);
        pb.copy(d, c);
        pb.load(b, a);
        pb.store(a, b);
        let program = pb.finish();
        let hcd = ant_constraints::hcd::HcdOffline::analyze(&program);
        let mut st = OnlineState::<BitmapPts>::new(&program);
        st.install_hcd(&hcd);
        let mut wl = Fifo::new(4);
        let n = st.hcd_step(a, &mut wl);
        assert_eq!(n, a, "a itself is not merged here");
        assert_eq!(st.find(c), st.find(b), "c and b collapsed with no search");
        assert_eq!(st.stats.nodes_searched, 0);
        assert_eq!(st.stats.nodes_collapsed, 1);
    }

    #[test]
    fn seed_worklist_pushes_nonempty_reps() {
        let mut st = state_for(|pb| {
            let p = pb.var("p");
            let x = pb.var("x");
            let q = pb.var("q");
            pb.addr_of(p, x);
            let _ = q;
        });
        let mut wl = Fifo::new(3);
        st.seed_worklist(&mut wl);
        assert_eq!(wl.pop(), Some(VarId::new(0)));
        assert!(wl.pop().is_none());
    }

    #[test]
    fn finalize_bytes_accounts_structures() {
        let mut st = state_for(|pb| {
            let p = pb.var("p");
            let x = pb.var("x");
            pb.addr_of(p, x);
            pb.copy(x, p);
        });
        st.finalize_bytes();
        assert!(st.stats.pts_bytes > 0);
        assert!(st.stats.graph_bytes > 0);
        assert!(st.stats.aux_bytes > 0);
    }
}
