//! Long-lived analysis sessions: the query service behind `ant serve`.
//!
//! The paper makes the *solve* cheap; this module makes the solved result
//! cheap to **query**. An [`AnalysisSession`] owns a prepared program, a
//! lazily-computed solution and (optionally) the provenance recorder, and
//! answers a JSONL request/response protocol:
//!
//! * one request per line, a flat JSON object with an `"op"` field
//!   (`points_to`, `may_alias`, `resolve`, `explain`, `stats`, `load`,
//!   `add`, `shutdown`) and op-specific arguments, plus an optional `"id"`
//!   echoed back verbatim;
//! * one response per request, a flat JSON object with `"ok"` and a typed
//!   error envelope on failure (`"error"` carries an
//!   [`AntErrorKind::wire_name`], `"message"` the human-readable reason) —
//!   a malformed or failing request never terminates the session;
//! * every response carries `"micros"`, the wall time from receipt to
//!   answer.
//!
//! Clients speak *original variable names*: every name is resolved through
//! the composed [`SolutionMapping`], never a post-OVS/HCD id. The session
//! keeps the solver's **raw** (unexpanded) solution and answers through
//! [`SolutionMapping::resolve`] — the same answers the one-shot expanded
//! solution gives, at a fraction of the memory.
//!
//! Solves are keyed by a content hash of program + solver configuration
//! ([`AnalysisSession::content_key`]), so re-loading a translation unit
//! the session has already solved reuses the cached solution.
//! [`AnalysisSession::handle_lines`] fans independent read-only queries out
//! over [`std::thread::scope`] against the immutable solution; requests
//! that mutate the session (`load`, a query that triggers the first solve)
//! act as barriers.
//!
//! [`AntErrorKind::wire_name`]: ant_common::AntErrorKind::wire_name
//! [`SolutionMapping`]: ant_constraints::pipeline::SolutionMapping
//! [`SolutionMapping::resolve`]: ant_constraints::pipeline::SolutionMapping::resolve

// This module faces untrusted request streams: every failure must become a
// typed error envelope, never a panic. The fuzz harness (`ant_bench::fuzz`)
// drives adversarial streams through it; the lints keep the audit from
// regressing.
#![warn(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable
)]

use crate::provenance::Explainer;
use crate::{
    resume_dyn, resume_supported, solve_dyn_resumable, solve_prepared_raw,
    solve_prepared_raw_recorded, PtsKind, ResumableState, Solution, SolveOutput, SolverConfig,
};
use ant_common::fx::{FxHashMap, FxHasher};
use ant_common::obs::prov::ProvRecorder;
use ant_common::obs::{parse_object, JsonObject, JsonValue};
use ant_common::{AntError, QueryErrorKind, VarId};
use ant_constraints::pipeline::{PassPipeline, Prepared, SolutionMapping};
use ant_constraints::{parse_program, Program};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// How a session solves and answers: the solver configuration, points-to
/// representation, offline pass list, and the per-request policy knobs.
#[derive(Clone, Debug)]
pub struct SessionOptions {
    /// Solver configuration used for every solve.
    pub config: SolverConfig,
    /// Points-to representation used for every solve.
    pub pts: PtsKind,
    /// Offline pass list, in [`PassPipeline::parse`] syntax.
    pub passes: String,
    /// Record provenance on every solve, enabling the `explain` op.
    pub record: bool,
    /// Per-request deadline in milliseconds; a request whose answer took
    /// longer gets a `deadline_exceeded` envelope instead. `None` disables
    /// the check.
    pub deadline_ms: Option<u64>,
    /// Fan-out width for batches of read-only queries (`1` = sequential).
    pub threads: usize,
}

impl SessionOptions {
    /// Defaults: the given algorithm configuration, bitmap sets, the
    /// standard `normalize,ovs` pipeline, no recording, no deadline,
    /// sequential query handling.
    pub fn new(config: SolverConfig) -> Self {
        SessionOptions {
            config,
            pts: PtsKind::Bitmap,
            passes: "normalize,ovs".to_string(),
            record: false,
            deadline_ms: None,
            threads: 1,
        }
    }
}

/// One solved program, cached under its content key.
struct CachedSolve {
    output: SolveOutput,
    prov: Option<ProvRecorder>,
}

/// The currently loaded translation unit.
struct Loaded {
    /// The *original* program — the name space clients speak.
    program: Program,
    /// Pipeline output: preprocessed program + composed mapping.
    prepared: Prepared,
    /// Hash index over original variable names (`Program::var_by_name` is
    /// a linear scan; sessions answer thousands of name lookups).
    names: FxHashMap<String, VarId>,
    /// Content key of program + solver configuration.
    key: u64,
}

/// Cached solves kept before the oldest is evicted.
const SOLVE_CACHE_CAP: usize = 8;

/// A long-lived query session: prepared program, lazily solved solution,
/// optional provenance, and the JSONL protocol to query them.
///
/// ```
/// use ant_core::session::{AnalysisSession, SessionOptions};
/// use ant_core::{Algorithm, SolverConfig};
///
/// let opts = SessionOptions::new(SolverConfig::new(Algorithm::LcdHcd));
/// let mut session = AnalysisSession::new(opts).unwrap();
/// let reply = session.handle_line(r#"{"op":"load","text":"p = &x\nq = p\n"}"#);
/// assert!(reply.ok);
/// let reply = session.handle_line(r#"{"op":"points_to","var":"q"}"#);
/// assert!(reply.json.contains(r#""pts":["x"]"#));
/// ```
pub struct AnalysisSession {
    opts: SessionOptions,
    loaded: Option<Loaded>,
    cache: FxHashMap<u64, CachedSolve>,
    /// Insertion order of `cache` keys, oldest first (eviction order).
    cache_order: Vec<u64>,
    /// Content key of the solve answering queries right now.
    active: Option<u64>,
    /// The warm-start state of the most recent resumable solve, keyed by
    /// the content key of the program it solved. One slot: an `add` whose
    /// base key matches resumes it (and re-keys the slot to the union);
    /// anything else solves from scratch and replaces it.
    retained: Option<(u64, ResumableState)>,
    solves: u64,
    cache_hits: u64,
    cache_misses: u64,
    requests: u64,
    errors: u64,
}

/// One answered request: the response line plus the telemetry the serve
/// loop forwards as a [`SolveEvent::Query`] event.
///
/// [`SolveEvent::Query`]: ant_common::obs::SolveEvent::Query
#[derive(Clone, Debug)]
pub struct Reply {
    /// The response envelope, one line of JSON (no trailing newline).
    pub json: String,
    /// Stable op name (`"malformed"` when the request had none).
    pub op: &'static str,
    /// Whether this is a success envelope.
    pub ok: bool,
    /// Wall time from receipt to answer, in microseconds.
    pub micros: u64,
    /// The request asked the session to shut down.
    pub shutdown: bool,
}

/// A parsed request: the echoed id plus the typed operation.
struct Request {
    id: Option<JsonValue>,
    op: Op,
}

enum Op {
    PointsTo {
        var: String,
    },
    MayAlias {
        a: String,
        b: String,
    },
    Resolve {
        var: String,
    },
    Explain {
        var: String,
        loc: String,
    },
    Stats,
    Load {
        path: Option<String>,
        text: Option<String>,
    },
    Add {
        path: Option<String>,
        text: Option<String>,
    },
    Shutdown,
}

impl Op {
    fn name(&self) -> &'static str {
        match self {
            Op::PointsTo { .. } => "points_to",
            Op::MayAlias { .. } => "may_alias",
            Op::Resolve { .. } => "resolve",
            Op::Explain { .. } => "explain",
            Op::Stats => "stats",
            Op::Load { .. } => "load",
            Op::Add { .. } => "add",
            Op::Shutdown => "shutdown",
        }
    }

    /// Can this op run concurrently against an immutable solved session?
    fn read_only(&self) -> bool {
        matches!(
            self,
            Op::PointsTo { .. } | Op::MayAlias { .. } | Op::Resolve { .. }
        )
    }
}

fn malformed(msg: impl Into<String>) -> AntError {
    AntError::query(QueryErrorKind::MalformedRequest, msg)
}

fn parse_request(line: &str) -> Result<Request, AntError> {
    let map = parse_object(line).map_err(|e| malformed(format!("bad request JSON: {e}")))?;
    let id = map.get("id").cloned();
    if let Some(id) = &id {
        if matches!(id, JsonValue::Arr(_)) {
            return Err(malformed("request id must be a scalar"));
        }
    }
    let op = map
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| malformed("request needs a string `op` field"))?;
    let str_arg = |k: &str| -> Result<String, AntError> {
        map.get(k)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| malformed(format!("op `{op}` needs a string `{k}` field")))
    };
    let op = match op {
        "points_to" => Op::PointsTo {
            var: str_arg("var")?,
        },
        "may_alias" => Op::MayAlias {
            a: str_arg("a")?,
            b: str_arg("b")?,
        },
        "resolve" => Op::Resolve {
            var: str_arg("var")?,
        },
        "explain" => Op::Explain {
            var: str_arg("var")?,
            loc: str_arg("loc")?,
        },
        "stats" => Op::Stats,
        "load" | "add" => {
            let path = map
                .get("path")
                .and_then(JsonValue::as_str)
                .map(str::to_owned);
            let text = map
                .get("text")
                .and_then(JsonValue::as_str)
                .map(str::to_owned);
            if path.is_none() && text.is_none() {
                return Err(malformed(format!(
                    "op `{op}` needs a `path` or `text` field"
                )));
            }
            if op == "load" {
                Op::Load { path, text }
            } else {
                Op::Add { path, text }
            }
        }
        "shutdown" => Op::Shutdown,
        other => {
            return Err(AntError::query(
                QueryErrorKind::UnknownOp,
                format!("unknown op `{other}`"),
            ))
        }
    };
    Ok(Request { id, op })
}

/// The success payload of one op, to be wrapped in an envelope.
enum Payload {
    Fields(JsonObject),
    Shutdown,
}

/// Everything a read-only query needs, shareable across scoped threads.
struct SessionView<'a> {
    program: &'a Program,
    mapping: &'a SolutionMapping,
    names: &'a FxHashMap<String, VarId>,
    solution: &'a Solution,
}

impl SessionView<'_> {
    fn named(&self, name: &str) -> Result<VarId, AntError> {
        self.names.get(name).copied().ok_or_else(|| {
            AntError::query(
                QueryErrorKind::UnknownVar,
                format!("no variable named `{name}`"),
            )
        })
    }

    /// Answers a read-only op. The solution is *raw* (preprocessed space):
    /// every lookup goes through `mapping.rep_of`, which by the pipeline's
    /// composition law returns exactly the expanded solution's answer.
    fn answer(&self, op: &Op) -> Result<JsonObject, AntError> {
        let mut o = JsonObject::new();
        match op {
            Op::PointsTo { var } => {
                let v = self.named(var)?;
                let set = self.solution.points_to(self.mapping.rep_of(v));
                o.str_field("var", var);
                o.str_list_field(
                    "pts",
                    set.iter()
                        .map(|&loc| self.program.var_name(VarId::new(loc as usize))),
                );
                o.uint_field("count", set.len() as u64);
            }
            Op::MayAlias { a, b } => {
                let va = self.mapping.rep_of(self.named(a)?);
                let vb = self.mapping.rep_of(self.named(b)?);
                o.str_field("a", a);
                o.str_field("b", b);
                o.bool_field("alias", self.solution.may_alias(va, vb));
            }
            Op::Resolve { var } => {
                let v = self.named(var)?;
                o.str_field("var", var);
                o.uint_field("var_id", v.as_u32() as u64);
                o.uint_field("rep_id", self.mapping.rep_of(v).as_u32() as u64);
                o.bool_field("merged", self.mapping.was_merged(v));
            }
            other => {
                // Only read-only ops are routed here; anything else is an
                // internal dispatch bug, reported instead of panicking.
                return Err(AntError::solver(format!(
                    "internal: op `{}` routed to the read-only answer path",
                    other.name()
                )));
            }
        }
        Ok(o)
    }
}

impl AnalysisSession {
    /// A session with no program loaded yet.
    ///
    /// # Errors
    ///
    /// [`AntErrorKind::Pipeline`] when the pass spec does not parse.
    pub fn new(opts: SessionOptions) -> Result<Self, AntError> {
        PassPipeline::parse(&opts.passes)?;
        Ok(AnalysisSession {
            opts,
            loaded: None,
            cache: FxHashMap::default(),
            cache_order: Vec::new(),
            active: None,
            retained: None,
            solves: 0,
            cache_hits: 0,
            cache_misses: 0,
            requests: 0,
            errors: 0,
        })
    }

    /// The content key a load of `program` would solve under: a hash of
    /// the program's structure (constraints, variable space, offset
    /// limits) and everything about the configuration that could change
    /// the solve. Two loads with equal keys share one cached solution.
    pub fn content_key(&self, program: &Program) -> u64 {
        let mut h = FxHasher::default();
        h.write_usize(program.num_vars());
        for &limit in program.offset_limits() {
            h.write_u32(limit);
        }
        for c in program.constraints() {
            c.hash(&mut h);
        }
        self.opts.config.algorithm.hash(&mut h);
        self.opts.config.prop.hash(&mut h);
        h.write(format!("{:?}", self.opts.config.worklist).as_bytes());
        h.write_usize(self.opts.config.threads);
        h.write(self.opts.pts.name().as_bytes());
        h.write(self.opts.passes.as_bytes());
        h.write_u8(self.opts.record as u8);
        h.finish()
    }

    /// Loads a translation unit, replacing the current one: runs the
    /// offline pass pipeline and builds the name index. The solve is lazy —
    /// it happens on the first query that needs it (or never, if the same
    /// content was solved before and is still cached).
    ///
    /// # Errors
    ///
    /// [`AntErrorKind::Pipeline`] when the pass pipeline fails.
    pub fn load_program(&mut self, program: Program) -> Result<(), AntError> {
        let pipeline = PassPipeline::parse(&self.opts.passes)?;
        let prepared = pipeline.try_run(&program)?;
        let names: FxHashMap<String, VarId> = program
            .vars()
            .map(|v| (program.var_name(v).to_owned(), v))
            .collect();
        let key = self.content_key(&program);
        self.loaded = Some(Loaded {
            program,
            prepared,
            names,
            key,
        });
        self.active = None;
        Ok(())
    }

    /// Appends `addition` to the loaded translation unit: name-matched
    /// merge into a `ProgramDelta`, union via [`Program::append_delta`],
    /// then an **eager** solve of the union — resuming the retained
    /// warm-start state when possible, solving from scratch otherwise
    /// (non-resumable configuration, non-delta-stable pass pipeline, no
    /// retained state for the base, or a failed resume). Returns the
    /// reply payload, including `cache_hit` and `resumed`.
    ///
    /// ## Content-key lineage
    ///
    /// The union is keyed by [`content_key`](Self::content_key) exactly
    /// like a direct load. `append_delta` is canonical — shared names keep
    /// their base ids, fresh names append in declaration order, delta
    /// constraints append in order — so `load(base)` + `add(delta)`
    /// produces the *same key* as one `load` of the concatenated source,
    /// and the two share a cache entry. A semantically equal union whose
    /// text declares variables or constraints in a different order hashes
    /// to a different key and is kept distinct — conservative but never
    /// incorrect, since keys fingerprint exact structure, not semantics.
    pub fn add_program(&mut self, addition: Program) -> Result<JsonObject, AntError> {
        let loaded = self.loaded.as_ref().ok_or_else(|| {
            AntError::query(
                QueryErrorKind::NotFound,
                "no program loaded (send a `load` request before `add`)",
            )
        })?;
        let delta = loaded.program.delta_from(&addition).map_err(|e| {
            AntError::parse(format!(
                "addition does not compose with the loaded program: {e}"
            ))
        })?;
        let union = loaded.program.append_delta(&delta);
        let base_key = loaded.key;
        let key = self.content_key(&union);
        let pipeline = PassPipeline::parse(&self.opts.passes)?;
        let loaded = self.loaded()?;
        // The delta pipeline lane: when every pass is delta-stable
        // (normalize-only), the union's prepared program extends the base's
        // — the precondition for resuming the retained state.
        let delta_prepared = pipeline.prepare_delta(&loaded.program, &loaded.prepared, &union);
        let delta_lane = delta_prepared.is_some();
        let prepared = match delta_prepared {
            Some(p) => p,
            None => pipeline.try_run(&union)?,
        };
        let cache_hit = self.cache.contains_key(&key);
        let mut resumed = false;
        if cache_hit {
            self.cache_hits += 1;
        } else {
            self.cache_misses += 1;
            let mut solved: Option<(CachedSolve, Option<ResumableState>)> = None;
            if delta_lane
                && self.retains_state()
                && self.retained.as_ref().is_some_and(|(k, _)| *k == base_key)
            {
                if let Some((_, state)) = self.retained.take() {
                    // A failed resume (panic or typed mismatch) falls back
                    // to the from-scratch solve below; the state is spent
                    // either way.
                    if let Ok(Ok((output, state))) =
                        run_solver(|| resume_dyn(state, &prepared.program))
                    {
                        resumed = true;
                        solved = Some((CachedSolve { output, prov: None }, Some(state)));
                    }
                }
            }
            let (cached, state) = match solved {
                Some(x) => x,
                None => {
                    let retains = self.retains_state();
                    let (opts, prepared) = (&self.opts, &prepared);
                    run_solver(|| {
                        if opts.record {
                            let (output, prov) =
                                solve_prepared_raw_recorded(prepared, &opts.config, opts.pts);
                            (
                                CachedSolve {
                                    output,
                                    prov: Some(prov),
                                },
                                None,
                            )
                        } else if retains {
                            let (output, state) =
                                solve_dyn_resumable(&prepared.program, &opts.config, opts.pts);
                            (CachedSolve { output, prov: None }, state)
                        } else {
                            (
                                CachedSolve {
                                    output: solve_prepared_raw(prepared, &opts.config, opts.pts),
                                    prov: None,
                                },
                                None,
                            )
                        }
                    })?
                }
            };
            self.solves += 1;
            self.insert_cache(key, cached);
            self.retained = state.map(|s| (key, s));
        }
        let names: FxHashMap<String, VarId> = union
            .vars()
            .map(|v| (union.var_name(v).to_owned(), v))
            .collect();
        let mut o = JsonObject::new();
        o.uint_field("vars", union.num_vars() as u64);
        o.uint_field("constraints", union.constraints().len() as u64);
        o.uint_field("new_vars", delta.num_new_vars() as u64);
        o.uint_field("new_constraints", delta.constraints().len() as u64);
        o.str_field("key", &format!("{key:016x}"));
        o.bool_field("cache_hit", cache_hit);
        o.bool_field("resumed", resumed);
        self.loaded = Some(Loaded {
            program: union,
            prepared,
            names,
            key,
        });
        self.active = Some(key);
        Ok(o)
    }

    /// The original program of the current translation unit.
    pub fn program(&self) -> Option<&Program> {
        self.loaded.as_ref().map(|l| &l.program)
    }

    /// (solves, cache_hits) so far — the `stats` op's counters.
    pub fn solve_counters(&self) -> (u64, u64) {
        (self.solves, self.cache_hits)
    }

    /// (hits, misses) of the solve cache so far — every time a query or an
    /// `add` needed a solution, did the FIFO cache have it? The serve loop
    /// exports these as the `serve.cache.hits` / `serve.cache.misses`
    /// metrics.
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// Is this session's configuration able to retain warm-start states?
    /// Requires a resumable (algorithm, representation) pair and no
    /// provenance recording (the resumable path does not record).
    fn retains_state(&self) -> bool {
        !self.opts.record && resume_supported(&self.opts.config, self.opts.pts)
    }

    fn loaded(&self) -> Result<&Loaded, AntError> {
        self.loaded.as_ref().ok_or_else(|| {
            AntError::query(
                QueryErrorKind::NotFound,
                "no program loaded (send a `load` request first)",
            )
        })
    }

    /// Solves the current program unless an equal-content solve is cached.
    /// Solver panics are caught and reported as [`AntErrorKind::Solver`] —
    /// the session survives.
    ///
    /// When the configuration is resumable ([`retains_state`]
    /// (Self::retains_state)), the solve runs through
    /// [`solve_dyn_resumable`] — same raw solution and §5.3 counters as
    /// [`solve_prepared_raw`], sequential schedule — and the returned
    /// warm-start state is kept so a later `add` can resume it.
    fn ensure_solved(&mut self) -> Result<(), AntError> {
        let key = self.loaded()?.key;
        if self.active == Some(key) {
            return Ok(());
        }
        if self.cache.contains_key(&key) {
            self.cache_hits += 1;
            self.active = Some(key);
            return Ok(());
        }
        self.cache_misses += 1;
        let loaded = self.loaded()?;
        let retains = self.retains_state();
        let (opts, prepared) = (&self.opts, &loaded.prepared);
        let (solved, state) = run_solver(|| {
            if opts.record {
                let (output, prov) = solve_prepared_raw_recorded(prepared, &opts.config, opts.pts);
                (
                    CachedSolve {
                        output,
                        prov: Some(prov),
                    },
                    None,
                )
            } else if retains {
                let (output, state) =
                    solve_dyn_resumable(&prepared.program, &opts.config, opts.pts);
                (CachedSolve { output, prov: None }, state)
            } else {
                (
                    CachedSolve {
                        output: solve_prepared_raw(prepared, &opts.config, opts.pts),
                        prov: None,
                    },
                    None,
                )
            }
        })?;
        self.solves += 1;
        self.insert_cache(key, solved);
        self.retained = state.map(|s| (key, s));
        self.active = Some(key);
        Ok(())
    }

    /// FIFO insertion with eviction at [`SOLVE_CACHE_CAP`].
    fn insert_cache(&mut self, key: u64, solved: CachedSolve) {
        if self.cache_order.len() >= SOLVE_CACHE_CAP {
            let evicted = self.cache_order.remove(0);
            self.cache.remove(&evicted);
        }
        self.cache.insert(key, solved);
        self.cache_order.push(key);
    }

    fn active_solve(&self) -> Result<&CachedSolve, AntError> {
        let key = self.active.ok_or_else(|| {
            AntError::solver("internal: no active solve (ensure_solved did not run)")
        })?;
        self.cache
            .get(&key)
            .ok_or_else(|| AntError::solver("internal: active solve evicted from the cache"))
    }

    fn view(&self) -> Result<SessionView<'_>, AntError> {
        let loaded = self.loaded()?;
        Ok(SessionView {
            program: &loaded.program,
            mapping: &loaded.prepared.mapping,
            names: &loaded.names,
            solution: &self.active_solve()?.output.solution,
        })
    }

    /// Executes one parsed op, mutating the session as needed.
    fn execute(&mut self, op: &Op) -> Result<Payload, AntError> {
        match op {
            Op::PointsTo { .. } | Op::MayAlias { .. } | Op::Resolve { .. } => {
                self.ensure_solved()?;
                Ok(Payload::Fields(self.view()?.answer(op)?))
            }
            Op::Explain { var, loc } => {
                self.ensure_solved()?;
                let loaded = self.loaded()?;
                let names = &loaded.names;
                let named = |name: &str| -> Result<VarId, AntError> {
                    names.get(name).copied().ok_or_else(|| {
                        AntError::query(
                            QueryErrorKind::UnknownVar,
                            format!("no variable named `{name}`"),
                        )
                    })
                };
                let (v, l) = (named(var)?, named(loc)?);
                let solve = self.active_solve()?;
                let prov = solve.prov.as_ref().ok_or_else(|| {
                    AntError::query(
                        QueryErrorKind::NoProvenance,
                        "session was not started with recording; explain is unavailable",
                    )
                })?;
                let mut explainer = Explainer::new(prov, loaded.prepared.program.num_vars())
                    .with_mapping(&loaded.prepared.mapping);
                let steps = explainer.explain(v, l).ok_or_else(|| {
                    AntError::query(
                        QueryErrorKind::NotFound,
                        format!("`{loc}` is not in the points-to set of `{var}`"),
                    )
                })?;
                let mut o = JsonObject::new();
                o.str_field("var", var);
                o.str_field("loc", loc);
                o.str_list_field("steps", steps.iter().map(|s| s.render(&loaded.program)));
                Ok(Payload::Fields(o))
            }
            Op::Stats => {
                let mut o = JsonObject::new();
                o.str_field("algorithm", self.opts.config.algorithm.name());
                o.str_field("pts", self.opts.pts.name());
                o.str_field("passes", &self.opts.passes);
                o.bool_field("record", self.opts.record);
                o.uint_field("requests", self.requests);
                o.uint_field("errors", self.errors);
                o.uint_field("solves", self.solves);
                o.uint_field("cache_hits", self.cache_hits);
                o.uint_field("cache_misses", self.cache_misses);
                o.uint_field("cache_entries", self.cache.len() as u64);
                o.uint_field("cache_capacity", SOLVE_CACHE_CAP as u64);
                o.bool_field("retained", self.retained.is_some());
                o.uint_field(
                    "retained_bytes",
                    self.retained.as_ref().map_or(0, |(_, s)| s.bytes()) as u64,
                );
                o.bool_field("solved", self.active.is_some());
                if let Some(loaded) = &self.loaded {
                    o.uint_field("vars", loaded.program.num_vars() as u64);
                    o.uint_field("constraints", loaded.program.constraints().len() as u64);
                    o.uint_field(
                        "constraints_prepared",
                        loaded.prepared.program.constraints().len() as u64,
                    );
                }
                if let Some(solve) = self.active.and_then(|key| self.cache.get(&key)) {
                    o.uint_field(
                        "total_pts_size",
                        solve.output.solution.total_pts_size() as u64,
                    );
                    o.uint_field(
                        "solve_micros",
                        solve.output.stats.solve_time.as_micros() as u64,
                    );
                }
                Ok(Payload::Fields(o))
            }
            Op::Load { path, text } => {
                let text = read_source(path, text)?;
                let program = parse_program(&text)?;
                let mut o = JsonObject::new();
                o.uint_field("vars", program.num_vars() as u64);
                o.uint_field("constraints", program.constraints().len() as u64);
                self.load_program(program)?;
                let key = self.loaded()?.key;
                o.str_field("key", &format!("{key:016x}"));
                o.bool_field("cache_hit", self.cache.contains_key(&key));
                // Loads are lazy; only `add` re-enters a retained state.
                o.bool_field("resumed", false);
                Ok(Payload::Fields(o))
            }
            Op::Add { path, text } => {
                let text = read_source(path, text)?;
                let addition = parse_program(&text)?;
                Ok(Payload::Fields(self.add_program(addition)?))
            }
            Op::Shutdown => Ok(Payload::Shutdown),
        }
    }

    /// Renders a transport-level failure — an over-long request line or
    /// invalid UTF-8 from [`read_request_line`] — as a `malformed` error
    /// envelope, counting it like any other failed request. The serve loop
    /// answers these and keeps the connection; only genuine I/O errors end
    /// it.
    pub fn transport_error_reply(&mut self, e: &AntError) -> Reply {
        self.requests += 1;
        self.errors += 1;
        Reply {
            json: envelope(None, None, Err(e), 0),
            op: "malformed",
            ok: false,
            micros: 0,
            shutdown: false,
        }
    }

    /// Handles one request line, sequentially. Never panics and never
    /// returns an error — failures become typed error envelopes.
    pub fn handle_line(&mut self, line: &str) -> Reply {
        let start = Instant::now();
        match parse_request(line) {
            Ok(req) => {
                let result = self.execute(&req.op);
                self.finish(&req, result, start)
            }
            Err(e) => {
                self.requests += 1;
                self.errors += 1;
                Reply {
                    json: envelope(None, None, Err(&e), elapsed_micros(start)),
                    op: "malformed",
                    ok: false,
                    micros: elapsed_micros(start),
                    shutdown: false,
                }
            }
        }
    }

    /// Handles a batch of request lines, in order. Maximal runs of
    /// consecutive read-only queries (`points_to`, `may_alias`, `resolve`)
    /// against an already-solved session fan out over
    /// [`std::thread::scope`] with [`SessionOptions::threads`] workers;
    /// unparseable lines ride along in the run (their error envelope needs
    /// no session state), while everything else — including the query that
    /// triggers the lazy solve — is a barrier. Reply order always matches
    /// request order.
    pub fn handle_lines(&mut self, lines: &[&str]) -> Vec<Reply> {
        let mut replies: Vec<Reply> = Vec::with_capacity(lines.len());
        let mut i = 0;
        while i < lines.len() {
            // Gather a run of requests that can share the read-only view.
            let mut batch: Vec<(Instant, Result<Request, AntError>)> = Vec::new();
            while i < lines.len() {
                if self.active.is_none() || self.loaded.is_none() {
                    break;
                }
                let start = Instant::now();
                match parse_request(lines[i]) {
                    Ok(req) if req.op.read_only() => {
                        batch.push((start, Ok(req)));
                        i += 1;
                    }
                    Err(e) => {
                        batch.push((start, Err(e)));
                        i += 1;
                    }
                    Ok(_) => break,
                }
            }
            if !batch.is_empty() {
                replies.extend(self.run_batch(batch));
                continue;
            }
            replies.push(self.handle_line(lines[i]));
            i += 1;
            if replies.last().is_some_and(|r| r.shutdown) {
                break;
            }
        }
        replies
    }

    /// Smallest batch slice worth a spawned worker: below this, the
    /// OS-thread spawn costs more than the queries it would answer.
    const MIN_BATCH_PER_WORKER: usize = 256;

    /// Fans a batch of read-only requests out over scoped threads.
    fn run_batch(&mut self, batch: Vec<(Instant, Result<Request, AntError>)>) -> Vec<Reply> {
        let view = match self.view() {
            Ok(v) => v,
            Err(e) => {
                // Batches only form against a solved session, so this is an
                // internal inconsistency — answer every request with the
                // typed error rather than panicking.
                let replies: Vec<Reply> = batch
                    .iter()
                    .map(|(start, req)| reply_for_error(req, &e, *start))
                    .collect();
                self.requests += replies.len() as u64;
                self.errors += replies.len() as u64;
                return replies;
            }
        };
        let deadline = self.opts.deadline_ms;
        let workers = self
            .opts
            .threads
            .max(1)
            .min(batch.len().div_ceil(Self::MIN_BATCH_PER_WORKER));
        let answer_one =
            |view: &SessionView<'_>, start: Instant, req: &Result<Request, AntError>| -> Reply {
                match req {
                    Ok(req) => {
                        let result = view.answer(&req.op).map(Payload::Fields);
                        finish_reply(req, result, start, deadline)
                    }
                    Err(e) => Reply {
                        json: envelope(None, None, Err(e), elapsed_micros(start)),
                        op: "malformed",
                        ok: false,
                        micros: elapsed_micros(start),
                        shutdown: false,
                    },
                }
            };
        let replies: Vec<Reply> = if workers <= 1 {
            batch
                .iter()
                .map(|(start, req)| answer_one(&view, *start, req))
                .collect()
        } else {
            // Chunk round-robin-free: contiguous slices keep reply order
            // reconstruction trivial (chunks concatenate in order).
            let chunk = batch.len().div_ceil(workers);
            let mut out: Vec<Vec<Reply>> = Vec::new();
            std::thread::scope(|s| {
                let view = &view;
                let handles: Vec<_> = batch
                    .chunks(chunk)
                    .map(|part| {
                        s.spawn(move || {
                            part.iter()
                                .map(|(start, req)| answer_one(view, *start, req))
                                .collect::<Vec<Reply>>()
                        })
                    })
                    .collect();
                for (part, h) in batch.chunks(chunk).zip(handles) {
                    match h.join() {
                        Ok(replies) => out.push(replies),
                        Err(_) => {
                            // A worker panicked: its whole chunk gets typed
                            // solver-error envelopes; the session survives.
                            let e = AntError::solver("query worker panicked; request not answered");
                            out.push(
                                part.iter()
                                    .map(|(start, req)| reply_for_error(req, &e, *start))
                                    .collect(),
                            );
                        }
                    }
                }
            });
            out.into_iter().flatten().collect()
        };
        self.requests += replies.len() as u64;
        self.errors += replies.iter().filter(|r| !r.ok).count() as u64;
        replies
    }

    /// Wraps an executed op's result into a reply and updates counters.
    fn finish(
        &mut self,
        req: &Request,
        result: Result<Payload, AntError>,
        start: Instant,
    ) -> Reply {
        let reply = finish_reply(req, result, start, self.opts.deadline_ms);
        self.requests += 1;
        if !reply.ok {
            self.errors += 1;
        }
        reply
    }
}

fn elapsed_micros(start: Instant) -> u64 {
    start.elapsed().as_micros() as u64
}

/// Default cap on one JSONL request line (1 MiB). A client that streams an
/// unterminated line would otherwise grow the buffer without bound.
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// Reads one request line from `reader` under transport limits, without
/// assuming the stream is UTF-8.
///
/// Returns `None` at a clean EOF, `Some(Ok(line))` for a complete line
/// (trailing `\n`/`\r\n` stripped), and `Some(Err(_))` with:
///
/// * [`QueryErrorKind::MalformedRequest`] when the line exceeds `cap` bytes
///   (the rest of the oversized line is drained so the next request starts
///   clean) or is not valid UTF-8 — answer with an envelope and keep
///   reading;
/// * [`AntErrorKind::Io`](ant_common::AntErrorKind::Io) when the underlying
///   read fails — the connection is gone, stop serving it.
pub fn read_request_line(
    reader: &mut impl std::io::BufRead,
    cap: usize,
) -> Option<Result<String, AntError>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Some(Err(AntError::io(format!("read failed: {e}")))),
        };
        if chunk.is_empty() {
            // EOF. A partial unterminated line still gets answered.
            if buf.is_empty() && !overflowed {
                return None;
            }
            break;
        }
        let (part, terminated) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, true),
            None => (chunk.len(), false),
        };
        if !overflowed {
            if buf.len() + part > cap {
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&chunk[..part]);
            }
        }
        reader.consume(part + usize::from(terminated));
        if terminated {
            break;
        }
    }
    if overflowed {
        return Some(Err(malformed(format!("request line exceeds {cap} bytes"))));
    }
    match String::from_utf8(buf) {
        Ok(mut s) => {
            if s.ends_with('\r') {
                s.pop();
            }
            Some(Ok(s))
        }
        Err(_) => Some(Err(malformed("request line is not valid UTF-8"))),
    }
}

/// Runs a solve under `catch_unwind`, converting panics into typed solver
/// errors so the session survives.
fn run_solver<T>(f: impl FnOnce() -> T) -> Result<T, AntError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|panic| {
        let msg = panic
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| panic.downcast_ref::<&str>().copied())
            .unwrap_or("solver panicked");
        AntError::solver(format!("solve failed: {msg}"))
    })
}

/// Reads a `load`/`add` source: inline text wins, otherwise the path is
/// read from disk (`.c` sources are rejected with a hint, as before).
fn read_source(path: &Option<String>, text: &Option<String>) -> Result<String, AntError> {
    match (path, text) {
        (_, Some(text)) => Ok(text.clone()),
        (Some(path), None) => {
            if path.ends_with(".c") {
                return Err(AntError::parse(
                    "serve sessions load constraint files (.consts); \
                     compile C sources before starting the session",
                ));
            }
            std::fs::read_to_string(path)
                .map_err(|e| AntError::io(format!("cannot read {path}: {e}")))
        }
        // parse_request rejects this shape, but read_source stays total: a
        // future caller skipping that check gets a typed error, not a panic.
        (None, None) => Err(malformed("op needs a `path` or `text` field")),
    }
}

/// Answers a request with `fallback` — an internal failure that pre-empted
/// the normal answer path — preserving the request's id/op echo.
/// Unparseable requests keep their own parse error.
fn reply_for_error(req: &Result<Request, AntError>, fallback: &AntError, start: Instant) -> Reply {
    let micros = elapsed_micros(start);
    match req {
        Ok(r) => Reply {
            json: envelope(r.id.as_ref(), Some(r.op.name()), Err(fallback), micros),
            op: r.op.name(),
            ok: false,
            micros,
            shutdown: false,
        },
        Err(e) => Reply {
            json: envelope(None, None, Err(e), micros),
            op: "malformed",
            ok: false,
            micros,
            shutdown: false,
        },
    }
}

fn finish_reply(
    req: &Request,
    result: Result<Payload, AntError>,
    start: Instant,
    deadline_ms: Option<u64>,
) -> Reply {
    let micros = elapsed_micros(start);
    // Post-hoc deadline on *query* ops: the answer exists, but it arrived
    // too late to honor the caller's budget, so report it as such (a
    // deadline of 0 deterministically trips, which the tests rely on).
    // `load` and `shutdown` are bulk/administrative and exempt.
    let deadline_applies = !matches!(req.op, Op::Load { .. } | Op::Shutdown);
    let result = match result {
        Ok(p) => match deadline_ms {
            Some(d) if deadline_applies && micros > d.saturating_mul(1000) => Err(AntError::query(
                QueryErrorKind::DeadlineExceeded,
                format!("request took {micros}us, deadline {d}ms"),
            )),
            _ => Ok(p),
        },
        Err(e) => Err(e),
    };
    let op = req.op.name();
    let shutdown = matches!(result, Ok(Payload::Shutdown));
    let (ok, json) = match &result {
        Ok(payload) => (
            true,
            envelope(req.id.as_ref(), Some(op), Ok(payload), micros),
        ),
        Err(e) => (false, envelope(req.id.as_ref(), Some(op), Err(e), micros)),
    };
    Reply {
        json,
        op,
        ok,
        micros,
        shutdown,
    }
}

/// Renders the response envelope: id echo, `ok`, op, payload fields or the
/// typed error pair, and the request's latency.
fn envelope(
    id: Option<&JsonValue>,
    op: Option<&str>,
    result: Result<&Payload, &AntError>,
    micros: u64,
) -> String {
    let mut o = JsonObject::new();
    match id {
        Some(JsonValue::Str(s)) => o.str_field("id", s),
        Some(JsonValue::Num(n)) => {
            if n.fract() == 0.0 && *n >= 0.0 {
                o.uint_field("id", *n as u64);
            } else {
                o.float_field("id", *n);
            }
        }
        Some(JsonValue::Bool(b)) => o.bool_field("id", *b),
        _ => {}
    }
    o.bool_field("ok", result.is_ok());
    if let Some(op) = op {
        o.str_field("op", op);
    }
    match result {
        Ok(Payload::Fields(fields)) => o.extend(fields),
        Ok(Payload::Shutdown) => {}
        Err(e) => {
            o.str_field("error", e.kind().wire_name());
            o.str_field("message", e.message());
        }
    }
    o.uint_field("micros", micros);
    o.finish()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::Algorithm;

    fn opts() -> SessionOptions {
        SessionOptions::new(SolverConfig::new(Algorithm::LcdHcd))
    }

    fn loaded_session(opts: SessionOptions) -> AnalysisSession {
        let mut s = AnalysisSession::new(opts).unwrap();
        let r = s.handle_line(r#"{"op":"load","text":"p = &x\nq = p\nr = &y\n"}"#);
        assert!(r.ok, "{}", r.json);
        s
    }

    fn field<'a>(map: &'a std::collections::BTreeMap<String, JsonValue>, k: &str) -> &'a JsonValue {
        map.get(k).unwrap_or_else(|| panic!("missing field {k}"))
    }

    #[test]
    fn points_to_and_alias_roundtrip() {
        let mut s = loaded_session(opts());
        let r = s.handle_line(r#"{"id":7,"op":"points_to","var":"q"}"#);
        assert!(r.ok && r.op == "points_to");
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "id").as_u64(), Some(7));
        assert_eq!(field(&m, "pts").as_str_arr(), Some(vec!["x"]));
        assert_eq!(field(&m, "count").as_u64(), Some(1));
        let r = s.handle_line(r#"{"op":"may_alias","a":"p","b":"q"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "alias"), &JsonValue::Bool(true));
        let r = s.handle_line(r#"{"op":"may_alias","a":"p","b":"r"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "alias"), &JsonValue::Bool(false));
    }

    #[test]
    fn error_envelopes_are_typed_and_nonfatal() {
        let mut s = loaded_session(opts());
        for (line, wire) in [
            ("this is not json", "malformed_request"),
            (r#"{"op":"points_to"}"#, "malformed_request"),
            (r#"{"op":"frobnicate"}"#, "unknown_op"),
            (r#"{"op":"points_to","var":"zz"}"#, "unknown_var"),
            (r#"{"op":"explain","var":"q","loc":"x"}"#, "no_provenance"),
        ] {
            let r = s.handle_line(line);
            assert!(!r.ok, "{line} should fail");
            let m = parse_object(&r.json).unwrap();
            assert_eq!(field(&m, "error").as_str(), Some(wire), "line: {line}");
            assert!(m.contains_key("message"));
        }
        // The session still answers after every failure.
        let r = s.handle_line(r#"{"op":"points_to","var":"q"}"#);
        assert!(r.ok);
        let m = parse_object(&s.handle_line(r#"{"op":"stats"}"#).json).unwrap();
        assert_eq!(field(&m, "errors").as_u64(), Some(5));
    }

    #[test]
    fn resolve_exposes_mapping() {
        let mut s = loaded_session(opts());
        let r = s.handle_line(r#"{"op":"resolve","var":"q"}"#);
        assert!(r.ok);
        let m = parse_object(&r.json).unwrap();
        assert!(m.contains_key("var_id") && m.contains_key("rep_id"));
    }

    #[test]
    fn explain_walks_to_addr_of() {
        let mut o = opts();
        o.record = true;
        let mut s = loaded_session(o);
        let r = s.handle_line(r#"{"op":"explain","var":"q","loc":"x"}"#);
        assert!(r.ok, "{}", r.json);
        let m = parse_object(&r.json).unwrap();
        let steps = field(&m, "steps").as_str_arr().unwrap();
        assert!(!steps.is_empty());
        // A fact that does not hold is typed not_found.
        let r = s.handle_line(r#"{"op":"explain","var":"q","loc":"y"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "error").as_str(), Some("not_found"));
    }

    #[test]
    fn reload_of_same_content_hits_the_cache() {
        let mut s = loaded_session(opts());
        assert!(s.handle_line(r#"{"op":"points_to","var":"q"}"#).ok);
        assert_eq!(s.solve_counters(), (1, 0));
        // Same text → same key → cached solve.
        let r = s.handle_line(r#"{"op":"load","text":"p = &x\nq = p\nr = &y\n"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "cache_hit"), &JsonValue::Bool(true));
        assert_eq!(field(&m, "resumed"), &JsonValue::Bool(false));
        assert!(s.handle_line(r#"{"op":"points_to","var":"q"}"#).ok);
        assert_eq!(s.solve_counters(), (1, 1));
        // Different text → fresh solve.
        assert!(s.handle_line(r#"{"op":"load","text":"p = &y\n"}"#).ok);
        assert!(s.handle_line(r#"{"op":"points_to","var":"p"}"#).ok);
        assert_eq!(s.solve_counters(), (2, 1));
    }

    #[test]
    fn deadline_zero_trips_deterministically() {
        let mut o = opts();
        o.deadline_ms = Some(0);
        let mut s = loaded_session(o);
        let r = s.handle_line(r#"{"op":"points_to","var":"q"}"#);
        assert!(!r.ok);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "error").as_str(), Some("deadline_exceeded"));
    }

    #[test]
    fn batched_reads_match_sequential_and_preserve_order() {
        let mut o = opts();
        o.threads = 4;
        let mut s = loaded_session(o);
        // Force the solve so the whole batch is read-only.
        assert!(s.handle_line(r#"{"op":"stats"}"#).ok);
        let lines: Vec<String> = (0..64)
            .map(|i| match i % 3 {
                0 => r#"{"op":"points_to","var":"q"}"#.to_string(),
                1 => format!(r#"{{"id":{i},"op":"may_alias","a":"p","b":"q"}}"#),
                _ => r#"{"op":"resolve","var":"r"}"#.to_string(),
            })
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let batched = s.handle_lines(&refs);
        let mut seq = loaded_session(opts());
        assert!(seq.handle_line(r#"{"op":"stats"}"#).ok);
        for (line, b) in refs.iter().zip(&batched) {
            let r = seq.handle_line(line);
            // Strip micros (timing differs); everything else is identical.
            let strip = |j: &str| {
                let mut m = parse_object(j).unwrap();
                m.remove("micros");
                format!("{m:?}")
            };
            assert_eq!(strip(&r.json), strip(&b.json));
        }
        let m = parse_object(&s.handle_line(r#"{"op":"stats"}"#).json).unwrap();
        // load + stats + 64 batched; the counter is read before the final
        // stats request itself is counted.
        assert_eq!(field(&m, "requests").as_u64(), Some(66));
    }

    #[test]
    fn shutdown_stops_the_batch() {
        let mut s = loaded_session(opts());
        let replies = s.handle_lines(&[r#"{"op":"shutdown"}"#, r#"{"op":"points_to","var":"q"}"#]);
        assert_eq!(replies.len(), 1);
        assert!(replies[0].shutdown);
    }

    #[test]
    fn queries_before_load_are_typed() {
        let mut s = AnalysisSession::new(opts()).unwrap();
        let r = s.handle_line(r#"{"op":"points_to","var":"q"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "error").as_str(), Some("not_found"));
    }

    /// A resumable configuration (`lcd`, normalize-only passes) answers an
    /// `add` by warm-starting the retained state, and the resulting union
    /// shares its cache entry with a direct load of the concatenated
    /// source (content-key lineage).
    #[test]
    fn add_resumes_and_shares_the_union_cache_entry() {
        let mut o = SessionOptions::new(SolverConfig::new(Algorithm::Lcd));
        o.passes = "normalize".to_string();
        let mut s = AnalysisSession::new(o).unwrap();
        assert!(
            s.handle_line(r#"{"op":"load","text":"p = &x\nq = p\n"}"#)
                .ok
        );
        // Solve the base so there is a retained state to resume.
        assert!(s.handle_line(r#"{"op":"points_to","var":"q"}"#).ok);
        let r = s.handle_line(r#"{"op":"add","text":"r = q\nt = &r\n"}"#);
        assert!(r.ok, "{}", r.json);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "cache_hit"), &JsonValue::Bool(false));
        assert_eq!(field(&m, "resumed"), &JsonValue::Bool(true));
        assert_eq!(field(&m, "new_vars").as_u64(), Some(2));
        // The union answers like a fresh session over the whole source.
        let r = s.handle_line(r#"{"op":"points_to","var":"r"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "pts").as_str_arr(), Some(vec!["x"]));
        // Lineage: a direct load of the concatenated source hits the same
        // cache entry the `add` populated.
        let r = s.handle_line(r#"{"op":"load","text":"p = &x\nq = p\nr = q\nt = &r\n"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "cache_hit"), &JsonValue::Bool(true));
        let (hits, misses) = s.cache_counters();
        assert_eq!((hits, misses), (0, 2), "base miss + add miss, no hits yet");
        let m = parse_object(&s.handle_line(r#"{"op":"stats"}"#).json).unwrap();
        assert_eq!(field(&m, "cache_entries").as_u64(), Some(2));
        assert_eq!(field(&m, "cache_capacity").as_u64(), Some(8));
        assert_eq!(field(&m, "retained"), &JsonValue::Bool(true));
        assert!(field(&m, "retained_bytes").as_u64().unwrap() > 0);
    }

    /// A non-resumable configuration (HCD algorithm, OVS in the pipeline)
    /// still serves `add` — by a from-scratch union solve, explicitly
    /// reported as `resumed: false`.
    #[test]
    fn add_without_delta_lane_falls_back_to_full_solve() {
        let mut s = loaded_session(opts());
        assert!(s.handle_line(r#"{"op":"points_to","var":"q"}"#).ok);
        let r = s.handle_line(r#"{"op":"add","text":"w = q\n"}"#);
        assert!(r.ok, "{}", r.json);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "cache_hit"), &JsonValue::Bool(false));
        assert_eq!(field(&m, "resumed"), &JsonValue::Bool(false));
        let r = s.handle_line(r#"{"op":"points_to","var":"w"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "pts").as_str_arr(), Some(vec!["x"]));
    }

    #[test]
    fn add_errors_are_typed() {
        // Before any load: not_found.
        let mut s = AnalysisSession::new(opts()).unwrap();
        let r = s.handle_line(r#"{"op":"add","text":"w = q\n"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "error").as_str(), Some("not_found"));
        // A declaration conflicting with the base: parse.
        let mut s = AnalysisSession::new(opts()).unwrap();
        assert!(
            s.handle_line(r#"{"op":"load","text":"fun f 3\np = &f\n"}"#)
                .ok
        );
        let r = s.handle_line(r#"{"op":"add","text":"fun f 2\nq = &f\n"}"#);
        assert!(!r.ok);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "error").as_str(), Some("parse"));
        // Missing both source fields: malformed_request.
        let r = s.handle_line(r#"{"op":"add"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "error").as_str(), Some("malformed_request"));
        // The session survives and still answers.
        assert!(s.handle_line(r#"{"op":"points_to","var":"p"}"#).ok);
    }

    #[test]
    fn read_request_line_strips_newlines_and_reports_eof() {
        let mut r = std::io::Cursor::new(b"{\"op\":\"stats\"}\nnext\r\nlast".to_vec());
        assert_eq!(
            read_request_line(&mut r, MAX_REQUEST_LINE)
                .unwrap()
                .unwrap(),
            "{\"op\":\"stats\"}"
        );
        assert_eq!(
            read_request_line(&mut r, MAX_REQUEST_LINE)
                .unwrap()
                .unwrap(),
            "next"
        );
        // No trailing newline (mid-request disconnect): the partial line is
        // still delivered, then EOF.
        assert_eq!(
            read_request_line(&mut r, MAX_REQUEST_LINE)
                .unwrap()
                .unwrap(),
            "last"
        );
        assert!(read_request_line(&mut r, MAX_REQUEST_LINE).is_none());
    }

    #[test]
    fn read_request_line_caps_length_and_resynchronizes() {
        let mut input = vec![b'x'; 300];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let mut r = std::io::Cursor::new(input);
        let err = read_request_line(&mut r, 64).unwrap().unwrap_err();
        assert_eq!(
            err.kind(),
            ant_common::AntErrorKind::Query(QueryErrorKind::MalformedRequest)
        );
        assert!(err.message().contains("exceeds 64 bytes"), "{err}");
        // The oversized line was drained: the stream resynchronizes.
        assert_eq!(read_request_line(&mut r, 64).unwrap().unwrap(), "ok");
    }

    #[test]
    fn read_request_line_reports_invalid_utf8_without_killing_the_stream() {
        let mut input = b"\xff\xfe{broken\n".to_vec();
        input.extend_from_slice(b"{\"op\":\"stats\"}\n");
        let mut r = std::io::Cursor::new(input);
        let err = read_request_line(&mut r, MAX_REQUEST_LINE)
            .unwrap()
            .unwrap_err();
        assert!(err.message().contains("UTF-8"), "{err}");
        assert_eq!(
            read_request_line(&mut r, MAX_REQUEST_LINE)
                .unwrap()
                .unwrap(),
            "{\"op\":\"stats\"}"
        );
    }

    #[test]
    fn transport_errors_become_malformed_envelopes_and_count() {
        let mut s = loaded_session(opts());
        let e = malformed("request line exceeds 4 bytes");
        let r = s.transport_error_reply(&e);
        assert!(!r.ok);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "error").as_str(), Some("malformed_request"));
        let m = parse_object(&s.handle_line(r#"{"op":"stats"}"#).json).unwrap();
        assert_eq!(field(&m, "errors").as_u64(), Some(1));
        assert_eq!(field(&m, "requests").as_u64(), Some(2));
    }

    /// Chained adds keep resuming: each re-keys the retained slot to the
    /// union it just solved.
    #[test]
    fn chained_adds_keep_resuming() {
        let mut o = SessionOptions::new(SolverConfig::new(Algorithm::Pkh));
        o.passes = "normalize".to_string();
        let mut s = AnalysisSession::new(o).unwrap();
        assert!(
            s.handle_line(r#"{"op":"load","text":"p = &x\nq = p\n"}"#)
                .ok
        );
        assert!(s.handle_line(r#"{"op":"stats"}"#).ok); // no solve yet
        let r = s.handle_line(r#"{"op":"add","text":"r = q\n"}"#);
        let m = parse_object(&r.json).unwrap();
        // First add: nothing solved yet, so no state to resume — the eager
        // union solve creates one.
        assert_eq!(field(&m, "resumed"), &JsonValue::Bool(false));
        let r = s.handle_line(r#"{"op":"add","text":"t = r\n"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "resumed"), &JsonValue::Bool(true));
        let r = s.handle_line(r#"{"op":"add","text":"u = t\nv = &u\n"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "resumed"), &JsonValue::Bool(true));
        let r = s.handle_line(r#"{"op":"points_to","var":"u"}"#);
        let m = parse_object(&r.json).unwrap();
        assert_eq!(field(&m, "pts").as_str_arr(), Some(vec!["x"]));
    }
}
