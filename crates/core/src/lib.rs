//! Inclusion-based pointer analysis solvers — the primary contribution of
//! *The Ant and the Grasshopper: Fast and Accurate Pointer Analysis for
//! Millions of Lines of Code* (Hardekopf & Lin, PLDI 2007).
//!
//! This crate implements the paper's two new online cycle-detection
//! techniques and every baseline it compares against, all computing the
//! *identical* Andersen points-to solution:
//!
//! * [`Algorithm::Lcd`] — **Lazy Cycle Detection**: trigger a depth-first
//!   cycle search only when an edge's endpoints already have identical
//!   points-to sets (the observable *effect* of a cycle), at most once per
//!   edge.
//! * [`Algorithm::Hcd`] — **Hybrid Cycle Detection**: a linear offline pass
//!   identifies pairs `(a, b)` such that everything in `pts(a)` must
//!   eventually share a cycle with `b`; the online solver then collapses
//!   cycles with zero graph traversal. HCD composes with every other solver
//!   ([`Algorithm::HtHcd`], [`Algorithm::PkhHcd`], [`Algorithm::BlqHcd`],
//!   [`Algorithm::LcdHcd`] — the last being the paper's headline result).
//! * Baselines: [`Algorithm::Ht`] (Heintze–Tardieu), [`Algorithm::Pkh`]
//!   (Pearce–Kelly–Hankin), [`Algorithm::Blq`] (Berndl et al., BDD-based)
//!   and the naive [`Algorithm::Basic`] of Figure 1.
//!
//! Solvers are generic over the points-to representation — selected at
//! runtime via [`PtsKind`] ([`BitmapPts`], [`SharedPts`] or [`BddPts`]),
//! reproducing the §5.4 representation study — and the worklist family can
//! run on multiple threads ([`SolverConfig::threads`]) through a
//! bulk-synchronous round engine that reproduces the sequential solution
//! and counters bit for bit.
//!
//! # Example
//!
//! ```
//! use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig};
//! use ant_constraints::parse_program;
//!
//! let program = parse_program(
//!     "p = &x\n\
//!      q = &y\n\
//!      *p = q\n\
//!      r = *p\n",
//! )?;
//! let config = SolverConfig::new(Algorithm::LcdHcd);
//! let out = solve_dyn(&program, &config, PtsKind::Bitmap);
//! let r = program.var_by_name("r").unwrap();
//! let y = program.var_by_name("y").unwrap();
//! assert!(out.solution.may_point_to(r, y));
//! # Ok::<(), ant_constraints::ParseProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
pub mod clients;
pub mod provenance;
mod pts;
pub mod session;
mod solution;
mod state;
pub mod verify;

pub use algo::{
    resume_dyn, resume_dyn_with_observer, resume_supported, solve_dyn, solve_dyn_recorded,
    solve_dyn_resumable, solve_dyn_resumable_with_observer, solve_dyn_with_observer,
    solve_prepared, solve_prepared_raw, solve_prepared_raw_recorded, solve_prepared_recorded,
    solve_prepared_recorded_with_observer, solve_prepared_with_observer, steensgaard,
    steensgaard_with_observer, threads_from_env, Algorithm, PropMode, ResumableState, SolveOutput,
    SolverConfig,
};
pub use ant_common::obs;
pub use ant_common::{AntError, AntErrorKind, QueryErrorKind, SolverStats, VarId};
pub use pts::{BddPts, BddPtsCtx, BitmapPts, PtsKind, PtsRepr, SharedPts};
pub use solution::Solution;
