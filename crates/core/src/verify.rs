//! Solution checking: soundness against the constraints, and precision
//! via pointwise comparison between solvers.

use crate::Solution;
use ant_common::VarId;
use ant_constraints::{ConstraintKind, Program};

/// A constraint the solution fails to satisfy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Index into `program.constraints()`.
    pub constraint_index: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "constraint #{}: {}", self.constraint_index, self.message)
    }
}

fn superset(a: &[u32], b: &[u32]) -> bool {
    let mut i = 0;
    b.iter().all(|v| {
        while i < a.len() && a[i] < *v {
            i += 1;
        }
        i < a.len() && a[i] == *v
    })
}

/// Checks that `solution` satisfies every constraint of `program` (i.e. it
/// is a sound fixpoint of the inclusion system). Returns all violations,
/// empty when sound.
pub fn check_soundness(program: &Program, solution: &Solution) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, c) in program.constraints().iter().enumerate() {
        let fail = |msg: String| Violation {
            constraint_index: i,
            message: msg,
        };
        match c.kind {
            ConstraintKind::AddrOf => {
                if !solution.may_point_to(c.lhs, c.rhs) {
                    out.push(fail(format!("{c}: missing {} in pts({})", c.rhs, c.lhs)));
                }
            }
            ConstraintKind::Copy => {
                if !superset(solution.points_to(c.lhs), solution.points_to(c.rhs)) {
                    out.push(fail(format!("{c}: pts({}) ⊉ pts({})", c.lhs, c.rhs)));
                }
            }
            ConstraintKind::Load => {
                for &v in solution.points_to(c.rhs) {
                    let v = VarId::from_u32(v);
                    if c.offset >= program.offset_limit(v) {
                        continue;
                    }
                    let t = v.offset(c.offset);
                    if !superset(solution.points_to(c.lhs), solution.points_to(t)) {
                        out.push(fail(format!("{c}: pts({}) ⊉ pts({t})", c.lhs)));
                    }
                }
            }
            ConstraintKind::Store => {
                for &v in solution.points_to(c.lhs) {
                    let v = VarId::from_u32(v);
                    if c.offset >= program.offset_limit(v) {
                        continue;
                    }
                    let t = v.offset(c.offset);
                    if !superset(solution.points_to(t), solution.points_to(c.rhs)) {
                        out.push(fail(format!("{c}: pts({t}) ⊉ pts({})", c.rhs)));
                    }
                }
            }
        }
    }
    out
}

/// Panicking variant of [`check_soundness`] for tests.
///
/// # Panics
///
/// Panics with the first violations if the solution is unsound.
pub fn assert_sound(program: &Program, solution: &Solution) {
    let violations = check_soundness(program, solution);
    assert!(
        violations.is_empty(),
        "unsound solution: {} violations, first: {}",
        violations.len(),
        violations[0]
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ant_constraints::ProgramBuilder;

    fn simple_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let q = pb.var("q");
        pb.addr_of(p, x); // p = &x
        pb.copy(q, p); // q = p
        pb.finish()
    }

    #[test]
    fn sound_solution_passes() {
        let program = simple_program();
        let sol = Solution::from_sets(vec![vec![1], vec![], vec![1]]);
        assert!(check_soundness(&program, &sol).is_empty());
        assert_sound(&program, &sol);
    }

    #[test]
    fn missing_base_detected() {
        let program = simple_program();
        let sol = Solution::from_sets(vec![vec![], vec![], vec![]]);
        let v = check_soundness(&program, &sol);
        assert!(!v.is_empty());
        assert!(v[0].to_string().contains("missing"));
    }

    #[test]
    fn missing_copy_detected() {
        let program = simple_program();
        let sol = Solution::from_sets(vec![vec![1], vec![], vec![]]);
        let v = check_soundness(&program, &sol);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint_index, 1);
    }

    #[test]
    fn load_store_checked_through_pts() {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let y = pb.var("y");
        let q = pb.var("q");
        let r = pb.var("r");
        pb.addr_of(p, x); // p = &x
        pb.addr_of(q, y); // q = &y
        pb.store(p, q); // *p = q  ⟹ pts(x) ⊇ pts(q)
        pb.load(r, p); // r = *p  ⟹ pts(r) ⊇ pts(x)
        let program = pb.finish();
        // Correct: pts(x) = {y}, pts(r) = {y}.
        let good = Solution::from_sets(vec![vec![1], vec![2], vec![], vec![2], vec![2]]);
        assert_sound(&program, &good);
        // Break the store: pts(x) misses y, so constraint 2 is violated
        // (the load is then vacuously satisfied since pts(x) is empty).
        let bad = Solution::from_sets(vec![vec![1], vec![], vec![], vec![2], vec![]]);
        let v = check_soundness(&program, &bad);
        assert!(v.iter().any(|x| x.constraint_index == 2));
        // Break the load: pts(x) has y but pts(r) is empty.
        let bad2 = Solution::from_sets(vec![vec![1], vec![2], vec![], vec![2], vec![]]);
        let v2 = check_soundness(&program, &bad2);
        assert!(v2.iter().any(|x| x.constraint_index == 3));
    }

    #[test]
    #[should_panic(expected = "unsound solution")]
    fn assert_sound_panics() {
        let program = simple_program();
        let sol = Solution::from_sets(vec![vec![], vec![], vec![]]);
        assert_sound(&program, &sol);
    }
}
