//! Resumable solver states: warm-start re-solving after a constraint delta.
//!
//! Andersen-style analysis is monotone — constraints only ever *grow*
//! points-to sets — so a solved fixpoint is always a sound starting point
//! for any extension of its program, and the least fixpoint is unique. That
//! pair of facts is the entire correctness story: graft the delta onto the
//! retained state ([`OnlineState::apply_delta`]), seed the worklist with
//! exactly the nodes the delta touched, and the same solve loop that
//! produced the base fixpoint drives the state to the union program's
//! fixpoint — bit-identical to a from-scratch solve of the union.
//!
//! ## What is retained
//!
//! A [`ResumableState`] keeps the whole [`OnlineState`] alive past
//! [`Solution`] extraction — constraint graph, points-to sets, union-find,
//! difference-propagation `sent` markers — plus the per-algorithm survivor
//! structures: LCD's triggered-edge set `R` (an edge that already paid for
//! a cycle search must not pay again after a resume) and PKH'03's dynamic
//! topological [`Order`] (grown, never rebuilt, across deltas).
//!
//! ## Coverage and fallback
//!
//! Resume is supported for `basic`, `lcd` (and the `lcd-dp` ablation),
//! `pkh` and `pkh03`, under both propagation modes and the bitmap/shared
//! representations — the solvers whose state is a plain
//! (graph, pts, union-find) triple. The rest fall back to a full re-solve,
//! explicitly ([`resume_supported`] returns `false` and
//! [`solve_dyn_resumable`] returns no state):
//!
//! - **HT** solves on a pre-transitive graph rebuilt per run; its cached
//!   reachability memos are invalidated wholesale by any new edge.
//! - **BLQ** keeps the whole relation in one BDD whose domain is sized to
//!   the program; so does the **BDD points-to representation** under any
//!   algorithm ([`PtsRepr::make_ctx`] fixes the variable domain at
//!   `num_locs`, so a delta that adds locations cannot reuse the context).
//! - **HCD-enhanced** configurations depend on the offline pair table,
//!   and HCD's equivalences are not delta-stable: a new constraint can
//!   create offline cycles the base table never saw.
//!
//! ## Determinism
//!
//! The resumable path always runs the *sequential* solver loops, whatever
//! `SolverConfig::threads` says. The BSP engine's counters are
//! bit-identical to the sequential schedule (pinned since the engine
//! landed), so a resume under `threads: 4` reports the same §5.3 counters
//! as under `threads: 1` — the incremental differential suite pins counter
//! equality across representations, propagation modes *and* thread
//! configurations. Counters accumulate across the state's lifetime (a
//! resume continues the base run's tallies); `solve_time` covers only the
//! most recent (re-)solve so warm-start latency is directly comparable to
//! a from-scratch solve.

// Resume guards (prefix fingerprint, algorithm gates) face session-driven
// input; mismatches must degrade to typed errors and full re-solves, never
// panic. The lints keep the audit from regressing.
#![warn(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable
)]

use super::pkh03::{self, Order};
use super::worklist_solvers::{basic_step, lcd_step, pkh_sweep};
use super::{Algorithm, PropMode, SolveOutput, SolverConfig};
use crate::pts::{BitmapPts, PtsKind, PtsRepr, SharedPts};
use crate::state::OnlineState;
use crate::Solution;
use ant_common::fx::FxHashSet;
use ant_common::obs::{Obs, Observer, Phase, PhaseTimer, SolveEvent};
use ant_common::worklist::{DividedLrf, Worklist};
use ant_common::{AntError, VarId};
use ant_constraints::Program;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Can `(config, pts)` produce a [`ResumableState`]? True for the
/// worklist-family solvers (`basic`, `lcd`, `lcd-dp`, `pkh`, `pkh03`) over
/// the bitmap and shared representations; everything else falls back to a
/// full re-solve (see the module docs for why each is excluded).
pub fn resume_supported(config: &SolverConfig, pts: PtsKind) -> bool {
    matches!(
        config.algorithm,
        Algorithm::Basic | Algorithm::Lcd | Algorithm::LcdDiff | Algorithm::Pkh | Algorithm::Pkh03
    ) && matches!(pts, PtsKind::Bitmap | PtsKind::Shared)
}

/// Fingerprint of a program prefix: the first `constraints` constraints and
/// the first `vars` offset limits. [`resume_dyn`] recomputes this over the
/// union program to verify it really extends the retained base — variable
/// ids and constraint order must survive unchanged for the grafted state to
/// mean anything.
/// `None` when the program is shorter than the requested prefix — callers
/// treat that as a fingerprint mismatch (typed error), never a panic.
fn prefix_hash(program: &Program, vars: usize, constraints: usize) -> Option<u64> {
    let prefix = program.constraints().get(..constraints)?;
    let limits = program.offset_limits().get(..vars)?;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    vars.hash(&mut h);
    prefix.hash(&mut h);
    limits.hash(&mut h);
    Some(h.finish())
}

/// A solver state plus the per-algorithm structures that must survive
/// across resumes.
struct Core<'o, P: PtsRepr> {
    st: OnlineState<'o, P>,
    /// LCD's `R`: edges that already triggered a cycle search.
    triggered: FxHashSet<(u32, u32)>,
    /// The collapse epoch `triggered` was last canonicalized at.
    triggered_epoch: u64,
    /// PKH'03's dynamic topological order, grown on resume.
    order: Option<Order>,
}

fn unbind<P: PtsRepr>(core: Core<'_, P>) -> Core<'static, P> {
    Core {
        st: core.st.rebind_obs(Obs::none()),
        triggered: core.triggered,
        triggered_epoch: core.triggered_epoch,
        order: core.order,
    }
}

enum ResumableInner {
    Bitmap(Core<'static, BitmapPts>),
    Shared(Core<'static, SharedPts>),
}

/// A solved fixpoint that outlives its solve, ready to absorb constraint
/// deltas: re-enter it with [`resume_dyn`] and a program that extends the
/// one it solved. Produced by [`solve_dyn_resumable`].
pub struct ResumableState {
    inner: ResumableInner,
    config: SolverConfig,
    pts: PtsKind,
    /// Variables of the program last solved (deltas may only append).
    base_vars: usize,
    /// Constraints of the program last solved (a strict prefix of any
    /// resumable extension).
    base_constraints: usize,
    /// [`prefix_hash`] of the program last solved.
    base_hash: u64,
}

impl ResumableState {
    /// Variables of the program this state last solved.
    pub fn num_vars(&self) -> usize {
        self.base_vars
    }

    /// Constraints of the program this state last solved.
    pub fn num_constraints(&self) -> usize {
        self.base_constraints
    }

    /// The algorithm the state was solved with (resumes re-run the same).
    pub fn algorithm(&self) -> Algorithm {
        self.config.algorithm
    }

    /// The points-to representation the state holds.
    pub fn pts_kind(&self) -> PtsKind {
        self.pts
    }

    /// Retained heap footprint: the points-to, graph and auxiliary bytes of
    /// the last finalization ([`OnlineState::finalize_bytes_retained`] runs
    /// after every solve and resume, so this is current without another
    /// walk). What a session pays to keep warm-start capability alive.
    pub fn bytes(&self) -> usize {
        let stats = match &self.inner {
            ResumableInner::Bitmap(c) => &c.st.stats,
            ResumableInner::Shared(c) => &c.st.stats,
        };
        stats.pts_bytes + stats.graph_bytes + stats.aux_bytes
    }
}

impl std::fmt::Debug for ResumableState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResumableState")
            .field("algorithm", &self.config.algorithm)
            .field("pts", &self.pts)
            .field("base_vars", &self.base_vars)
            .field("base_constraints", &self.base_constraints)
            .field("bytes", &self.bytes())
            .finish()
    }
}

/// Pushes the delta seeds (ascending, as [`OnlineState::apply_delta`]
/// returns them) or performs the initial full seeding.
fn seed<P: PtsRepr>(st: &mut OnlineState<'_, P>, wl: &mut dyn Worklist, delta: Option<&[VarId]>) {
    match delta {
        None => st.seed_worklist(wl),
        Some(seeds) => {
            for &s in seeds {
                wl.push(s);
            }
        }
    }
}

/// Runs the sequential solve loop for the resumable algorithm family,
/// replicating `worklist_solvers` / `pkh03` exactly — same pop accounting,
/// same step bodies — so base solves report the same §5.3 counters as the
/// plain entry points and resumes stay deterministic across
/// representations, propagation modes and thread configurations.
fn drive_core<P: PtsRepr>(
    core: &mut Core<'_, P>,
    config: &SolverConfig,
    delta: Option<&[VarId]>,
) -> Result<(), AntError> {
    match config.algorithm {
        Algorithm::Basic => {
            let mut wl = config.worklist.build(core.st.n);
            seed(&mut core.st, wl.as_mut(), delta);
            while let Some(popped) = wl.pop() {
                core.st.stats.nodes_processed += 1;
                core.st.note_pop(popped);
                core.st.tick_progress(|| wl.len());
                basic_step(&mut core.st, popped, false, wl.as_mut());
            }
        }
        Algorithm::Lcd | Algorithm::LcdDiff => {
            let mut wl = config.worklist.build(core.st.n);
            seed(&mut core.st, wl.as_mut(), delta);
            while let Some(popped) = wl.pop() {
                core.st.stats.nodes_processed += 1;
                core.st.note_pop(popped);
                core.st.tick_progress(|| wl.len());
                lcd_step(
                    &mut core.st,
                    popped,
                    false,
                    wl.as_mut(),
                    &mut core.triggered,
                    &mut core.triggered_epoch,
                );
            }
        }
        Algorithm::Pkh => {
            // PKH owns a concrete divided worklist to observe section
            // swaps; `u64::MAX` forces a sweep before the first pop, on
            // base solves and resumes alike.
            let mut wl = DividedLrf::new(core.st.n);
            seed(&mut core.st, &mut wl, delta);
            let mut swept_at = u64::MAX;
            while !wl.is_empty() {
                if wl.swaps() != swept_at {
                    swept_at = wl.swaps();
                    pkh_sweep(&mut core.st, &mut wl);
                }
                let Some(popped) = wl.pop() else { break };
                core.st.stats.nodes_processed += 1;
                core.st.note_pop(popped);
                core.st.tick_progress(|| wl.len());
                basic_step(&mut core.st, popped, false, &mut wl);
            }
        }
        Algorithm::Pkh03 => {
            let n = core.st.n;
            let order = core.order.get_or_insert_with(|| Order::new(n));
            order.grow(n);
            let mut wl = config.worklist.build(n);
            seed(&mut core.st, wl.as_mut(), delta);
            pkh03::drive(&mut core.st, order, wl.as_mut(), false);
        }
        // Gated out by resume_supported; reported instead of panicking so a
        // caller that skips the gate degrades to a typed error.
        alg => {
            return Err(AntError::solver(format!(
                "internal: {alg} does not support resumable solves"
            )))
        }
    }
    Ok(())
}

/// The retained-state counterpart of `algo::finish`: stamp `solve_time`,
/// account memory without tearing anything down, emit the final telemetry,
/// and extract the solution while the state lives on.
fn finish_retained<P: PtsRepr>(
    core: &mut Core<'_, P>,
    start: Instant,
    timer: &mut PhaseTimer,
) -> SolveOutput {
    let extra_aux =
        core.triggered.capacity() * (8 + 8) + core.order.as_ref().map_or(0, Order::heap_bytes);
    let st = &mut core.st;
    st.stats.solve_time = start.elapsed();
    st.finalize_bytes_retained(extra_aux);
    if st.obs.enabled() {
        let snapshot = st.progress_snapshot(0);
        st.obs.emit(&SolveEvent::Progress(snapshot));
        if let Some(cs) = P::ctx_stats(&st.ctx) {
            st.obs.emit(&SolveEvent::ReprCache(cs));
        }
    }
    timer.stop(&mut st.obs);
    let solution = Solution::from_state(st);
    SolveOutput {
        solution,
        stats: st.stats.clone(),
    }
}

fn base_solve<P: PtsRepr>(
    program: &Program,
    config: &SolverConfig,
    obs: Obs<'_>,
) -> Result<(SolveOutput, Core<'static, P>), AntError> {
    let mut obs = obs;
    obs.emit(&SolveEvent::SolverStart {
        name: config.algorithm.name(),
    });
    let mut timer = PhaseTimer::new();
    timer.start(Phase::Solve, &mut obs);
    let start = Instant::now();
    let prop = if config.algorithm == Algorithm::LcdDiff {
        PropMode::Diff
    } else {
        config.prop
    };
    let mut st = OnlineState::<P>::new(program);
    st.obs = obs;
    st.set_prop(prop);
    let triggered_epoch = st.stats.nodes_collapsed;
    let mut core = Core {
        st,
        triggered: FxHashSet::default(),
        triggered_epoch,
        order: None,
    };
    drive_core(&mut core, config, None)?;
    let out = finish_retained(&mut core, start, &mut timer);
    Ok((out, unbind(core)))
}

fn make_state(
    inner: ResumableInner,
    config: &SolverConfig,
    pts: PtsKind,
    program: &Program,
) -> ResumableState {
    ResumableState {
        inner,
        config: *config,
        pts,
        base_vars: program.num_vars(),
        base_constraints: program.constraints().len(),
        // The full-program prefix always hashes; `unwrap_or(0)` is a
        // never-taken safety net (a 0 hash would simply fail the next
        // resume's fingerprint check and fall back to a full solve).
        base_hash: prefix_hash(program, program.num_vars(), program.constraints().len())
            .unwrap_or(0),
    }
}

/// [`solve_dyn`](super::solve_dyn) returning, when the configuration
/// supports it, a [`ResumableState`] that [`resume_dyn`] can re-enter after
/// a constraint delta. Unsupported configurations (see
/// [`resume_supported`]) solve exactly as [`solve_dyn`](super::solve_dyn)
/// and return `None` — callers fall back to full re-solves, explicitly.
///
/// The supported configurations run the sequential solver loops regardless
/// of `config.threads`; solution and §5.3 counters are bit-identical to
/// the parallel schedule, so nothing observable changes.
pub fn solve_dyn_resumable(
    program: &Program,
    config: &SolverConfig,
    pts: PtsKind,
) -> (SolveOutput, Option<ResumableState>) {
    if !resume_supported(config, pts) {
        return (super::solve_dyn(program, config, pts), None);
    }
    let solved = match pts {
        PtsKind::Bitmap => base_solve::<BitmapPts>(program, config, Obs::none())
            .map(|(out, core)| (out, ResumableInner::Bitmap(core))),
        PtsKind::Shared => base_solve::<SharedPts>(program, config, Obs::none())
            .map(|(out, core)| (out, ResumableInner::Shared(core))),
        // Gated by resume_supported; degrade instead of panicking.
        PtsKind::Bdd => Err(AntError::solver("internal: BDD is not resumable")),
    };
    match solved {
        Ok((out, inner)) => (out, Some(make_state(inner, config, pts, program))),
        Err(_) => (super::solve_dyn(program, config, pts), None),
    }
}

/// [`solve_dyn_resumable`] with telemetry (see
/// [`solve_dyn_with_observer`](super::solve_dyn_with_observer)).
pub fn solve_dyn_resumable_with_observer(
    program: &Program,
    config: &SolverConfig,
    pts: PtsKind,
    observer: &mut dyn Observer,
) -> (SolveOutput, Option<ResumableState>) {
    if !resume_supported(config, pts) {
        return (
            super::solve_dyn_with_observer(program, config, pts, observer),
            None,
        );
    }
    let solved = match pts {
        PtsKind::Bitmap => {
            let obs = Obs::new(&mut *observer, config.progress_every);
            base_solve::<BitmapPts>(program, config, obs)
                .map(|(out, core)| (out, ResumableInner::Bitmap(core)))
        }
        PtsKind::Shared => {
            let obs = Obs::new(&mut *observer, config.progress_every);
            base_solve::<SharedPts>(program, config, obs)
                .map(|(out, core)| (out, ResumableInner::Shared(core)))
        }
        // Gated by resume_supported; degrade instead of panicking.
        PtsKind::Bdd => Err(AntError::solver("internal: BDD is not resumable")),
    };
    match solved {
        Ok((out, inner)) => (out, Some(make_state(inner, config, pts, program))),
        Err(_) => (
            super::solve_dyn_with_observer(program, config, pts, observer),
            None,
        ),
    }
}

fn resume_core<P: PtsRepr>(
    core: Core<'static, P>,
    union: &Program,
    config: &SolverConfig,
    base_constraints: usize,
    obs: Obs<'_>,
) -> Result<(SolveOutput, Core<'static, P>), AntError> {
    let mut obs = obs;
    obs.emit(&SolveEvent::SolverStart {
        name: config.algorithm.name(),
    });
    obs.emit(&SolveEvent::Resume {
        new_vars: (union.num_vars() - core.st.n) as u64,
        new_constraints: (union.constraints().len() - base_constraints) as u64,
    });
    let mut timer = PhaseTimer::new();
    timer.start(Phase::Solve, &mut obs);
    let start = Instant::now();
    let mut core = Core {
        st: core.st.rebind_obs(obs),
        triggered: core.triggered,
        triggered_epoch: core.triggered_epoch,
        order: core.order,
    };
    let seeds = core.st.apply_delta(union, base_constraints);
    drive_core(&mut core, config, Some(&seeds))?;
    let out = finish_retained(&mut core, start, &mut timer);
    Ok((out, unbind(core)))
}

fn resume_impl(
    state: ResumableState,
    union: &Program,
    obs: Obs<'_>,
) -> Result<(SolveOutput, ResumableState), AntError> {
    if union.num_vars() < state.base_vars || union.constraints().len() < state.base_constraints {
        return Err(AntError::solver(format!(
            "resume requires a program extending the retained base \
             ({} vars / {} constraints; got {} / {})",
            state.base_vars,
            state.base_constraints,
            union.num_vars(),
            union.constraints().len(),
        )));
    }
    if prefix_hash(union, state.base_vars, state.base_constraints) != Some(state.base_hash) {
        return Err(AntError::solver(
            "resume requires a program extending the retained base \
             (prefix fingerprint mismatch: variables or constraints of the \
             solved program were reordered or rewritten, not appended to)",
        ));
    }
    let config = state.config;
    let pts = state.pts;
    let (out, inner) = match state.inner {
        ResumableInner::Bitmap(core) => {
            let (out, core) = resume_core(core, union, &config, state.base_constraints, obs)?;
            (out, ResumableInner::Bitmap(core))
        }
        ResumableInner::Shared(core) => {
            let (out, core) = resume_core(core, union, &config, state.base_constraints, obs)?;
            (out, ResumableInner::Shared(core))
        }
    };
    Ok((out, make_state(inner, &config, pts, union)))
}

/// Re-enters a retained fixpoint on `union`, a program that extends the one
/// the state solved: same variables (ids and offset limits unchanged), the
/// solved constraint list as a prefix, new variables and constraints
/// appended — exactly what
/// [`Program::append_delta`](ant_constraints::Program::append_delta)
/// produces. Returns the union solution (bit-identical to a from-scratch
/// solve — monotonicity makes the old fixpoint a sound warm start and the
/// least fixpoint is unique) and the state re-based onto `union`, ready for
/// the next delta.
///
/// Fails with a typed [`AntError`] — consuming the state — when `union`
/// does not extend the base; callers treat that as "fall back to a full
/// re-solve". §5.3 counters accumulate across the state's lifetime;
/// `stats.solve_time` covers only this resume.
pub fn resume_dyn(
    state: ResumableState,
    union: &Program,
) -> Result<(SolveOutput, ResumableState), AntError> {
    resume_impl(state, union, Obs::none())
}

/// [`resume_dyn`] with telemetry: emits [`SolveEvent::Resume`] (after
/// `SolverStart`, before the worklist is re-seeded) so traces distinguish
/// incremental re-solves from from-scratch runs.
pub fn resume_dyn_with_observer(
    state: ResumableState,
    union: &Program,
    observer: &mut dyn Observer,
) -> Result<(SolveOutput, ResumableState), AntError> {
    let every = state.config.progress_every;
    resume_impl(state, union, Obs::new(observer, every))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::solve_dyn;
    use ant_constraints::ProgramBuilder;

    /// The base program: a store/load pivot and a static cycle.
    fn base_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let y = pb.var("y");
        let q = pb.var("q");
        let r = pb.var("r");
        pb.addr_of(p, x);
        pb.addr_of(q, y);
        pb.store(p, q);
        pb.load(r, p);
        pb.copy(x, y);
        pb.copy(y, x);
        pb.finish()
    }

    /// A delta reusing `p`/`r` and adding fresh variables, including a new
    /// load on the existing pivot and a new cycle through a fresh node.
    fn addition() -> Program {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let r = pb.var("r");
        let s = pb.var("s");
        let z = pb.var("z");
        let w = pb.var("w");
        pb.addr_of(s, z);
        pb.store(s, p);
        pb.load(w, s);
        pb.load(w, p);
        pb.copy(r, w);
        pb.copy(w, r);
        pb.finish()
    }

    fn union_program() -> (Program, Program) {
        let base = base_program();
        let delta = base.delta_from(&addition()).unwrap();
        let union = base.append_delta(&delta);
        (base, union)
    }

    const RESUMABLE: [Algorithm; 4] = [
        Algorithm::Basic,
        Algorithm::Lcd,
        Algorithm::Pkh,
        Algorithm::Pkh03,
    ];

    #[test]
    fn resume_matches_scratch_union_solve() {
        let (base, union) = union_program();
        for alg in RESUMABLE {
            for pts in [PtsKind::Bitmap, PtsKind::Shared] {
                for prop in PropMode::ALL {
                    let config = SolverConfig::new(alg).with_prop(prop);
                    let scratch = solve_dyn(&union, &config, pts);
                    let (base_out, state) = solve_dyn_resumable(&base, &config, pts);
                    let state = state.expect("configuration is resumable");
                    let base_scratch = solve_dyn(&base, &config, pts);
                    assert!(
                        base_out.solution.equiv(&base_scratch.solution),
                        "{alg}/{pts:?}/{prop}: base solve diverged"
                    );
                    let (out, state) = resume_dyn(state, &union).expect("union extends base");
                    assert!(
                        out.solution.equiv(&scratch.solution),
                        "{alg}/{pts:?}/{prop}: resumed solution differs at {:?}",
                        out.solution.first_difference(&scratch.solution)
                    );
                    assert_eq!(state.num_vars(), union.num_vars());
                    assert_eq!(state.num_constraints(), union.constraints().len());
                    assert!(state.bytes() > 0, "retained footprint must be accounted");
                }
            }
        }
    }

    /// The resume path's §5.3 counters are identical across
    /// representations and propagation modes (the thread axis is exercised
    /// by the integration suite; the sequential loops ignore it).
    #[test]
    fn resume_counters_invariant_across_configs() {
        let (base, union) = union_program();
        for alg in RESUMABLE {
            let mut reference: Option<[u64; 5]> = None;
            for pts in [PtsKind::Bitmap, PtsKind::Shared] {
                for prop in PropMode::ALL {
                    let config = SolverConfig::new(alg).with_prop(prop);
                    let (_, state) = solve_dyn_resumable(&base, &config, pts);
                    let (out, _) = resume_dyn(state.unwrap(), &union).unwrap();
                    let got = [
                        out.stats.nodes_processed,
                        out.stats.propagations,
                        out.stats.edges_added,
                        out.stats.cycle_searches,
                        out.stats.nodes_collapsed,
                    ];
                    match &reference {
                        None => reference = Some(got),
                        Some(want) => {
                            assert_eq!(&got, want, "{alg}/{pts:?}/{prop}: counters diverged")
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn chained_resumes_reach_the_final_union() {
        let base = base_program();
        let d1 = base.delta_from(&addition()).unwrap();
        let mid = base.append_delta(&d1);
        let mut pb = ProgramBuilder::new();
        let w = pb.var("w");
        let t = pb.var("t");
        pb.addr_of(t, w);
        pb.copy(w, t);
        let d2 = mid.delta_from(&pb.finish()).unwrap();
        let fin = mid.append_delta(&d2);
        for alg in RESUMABLE {
            let config = SolverConfig::new(alg);
            let (_, state) = solve_dyn_resumable(&base, &config, PtsKind::Bitmap);
            let (_, state) = resume_dyn(state.unwrap(), &mid).unwrap();
            let (out, _) = resume_dyn(state, &fin).unwrap();
            let scratch = solve_dyn(&fin, &config, PtsKind::Bitmap);
            assert!(
                out.solution.equiv(&scratch.solution),
                "{alg}: chained resume differs at {:?}",
                out.solution.first_difference(&scratch.solution)
            );
        }
    }

    #[test]
    fn empty_delta_resume_is_a_no_op() {
        let base = base_program();
        let config = SolverConfig::new(Algorithm::Lcd);
        let (base_out, state) = solve_dyn_resumable(&base, &config, PtsKind::Bitmap);
        let (out, _) = resume_dyn(state.unwrap(), &base).unwrap();
        assert!(out.solution.equiv(&base_out.solution));
        assert_eq!(out.stats.nodes_processed, base_out.stats.nodes_processed);
    }

    #[test]
    fn unsupported_configs_fall_back_explicitly() {
        let base = base_program();
        for (alg, pts) in [
            (Algorithm::Ht, PtsKind::Bitmap),
            (Algorithm::Blq, PtsKind::Bitmap),
            (Algorithm::LcdHcd, PtsKind::Bitmap),
            (Algorithm::Hcd, PtsKind::Bitmap),
            (Algorithm::Lcd, PtsKind::Bdd),
        ] {
            let config = SolverConfig::new(alg);
            assert!(!resume_supported(&config, pts), "{alg}/{pts:?}");
            let (out, state) = solve_dyn_resumable(&base, &config, pts);
            assert!(state.is_none(), "{alg}/{pts:?} must not retain state");
            let scratch = solve_dyn(&base, &config, pts);
            assert!(out.solution.equiv(&scratch.solution));
        }
    }

    #[test]
    fn non_extending_program_is_a_typed_error() {
        let (base, union) = union_program();
        let config = SolverConfig::new(Algorithm::Lcd);
        // Fewer variables than the base.
        let (_, state) = solve_dyn_resumable(&union, &config, PtsKind::Bitmap);
        assert!(resume_dyn(state.unwrap(), &base).is_err());
        // Same shape, different constraints: fingerprint mismatch.
        let mut pb = ProgramBuilder::new();
        for name in ["p", "x", "y", "q", "r"] {
            pb.var(name);
        }
        let rewritten = pb.finish();
        let (_, state) = solve_dyn_resumable(&base, &config, PtsKind::Bitmap);
        let err = resume_dyn(state.unwrap(), &rewritten).unwrap_err();
        assert!(err.message().contains("extending the retained base"));
    }

    #[test]
    fn resume_emits_the_resume_event() {
        struct Rec(Vec<SolveEvent>);
        impl Observer for Rec {
            fn on_event(&mut self, event: &SolveEvent) {
                self.0.push(event.clone());
            }
        }
        let (base, union) = union_program();
        let config = SolverConfig::new(Algorithm::Pkh03);
        let mut obs = Rec(Vec::new());
        let (_, state) =
            solve_dyn_resumable_with_observer(&base, &config, PtsKind::Bitmap, &mut obs);
        let before = obs
            .0
            .iter()
            .filter(|e| matches!(e, SolveEvent::Resume { .. }))
            .count();
        assert_eq!(before, 0, "base solves never emit Resume");
        let (_, _) = resume_dyn_with_observer(state.unwrap(), &union, &mut obs).unwrap();
        let resumes: Vec<_> = obs
            .0
            .iter()
            .filter_map(|e| match e {
                SolveEvent::Resume {
                    new_vars,
                    new_constraints,
                } => Some((*new_vars, *new_constraints)),
                _ => None,
            })
            .collect();
        assert_eq!(
            resumes,
            vec![(
                (union.num_vars() - base.num_vars()) as u64,
                (union.constraints().len() - base.constraints().len()) as u64
            )]
        );
    }
}
