//! Solver selection and the top-level [`solve_dyn`] entry point.

mod blq;
mod bsp;
mod diff_prop;
mod ht;
mod pkh03;
mod resume;
mod steensgaard;
mod worklist_solvers;

pub use resume::{
    resume_dyn, resume_dyn_with_observer, resume_supported, solve_dyn_resumable,
    solve_dyn_resumable_with_observer, ResumableState,
};
pub use steensgaard::{steensgaard, steensgaard_with_observer};

use crate::pts::{BddPts, BitmapPts, PtsKind, PtsRepr, SharedPts};
use crate::{Solution, SolverStats};
use ant_common::obs::prov::ProvRecorder;
use ant_common::obs::{Obs, Observer, Phase, PhaseTimer, ProgressSnapshot, SolveEvent};
use ant_common::worklist::WorklistKind;
use ant_constraints::hcd::HcdOffline;
use ant_constraints::pipeline::Prepared;
use ant_constraints::Program;
use std::fmt;
use std::time::Instant;

/// The nine algorithms the paper evaluates (plus the naive baseline of
/// Figure 1).
///
/// The five *main* algorithms are HT, PKH, BLQ, LCD and HCD; the other four
/// combine a main algorithm with Hybrid Cycle Detection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// Figure 1: dynamic transitive closure with no cycle detection.
    Basic,
    /// Heintze–Tardieu: pre-transitive graph with cached reachability
    /// queries.
    Ht,
    /// Pearce–Kelly–Hankin: explicit closure with periodic cycle sweeps.
    Pkh,
    /// Berndl et al.: BDD-relational solver (no cycle detection).
    Blq,
    /// Lazy Cycle Detection (this paper, Figure 2).
    Lcd,
    /// Hybrid Cycle Detection standalone (this paper, Figure 5).
    Hcd,
    /// HT enhanced with HCD.
    HtHcd,
    /// PKH enhanced with HCD.
    PkhHcd,
    /// BLQ enhanced with HCD.
    BlqHcd,
    /// LCD enhanced with HCD — the paper's fastest configuration.
    LcdHcd,
    /// Pearce et al.'s earlier (SCAM 2003) dynamic-topological-order
    /// detector — the ablation behind §2's "proves to still have too much
    /// overhead" remark. Not part of the paper's evaluated set.
    Pkh03,
    /// LCD with difference propagation (Pearce et al. 2003) — deltas
    /// instead of whole sets along each edge. Ablation; not in the paper's
    /// evaluated set.
    LcdDiff,
}

impl Algorithm {
    /// The algorithms of Table 3, in the paper's row order.
    pub const TABLE3: [Algorithm; 9] = [
        Algorithm::Ht,
        Algorithm::Pkh,
        Algorithm::Blq,
        Algorithm::Lcd,
        Algorithm::Hcd,
        Algorithm::HtHcd,
        Algorithm::PkhHcd,
        Algorithm::BlqHcd,
        Algorithm::LcdHcd,
    ];

    /// The algorithms of Table 5 (BDD points-to sets; BLQ excluded since it
    /// is already BDD-based).
    pub const TABLE5: [Algorithm; 7] = [
        Algorithm::Ht,
        Algorithm::Pkh,
        Algorithm::Lcd,
        Algorithm::Hcd,
        Algorithm::HtHcd,
        Algorithm::PkhHcd,
        Algorithm::LcdHcd,
    ];

    /// The five main algorithms.
    pub const MAIN: [Algorithm; 5] = [
        Algorithm::Ht,
        Algorithm::Pkh,
        Algorithm::Blq,
        Algorithm::Lcd,
        Algorithm::Hcd,
    ];

    /// Every algorithm, including the naive baseline and the ablations.
    pub const ALL: [Algorithm; 12] = [
        Algorithm::Basic,
        Algorithm::Ht,
        Algorithm::Pkh,
        Algorithm::Blq,
        Algorithm::Lcd,
        Algorithm::Hcd,
        Algorithm::HtHcd,
        Algorithm::PkhHcd,
        Algorithm::BlqHcd,
        Algorithm::LcdHcd,
        Algorithm::Pkh03,
        Algorithm::LcdDiff,
    ];

    /// The paper's name for this algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Basic => "Basic",
            Algorithm::Ht => "HT",
            Algorithm::Pkh => "PKH",
            Algorithm::Blq => "BLQ",
            Algorithm::Lcd => "LCD",
            Algorithm::Hcd => "HCD",
            Algorithm::HtHcd => "HT+HCD",
            Algorithm::PkhHcd => "PKH+HCD",
            Algorithm::BlqHcd => "BLQ+HCD",
            Algorithm::LcdHcd => "LCD+HCD",
            Algorithm::Pkh03 => "PKH03",
            Algorithm::LcdDiff => "LCD-DP",
        }
    }

    /// Does this configuration run the HCD offline analysis?
    pub fn uses_hcd(self) -> bool {
        matches!(
            self,
            Algorithm::Hcd
                | Algorithm::HtHcd
                | Algorithm::PkhHcd
                | Algorithm::BlqHcd
                | Algorithm::LcdHcd
        )
    }

    /// The HCD-enhanced counterpart of a main algorithm (Figure 8 pairs).
    pub fn hcd_counterpart(self) -> Option<Algorithm> {
        match self {
            Algorithm::Ht => Some(Algorithm::HtHcd),
            Algorithm::Pkh => Some(Algorithm::PkhHcd),
            Algorithm::Blq => Some(Algorithm::BlqHcd),
            Algorithm::Lcd => Some(Algorithm::LcdHcd),
            Algorithm::Basic => Some(Algorithm::Hcd),
            _ => None,
        }
    }

    /// Parses a paper-style name (case-insensitive; the `+hcd` suffix may
    /// also be spelled `-hcd`, the shell-friendly form).
    pub fn parse(s: &str) -> Option<Algorithm> {
        let mut lower = s.to_ascii_lowercase();
        if let Some(base) = lower.strip_suffix("-hcd") {
            lower = format!("{base}+hcd");
        }
        Some(match lower.as_str() {
            "basic" => Algorithm::Basic,
            "ht" => Algorithm::Ht,
            "pkh" => Algorithm::Pkh,
            "blq" => Algorithm::Blq,
            "lcd" => Algorithm::Lcd,
            "hcd" => Algorithm::Hcd,
            "ht+hcd" => Algorithm::HtHcd,
            "pkh+hcd" => Algorithm::PkhHcd,
            "blq+hcd" => Algorithm::BlqHcd,
            "lcd+hcd" => Algorithm::LcdHcd,
            "pkh03" => Algorithm::Pkh03,
            "lcd-dp" => Algorithm::LcdDiff,
            _ => return None,
        })
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How points-to sets travel along constraint edges.
///
/// Either mode produces the identical solution *and* identical §5.3
/// behavioural counters at any thread count — difference propagation only
/// changes how many bytes each propagation walks
/// (`SolverStats::propagated_bytes` records the difference).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PropMode {
    /// Push the whole `pts(src)` along every edge on every pop (the
    /// paper's solvers).
    #[default]
    Full,
    /// Difference propagation (Pearce–Kelly–Hankin, SCAM 2003): per-node
    /// `sent` markers; each pop pushes only `pts − sent` to successors
    /// that already received the rest, with a full send for successors
    /// added since the last pop and an epoch-gated reset after collapses.
    Diff,
}

impl PropMode {
    /// Both modes, full first.
    pub const ALL: [PropMode; 2] = [PropMode::Full, PropMode::Diff];

    /// The CLI name (`full` / `diff`).
    pub fn name(self) -> &'static str {
        match self {
            PropMode::Full => "full",
            PropMode::Diff => "diff",
        }
    }

    /// Parses a CLI name, case-insensitively.
    pub fn parse(s: &str) -> Option<PropMode> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Some(PropMode::Full),
            "diff" => Some(PropMode::Diff),
            _ => None,
        }
    }
}

impl fmt::Display for PropMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Solver configuration: which algorithm, which worklist strategy, and how
/// many solver threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverConfig {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Worklist strategy for the worklist-driven solvers (the paper's
    /// default is LRF over a divided worklist).
    pub worklist: WorklistKind,
    /// With an observer attached ([`solve_dyn_with_observer`]): emit a
    /// progress snapshot every this many worklist pops (rounds/passes for
    /// the solvers without a worklist). `0` disables periodic snapshots;
    /// one final snapshot is emitted regardless. Ignored by observer-less
    /// solves.
    pub progress_every: u32,
    /// Solver threads. `1` (the default) runs the classic sequential
    /// solvers; `≥ 2` routes the worklist family (Basic/HCD,
    /// LCD/LCD+HCD/LCD-DP, PKH/PKH+HCD over the divided worklist) through
    /// the BSP round engine,
    /// whose solution and §5.3 counters are bit-identical to the sequential
    /// run. The other solvers ignore this and run sequentially. Values are
    /// treated as `max(threads, 1)`; the engine's worker phase additionally
    /// never spawns more threads than the hardware offers.
    pub threads: usize,
    /// Propagation mode for the state-based solvers (default
    /// [`PropMode::Full`]). [`Algorithm::LcdDiff`] always runs diff;
    /// HT and BLQ have no per-edge propagation loop and ignore this.
    pub prop: PropMode,
}

impl SolverConfig {
    /// Snapshot cadence used when none is configured explicitly.
    pub const DEFAULT_PROGRESS_EVERY: u32 = 1024;

    /// Configuration with the paper's default worklist and the thread count
    /// from [`threads_from_env`].
    pub fn new(algorithm: Algorithm) -> Self {
        SolverConfig {
            algorithm,
            worklist: WorklistKind::DividedLrf,
            progress_every: Self::DEFAULT_PROGRESS_EVERY,
            threads: threads_from_env(),
            prop: PropMode::Full,
        }
    }

    /// Returns this configuration with the given thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns this configuration with the given propagation mode.
    pub fn with_prop(mut self, prop: PropMode) -> Self {
        self.prop = prop;
        self
    }
}

/// The default solver thread count: `ANT_THREADS` when set to a positive
/// integer (clamped to 256), else `1`. Lets test suites and CI exercise the
/// parallel engine across every existing call site without touching each
/// configuration.
pub fn threads_from_env() -> usize {
    match std::env::var("ANT_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(t) if t >= 1 => t.min(256),
            _ => 1,
        },
        Err(_) => 1,
    }
}

/// A solver run: the solution plus the §5.3 statistics.
#[derive(Clone, Debug)]
pub struct SolveOutput {
    /// The points-to solution (identical across algorithms).
    pub solution: Solution,
    /// Counters and memory/time accounting.
    pub stats: SolverStats,
}

/// Solves `program` with the configured algorithm and the points-to
/// representation selected at runtime by `pts` (bitmaps for Tables 3–4,
/// BDDs for 5–6, shared/interned sets for the copy-on-write ablation).
///
/// The HCD offline time is reported in `stats.offline_time` and — following
/// the paper — *not* included in `stats.solve_time`.
///
/// # Example
///
/// ```
/// use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig};
/// use ant_constraints::parse_program;
///
/// let program = parse_program("p = &x\nq = p\n").unwrap();
/// let out = solve_dyn(
///     &program,
///     &SolverConfig::new(Algorithm::LcdHcd),
///     PtsKind::Bitmap,
/// );
/// let q = program.var_by_name("q").unwrap();
/// let x = program.var_by_name("x").unwrap();
/// assert!(out.solution.may_point_to(q, x));
/// ```
pub fn solve_dyn(program: &Program, config: &SolverConfig, pts: PtsKind) -> SolveOutput {
    solve_dyn_impl(program, config, pts, None, None, |_| Obs::none()).0
}

/// [`solve_dyn`] with the derivation recorder attached: returns the
/// [`ProvRecorder`] whose arenas explain every points-to tuple and copy
/// edge of the run (feed it to
/// [`Explainer`](crate::provenance::Explainer)). Recording costs extra
/// memory and time; the solution and the §5.3 counters are bit-identical
/// to the unrecorded run.
pub fn solve_dyn_recorded(
    program: &Program,
    config: &SolverConfig,
    pts: PtsKind,
) -> (SolveOutput, ProvRecorder) {
    let (out, prov) = solve_dyn_impl(
        program,
        config,
        pts,
        None,
        Some(Box::new(ProvRecorder::new())),
        |_| Obs::none(),
    );
    (out, *prov.expect("recorded solve returns its recorder"))
}

/// [`solve_dyn`] with telemetry: every event of the run — solver start,
/// phase spans (offline HCD, online solve), periodic progress snapshots,
/// BSP round summaries, cycle collapses and constraint-graph growth — is
/// delivered to `observer`. The snapshot cadence comes from
/// [`SolverConfig::progress_every`].
///
/// Observed runs additionally fill the per-phase durations of
/// [`SolverStats`] (`complex_time`, `propagate_time`, `cycle_time`), which
/// plain [`solve_dyn`] leaves zero to keep the un-instrumented hot path
/// free of clock reads.
pub fn solve_dyn_with_observer(
    program: &Program,
    config: &SolverConfig,
    pts: PtsKind,
    observer: &mut dyn Observer,
) -> SolveOutput {
    solve_dyn_impl(program, config, pts, None, None, |every| {
        Obs::new(observer, every)
    })
    .0
}

/// Solves a pipeline-preprocessed program ([`PassPipeline::run`]) and
/// expands the solution back to the original variables through the
/// pipeline's composed [`SolutionMapping`] — the one place expansion
/// happens.
///
/// When the pipeline attached HCD offline metadata (an
/// [`HcdPass`](ant_constraints::pipeline::HcdPass) ran) and the configured
/// algorithm uses HCD, the solver consumes that pair table instead of
/// recomputing it; `stats.offline_time` then reports the pipeline pass's
/// elapsed time. Solvers that don't use HCD ignore the metadata, keeping
/// each algorithm's identity intact.
///
/// `stats.solve_time` covers the online solve only — expansion and
/// preprocessing are excluded, matching the paper's timing discipline.
///
/// [`PassPipeline::run`]: ant_constraints::pipeline::PassPipeline::run
/// [`SolutionMapping`]: ant_constraints::pipeline::SolutionMapping
pub fn solve_prepared(prepared: &Prepared, config: &SolverConfig, pts: PtsKind) -> SolveOutput {
    let (out, _) = solve_dyn_impl(
        &prepared.program,
        config,
        pts,
        prepared.hcd.as_ref(),
        None,
        |_| Obs::none(),
    );
    expand_prepared(out, prepared)
}

/// [`solve_prepared`] with the derivation recorder attached (see
/// [`solve_dyn_recorded`]). The recorder speaks the *preprocessed*
/// variable id space; compose it with the pipeline's
/// [`SolutionMapping`](ant_constraints::pipeline::SolutionMapping) via
/// [`Explainer::with_mapping`](crate::provenance::Explainer::with_mapping)
/// to explain facts in original variable names.
pub fn solve_prepared_recorded(
    prepared: &Prepared,
    config: &SolverConfig,
    pts: PtsKind,
) -> (SolveOutput, ProvRecorder) {
    let (out, prov) = solve_dyn_impl(
        &prepared.program,
        config,
        pts,
        prepared.hcd.as_ref(),
        Some(Box::new(ProvRecorder::new())),
        |_| Obs::none(),
    );
    (
        expand_prepared(out, prepared),
        *prov.expect("recorded solve returns its recorder"),
    )
}

/// [`solve_prepared_recorded`] with telemetry: the run's events — including
/// the final [`SolveEvent::Metrics`] flush of the recorder's cost
/// attribution — go to `observer`.
pub fn solve_prepared_recorded_with_observer(
    prepared: &Prepared,
    config: &SolverConfig,
    pts: PtsKind,
    observer: &mut dyn Observer,
) -> (SolveOutput, ProvRecorder) {
    let (out, prov) = solve_dyn_impl(
        &prepared.program,
        config,
        pts,
        prepared.hcd.as_ref(),
        Some(Box::new(ProvRecorder::new())),
        |every| Obs::new(observer, every),
    );
    (
        expand_prepared(out, prepared),
        *prov.expect("recorded solve returns its recorder"),
    )
}

/// [`solve_prepared`] with telemetry (see [`solve_dyn_with_observer`]).
pub fn solve_prepared_with_observer(
    prepared: &Prepared,
    config: &SolverConfig,
    pts: PtsKind,
    observer: &mut dyn Observer,
) -> SolveOutput {
    let (out, _) = solve_dyn_impl(
        &prepared.program,
        config,
        pts,
        prepared.hcd.as_ref(),
        None,
        |every| Obs::new(observer, every),
    );
    expand_prepared(out, prepared)
}

/// [`solve_prepared`] *without* the final expansion: the solution stays in
/// the preprocessed program's variable space, one set per representative.
/// Long-lived holders (the query service) answer name queries through
/// [`SolutionMapping::resolve`] instead of materializing the expanded
/// per-original-variable table — same answers, a fraction of the memory.
///
/// [`SolutionMapping::resolve`]: ant_constraints::pipeline::SolutionMapping::resolve
pub fn solve_prepared_raw(prepared: &Prepared, config: &SolverConfig, pts: PtsKind) -> SolveOutput {
    solve_dyn_impl(
        &prepared.program,
        config,
        pts,
        prepared.hcd.as_ref(),
        None,
        |_| Obs::none(),
    )
    .0
}

/// [`solve_prepared_raw`] with the derivation recorder attached (see
/// [`solve_prepared_recorded`]). Both the solution and the recorder speak
/// the preprocessed variable id space.
pub fn solve_prepared_raw_recorded(
    prepared: &Prepared,
    config: &SolverConfig,
    pts: PtsKind,
) -> (SolveOutput, ProvRecorder) {
    let (out, prov) = solve_dyn_impl(
        &prepared.program,
        config,
        pts,
        prepared.hcd.as_ref(),
        Some(Box::new(ProvRecorder::new())),
        |_| Obs::none(),
    );
    (out, *prov.expect("recorded solve returns its recorder"))
}

fn expand_prepared(mut out: SolveOutput, prepared: &Prepared) -> SolveOutput {
    if !prepared.mapping.is_identity() {
        out.solution = out.solution.expand(&prepared.mapping);
    }
    out
}

fn solve_dyn_impl<'o>(
    program: &Program,
    config: &SolverConfig,
    pts: PtsKind,
    hcd_override: Option<&HcdOffline>,
    prov: Option<Box<ProvRecorder>>,
    make_obs: impl FnOnce(u32) -> Obs<'o>,
) -> (SolveOutput, Option<Box<ProvRecorder>>) {
    let obs = make_obs(config.progress_every);
    match pts {
        PtsKind::Bitmap => solve_impl::<BitmapPts>(program, config, obs, hcd_override, prov),
        PtsKind::Shared => solve_impl::<SharedPts>(program, config, obs, hcd_override, prov),
        PtsKind::Bdd => solve_impl::<BddPts>(program, config, obs, hcd_override, prov),
    }
}

fn solve_impl<P: PtsRepr>(
    program: &Program,
    config: &SolverConfig,
    mut obs: Obs<'_>,
    hcd_override: Option<&HcdOffline>,
    prov: Option<Box<ProvRecorder>>,
) -> (SolveOutput, Option<Box<ProvRecorder>>) {
    obs.emit(&SolveEvent::SolverStart {
        name: config.algorithm.name(),
    });
    let mut timer = PhaseTimer::new();
    // HCD-enhanced configurations need the offline pair table: use the
    // pipeline-attached one when present, otherwise compute it here. Other
    // algorithms ignore any attached metadata so their identity (counters,
    // collapse behaviour) is unchanged by how the program was prepared.
    let computed = (config.algorithm.uses_hcd() && hcd_override.is_none()).then(|| {
        timer.start(Phase::OfflineHcd, &mut obs);
        let h = HcdOffline::analyze_with_obs(program, &mut obs);
        timer.stop(&mut obs);
        h
    });
    let hcd = config
        .algorithm
        .uses_hcd()
        .then(|| hcd_override.or(computed.as_ref()))
        .flatten();
    let hcd_ref = hcd;
    let wk = config.worklist;
    // The LCD-DP ablation *is* LCD under difference propagation.
    let prop = if config.algorithm == Algorithm::LcdDiff {
        PropMode::Diff
    } else {
        config.prop
    };
    // The BSP round engine replays the divided-LRF schedule exactly, so it
    // only substitutes for solvers running that worklist (PKH ignores the
    // worklist kind entirely and always qualifies).
    let par = config.threads >= 2;
    let par_lrf = par && wk == WorklistKind::DividedLrf;
    timer.start(Phase::Solve, &mut obs);
    let start = Instant::now();
    // The worklist solvers take the observer by value (it lives in their
    // state); `finish` closes the Solve span through the returned state.
    let (solution, mut stats, prov_out) = match config.algorithm {
        Algorithm::Basic | Algorithm::Hcd if par_lrf => finish(
            bsp::run::<P>(
                program,
                bsp::Family::Basic,
                hcd_ref,
                obs,
                config.threads,
                prov,
                prop,
            ),
            start,
            &mut timer,
        ),
        Algorithm::Lcd | Algorithm::LcdHcd | Algorithm::LcdDiff if par_lrf => finish(
            bsp::run::<P>(
                program,
                bsp::Family::Lcd,
                hcd_ref,
                obs,
                config.threads,
                prov,
                prop,
            ),
            start,
            &mut timer,
        ),
        Algorithm::Pkh | Algorithm::PkhHcd if par => finish(
            bsp::run::<P>(
                program,
                bsp::Family::Pkh,
                hcd_ref,
                obs,
                config.threads,
                prov,
                prop,
            ),
            start,
            &mut timer,
        ),
        Algorithm::Basic | Algorithm::Hcd => finish(
            worklist_solvers::basic::<P>(program, wk, hcd_ref, obs, prov, prop),
            start,
            &mut timer,
        ),
        Algorithm::Lcd | Algorithm::LcdHcd => finish(
            worklist_solvers::lcd::<P>(program, wk, hcd_ref, obs, prov, prop),
            start,
            &mut timer,
        ),
        Algorithm::Pkh | Algorithm::PkhHcd => finish(
            worklist_solvers::pkh::<P>(program, wk, hcd_ref, obs, prov, prop),
            start,
            &mut timer,
        ),
        Algorithm::Ht | Algorithm::HtHcd => {
            finish(ht::ht::<P>(program, hcd_ref, obs, prov), start, &mut timer)
        }
        Algorithm::Pkh03 => finish(
            pkh03::pkh03::<P>(program, wk, hcd_ref, obs, prov, prop),
            start,
            &mut timer,
        ),
        Algorithm::LcdDiff => finish(
            diff_prop::lcd_diff::<P>(program, wk, hcd_ref, obs, prov),
            start,
            &mut timer,
        ),
        Algorithm::Blq | Algorithm::BlqHcd => {
            let (solution, mut stats, mut prov_out) = blq::blq(program, hcd_ref, &mut obs, prov);
            stats.solve_time = start.elapsed();
            if let Some(p) = prov_out.as_mut() {
                // The fattest-set table and repr byte counters (mirrors
                // `finish` for the state-based solvers).
                for (v, len) in solution.set_sizes() {
                    if len > 0 {
                        p.metrics.series_set("pts_len", v.as_u32(), len as u64);
                    }
                }
                p.metrics.set("pts_bytes", stats.pts_bytes as u64);
            }
            if obs.enabled() {
                obs.emit(&SolveEvent::Progress(ProgressSnapshot {
                    worklist_len: 0,
                    nodes_processed: stats.nodes_processed,
                    propagations: stats.propagations,
                    pts_bytes: stats.pts_bytes,
                }));
                if let Some(p) = prov_out.as_ref() {
                    obs.emit(&SolveEvent::Metrics(p.metrics.snapshot(HOTSPOT_K)));
                }
            }
            timer.stop(&mut obs);
            (solution, stats, prov_out)
        }
    };
    if let Some(h) = hcd {
        stats.offline_time = h.elapsed;
    }
    (SolveOutput { solution, stats }, prov_out)
}

/// Entries per hotspot table in the final metrics snapshot.
const HOTSPOT_K: usize = 10;

fn finish<P: PtsRepr>(
    mut st: crate::state::OnlineState<'_, P>,
    start: Instant,
    timer: &mut PhaseTimer,
) -> (Solution, SolverStats, Option<Box<ProvRecorder>>) {
    st.stats.solve_time = start.elapsed();
    st.finalize_bytes();
    if st.prov.is_some() {
        // Final cost attribution: set sizes per representative (`len`, not
        // bytes — shared and BDD sets own no per-set heap), plus the
        // memo/byte counters finalize_bytes just filled in.
        let sizes: Vec<(u32, u64)> = st
            .reps()
            .iter()
            .map(|&r| (r.as_u32(), st.pts[r.index()].len(&st.ctx) as u64))
            .filter(|&(_, l)| l > 0)
            .collect();
        let stats = &st.stats;
        if let Some(p) = st.prov.as_mut() {
            for (id, len) in sizes {
                p.metrics.series_set("pts_len", id, len);
            }
            p.metrics.set("memo_hits", stats.memo_hits);
            p.metrics.set("memo_misses", stats.memo_misses);
            p.metrics.set("pts_bytes", stats.pts_bytes as u64);
            p.metrics.set("propagated_bytes", stats.propagated_bytes);
            p.metrics
                .set("propagated_full_bytes", stats.propagated_full_bytes);
        }
    }
    if st.obs.enabled() {
        // Final snapshot: even a solve too small to hit the cadence leaves
        // one progress record in the trace.
        let snapshot = st.progress_snapshot(0);
        st.obs.emit(&SolveEvent::Progress(snapshot));
        if let Some(cs) = P::ctx_stats(&st.ctx) {
            st.obs.emit(&SolveEvent::ReprCache(cs));
        }
        let metrics = st
            .prov
            .as_ref()
            .map(|p| SolveEvent::Metrics(p.metrics.snapshot(HOTSPOT_K)));
        if let Some(ev) = metrics {
            st.obs.emit(&ev);
        }
    }
    timer.stop(&mut st.obs);
    let solution = Solution::from_state(&mut st);
    let prov = st.take_prov();
    (solution, st.stats, prov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_sound;
    use ant_constraints::ProgramBuilder;

    fn medley() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.function("f", 3);
        let p = pb.var("p");
        let q = pb.var("q");
        let x = pb.var("x");
        let y = pb.var("y");
        let r = pb.var("r");
        let fp = pb.var("fp");
        pb.addr_of(p, x);
        pb.addr_of(q, y);
        pb.store(p, q);
        pb.load(r, p);
        pb.copy(x, y);
        pb.copy(y, x);
        pb.copy(f.offset(1), f.offset(2));
        pb.addr_of(fp, f);
        pb.store_offset(fp, q, 2);
        pb.load_offset(r, fp, 1);
        pb.finish()
    }

    #[test]
    fn every_algorithm_same_solution_bitmap() {
        let program = medley();
        let reference = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::Basic),
            PtsKind::Bitmap,
        );
        assert_sound(&program, &reference.solution);
        for alg in Algorithm::ALL {
            let out = solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bitmap);
            assert!(
                out.solution.equiv(&reference.solution),
                "{alg} differs at {:?}",
                out.solution.first_difference(&reference.solution)
            );
        }
    }

    #[test]
    fn every_algorithm_same_solution_bdd() {
        let program = medley();
        let reference = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::Basic),
            PtsKind::Bitmap,
        );
        for alg in Algorithm::TABLE5 {
            let out = solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bdd);
            assert!(
                out.solution.equiv(&reference.solution),
                "{alg} (bdd pts) differs at {:?}",
                out.solution.first_difference(&reference.solution)
            );
        }
    }

    #[test]
    fn hcd_runs_record_offline_time() {
        let program = medley();
        let out = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::LcdHcd),
            PtsKind::Bitmap,
        );
        // Offline time may be tiny but the analysis ran; nodes collapsed or
        // pairs existed. Just confirm the field is populated when HCD ran.
        assert!(out.stats.offline_time >= std::time::Duration::ZERO);
        let plain = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::Lcd),
            PtsKind::Bitmap,
        );
        assert_eq!(plain.stats.offline_time, std::time::Duration::ZERO);
    }

    #[test]
    fn parallel_config_routes_through_bsp_and_matches() {
        let program = medley();
        for alg in [Algorithm::Lcd, Algorithm::LcdHcd, Algorithm::Pkh] {
            let seq = solve_dyn(
                &program,
                &SolverConfig::new(alg).with_threads(1),
                PtsKind::Bitmap,
            );
            let par = solve_dyn(
                &program,
                &SolverConfig::new(alg).with_threads(4),
                PtsKind::Bitmap,
            );
            assert!(par.solution.equiv(&seq.solution), "{alg} diverged");
            assert_eq!(par.stats.nodes_processed, seq.stats.nodes_processed);
            assert_eq!(par.stats.propagations, seq.stats.propagations);
            assert_eq!(par.stats.cycles_found, seq.stats.cycles_found);
        }
    }

    #[test]
    fn solve_prepared_expands_to_the_original_solution() {
        use ant_constraints::pipeline::PassPipeline;
        let program = medley();
        let reference = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::Basic),
            PtsKind::Bitmap,
        );
        let prepared = PassPipeline::full().run(&program);
        assert!(prepared.hcd.is_some());
        for alg in [Algorithm::Lcd, Algorithm::LcdHcd, Algorithm::Ht] {
            let out = solve_prepared(&prepared, &SolverConfig::new(alg), PtsKind::Bitmap);
            assert!(
                out.solution.equiv(&reference.solution),
                "{alg} (prepared) differs at {:?}",
                out.solution.first_difference(&reference.solution)
            );
            if alg.uses_hcd() {
                // The solver consumed the pipeline's pair table instead of
                // recomputing it.
                assert_eq!(
                    out.stats.offline_time,
                    prepared.hcd.as_ref().unwrap().elapsed
                );
            } else {
                assert_eq!(out.stats.offline_time, std::time::Duration::ZERO);
            }
        }
    }

    #[test]
    fn prop_mode_names_parse_and_default() {
        for prop in PropMode::ALL {
            assert_eq!(PropMode::parse(prop.name()), Some(prop));
        }
        assert_eq!(PropMode::parse("DIFF"), Some(PropMode::Diff));
        assert_eq!(PropMode::parse("nope"), None);
        assert_eq!(PropMode::default(), PropMode::Full);
        assert_eq!(SolverConfig::new(Algorithm::Lcd).prop, PropMode::Full);
    }

    /// Difference propagation is observationally identical to full
    /// propagation — same solution, same §5.3 counters, sequentially and
    /// on the BSP engine — while never pushing *more* bytes.
    #[test]
    fn diff_prop_matches_full_solution_and_counters() {
        let program = medley();
        for alg in [
            Algorithm::Basic,
            Algorithm::Lcd,
            Algorithm::LcdHcd,
            Algorithm::Pkh,
            Algorithm::Pkh03,
        ] {
            for threads in [1, 4] {
                let base = SolverConfig::new(alg).with_threads(threads);
                let full = solve_dyn(&program, &base, PtsKind::Bitmap);
                let diff = solve_dyn(&program, &base.with_prop(PropMode::Diff), PtsKind::Bitmap);
                assert!(
                    diff.solution.equiv(&full.solution),
                    "{alg} t{threads}: diff solution diverged at {:?}",
                    diff.solution.first_difference(&full.solution)
                );
                for (name, d, f) in [
                    (
                        "nodes_processed",
                        diff.stats.nodes_processed,
                        full.stats.nodes_processed,
                    ),
                    (
                        "propagations",
                        diff.stats.propagations,
                        full.stats.propagations,
                    ),
                    (
                        "propagations_changed",
                        diff.stats.propagations_changed,
                        full.stats.propagations_changed,
                    ),
                    (
                        "cycle_searches",
                        diff.stats.cycle_searches,
                        full.stats.cycle_searches,
                    ),
                    (
                        "cycles_found",
                        diff.stats.cycles_found,
                        full.stats.cycles_found,
                    ),
                    (
                        "nodes_collapsed",
                        diff.stats.nodes_collapsed,
                        full.stats.nodes_collapsed,
                    ),
                ] {
                    assert_eq!(d, f, "{alg} t{threads}: {name} diverged");
                }
                // Full mode sends whole sets; diff sends at most that.
                assert_eq!(
                    full.stats.propagated_bytes,
                    full.stats.propagated_full_bytes
                );
                assert!(diff.stats.propagated_bytes <= diff.stats.propagated_full_bytes);
                assert_eq!(
                    diff.stats.propagated_full_bytes, full.stats.propagated_full_bytes,
                    "{alg} t{threads}: the full-set baseline must match across modes"
                );
            }
        }
    }

    /// The LCD-DP ablation is LCD under `PropMode::Diff`: identical output
    /// and counters, including through the BSP engine (which previously
    /// did not serve LCD-DP at all).
    #[test]
    fn lcd_diff_is_lcd_with_diff_prop() {
        let program = medley();
        for threads in [1, 4] {
            let dp = solve_dyn(
                &program,
                &SolverConfig::new(Algorithm::LcdDiff).with_threads(threads),
                PtsKind::Bitmap,
            );
            let lcd = solve_dyn(
                &program,
                &SolverConfig::new(Algorithm::Lcd)
                    .with_threads(threads)
                    .with_prop(PropMode::Diff),
                PtsKind::Bitmap,
            );
            assert!(dp.solution.equiv(&lcd.solution));
            assert_eq!(dp.stats.propagations, lcd.stats.propagations);
            assert_eq!(dp.stats.propagated_bytes, lcd.stats.propagated_bytes);
            assert_eq!(dp.stats.cycle_searches, lcd.stats.cycle_searches);
        }
    }

    #[test]
    fn names_and_parse_roundtrip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::parse(alg.name()), Some(alg));
            assert_eq!(Algorithm::parse(&alg.name().to_lowercase()), Some(alg));
        }
        assert_eq!(Algorithm::parse("nope"), None);
    }

    #[test]
    fn counterparts() {
        assert_eq!(Algorithm::Ht.hcd_counterpart(), Some(Algorithm::HtHcd));
        assert_eq!(Algorithm::Lcd.hcd_counterpart(), Some(Algorithm::LcdHcd));
        assert_eq!(Algorithm::HtHcd.hcd_counterpart(), None);
        assert!(Algorithm::LcdHcd.uses_hcd());
        assert!(!Algorithm::Lcd.uses_hcd());
    }
}
