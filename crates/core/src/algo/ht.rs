//! The Heintze–Tardieu solver (field-insensitive, §2 of the paper).
//!
//! HT keeps the constraint graph in *pre-transitive* form: copy edges are
//! never closed transitively. Instead, whenever a complex constraint needs
//! `pts(x)`, a cached **reachability query** walks the predecessor edges and
//! pulls points-to information down to `x`, collapsing any cycles it runs
//! into as a side effect. Queries are cached per *round*: a node computed in
//! the current round is final for that round, which is where HT's documented
//! redundancy comes from — an edge added later in the round is only seen by
//! the next round's queries.

use crate::pts::PtsRepr;
use crate::state::OnlineState;
use ant_common::obs::prov::{ProvRecorder, Reason};
use ant_common::obs::{Obs, SolveEvent};
use ant_common::worklist::{Fifo, Worklist};
use ant_common::VarId;
use ant_constraints::hcd::HcdOffline;
use ant_constraints::{ConstraintKind, Program};

/// Reusable buffers for the query DFS.
struct QueryBufs {
    epoch: Vec<u32>,
    index: Vec<u32>,
    low: Vec<u32>,
    on_stack: Vec<bool>,
    cur_epoch: u32,
    /// Round in which each node's points-to set was last finalized.
    round_mark: Vec<u32>,
}

impl QueryBufs {
    fn new(n: usize) -> Self {
        QueryBufs {
            epoch: vec![0; n],
            index: vec![0; n],
            low: vec![0; n],
            on_stack: vec![false; n],
            cur_epoch: 0,
            round_mark: vec![0; n],
        }
    }
}

/// Runs HT (optionally with HCD pairs) and returns the final state.
///
/// Note: in the returned state, `succs` holds **predecessor** edges — HT
/// pulls information backwards along copy edges rather than pushing it
/// forwards.
pub(crate) fn ht<'o, P: PtsRepr>(
    program: &Program,
    hcd: Option<&HcdOffline>,
    obs: Obs<'o>,
    prov: Option<Box<ProvRecorder>>,
) -> OnlineState<'o, P> {
    let mut st = OnlineState::<P>::new(program);
    st.obs = obs;
    if let Some(p) = prov {
        st.install_prov(program, p);
    }
    // Reverse the edge direction: succs[x] becomes the predecessor set of x.
    let mut preds = vec![ant_common::SparseBitmap::new(); st.n];
    for (i, s) in st.succs.iter().enumerate() {
        for j in s.iter() {
            preds[j as usize].insert(i as u32);
        }
    }
    st.succs = preds;
    if let Some(h) = hcd {
        st.install_hcd(h);
    }

    // The global complex-constraint lists HT iterates each round.
    let mut loads = Vec::new(); // (lhs, ptr, offset)
    let mut stores = Vec::new(); // (ptr, rhs, offset)
    for c in program.constraints() {
        match c.kind {
            ConstraintKind::Load => loads.push((c.lhs, c.rhs, c.offset)),
            ConstraintKind::Store => stores.push((c.lhs, c.rhs, c.offset)),
            _ => {}
        }
    }

    let mut bufs = QueryBufs::new(st.n);
    // HT has no worklist, so edges implied by collapse reconciliation are
    // re-derived by the next round's queries; the sink only absorbs them.
    let mut sink = Fifo::new(st.n);
    let mut round = 0u32;
    loop {
        round += 1;
        let edges_before = st.stats.edges_added;
        let collapsed_before = st.stats.nodes_collapsed;
        for &(a, b, k) in &loads {
            // HT has no worklist; the cadence counts constraint resolutions
            // and reports the per-round pending count in its place.
            st.tick_progress(|| loads.len() + stores.len());
            let b_r = resolve(&mut st, b, round, &mut bufs, hcd.is_some(), &mut sink);
            let locs = st.pts[b_r.index()].to_vec(&st.ctx);
            let a_r = st.find(a);
            for v in locs {
                if k >= st.offset_limit[v as usize] {
                    continue;
                }
                let t = st.find(VarId::from_u32(v + k));
                if t != a_r {
                    // Pre-transitive edge t → a, stored reversed.
                    if st.insert_edge(a_r, t) {
                        // Recorded in constraint direction regardless of
                        // the reversed storage.
                        st.note_edge(
                            t,
                            a_r,
                            Reason::LoadEdge {
                                pivot: b_r.as_u32(),
                                loc: v,
                            },
                        );
                    }
                }
            }
        }
        for &(aptr, b, k) in &stores {
            st.tick_progress(|| loads.len() + stores.len());
            let a_r = resolve(&mut st, aptr, round, &mut bufs, hcd.is_some(), &mut sink);
            let locs = st.pts[a_r.index()].to_vec(&st.ctx);
            let b_r = st.find(b);
            for v in locs {
                if k >= st.offset_limit[v as usize] {
                    continue;
                }
                let t = st.find(VarId::from_u32(v + k));
                if t != b_r {
                    // Edge b → t, stored reversed.
                    if st.insert_edge(t, b_r) {
                        st.note_edge(
                            b_r,
                            t,
                            Reason::StoreEdge {
                                pivot: a_r.as_u32(),
                                loc: v,
                            },
                        );
                    }
                }
            }
        }
        // A round is quiescent only if it neither added an edge *nor*
        // collapsed a node. HCD collapses can merge points-to facts into a
        // node already finalized for this round without inserting any edge
        // (`collapse_with` unions the sets in place), so stopping on the
        // edge count alone would skip the re-query round that propagates
        // them — dropping facts. Collapses are bounded by the node count,
        // so this still terminates, and in a round with no new edges the
        // queries find no new cycles, leaving HCD as the only collapser;
        // once `hcd_done` catches up with the stable sets it goes quiet.
        if st.stats.edges_added == edges_before && st.stats.nodes_collapsed == collapsed_before {
            break;
        }
    }

    // Final pass: materialize pts for every node (many variables are never
    // upstream of a complex constraint and have not been queried yet).
    round += 1;
    for i in 0..st.n {
        let v = VarId::new(i);
        if st.uf.is_rep(v) {
            query(&mut st, v, round, &mut bufs);
        }
    }
    st
}

/// Queries `b`'s points-to set and applies the HCD pairs if enabled.
fn resolve<P: PtsRepr>(
    st: &mut OnlineState<P>,
    b: VarId,
    round: u32,
    bufs: &mut QueryBufs,
    use_hcd: bool,
    sink: &mut dyn Worklist,
) -> VarId {
    let b_r = st.find(b);
    query(st, b_r, round, bufs);
    let mut b_r = st.find(b_r);
    if use_hcd {
        b_r = st.hcd_step(b_r, sink);
    }
    b_r
}

/// The cached reachability query: ensures `pts(root)` reflects all points-to
/// information reachable over the current pre-transitive graph, collapsing
/// cycles found along the way (Tarjan on predecessor edges with
/// round-finalized nodes acting as leaves).
fn query<P: PtsRepr>(st: &mut OnlineState<P>, root: VarId, round: u32, bufs: &mut QueryBufs) {
    let root = st.find(root);
    if bufs.round_mark[root.index()] == round {
        return;
    }
    bufs.cur_epoch += 1;
    let epoch = bufs.cur_epoch;
    let mut next_index = 1u32;
    let mut comp_stack: Vec<u32> = Vec::new();
    let mut dfs: Vec<(u32, Vec<u32>, usize)> = Vec::new();

    let start_visit = |st: &mut OnlineState<P>, bufs: &mut QueryBufs, v: u32, ni: &mut u32| {
        bufs.epoch[v as usize] = epoch;
        bufs.index[v as usize] = *ni;
        bufs.low[v as usize] = *ni;
        *ni += 1;
        st.stats.nodes_searched += 1;
    };

    // Predecessor snapshots are canonicalized in place: stale ids left by
    // collapsing would otherwise be re-resolved on every query.
    let children =
        |st: &mut OnlineState<P>, v: u32| -> Vec<u32> { st.canonical_succs(VarId::from_u32(v)) };

    start_visit(st, bufs, root.as_u32(), &mut next_index);
    comp_stack.push(root.as_u32());
    bufs.on_stack[root.index()] = true;
    let kids = children(st, root.as_u32());
    dfs.push((root.as_u32(), kids, 0));

    while let Some(frame) = dfs.last_mut() {
        let v = frame.0;
        if let Some(&w_raw) = frame.1.get(frame.2) {
            frame.2 += 1;
            // Collapses earlier in this query may have merged the child
            // away; resolve to its current representative.
            let w = st.find(VarId::from_u32(w_raw)).as_u32();
            if w == v || bufs.round_mark[w as usize] == round {
                continue; // self edge, or already final this round: a leaf
            }
            if bufs.epoch[w as usize] != epoch {
                start_visit(st, bufs, w, &mut next_index);
                comp_stack.push(w);
                bufs.on_stack[w as usize] = true;
                let kids = children(st, w);
                dfs.push((w, kids, 0));
            } else if bufs.on_stack[w as usize] {
                bufs.low[v as usize] = bufs.low[v as usize].min(bufs.index[w as usize]);
            }
        } else {
            dfs.pop();
            if let Some(parent) = dfs.last() {
                let p = parent.0 as usize;
                bufs.low[p] = bufs.low[p].min(bufs.low[v as usize]);
            }
            if bufs.low[v as usize] == bufs.index[v as usize] {
                // Pop the SCC; collapse if non-trivial (HT's cycle detection
                // as a side effect of the query).
                let mut comp = Vec::new();
                loop {
                    let w = comp_stack.pop().expect("scc stack underflow");
                    bufs.on_stack[w as usize] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                let mut rep = VarId::from_u32(comp[0]);
                if comp.len() > 1 {
                    for &m in &comp[1..] {
                        rep = st.collapse(VarId::from_u32(m), rep);
                    }
                    st.stats.cycles_found += 1;
                    st.obs.emit(&SolveEvent::CycleCollapsed {
                        members: (comp.len() - 1) as u64,
                    });
                }
                // Pull points-to info from the (now final) predecessors.
                let mut preds = st.take_succ_scratch();
                st.canonical_succs_into(rep, &mut preds);
                for &p in &preds {
                    st.propagate(VarId::from_u32(p), rep);
                }
                st.put_succ_scratch(preds);
                bufs.round_mark[rep.index()] = round;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pts::BitmapPts;
    use crate::verify::assert_sound;
    use crate::Solution;
    use ant_constraints::ProgramBuilder;

    fn solve(program: &Program, use_hcd: bool) -> (Solution, OnlineState<'static, BitmapPts>) {
        let hcd = use_hcd.then(|| HcdOffline::analyze(program));
        let mut st = ht::<BitmapPts>(program, hcd.as_ref(), Obs::none(), None);
        (Solution::from_state(&mut st), st)
    }

    #[test]
    fn straight_line_flows() {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let q = pb.var("q");
        let r = pb.var("r");
        pb.addr_of(p, x);
        pb.copy(q, p);
        pb.copy(r, q);
        let program = pb.finish();
        let (sol, _) = solve(&program, false);
        assert_sound(&program, &sol);
        assert!(sol.may_point_to(r, x));
    }

    #[test]
    fn dynamic_edges_require_multiple_rounds() {
        // r = *p where *p = q only materializes after pts(p) is known, and
        // the store adds an edge the earlier load-query could not see.
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let q = pb.var("q");
        let y = pb.var("y");
        let r = pb.var("r");
        pb.load(r, p); // processed before the store each round
        pb.addr_of(p, x);
        pb.addr_of(q, y);
        pb.store(p, q); // pts(x) ⊇ pts(q) = {y}
        let program = pb.finish();
        let (sol, _) = solve(&program, false);
        assert_sound(&program, &sol);
        assert!(sol.may_point_to(r, y));
    }

    #[test]
    fn cycles_collapse_during_queries() {
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        let c = pb.var("c");
        let p = pb.var("p");
        let x = pb.var("x");
        pb.addr_of(p, x);
        pb.copy(a, b);
        pb.copy(b, c);
        pb.copy(c, a);
        pb.copy(a, p);
        pb.load(x, a); // forces a query of a
        let program = pb.finish();
        let (sol, st) = solve(&program, false);
        assert_sound(&program, &sol);
        assert!(st.stats.nodes_collapsed >= 2, "a,b,c collapse");
        assert!(sol.may_point_to(VarId::new(0), x));
    }

    #[test]
    fn ht_and_ht_hcd_agree() {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let y = pb.var("y");
        let q = pb.var("q");
        let r = pb.var("r");
        pb.addr_of(p, x);
        pb.addr_of(q, y);
        pb.store(p, q);
        pb.load(r, p);
        pb.copy(x, y);
        pb.copy(y, x);
        let program = pb.finish();
        let (s1, _) = solve(&program, false);
        let (s2, _) = solve(&program, true);
        assert_sound(&program, &s1);
        assert!(s1.equiv(&s2), "diff at {:?}", s1.first_difference(&s2));
    }

    #[test]
    fn offsets_flow_through_indirect_calls() {
        let mut pb = ProgramBuilder::new();
        let f = pb.function("f", 3);
        let fp = pb.var("fp");
        let q = pb.var("q");
        let x = pb.var("x");
        let r = pb.var("r");
        pb.copy(f.offset(1), f.offset(2));
        pb.addr_of(fp, f);
        pb.addr_of(q, x);
        pb.store_offset(fp, q, 2);
        pb.load_offset(r, fp, 1);
        let program = pb.finish();
        let (sol, _) = solve(&program, false);
        assert_sound(&program, &sol);
        assert!(sol.may_point_to(r, x));
    }
}
