//! The bulk-synchronous parallel (BSP) propagation engine.
//!
//! Each *round* snapshots the pending worklist, lets per-thread worker
//! shards precompute propagation answers against the frozen state, then
//! applies every node in a deterministic sequential merge. The result —
//! solution *and* §5.3 counters — is bit-identical to the sequential
//! divided-worklist solvers, because the round schedule reproduces the
//! [`DividedLrf`] pop order exactly and the workers' output is advisory.
//!
//! # Schedule equivalence
//!
//! The sequential [`DividedLrf`] pops its *current* section in ascending
//! `(last_fired, id)` order, sends pushes to *next*, ignores pushes of
//! still-queued nodes, and swaps sections when *current* drains. A round
//! here is one section: the pending batch is sorted by `(last_fired, id)`
//! (ties break by id, exactly like the sequential binary heap), each node
//! clears its queued flag and stamps `last_fired` as it is processed, and
//! pushes land in the next round's batch. Keys in the sequential heap are
//! frozen at refill time — `last_fired` of a queued node never changes
//! until it is popped — so sorting once per round is the same order.
//!
//! # Why the merge is sequential
//!
//! Cycle collapses rewrite the union-find, and every later step of the
//! round observes the rewritten graph: which representative a node
//! resolves to, which edges are self-edges, which `done`-marker deltas
//! remain. Replaying collapses in any order other than the sequential
//! solver's would change the §5.3 counters (and potentially the collapse
//! structure), so collapses — and all state mutation — stay on the merge
//! thread. What parallelizes is the read-only half of propagation: set
//! differences and LCD's equality probes, precomputed as version-stamped
//! [hints](crate::state::RoundHint) the merge consumes only while still
//! provably current. Hints can therefore accelerate a round but never
//! alter its outcome.
//!
//! # PKH sweeps
//!
//! The sequential PKH solver checks `swaps() != swept_at` before every
//! pop, and the lazy refill inside `pop` bumps `swaps` at the *first* pop
//! of a section. Replayed against round positions that becomes: a
//! *boundary* sweep before the batch is snapshotted (firing on round 1 and
//! after single-node rounds, whose collapse pushes precede the refill and
//! so join the new batch), a `swaps` bump at position 0 standing in for
//! the refill, and a plain test at every later position (catching that
//! bump before the second pop — the once-per-section sweep). [`run`]
//! reproduces that state machine literally.
//!
//! [`DividedLrf`]: ant_common::worklist::DividedLrf

use crate::pts::PtsRepr;
use crate::state::{OnlineState, RoundHint};
use ant_common::fx::FxHashSet;
use ant_common::obs::prov::ProvRecorder;
use ant_common::obs::{Obs, SolveEvent};
use ant_common::worklist::Worklist;
use ant_common::VarId;
use ant_constraints::hcd::HcdOffline;
use ant_constraints::Program;
use std::time::{Duration, Instant};

use super::worklist_solvers::{basic_step, lcd_step, pkh_sweep};
use super::PropMode;

/// Which worklist-solver body each round replays.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Family {
    /// Figure 1, optionally with the HCD step (Basic / HCD).
    Basic,
    /// Figure 2, optionally with the HCD step (LCD / LCD+HCD).
    Lcd,
    /// Figure 1 plus periodic whole-graph sweeps (PKH / PKH+HCD).
    Pkh,
}

/// Minimum nodes per worker shard; below `2 ×` this a round runs purely
/// sequentially (thread spawn would cost more than the hints save).
const MIN_SHARD_NODES: usize = 48;

/// Worker threads the hint phase may actually spawn for a configured
/// thread count: never more than the hardware offers. Hints are advisory,
/// so clamping changes nothing but wall time — on a single-core host the
/// worker phase is skipped entirely rather than paying per-round spawns
/// that cannot run concurrently.
fn worker_budget(threads: usize) -> usize {
    #[cfg(test)]
    {
        let forced = tests::FORCE_WORKERS.load(std::sync::atomic::Ordering::Relaxed);
        if forced > 0 {
            return threads.min(forced);
        }
    }
    threads.min(std::thread::available_parallelism().map_or(1, usize::from))
}

/// The round accumulator: the BSP engine's stand-in for the divided
/// worklist's *next* section. Pushes deduplicate through the same queued
/// flags as the sequential worklist; nodes of the in-flight batch keep
/// their flag until processed, so re-pushes of not-yet-reached nodes are
/// ignored exactly as they are for nodes still sitting in *current*.
struct RoundQueue {
    pending: Vec<VarId>,
    queued: Vec<bool>,
    last_fired: Vec<u64>,
    clock: u64,
}

impl RoundQueue {
    fn new(n: usize) -> Self {
        RoundQueue {
            pending: Vec::new(),
            queued: vec![false; n],
            last_fired: vec![0; n],
            clock: 1,
        }
    }
}

impl Worklist for RoundQueue {
    fn push(&mut self, n: VarId) {
        let q = &mut self.queued[n.index()];
        if !*q {
            *q = true;
            self.pending.push(n);
        }
    }

    fn pop(&mut self) -> Option<VarId> {
        // The engine drains whole batches itself; solver bodies only push.
        debug_assert!(false, "RoundQueue is never popped");
        None
    }

    fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

/// Per-shard worker accounting for `ShardUtilization` events.
struct ShardStat {
    nodes: usize,
    busy: Duration,
}

/// One worker's output: hints keyed by canonical `(src, dst)` pair, plus
/// its accounting.
type ShardOutput<P> = (Vec<((u32, u32), RoundHint<P>)>, ShardStat);

/// Runs `family` to fixpoint with BSP rounds. Behaviourally identical to
/// the corresponding sequential solver over [`DividedLrf`]
/// (`ant_common::worklist::DividedLrf`); `threads ≥ 2` is assumed (the
/// dispatcher routes `threads == 1` to the sequential solvers).
pub(crate) fn run<'o, P: PtsRepr>(
    program: &Program,
    family: Family,
    hcd: Option<&HcdOffline>,
    obs: Obs<'o>,
    threads: usize,
    prov: Option<Box<ProvRecorder>>,
    prop: PropMode,
) -> OnlineState<'o, P> {
    let mut st = OnlineState::<P>::new(program);
    st.obs = obs;
    if let Some(p) = prov {
        st.install_prov(program, p);
    }
    if let Some(h) = hcd {
        st.install_hcd(h);
    }
    st.set_prop(prop);
    let use_hcd = hcd.is_some();
    let mut rq = RoundQueue::new(st.n);
    st.seed_worklist(&mut rq);

    // LCD's triggered-edge set R persists across rounds, like across pops.
    let mut triggered: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut triggered_epoch = st.stats.nodes_collapsed;
    // PKH sweep state machine (see module docs).
    let mut swaps = 0u64;
    let mut swept_at = u64::MAX;

    let mut round: u64 = 0;
    let mut batch: Vec<VarId> = Vec::new();
    while !rq.pending.is_empty() {
        round += 1;
        // A sweep firing at a section boundary (round 1, or the round after
        // a single-node round) runs before the sequential refill, so its
        // collapse pushes land in *next* and join this round's batch —
        // replay it before snapshotting.
        if family == Family::Pkh && swaps != swept_at {
            swept_at = swaps;
            pkh_sweep(&mut st, &mut rq);
        }
        batch.clear();
        std::mem::swap(&mut batch, &mut rq.pending);
        batch.sort_unstable_by_key(|&v| (rq.last_fired[v.index()], v.as_u32()));

        let (hints, shard_stats, worker_time) = hint_phase(&mut st, &batch, threads);
        st.hint_hits = 0;

        for (i, &popped) in batch.iter().enumerate() {
            if family == Family::Pkh {
                if i == 0 {
                    // The refill that produced this batch bumped the swap
                    // counter; the mid-section sweep check below sees it
                    // from the second position on, exactly like the
                    // sequential check-before-every-pop.
                    swaps += 1;
                } else if swaps != swept_at {
                    swept_at = swaps;
                    pkh_sweep(&mut st, &mut rq);
                }
            }
            rq.queued[popped.index()] = false;
            rq.last_fired[popped.index()] = rq.clock;
            rq.clock += 1;
            st.stats.nodes_processed += 1;
            st.note_pop(popped);
            let in_batch = batch.len() - i - 1;
            st.tick_progress(|| in_batch + rq.pending.len());
            match family {
                Family::Lcd => lcd_step(
                    &mut st,
                    popped,
                    use_hcd,
                    &mut rq,
                    &mut triggered,
                    &mut triggered_epoch,
                ),
                Family::Basic | Family::Pkh => basic_step(&mut st, popped, use_hcd, &mut rq),
            }
        }

        let hint_hits = st.hint_hits;
        st.round_hints.clear();
        if st.obs.enabled() {
            for (si, s) in shard_stats.iter().enumerate() {
                st.obs.emit(&SolveEvent::ShardUtilization {
                    round,
                    shard: si as u32,
                    nodes: s.nodes as u64,
                    busy_micros: s.busy.as_micros() as u64,
                });
            }
            st.obs.emit(&SolveEvent::RoundSummary {
                round,
                nodes: batch.len() as u64,
                shards: shard_stats.len() as u32,
                hints: hints as u64,
                hint_hits,
                worker_micros: worker_time.as_micros() as u64,
            });
        }
    }

    if family == Family::Lcd {
        // Same accounting as the sequential LCD solver.
        st.stats.aux_bytes += triggered.capacity() * (8 + 8);
    }
    st
}

/// The parallel half of a round: splits `batch` into contiguous shards of
/// the sorted order and, on scoped threads, computes one [`RoundHint`] per
/// canonical out-edge of each node against the frozen pre-round state.
/// Returns `(hints produced, per-shard stats, wall time)` and leaves the
/// hints in `st.round_hints`.
///
/// Skipped (returning empties) when the representation cannot compute set
/// operations without its context, or when the batch is too small to pay
/// for thread spawns.
fn hint_phase<P: PtsRepr>(
    st: &mut OnlineState<'_, P>,
    batch: &[VarId],
    threads: usize,
) -> (usize, Vec<ShardStat>, Duration) {
    let shards = worker_budget(threads).min(batch.len() / MIN_SHARD_NODES);
    if !P::PAR_HINTS || shards < 2 {
        return (0, Vec::new(), Duration::ZERO);
    }
    let t0 = Instant::now();
    let chunk = batch.len().div_ceil(shards);
    // Borrow the individual fields, not the state: `OnlineState` itself is
    // not `Sync` (it holds the observer), but the graph snapshot is.
    let uf = &st.uf;
    let pts = &st.pts;
    let succs = &st.succs;
    let vers = &st.pts_ver;
    let results: Vec<ShardOutput<P>> = std::thread::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let t = Instant::now();
                    let mut out = Vec::new();
                    let mut targets: Vec<u32> = Vec::new();
                    for &popped in part {
                        let n = uf.find_no_compress(popped);
                        let n_raw = n.as_u32();
                        let src = &pts[n.index()];
                        // The same canonical target set the merge will
                        // propagate along (if no collapse intervenes).
                        targets.clear();
                        targets.extend(
                            succs[n.index()]
                                .iter()
                                .map(|w| uf.find_no_compress(VarId::from_u32(w)).as_u32()),
                        );
                        targets.sort_unstable();
                        targets.dedup();
                        for &z in &targets {
                            if z == n_raw {
                                continue;
                            }
                            let dst = &pts[z as usize];
                            let Some((delta, eq)) = P::frozen_delta(src, dst) else {
                                continue;
                            };
                            out.push((
                                (n_raw, z),
                                RoundHint {
                                    src_ver: vers[n.index()],
                                    dst_ver: vers[z as usize],
                                    eq,
                                    delta,
                                },
                            ));
                        }
                    }
                    let stat = ShardStat {
                        nodes: part.len(),
                        busy: t.elapsed(),
                    };
                    (out, stat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("hint worker panicked"))
            .collect()
    });
    let mut shard_stats = Vec::with_capacity(results.len());
    let mut count = 0;
    st.round_hints.clear();
    st.round_hints
        .reserve(results.iter().map(|(h, _)| h.len()).sum());
    for (hints, stat) in results {
        count += hints.len();
        st.round_hints.extend(hints);
        shard_stats.push(stat);
    }
    (count, shard_stats, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::worklist_solvers::{basic, lcd, pkh};
    use crate::pts::{BitmapPts, SharedPts};
    use crate::verify::assert_sound;
    use crate::Solution;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Overrides [`worker_budget`]'s hardware clamp so the worker phase —
    /// shard spawning, hint production, version validation — is exercised
    /// by these tests even on single-core CI hosts.
    pub(super) static FORCE_WORKERS: AtomicUsize = AtomicUsize::new(0);

    fn force_workers(n: usize) {
        FORCE_WORKERS.store(n, Ordering::Relaxed);
    }
    use ant_common::worklist::WorklistKind;
    use ant_frontend::workload::WorkloadSpec;

    /// The nine behavioural §5.3 counters (no durations, no byte sizes —
    /// those legitimately vary with wall clock and allocation history).
    fn counters(st: &ant_common::SolverStats) -> [u64; 9] {
        [
            st.nodes_processed,
            st.propagations,
            st.propagations_changed,
            st.edges_added,
            st.complex_iters,
            st.cycle_searches,
            st.nodes_searched,
            st.cycles_found,
            st.nodes_collapsed,
        ]
    }

    #[test]
    fn rounds_replay_the_divided_lrf_schedule_exactly() {
        force_workers(4);
        let program = WorkloadSpec::tiny(7).generate();
        let hcd = HcdOffline::analyze(&program);
        for h in [None, Some(&hcd)] {
            for (fam, seq) in [
                (
                    Family::Basic,
                    basic::<BitmapPts> as fn(_, _, _, _, _, _) -> _,
                ),
                (Family::Lcd, lcd::<BitmapPts>),
                (Family::Pkh, pkh::<BitmapPts>),
            ] {
                for prop in PropMode::ALL {
                    let mut s = seq(
                        &program,
                        WorklistKind::DividedLrf,
                        h,
                        Obs::none(),
                        None,
                        prop,
                    );
                    let mut p = run::<BitmapPts>(&program, fam, h, Obs::none(), 4, None, prop);
                    assert_eq!(
                        counters(&s.stats),
                        counters(&p.stats),
                        "counter divergence (hcd={}, prop={prop})",
                        h.is_some()
                    );
                    let ss = Solution::from_state(&mut s);
                    let ps = Solution::from_state(&mut p);
                    assert_sound(&program, &ps);
                    assert!(
                        ss.equiv(&ps),
                        "solution divergence at {:?}",
                        ss.first_difference(&ps)
                    );
                }
            }
        }
    }

    #[test]
    fn context_bound_reprs_skip_the_worker_phase_but_still_match() {
        let program = WorkloadSpec::tiny(3).generate();
        for prop in PropMode::ALL {
            let mut s = lcd::<SharedPts>(
                &program,
                WorklistKind::DividedLrf,
                None,
                Obs::none(),
                None,
                prop,
            );
            let mut p = run::<SharedPts>(&program, Family::Lcd, None, Obs::none(), 4, None, prop);
            assert_eq!(counters(&s.stats), counters(&p.stats), "prop={prop}");
            assert!(Solution::from_state(&mut s).equiv(&Solution::from_state(&mut p)));
        }
    }

    #[test]
    fn empty_program_yields_no_rounds() {
        let program = ant_constraints::ProgramBuilder::new().finish();
        let mut st = run::<BitmapPts>(
            &program,
            Family::Basic,
            None,
            Obs::none(),
            4,
            None,
            PropMode::Full,
        );
        assert_eq!(st.stats.nodes_processed, 0);
        assert_eq!(Solution::from_state(&mut st).num_vars(), 0);
    }
}
