//! Pearce, Kelly & Hankin's *earlier* (SCAM 2003) solver: online cycle
//! detection via a dynamically maintained pseudo-topological order.
//!
//! §2 of the paper: "Pearce et al. first proposed an analysis that uses a
//! more efficient algorithm for online cycle detection than that introduced
//! by Fähndrich et al. In order to avoid cycle detection at every edge
//! insertion, the algorithm dynamically maintains a topological ordering of
//! the constraint graph. Only a newly-inserted edge that violates the
//! current ordering could possibly create a cycle, so only in this case are
//! cycle detection and topological re-ordering performed. This algorithm
//! proves to still have too much overhead" — the paper reports it an order
//! of magnitude slower than the algorithms it evaluates. It is implemented
//! here as an ablation (`Algorithm::Pkh03`) so that claim can be checked.
//!
//! The ordering maintenance is the Pearce–Kelly dynamic topological-order
//! algorithm restricted to the affected region: when an edge `src → dst`
//! arrives with `ord(dst) < ord(src)`, a forward search from `dst` and a
//! backward search from `src` bounded by the two order values discover
//! either a cycle (collapse it) or a reordering of the affected nodes.

use crate::pts::PtsRepr;
use crate::state::OnlineState;
use ant_common::obs::prov::ProvRecorder;
use ant_common::obs::{Obs, SolveEvent};
use ant_common::worklist::{Worklist, WorklistKind};
use ant_common::VarId;
use ant_constraints::hcd::HcdOffline;
use ant_constraints::Program;

pub(crate) struct Order {
    /// `ord[node]` — a priority defining the pseudo-topological order.
    ord: Vec<u32>,
    next: u32,
}

impl Order {
    pub(crate) fn new(n: usize) -> Self {
        // Initial order: node id order (any order is a valid start; the
        // invariant is only maintained, not established, by insertions).
        Order {
            ord: (0..n as u32).collect(),
            next: n as u32,
        }
    }

    /// Extends the order for variables appended by a program delta: each
    /// new node takes the next free priority above everything assigned so
    /// far. [`restore_order`] only ever hands out values above the current
    /// maximum, so priorities stay unique and any order over the new nodes
    /// is a valid starting point (the invariant is maintained, never
    /// established).
    pub(crate) fn grow(&mut self, new_n: usize) {
        while self.ord.len() < new_n {
            self.ord.push(self.next);
            self.next += 1;
        }
    }

    /// Heap footprint, for retained-state accounting.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.ord.capacity() * std::mem::size_of::<u32>()
    }
}

/// The affected-region discovery for one order-violating edge insertion.
/// Returns the cycle members if `src` is reachable from `dst` within the
/// region, otherwise applies the reordering.
pub(crate) fn restore_order<P: PtsRepr>(
    st: &mut OnlineState<P>,
    order: &mut Order,
    src: VarId,
    dst: VarId,
) -> Option<Vec<u32>> {
    let lower = order.ord[dst.index()];
    let upper = order.ord[src.index()];
    // Forward search from dst, restricted to nodes ordered below `upper`.
    let mut fwd: Vec<u32> = Vec::new();
    let mut stack = vec![dst.as_u32()];
    let mut seen = ant_common::fx::FxHashSet::default();
    seen.insert(dst.as_u32());
    let mut cycle = false;
    while let Some(v) = stack.pop() {
        st.stats.nodes_searched += 1;
        fwd.push(v);
        if v == src.as_u32() {
            cycle = true;
            continue;
        }
        for w_raw in st.canonical_succs(VarId::from_u32(v)) {
            let w = w_raw;
            let o = order.ord[w as usize];
            if o <= upper && seen.insert(w) {
                stack.push(w);
            }
        }
    }
    if cycle {
        // Everything on a dst→src path joins the cycle once src→dst exists.
        // Conservatively collapse the strongly connected part: run a rooted
        // search to extract the actual SCC.
        let search = st.cycle_search(&[dst]);
        let mut members: Vec<u32> = Vec::new();
        for scc in &search.sccs {
            if scc.contains(&dst.as_u32()) || scc.contains(&src.as_u32()) {
                members.extend_from_slice(scc);
            }
        }
        if members.is_empty() {
            // Unreachable in practice: `src → dst` is a real edge and dst
            // reaches src, so one SCC must contain both. Be conservative
            // about precision if it ever happens.
            return None;
        }
        return Some(members);
    }
    // No cycle: shift the forward region above `src` in the order
    // (a simplified affected-region reordering — correctness of the
    // *analysis* only needs the order to converge, since cycle detection
    // is triggered by order violations).
    fwd.sort_unstable_by_key(|&v| order.ord[v as usize]);
    for v in fwd {
        order.next += 1;
        order.ord[v as usize] = order.next;
    }
    let _ = lower;
    None
}

/// Runs the PKH'03 dynamic-topological-order solver.
pub(crate) fn pkh03<'o, P: PtsRepr>(
    program: &Program,
    wk: WorklistKind,
    hcd: Option<&HcdOffline>,
    obs: Obs<'o>,
    prov: Option<Box<ProvRecorder>>,
    prop: super::PropMode,
) -> OnlineState<'o, P> {
    let mut st = OnlineState::<P>::new(program);
    st.obs = obs;
    if let Some(p) = prov {
        st.install_prov(program, p);
    }
    if let Some(h) = hcd {
        st.install_hcd(h);
    }
    st.set_prop(prop);
    let mut order = Order::new(st.n);
    let mut wl = wk.build(st.n);
    st.seed_worklist(wl.as_mut());
    drive(&mut st, &mut order, wl.as_mut(), hcd.is_some());
    st
}

/// The PKH'03 pop loop, factored out so the resumable solve path can
/// re-enter it with a retained state, its surviving [`Order`] and a freshly
/// seeded worklist.
pub(crate) fn drive<P: PtsRepr>(
    st: &mut OnlineState<P>,
    order: &mut Order,
    wl: &mut dyn Worklist,
    use_hcd: bool,
) {
    while let Some(popped) = wl.pop() {
        let mut n = st.find(popped);
        st.stats.nodes_processed += 1;
        st.note_pop(popped);
        st.tick_progress(|| wl.len());
        if use_hcd {
            n = st.hcd_step(n, wl);
        }
        // Complex constraints, checking the order on every edge insertion.
        let edges_before = st.stats.edges_added;
        st.process_complex(n, wl);
        if st.stats.edges_added != edges_before {
            // At least one new edge: verify the order for all current
            // successors of the touched sources. (Per-edge bookkeeping is
            // folded into one pass over n's region for simplicity; the
            // measured overhead is the repeated searching, as in the
            // original.)
            let n_now = st.find(n);
            let mut targets = st.take_succ_scratch();
            st.canonical_succs_into(n_now, &mut targets);
            for &z_raw in &targets {
                let z = VarId::from_u32(z_raw);
                let n_cur = st.find(n_now);
                if z == n_cur {
                    continue;
                }
                if order.ord[z.index()] < order.ord[n_cur.index()] {
                    st.stats.cycle_searches += 1;
                    if let Some(members) = restore_order(st, order, n_cur, z) {
                        let mut rep = VarId::from_u32(members[0]);
                        for &m in &members[1..] {
                            rep = st.collapse_with(VarId::from_u32(m), rep, wl);
                        }
                        st.stats.cycles_found += 1;
                        st.obs.emit(&SolveEvent::CycleCollapsed {
                            members: (members.len() - 1) as u64,
                        });
                        wl.push(rep);
                    }
                }
            }
            st.put_succ_scratch(targets);
        }
        let n = st.find(n);
        st.propagate_all(n, wl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pts::BitmapPts;
    use crate::verify::assert_sound;
    use crate::Solution;
    use ant_constraints::ProgramBuilder;

    #[test]
    fn solves_cyclic_program() {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let y = pb.var("y");
        let q = pb.var("q");
        let r = pb.var("r");
        pb.addr_of(p, x);
        pb.addr_of(q, y);
        pb.store(p, q);
        pb.load(r, p);
        pb.copy(x, y);
        pb.copy(y, x);
        let program = pb.finish();
        let mut st = pkh03::<BitmapPts>(
            &program,
            WorklistKind::DividedLrf,
            None,
            Obs::none(),
            None,
            super::super::PropMode::Full,
        );
        let sol = Solution::from_state(&mut st);
        assert_sound(&program, &sol);
        let r = program.var_by_name("r").unwrap();
        let y = program.var_by_name("y").unwrap();
        assert!(sol.may_point_to(r, y));
    }

    #[test]
    fn agrees_with_basic_on_workload() {
        use ant_frontend::workload::WorkloadSpec;
        let program = WorkloadSpec::tiny(5).generate();
        let mut st = pkh03::<BitmapPts>(
            &program,
            WorklistKind::DividedLrf,
            None,
            Obs::none(),
            None,
            super::super::PropMode::Full,
        );
        let sol = Solution::from_state(&mut st);
        let reference = crate::solve_dyn(
            &program,
            &crate::SolverConfig::new(crate::Algorithm::Basic),
            crate::PtsKind::Bitmap,
        );
        assert!(
            sol.equiv(&reference.solution),
            "PKH03 differs at {:?}",
            sol.first_difference(&reference.solution)
        );
    }
}
