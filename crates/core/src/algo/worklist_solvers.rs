//! The worklist-driven solvers: Basic (Figure 1), HCD (Figure 5),
//! LCD (Figure 2), and PKH (periodic sweeps).

use crate::algo::PropMode;
use crate::pts::PtsRepr;
use crate::state::OnlineState;
use ant_common::fx::FxHashSet;
use ant_common::obs::prov::ProvRecorder;
use ant_common::obs::Obs;
use ant_common::worklist::{DividedLrf, Worklist, WorklistKind};
use ant_common::VarId;
use ant_constraints::hcd::HcdOffline;
use ant_constraints::Program;

/// The Figure 1 worklist body for one popped node: the optional HCD
/// collapse step, complex-constraint resolution, then propagation along
/// every outgoing edge. Shared verbatim by the sequential solvers below
/// and the BSP round engine, which is what keeps the two schedules
/// behaviourally identical.
pub(crate) fn basic_step<P: PtsRepr>(
    st: &mut OnlineState<'_, P>,
    popped: VarId,
    use_hcd: bool,
    wl: &mut dyn Worklist,
) {
    let mut n = st.find(popped);
    if use_hcd {
        n = st.hcd_step(n, wl);
    }
    st.process_complex(n, wl);
    st.propagate_all(n, wl);
}

/// Figure 1 (no cycle detection), optionally extended with the Hybrid Cycle
/// Detection step of Figure 5 (`hcd = Some(..)` turns Basic into the paper's
/// standalone HCD solver).
pub(crate) fn basic<'o, P: PtsRepr>(
    program: &Program,
    wk: WorklistKind,
    hcd: Option<&HcdOffline>,
    obs: Obs<'o>,
    prov: Option<Box<ProvRecorder>>,
    prop: PropMode,
) -> OnlineState<'o, P> {
    let mut st = OnlineState::<P>::new(program);
    st.obs = obs;
    if let Some(p) = prov {
        st.install_prov(program, p);
    }
    if let Some(h) = hcd {
        st.install_hcd(h);
    }
    st.set_prop(prop);
    let mut wl = wk.build(st.n);
    st.seed_worklist(wl.as_mut());
    while let Some(popped) = wl.pop() {
        st.stats.nodes_processed += 1;
        st.note_pop(popped);
        st.tick_progress(|| wl.len());
        basic_step(&mut st, popped, hcd.is_some(), wl.as_mut());
    }
    st
}

/// Lazy Cycle Detection (Figure 2), optionally combined with HCD (the
/// paper's fastest configuration, LCD+HCD).
///
/// Before propagating along `n → z`, if `pts(n) == pts(z)` and this edge has
/// never triggered a search, run a depth-first search rooted at `z` and
/// collapse any cycles found. Each edge triggers at most once (the set `R`),
/// keeping the technique precise about when searching is worthwhile.
pub(crate) fn lcd<'o, P: PtsRepr>(
    program: &Program,
    wk: WorklistKind,
    hcd: Option<&HcdOffline>,
    obs: Obs<'o>,
    prov: Option<Box<ProvRecorder>>,
    prop: PropMode,
) -> OnlineState<'o, P> {
    let mut st = OnlineState::<P>::new(program);
    st.obs = obs;
    if let Some(p) = prov {
        st.install_prov(program, p);
    }
    if let Some(h) = hcd {
        st.install_hcd(h);
    }
    st.set_prop(prop);
    let mut wl = wk.build(st.n);
    st.seed_worklist(wl.as_mut());
    // R: edges that have already triggered a cycle search.
    let mut triggered: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut triggered_epoch = st.stats.nodes_collapsed;

    while let Some(popped) = wl.pop() {
        st.stats.nodes_processed += 1;
        st.note_pop(popped);
        st.tick_progress(|| wl.len());
        lcd_step(
            &mut st,
            popped,
            hcd.is_some(),
            wl.as_mut(),
            &mut triggered,
            &mut triggered_epoch,
        );
    }
    st.stats.aux_bytes += triggered.capacity() * (8 + 8);
    st
}

/// The Figure 2 worklist body for one popped node: the Figure 1 steps plus
/// LCD's per-edge equality probe and lazy cycle search. Shared verbatim by
/// [`lcd`] and the BSP round engine.
pub(crate) fn lcd_step<P: PtsRepr>(
    st: &mut OnlineState<'_, P>,
    popped: VarId,
    use_hcd: bool,
    wl: &mut dyn Worklist,
    triggered: &mut FxHashSet<(u32, u32)>,
    triggered_epoch: &mut u64,
) {
    let mut n = st.find(popped);
    if use_hcd {
        n = st.hcd_step(n, wl);
    }
    st.process_complex(n, wl);
    canonicalize_triggered(st, triggered, triggered_epoch);
    let mut targets = st.take_succ_scratch();
    st.canonical_succs_into(n, &mut targets);
    let rep = st.find(n);
    let mut plan = st.begin_pop_delta(rep);
    for &z_raw in &targets {
        // Cycle collapses during this loop can merge both endpoints.
        let n_now = st.find(n);
        let mut z = st.find(VarId::from_u32(z_raw));
        if z == n_now {
            continue;
        }
        let edge = (n_now.as_u32(), z.as_u32());
        let eq = st.set_eq_hinted(n_now, z);
        if eq {
            if triggered.contains(&edge) {
                // Equal sets make the propagation a guaranteed no-op.
                continue;
            }
            // Identical points-to sets: the tell-tale effect of a cycle.
            st.stats.cycle_searches += 1;
            let search = st.cycle_search(&[z]);
            st.collapse_sccs(&search, wl);
            triggered.insert(edge);
            z = st.find(z);
            let n2 = st.find(n_now);
            if z == n2 || st.set_eq_hinted(n2, z) {
                continue;
            }
        }
        let src = st.find(n_now);
        if st.propagate_edge(src, z, &mut plan) {
            wl.push(z);
        }
    }
    let rep_final = st.find(n);
    st.finish_pop_delta(rep_final, &targets, plan);
    st.put_succ_scratch(targets);
}

/// Re-canonicalizes LCD's triggered-edge keys (`R` in Figure 2) through the
/// union-find after collapses. Keys are canonical when inserted, but a
/// later collapse can merge an endpoint into a new representative; a probe
/// for the canonical pair then misses the stale key and the same logical
/// edge re-triggers a duplicate cycle search. Collapses are rare relative
/// to pops, so the rebuild is gated on the collapse counter and costs one
/// integer compare in the common case.
pub(crate) fn canonicalize_triggered<P: PtsRepr>(
    st: &mut OnlineState<P>,
    triggered: &mut FxHashSet<(u32, u32)>,
    epoch: &mut u64,
) {
    if *epoch == st.stats.nodes_collapsed {
        return;
    }
    *epoch = st.stats.nodes_collapsed;
    if triggered.is_empty() {
        return;
    }
    let old = std::mem::take(triggered);
    for (a, b) in old {
        let ra = st.find(VarId::from_u32(a)).as_u32();
        let rb = st.find(VarId::from_u32(b)).as_u32();
        if ra != rb {
            triggered.insert((ra, rb));
        }
    }
}

/// Pearce, Kelly & Hankin: explicit transitive closure with *periodic*
/// whole-graph cycle sweeps — "rather than detect cycles at every edge
/// insertion, the entire constraint graph is periodically swept to detect
/// and collapse any cycles that have formed since the last sweep" (§2).
///
/// Between sweeps this is the plain Figure 1 worklist; a sweep (a full
/// Tarjan pass over every node) runs each time the divided worklist swaps
/// its *current*/*next* sections — i.e. once per pass over the pending
/// nodes, which is what makes PKH search so much more of the graph than HT
/// or LCD (§5.3).
pub(crate) fn pkh<'o, P: PtsRepr>(
    program: &Program,
    _wk: WorklistKind,
    hcd: Option<&HcdOffline>,
    obs: Obs<'o>,
    prov: Option<Box<ProvRecorder>>,
    prop: PropMode,
) -> OnlineState<'o, P> {
    let mut st = OnlineState::<P>::new(program);
    st.obs = obs;
    if let Some(p) = prov {
        st.install_prov(program, p);
    }
    if let Some(h) = hcd {
        st.install_hcd(h);
    }
    st.set_prop(prop);
    // PKH owns a concrete divided worklist so it can observe section swaps.
    let mut wl = DividedLrf::new(st.n);
    st.seed_worklist(&mut wl);
    let mut swept_at = u64::MAX; // force a sweep before the first pop
    while !wl.is_empty() {
        if wl.swaps() != swept_at {
            // Periodic sweep: collapse every cycle currently in the graph.
            swept_at = wl.swaps();
            pkh_sweep(&mut st, &mut wl);
        }
        let Some(popped) = wl.pop() else { break };
        st.stats.nodes_processed += 1;
        st.note_pop(popped);
        st.tick_progress(|| wl.len());
        basic_step(&mut st, popped, hcd.is_some(), &mut wl);
    }
    st
}

/// The PKH sweep trigger: a full-graph Tarjan pass collapsing every cycle
/// currently in the constraint graph. Shared by [`pkh`] and the BSP round
/// engine.
pub(crate) fn pkh_sweep<P: PtsRepr>(st: &mut OnlineState<'_, P>, wl: &mut dyn Worklist) {
    let reps = st.reps();
    let search = st.cycle_search(&reps);
    st.collapse_sccs(&search, wl);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pts::BitmapPts;
    use crate::verify::assert_sound;
    use crate::Solution;
    use ant_constraints::ProgramBuilder;

    /// A small program with a dynamic cycle: the cycle between x and y only
    /// appears once the store/load edges materialize.
    fn cyclic_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let y = pb.var("y");
        let q = pb.var("q");
        let r = pb.var("r");
        pb.addr_of(p, x); // p = &x
        pb.addr_of(q, y); // q = &y
        pb.store(p, q); // *p = q   ⟹ x ⊇ q  ⟹ pts(x) ∋ y
        pb.load(r, p); // r = *p    ⟹ r ⊇ x
        pb.copy(x, y); // x = y
        pb.copy(y, x); // y = x (static cycle x ↔ y)
        pb.finish()
    }

    fn solve_each(program: &Program) -> Vec<Solution> {
        let hcd = HcdOffline::analyze(program);
        let wk = WorklistKind::DividedLrf;
        let mut outs = Vec::new();
        for h in [None, Some(&hcd)] {
            for prop in PropMode::ALL {
                let mut s1 = basic::<BitmapPts>(program, wk, h, Obs::none(), None, prop);
                outs.push(Solution::from_state(&mut s1));
                let mut s2 = lcd::<BitmapPts>(program, wk, h, Obs::none(), None, prop);
                outs.push(Solution::from_state(&mut s2));
                let mut s3 = pkh::<BitmapPts>(program, wk, h, Obs::none(), None, prop);
                outs.push(Solution::from_state(&mut s3));
            }
        }
        outs
    }

    #[test]
    fn all_worklist_solvers_agree_and_are_sound() {
        let program = cyclic_program();
        let sols = solve_each(&program);
        for s in &sols {
            assert_sound(&program, s);
            assert!(
                s.equiv(&sols[0]),
                "solver disagreement at {:?}",
                s.first_difference(&sols[0])
            );
        }
        // Spot-check: pts(r) must include y through the materialized edges.
        let p = program.var_by_name("r").unwrap();
        let y = program.var_by_name("y").unwrap();
        assert!(sols[0].may_point_to(p, y));
    }

    #[test]
    fn lcd_collapses_the_static_cycle() {
        let program = cyclic_program();
        let st = lcd::<BitmapPts>(
            &program,
            WorklistKind::DividedLrf,
            None,
            Obs::none(),
            None,
            PropMode::Full,
        );
        assert!(st.stats.nodes_collapsed >= 1, "x↔y cycle should collapse");
        assert!(st.stats.cycle_searches >= 1);
    }

    #[test]
    fn hcd_collapses_without_searching() {
        let program = cyclic_program();
        let hcd = HcdOffline::analyze(&program);
        let st = basic::<BitmapPts>(
            &program,
            WorklistKind::DividedLrf,
            Some(&hcd),
            Obs::none(),
            None,
            PropMode::Full,
        );
        assert_eq!(st.stats.nodes_searched, 0, "HCD never traverses the graph");
    }

    #[test]
    fn works_with_every_worklist_strategy() {
        let program = cyclic_program();
        let mut reference = None;
        for wk in WorklistKind::ALL {
            let mut st = lcd::<BitmapPts>(&program, wk, None, Obs::none(), None, PropMode::Full);
            let sol = Solution::from_state(&mut st);
            assert_sound(&program, &sol);
            if let Some(r) = &reference {
                assert!(sol.equiv(r));
            } else {
                reference = Some(sol);
            }
        }
    }

    /// Regression for a stale-edge bug: `R` (the triggered set) stored keys
    /// with pre-collapse endpoints, so after a collapse the probe for the
    /// canonical pair missed them and the same logical edge re-triggered a
    /// duplicate cycle search.
    #[test]
    fn triggered_edges_survive_collapse_canonically() {
        let program = cyclic_program();
        let mut st = OnlineState::<BitmapPts>::new(&program);
        let mut wl = WorklistKind::Fifo.build(st.n);
        let x = program.var_by_name("x").unwrap();
        let y = program.var_by_name("y").unwrap();
        let r = program.var_by_name("r").unwrap();
        let mut triggered: FxHashSet<(u32, u32)> = FxHashSet::default();
        let mut epoch = st.stats.nodes_collapsed;
        triggered.insert((x.as_u32(), r.as_u32()));
        triggered.insert((x.as_u32(), y.as_u32()));
        // Collapse x with y: the first key's source gains a new
        // representative; the second key becomes a self-edge.
        st.collapse_with(x, y, wl.as_mut());
        canonicalize_triggered(&mut st, &mut triggered, &mut epoch);
        let rep = st.find(x).as_u32();
        assert_eq!(st.find(y).as_u32(), rep);
        assert!(triggered.contains(&(rep, st.find(r).as_u32())));
        assert_eq!(triggered.len(), 1, "self-edges are dropped");
        // With no intervening collapse the rebuild is skipped (epoch gate).
        canonicalize_triggered(&mut st, &mut triggered, &mut epoch);
        assert_eq!(triggered.len(), 1);
    }

    /// Deterministic search-count snapshot on a generated workload. With
    /// stale (non-canonical) `R` keys this workload triggers 249 searches;
    /// canonicalizing after each collapse removes the 4 duplicates. An
    /// increase here means post-collapse representatives re-trigger
    /// searches for edges that already paid for one.
    #[test]
    fn lcd_cycle_search_count_has_no_post_collapse_duplicates() {
        use ant_frontend::workload::WorkloadSpec;
        let program = WorkloadSpec::tiny(1).generate();
        for prop in PropMode::ALL {
            let st = lcd::<BitmapPts>(
                &program,
                WorklistKind::DividedLrf,
                None,
                Obs::none(),
                None,
                prop,
            );
            assert_eq!(st.stats.cycle_searches, 245, "prop={prop}");
            assert!(
                st.stats.nodes_collapsed > 0,
                "workload must exercise collapses"
            );
        }
    }

    #[test]
    fn empty_program() {
        let program = ProgramBuilder::new().finish();
        let mut st = basic::<BitmapPts>(
            &program,
            WorklistKind::Fifo,
            None,
            Obs::none(),
            None,
            PropMode::Full,
        );
        let sol = Solution::from_state(&mut st);
        assert_eq!(sol.num_vars(), 0);
    }

    #[test]
    fn indirect_calls_resolve_through_offsets() {
        // fun f(a) { return a; }  fp = &f; r = fp(q); with q = &x.
        let mut pb = ProgramBuilder::new();
        let f = pb.function("f", 3); // f, f#1 = ret, f#2 = param a
        let fp = pb.var("fp");
        let q = pb.var("q");
        let x = pb.var("x");
        let r = pb.var("r");
        pb.copy(f.offset(1), f.offset(2)); // return a
        pb.addr_of(fp, f); // fp = &f
        pb.addr_of(q, x); // q = &x
        pb.store_offset(fp, q, 2); // pass q to param slot
        pb.load_offset(r, fp, 1); // r = return slot
        let program = pb.finish();
        for solver in [basic::<BitmapPts>, lcd::<BitmapPts>, pkh::<BitmapPts>] {
            let mut st = solver(
                &program,
                WorklistKind::DividedLrf,
                None,
                Obs::none(),
                None,
                PropMode::Full,
            );
            let sol = Solution::from_state(&mut st);
            assert_sound(&program, &sol);
            assert!(
                sol.may_point_to(r, x),
                "indirect call must flow &x to the caller's result"
            );
        }
    }
}
