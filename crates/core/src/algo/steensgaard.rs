//! Steensgaard's near-linear-time unification-based analysis — the classic
//! coarse baseline the paper's introduction contrasts with inclusion-based
//! analysis ("Steensgaard's analysis has much greater imprecision…").
//!
//! Not part of the paper's evaluated set (it computes a *different*, coarser
//! solution), but included so the precision gap that motivates the paper can
//! be measured: see `examples/precision.rs`.
//!
//! Each equivalence class of variables has at most one pointee class;
//! assignments unify pointees instead of propagating sets, so the whole
//! analysis is a single pass with inverse-Ackermann-factor union-find —
//! at the cost of conflating everything a pointer may reach.

use crate::{Solution, SolverStats};
use ant_common::obs::{Obs, Observer, Phase, PhaseTimer, ProgressSnapshot, SolveEvent};
use ant_common::{UnionFind, VarId};
use ant_constraints::{ConstraintKind, Program};
use std::time::Instant;

struct Steens {
    uf: UnionFind,
    /// Pointee class per class representative (index by representative).
    pointee: Vec<Option<VarId>>,
}

impl Steens {
    fn new(n: usize) -> Self {
        Steens {
            uf: UnionFind::new(n.max(1)),
            pointee: vec![None; n.max(1)],
        }
    }

    /// The pointee class of `x`'s class, creating no state.
    fn pointee_of(&mut self, x: VarId) -> Option<VarId> {
        let r = self.uf.find(x);
        self.pointee[r.index()].map(|p| self.uf.find(p))
    }

    /// Ensures `x`'s class points to (a class containing) `target`.
    fn add_pointee(&mut self, x: VarId, target: VarId) {
        let r = self.uf.find(x);
        match self.pointee[r.index()] {
            None => self.pointee[r.index()] = Some(target),
            Some(p) => {
                self.join(p, target);
            }
        }
    }

    /// Unifies the classes of `a` and `b`, recursively unifying pointees.
    fn join(&mut self, a: VarId, b: VarId) -> VarId {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return ra;
        }
        let pa = self.pointee[ra.index()];
        let pb = self.pointee[rb.index()];
        let w = self.uf.union(ra, rb);
        self.pointee[w.index()] = match (pa, pb) {
            (None, p) | (p, None) => p,
            (Some(x), Some(y)) => Some(self.join(x, y)),
        };
        w
    }

    /// Conditional join: unify the pointees of `a` and `b` (the `a = b`
    /// rule), creating nothing if neither side points anywhere yet… except
    /// that one-sided pointees must flow, so the sides are linked through a
    /// shared pointee when either exists.
    fn cjoin_pointees(&mut self, a: VarId, b: VarId) {
        match (self.pointee_of(a), self.pointee_of(b)) {
            (Some(x), Some(y)) => {
                self.join(x, y);
            }
            (None, Some(y)) => self.add_pointee(a, y),
            (Some(x), None) => self.add_pointee(b, x),
            (None, None) => {}
        }
    }
}

/// Runs Steensgaard's analysis and reports the induced may-point-to sets
/// (for each variable: all members of its class's pointee class).
///
/// The result over-approximates the Andersen solution computed by
/// [`solve`](crate::solve) — usually by a wide margin, which is exactly the
/// trade-off §1 and §6 of the paper discuss.
pub fn steensgaard(program: &Program) -> crate::SolveOutput {
    steensgaard_impl(program, Obs::none())
}

/// [`steensgaard`] with telemetry: emits a `SolverStart` marker, wraps the
/// unification passes in a [`Phase::Solve`] span and reports one
/// [`ProgressSnapshot`] per pass over the constraints.
pub fn steensgaard_with_observer(
    program: &Program,
    observer: &mut dyn Observer,
    progress_every: u32,
) -> crate::SolveOutput {
    steensgaard_impl(program, Obs::new(observer, progress_every))
}

fn steensgaard_impl(program: &Program, mut obs: Obs<'_>) -> crate::SolveOutput {
    obs.emit(&SolveEvent::SolverStart {
        name: "Steensgaard",
    });
    let mut timer = PhaseTimer::new();
    timer.start(Phase::Solve, &mut obs);
    let start = Instant::now();
    let n = program.num_vars();
    let mut st = Steens::new(n);
    let mut passes = 0u64;
    // Two passes: assignments may reference pointees created later — a
    // second pass reaches the (unification) fixpoint because joins are
    // idempotent and each constraint's effect is monotone. Steensgaard's
    // original uses lazy "pending" lists; two passes over the constraints
    // give the same classes for our constraint forms… except chains of
    // conditional joins may need more: iterate until stable (few passes in
    // practice, bounded by the class count).
    let mut last_sets = usize::MAX;
    loop {
        for c in program.constraints() {
            match (c.kind, c.offset) {
                (ConstraintKind::AddrOf, _) => st.add_pointee(c.lhs, c.rhs),
                (ConstraintKind::Copy, _) => st.cjoin_pointees(c.lhs, c.rhs),
                (ConstraintKind::Load, 0) => {
                    // a = *b: unify pts(a) with pts(pts(b)).
                    if let Some(pb) = st.pointee_of(c.rhs) {
                        st.cjoin_pointees(c.lhs, pb);
                    }
                }
                (ConstraintKind::Store, 0) => {
                    if let Some(pa) = st.pointee_of(c.lhs) {
                        st.cjoin_pointees(pa, c.rhs);
                    }
                }
                (ConstraintKind::Load, k) => {
                    // Offset loads conflate all same-arity callees: join
                    // with every function block's k-th slot. Coarse but
                    // sound — exactly Steensgaard's style of trade-off.
                    for f in program.vars() {
                        if program.offset_limit(f) > k {
                            st.cjoin_pointees(c.lhs, f.offset(k));
                        }
                    }
                }
                (ConstraintKind::Store, k) => {
                    for f in program.vars() {
                        if program.offset_limit(f) > k {
                            st.cjoin_pointees(f.offset(k), c.rhs);
                        }
                    }
                }
            }
        }
        passes += 1;
        if obs.tick() {
            let snapshot = ProgressSnapshot {
                worklist_len: 0,
                nodes_processed: passes,
                propagations: 0,
                pts_bytes: 0,
            };
            obs.emit(&SolveEvent::Progress(snapshot));
        }
        let sets = st.uf.set_count();
        if sets == last_sets {
            break;
        }
        last_sets = sets;
    }

    // Materialize: members of each class, then pts(v) = members of the
    // pointee class of v's class.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        let r = st.uf.find(VarId::new(i));
        members[r.index()].push(i as u32);
    }
    let mut sets = Vec::with_capacity(n);
    for i in 0..n {
        match st.pointee_of(VarId::new(i)) {
            Some(p) => sets.push(members[p.index()].clone()),
            None => sets.push(Vec::new()),
        }
    }
    let mut stats = SolverStats::new();
    stats.solve_time = start.elapsed();
    stats.nodes_collapsed = n.saturating_sub(st.uf.set_count()) as u64;
    stats.aux_bytes = st.uf.heap_bytes() + st.pointee.capacity() * 8;
    timer.stop(&mut obs);
    crate::SolveOutput {
        solution: Solution::from_sets(sets),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_soundness;
    use crate::{solve_dyn, Algorithm, PtsKind, SolverConfig};
    use ant_constraints::ProgramBuilder;

    #[test]
    fn unifies_assignment_targets() {
        // p = &x; q = &y; p = q — Steensgaard unifies {x, y}.
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let q = pb.var("q");
        let y = pb.var("y");
        pb.addr_of(p, x);
        pb.addr_of(q, y);
        pb.copy(p, q);
        let program = pb.finish();
        let out = steensgaard(&program);
        assert!(out.solution.may_point_to(p, x));
        assert!(out.solution.may_point_to(p, y));
        // The hallmark imprecision: q also "points to" x.
        assert!(out.solution.may_point_to(q, x));
        // Andersen keeps them separate.
        let andersen = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::Lcd),
            PtsKind::Bitmap,
        );
        assert!(!andersen.solution.may_point_to(q, x));
    }

    #[test]
    fn subsumes_andersen_on_workloads() {
        use ant_frontend::workload::WorkloadSpec;
        for seed in [1u64, 9, 33] {
            let program = WorkloadSpec::tiny(seed).generate();
            let coarse = steensgaard(&program);
            assert!(
                check_soundness(&program, &coarse.solution).is_empty(),
                "Steensgaard must satisfy the inclusion constraints"
            );
            let exact = solve_dyn(
                &program,
                &SolverConfig::new(Algorithm::Lcd),
                PtsKind::Bitmap,
            );
            assert!(
                coarse.solution.subsumes(&exact.solution),
                "Steensgaard must over-approximate Andersen (seed {seed})"
            );
            assert!(coarse.solution.total_pts_size() >= exact.solution.total_pts_size());
        }
    }

    #[test]
    fn loads_and_stores_unify_through_pointees() {
        // p = &x; *p = q; q = &y; r = *p.
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let q = pb.var("q");
        let y = pb.var("y");
        let r = pb.var("r");
        pb.addr_of(p, x);
        pb.store(p, q);
        pb.addr_of(q, y);
        pb.load(r, p);
        let program = pb.finish();
        let out = steensgaard(&program);
        assert!(check_soundness(&program, &out.solution).is_empty());
        assert!(out.solution.may_point_to(r, y));
    }

    #[test]
    fn empty_program() {
        let out = steensgaard(&ProgramBuilder::new().finish());
        assert_eq!(out.solution.num_vars(), 0);
    }
}
