//! The Berndl–Lhoták–Qian–Hendren–Umanee solver, adapted as in the paper to
//! a field-insensitive C analysis that handles indirect calls.
//!
//! Both the constraint graph `E ⊆ V × V` and the points-to relation
//! `P ⊆ V × Loc` live in BDDs. As in Berndl et al., the complex constraints
//! themselves are relations — one BDD `L(ptr, dst)` for all loads and one
//! `S(ptr, src)` for all stores — so materializing every edge they imply is
//! a *single* relational product per round, regardless of how many
//! constraints there are. Propagation is incrementalized: each step pushes
//! only the delta of `P` discovered since the previous step, and each new
//! round seeds its delta from the rows reachable over the newly added
//! edges. BLQ has no cycle detection of its own; with HCD enabled the
//! offline pairs are applied by rewriting `P`, `E`, `L` and `S` through a
//! BDD rename relation — which is why the paper finds HCD buys BLQ much
//! less than it buys the other solvers.

use crate::Solution;
use ant_bdd::{Bdd, BddManager, CubeId, Domain};
use ant_common::obs::prov::{ProvRecorder, Reason};
use ant_common::obs::{Obs, ProgressSnapshot, SolveEvent};
use ant_common::{SolverStats, UnionFind, VarId};
use ant_constraints::hcd::HcdOffline;
use ant_constraints::{ConstraintKind, Program};
use std::time::Instant;

struct Blq<'p, 'a, 'o> {
    program: &'p Program,
    m: BddManager,
    dv: Domain, // source / pointer column
    dw: Domain, // destination column
    dl: Domain, // location column (doubles as scratch for composition)
    cube_v: CubeId,
    cube_w: CubeId,
    p_rel: Bdd,     // P(dv, dl): points-to
    e_rel: Bdd,     // E(dv, dw): copy edges
    load_rel: Bdd,  // L(dv = ptr, dw = dst): all offset-0 loads
    store_rel: Bdd, // S(dv = ptr, dw = src): all offset-0 stores
    /// Per offset k > 0: the load relation `L_k(ptr, dst)`, the store
    /// relation `S_k(ptr, src)`, and the arithmetic relation
    /// `Add_k(dl = v, dv = v + k)` over the variables whose offset limit
    /// admits `k` — offset resolution becomes pure relational algebra.
    offsets: Vec<(u32, Bdd, Bdd, Bdd)>,
    /// The location→node relation `N(dl = loc, dv = node)`: identity until
    /// HCD merges nodes, after which dead nodes map to their
    /// representatives. Complex-constraint edges target `N(loc)`, not `loc`.
    loc2node: Bdd,
    uf: UnionFind,
    stats: SolverStats,
    /// Borrowed (not owned): the driver emits the final snapshot and closes
    /// the Solve phase span after this solver returns.
    obs: &'a mut Obs<'o>,
    /// Optional derivation recorder. BLQ has no per-tuple insertion sites —
    /// whole relations change at once — so recording enumerates each round's
    /// delta and attributes every new tuple/edge by membership probes
    /// against the frozen relations. Extra BDD operations never touch the
    /// §5.3 counters, so recorded runs stay counter-identical.
    prov: Option<Box<ProvRecorder>>,
}

impl<'p, 'a, 'o> Blq<'p, 'a, 'o> {
    fn new(program: &'p Program, obs: &'a mut Obs<'o>, prov: Option<Box<ProvRecorder>>) -> Self {
        let n = program.num_vars().max(2) as u64;
        let mut m = BddManager::new();
        let mut doms = m.new_interleaved_domains(&[n, n, n]).into_iter();
        let dv = doms.next().expect("three domains");
        let dw = doms.next().expect("three domains");
        let dl = doms.next().expect("three domains");
        let cube_v = m.domain_cube(&dv);
        let cube_w = m.domain_cube(&dw);
        let loc2node = m.domain_equals(&dl, &dv);
        Blq {
            program,
            m,
            dv,
            dw,
            dl,
            cube_v,
            cube_w,
            p_rel: Bdd::ZERO,
            e_rel: Bdd::ZERO,
            load_rel: Bdd::ZERO,
            store_rel: Bdd::ZERO,
            offsets: Vec::new(),
            loc2node,
            uf: UnionFind::new(program.num_vars().max(1)),
            stats: SolverStats::new(),
            obs,
            prov,
        }
    }

    fn pair(&mut self, a: VarId, b: VarId) -> Bdd {
        self.m
            .tuple(&[(&self.dv, a.as_u32() as u64), (&self.dw, b.as_u32() as u64)])
    }

    fn offset_slot(&mut self, k: u32) -> usize {
        if let Some(i) = self.offsets.iter().position(|&(off, ..)| off == k) {
            return i;
        }
        // Build Add_k(dl = v, dv = v + k) over the offsetable variables —
        // the function blocks, a small set.
        let mut add = Bdd::ZERO;
        for v in self.program.vars() {
            if k < self.program.offset_limit(v) {
                let t = self.m.tuple(&[
                    (&self.dl, v.as_u32() as u64),
                    (&self.dv, (v.as_u32() + k) as u64),
                ]);
                add = self.m.or(add, t);
            }
        }
        self.offsets.push((k, Bdd::ZERO, Bdd::ZERO, add));
        self.offsets.len() - 1
    }

    fn load_constraints(&mut self) {
        if let Some(p) = self.prov.as_mut() {
            for c in self.program.constraints() {
                match c.kind {
                    ConstraintKind::AddrOf => {
                        p.record_tuple(c.lhs.as_u32(), c.rhs.as_u32(), Reason::AddrOf);
                    }
                    ConstraintKind::Copy if c.lhs != c.rhs => {
                        p.record_edge(c.rhs.as_u32(), c.lhs.as_u32(), Reason::CopyConstraint);
                    }
                    _ => {}
                }
            }
        }
        for c in self.program.constraints().to_vec() {
            match (c.kind, c.offset) {
                (ConstraintKind::AddrOf, _) => {
                    let t = self.m.tuple(&[
                        (&self.dv, c.lhs.as_u32() as u64),
                        (&self.dl, c.rhs.as_u32() as u64),
                    ]);
                    self.p_rel = self.m.or(self.p_rel, t);
                }
                (ConstraintKind::Copy, _) => {
                    if c.lhs != c.rhs {
                        let t = self.pair(c.rhs, c.lhs);
                        self.e_rel = self.m.or(self.e_rel, t);
                    }
                }
                (ConstraintKind::Load, 0) => {
                    let t = self.pair(c.rhs, c.lhs);
                    self.load_rel = self.m.or(self.load_rel, t);
                }
                (ConstraintKind::Store, 0) => {
                    let t = self.pair(c.lhs, c.rhs);
                    self.store_rel = self.m.or(self.store_rel, t);
                }
                (ConstraintKind::Load, k) => {
                    let slot = self.offset_slot(k);
                    let t = self.pair(c.rhs, c.lhs);
                    self.offsets[slot].1 = self.m.or(self.offsets[slot].1, t);
                }
                (ConstraintKind::Store, k) => {
                    let slot = self.offset_slot(k);
                    let t = self.pair(c.lhs, c.rhs);
                    self.offsets[slot].2 = self.m.or(self.offsets[slot].2, t);
                }
            }
        }
    }

    /// Semi-naive propagation: adds `frontier` to `P` and closes `P` under
    /// `E`, pushing only the delta at each step (the incrementalization of
    /// Berndl et al.). With an observer attached, wall time goes to
    /// `stats.propagate_time`.
    fn propagate(&mut self, frontier: Bdd) {
        if !self.obs.enabled() {
            return self.propagate_inner(frontier);
        }
        let t0 = Instant::now();
        self.propagate_inner(frontier);
        self.stats.propagate_time += t0.elapsed();
    }

    fn propagate_inner(&mut self, frontier: Bdd) {
        // Frontier tuples enter `P` directly, not through the closure loop
        // below; the genuinely new ones (rows that flowed over freshly
        // added complex edges) must be recorded here, attributed to a
        // predecessor whose *existing* row supplied the location. On the
        // initial call `P` is empty, so nothing matches and the base
        // tuples keep their `AddrOf` records from `load_constraints`.
        if self.prov.is_some() {
            let fresh = self.m.diff(frontier, self.p_rel);
            if !fresh.is_zero() {
                let prior = self.p_rel;
                self.record_new_tuples(fresh, prior);
            }
        }
        let mut delta = frontier;
        self.p_rel = self.m.or(self.p_rel, delta);
        while !delta.is_zero() {
            self.stats.propagations += 1;
            // new(dw, dl) = ∃dv. E(dv, dw) ∧ delta(dv, dl)
            let stepped = self.m.relprod(self.e_rel, delta, self.cube_v);
            let stepped = self.m.rename(stepped, &self.dw, &self.dv);
            let new = self.m.diff(stepped, self.p_rel);
            if new.is_zero() {
                break;
            }
            self.stats.propagations_changed += 1;
            if self.prov.is_some() {
                self.record_new_tuples(new, delta);
            }
            self.p_rel = self.m.or(self.p_rel, new);
            delta = new;
        }
    }

    /// The points-to row of variable `x`, as a set over `dl`.
    fn row(&mut self, x: VarId) -> Bdd {
        let vx = self.m.domain_value(&self.dv, x.as_u32() as u64);
        self.m.relprod(self.p_rel, vx, self.cube_v)
    }

    /// Enumerates the tuples of `new` (all absent from `p_rel`) and records
    /// each as propagated from some predecessor whose `delta` row held the
    /// location. The probes are read-only BDD operations, so counters and
    /// the fixpoint itself are unaffected.
    fn record_new_tuples(&mut self, new: Bdd, delta: Bdd) {
        let mut records: Vec<(u32, u32, Reason)> = Vec::new();
        let cube_l = self.m.domain_cube(&self.dl);
        let target_col = self.m.exists(new, cube_l);
        let targets = self.m.domain_values(target_col, &self.dv);
        for w in targets {
            let vw = self.m.domain_value(&self.dv, w);
            let row = self.m.relprod(new, vw, self.cube_v);
            let locs = self.m.domain_values(row, &self.dl);
            let ww = self.m.domain_value(&self.dw, w);
            let preds_bdd = self.m.relprod(self.e_rel, ww, self.cube_w);
            let preds = self.m.domain_values(preds_bdd, &self.dv);
            for loc in locs {
                let src = preds.iter().copied().find(|&v| {
                    let t = self.m.tuple(&[(&self.dv, v), (&self.dl, loc)]);
                    !self.m.and(delta, t).is_zero()
                });
                if let Some(v) = src {
                    records.push((w as u32, loc as u32, Reason::PropagatedFrom(v as u32)));
                }
            }
        }
        let p = self.prov.as_mut().expect("caller checked");
        let n = records.len() as u64;
        for (w, loc, r) in records {
            p.record_tuple(w, loc, r);
        }
        p.metrics.observe("propagation_delta", n);
    }

    /// Enumerates `new_edges` and attributes each to the complex constraint
    /// relation that implies it under the current `P`.
    fn record_new_edges(&mut self, new_edges: Bdd) {
        let mut records: Vec<(u32, u32, Reason)> = Vec::new();
        let src_col = self.m.exists(new_edges, self.cube_w);
        let srcs = self.m.domain_values(src_col, &self.dv);
        for sv in srcs {
            let vs = self.m.domain_value(&self.dv, sv);
            let drow = self.m.relprod(new_edges, vs, self.cube_v);
            for dv in self.m.domain_values(drow, &self.dw) {
                let reason = self.edge_reason(sv, dv).unwrap_or(Reason::CopyConstraint);
                records.push((sv as u32, dv as u32, reason));
            }
        }
        let p = self.prov.as_mut().expect("caller checked");
        for (s, d, r) in records {
            p.record_edge(s, d, r);
        }
    }

    /// Finds one justification for the complex-constraint edge `s → d`:
    /// a load/store relation row plus a points-to member that maps to one
    /// endpoint through `loc2node` (offset 0) or `Add_k` (offset k).
    fn edge_reason(&mut self, s: u64, d: u64) -> Option<Reason> {
        let wd = self.m.domain_value(&self.dw, d);
        let ws = self.m.domain_value(&self.dw, s);
        // 0-offset loads: (ptr, d) ∈ L, o ∈ pts(ptr), node(o) = s.
        let ptrs_bdd = self.m.relprod(self.load_rel, wd, self.cube_w);
        for ptr in self.m.domain_values(ptrs_bdd, &self.dv) {
            let prow = self.row(VarId::from_u32(ptr as u32));
            for o in self.m.domain_values(prow, &self.dl) {
                let t = self.m.tuple(&[(&self.dl, o), (&self.dv, s)]);
                if !self.m.and(self.loc2node, t).is_zero() {
                    return Some(Reason::LoadEdge {
                        pivot: ptr as u32,
                        loc: o as u32,
                    });
                }
            }
        }
        // 0-offset stores: (ptr, s) ∈ S, o ∈ pts(ptr), node(o) = d.
        let ptrs_bdd = self.m.relprod(self.store_rel, ws, self.cube_w);
        for ptr in self.m.domain_values(ptrs_bdd, &self.dv) {
            let prow = self.row(VarId::from_u32(ptr as u32));
            for o in self.m.domain_values(prow, &self.dl) {
                let t = self.m.tuple(&[(&self.dl, o), (&self.dv, d)]);
                if !self.m.and(self.loc2node, t).is_zero() {
                    return Some(Reason::StoreEdge {
                        pivot: ptr as u32,
                        loc: o as u32,
                    });
                }
            }
        }
        // Offset variants: Add_k maps the member t to the node of t + k.
        for i in 0..self.offsets.len() {
            let (_, l_k, s_k, add) = self.offsets[i];
            if !l_k.is_zero() {
                let ptrs_bdd = self.m.relprod(l_k, wd, self.cube_w);
                for ptr in self.m.domain_values(ptrs_bdd, &self.dv) {
                    let prow = self.row(VarId::from_u32(ptr as u32));
                    for t in self.m.domain_values(prow, &self.dl) {
                        let tup = self.m.tuple(&[(&self.dl, t), (&self.dv, s)]);
                        if !self.m.and(add, tup).is_zero() {
                            return Some(Reason::LoadEdge {
                                pivot: ptr as u32,
                                loc: t as u32,
                            });
                        }
                    }
                }
            }
            if !s_k.is_zero() {
                let ptrs_bdd = self.m.relprod(s_k, ws, self.cube_w);
                for ptr in self.m.domain_values(ptrs_bdd, &self.dv) {
                    let prow = self.row(VarId::from_u32(ptr as u32));
                    for t in self.m.domain_values(prow, &self.dl) {
                        let tup = self.m.tuple(&[(&self.dl, t), (&self.dv, d)]);
                        if !self.m.and(add, tup).is_zero() {
                            return Some(Reason::StoreEdge {
                                pivot: ptr as u32,
                                loc: t as u32,
                            });
                        }
                    }
                }
            }
        }
        None
    }

    /// Materializes all edges implied by the complex constraints under the
    /// current `P`. Returns the edges (possibly already present).
    fn complex_edges(&mut self) -> Bdd {
        let cube_l = self.m.domain_cube(&self.dl);
        // Locations resolve to nodes through N (identity until HCD merges).
        let n_lv = self.loc2node;
        let n_lw = self.m.rename(n_lv, &self.dv, &self.dw);
        // Loads: { node(o) → dst : (ptr, dst) ∈ L, o ∈ pts(ptr) }.
        //   X(dl, dw) = ∃dv. P(dv, dl) ∧ L(dv, dw); map dl through N.
        let x = self.m.relprod(self.p_rel, self.load_rel, self.cube_v);
        let e_load = self.m.relprod(x, n_lv, cube_l);
        // Stores: { src → node(o) : (ptr, src) ∈ S, o ∈ pts(ptr) }.
        //   Y(dl, dw) = ∃dv. P(dv, dl) ∧ S(dv, dw) — swap src into place,
        //   then map the location column through N.
        let y = self.m.relprod(self.p_rel, self.store_rel, self.cube_v);
        let y = self.m.rename(y, &self.dw, &self.dv); // (dv = src, dl = o)
        let e_store = self.m.relprod(y, n_lw, cube_l); // (dv = src, dw = node(o))
        let mut edges = self.m.or(e_load, e_store);
        // Offset (indirect-call) constraints, batched per offset value:
        // the arithmetic `t ↦ t + k` is itself a relation (Add_k), so these
        // reduce to two more relational products per offset.
        for i in 0..self.offsets.len() {
            let (_, l_k, s_k, add_lv) = self.offsets[i];
            if !l_k.is_zero() {
                // X(dl = t, dw = dst) = ∃dv. P(dv, dl) ∧ L_k(dv, dw);
                // E(dv = t + k, dw = dst) = ∃dl. X ∧ Add_k(dl, dv).
                let x = self.m.relprod(self.p_rel, l_k, self.cube_v);
                let e = self.m.relprod(x, add_lv, cube_l);
                edges = self.m.or(edges, e);
            }
            if !s_k.is_zero() {
                // Y(dl = t, dw = src) = ∃dv. P(dv, dl) ∧ S_k(dv, dw);
                // swap src into column 1, then map t to t + k in column 2.
                let y = self.m.relprod(self.p_rel, s_k, self.cube_v);
                let y = self.m.rename(y, &self.dw, &self.dv); // (dv = src, dl = t)
                let add_lw = self.m.rename(add_lv, &self.dv, &self.dw); // Add_k(dl, dw)
                let e = self.m.relprod(y, add_lw, cube_l); // (dv = src, dw = t + k)
                edges = self.m.or(edges, e);
            }
        }
        edges
    }

    /// Applies the HCD pairs: collapse every `v ∈ pts(a)` with `b` by
    /// rewriting the relations through a rename relation. With an observer
    /// attached, wall time goes to `stats.cycle_time` and merges are
    /// reported as a [`SolveEvent::CycleCollapsed`].
    fn apply_hcd(&mut self, hcd: &HcdOffline) {
        if !self.obs.enabled() {
            return self.apply_hcd_inner(hcd);
        }
        let t0 = Instant::now();
        let collapsed_before = self.stats.nodes_collapsed;
        self.apply_hcd_inner(hcd);
        self.stats.cycle_time += t0.elapsed();
        let members = self.stats.nodes_collapsed - collapsed_before;
        if members > 0 {
            self.obs.emit(&SolveEvent::CycleCollapsed { members });
        }
    }

    fn apply_hcd_inner(&mut self, hcd: &HcdOffline) {
        let mut merges: Vec<(VarId, VarId)> = Vec::new();
        let pairs: Vec<_> = hcd.pairs().collect();
        for (a, b) in pairs {
            let a_r = self.uf.find(a);
            let row = self.row(a_r);
            if row.is_zero() {
                continue;
            }
            for v in self.m.domain_values(row, &self.dl) {
                let v = VarId::from_u32(v as u32);
                let rv = self.uf.find(v);
                let rb = self.uf.find(b);
                if rv != rb {
                    let w = self.uf.union(rv, rb);
                    let l = if w == rv { rb } else { rv };
                    merges.push((l, w));
                    self.stats.nodes_collapsed += 1;
                    if let Some(p) = self.prov.as_mut() {
                        p.record_merge(l.as_u32(), w.as_u32());
                    }
                }
            }
        }
        if merges.is_empty() {
            return;
        }
        // Rename relation M = identity off the merged set plus
        // (loser → winner) pairs, in the three column layouts needed to
        // rewrite both columns of a (dv, dw) relation.
        let mut merged_v = Bdd::ZERO;
        let mut pairs_vw = Bdd::ZERO;
        let mut pairs_vl = Bdd::ZERO;
        let mut pairs_wl = Bdd::ZERO;
        for &(l, w0) in &merges {
            let w = self.uf.find(w0); // winners can merge further
            let lv = self.m.domain_value(&self.dv, l.as_u32() as u64);
            merged_v = self.m.or(merged_v, lv);
            let t_vw = self.pair(l, w);
            pairs_vw = self.m.or(pairs_vw, t_vw);
            let t_vl = self
                .m
                .tuple(&[(&self.dv, l.as_u32() as u64), (&self.dl, w.as_u32() as u64)]);
            pairs_vl = self.m.or(pairs_vl, t_vl);
            let t_wl = self
                .m
                .tuple(&[(&self.dw, l.as_u32() as u64), (&self.dl, w.as_u32() as u64)]);
            pairs_wl = self.m.or(pairs_wl, t_wl);
        }
        let eq_vw = self.m.domain_equals(&self.dv, &self.dw);
        let eq_vl = self.m.domain_equals(&self.dv, &self.dl);
        let eq_wl = self.m.domain_equals(&self.dw, &self.dl);
        let not_merged = self.m.not(merged_v);
        let id_vw = self.m.and(eq_vw, not_merged);
        let m_vw = self.m.or(id_vw, pairs_vw);
        let id_vl = self.m.and(eq_vl, not_merged);
        let m_vl = self.m.or(id_vl, pairs_vl);
        let merged_w = self.m.rename(merged_v, &self.dv, &self.dw);
        let not_merged_w = self.m.not(merged_w);
        let id_wl = self.m.and(eq_wl, not_merged_w);
        let m_wl = self.m.or(id_wl, pairs_wl);

        // P column 1: P'(dw, dl) = ∃dv. M_vw(dv, dw) ∧ P(dv, dl).
        let p1 = self.m.relprod(m_vw, self.p_rel, self.cube_v);
        self.p_rel = self.m.rename(p1, &self.dw, &self.dv);
        // Both columns of each (dv, dw) relation, via the scratch domain.
        self.e_rel = self.rewrite_vw(self.e_rel, m_vl, m_wl);
        self.load_rel = self.rewrite_vw(self.load_rel, m_vl, m_wl);
        self.store_rel = self.rewrite_vw(self.store_rel, m_vl, m_wl);
        for i in 0..self.offsets.len() {
            let (_, l_k, s_k, add_lv) = self.offsets[i];
            self.offsets[i].1 = self.rewrite_vw(l_k, m_vl, m_wl);
            self.offsets[i].2 = self.rewrite_vw(s_k, m_vl, m_wl);
            // Add_k's first column holds *locations* (never renamed); its
            // second column holds graph nodes: compose with M.
            let x = self.m.relprod(add_lv, m_vw, self.cube_v); // (dl, dw)
            self.offsets[i].3 = self.m.rename(x, &self.dw, &self.dv);
        }
        // Same for the location→node relation.
        let x = self.m.relprod(self.loc2node, m_vw, self.cube_v); // (dl, dw)
        self.loc2node = self.m.rename(x, &self.dw, &self.dv);
    }

    /// Rewrites both columns of a `(dv, dw)` relation through the merge
    /// relation (given in its `(dv, dl)` and `(dw, dl)` layouts).
    fn rewrite_vw(&mut self, r: Bdd, m_vl: Bdd, m_wl: Bdd) -> Bdd {
        let c1 = self.m.relprod(m_vl, r, self.cube_v); // (dl, dw)
        let c1 = self.m.rename(c1, &self.dl, &self.dv); // (dv, dw)
        let c2 = self.m.relprod(c1, m_wl, self.cube_w); // (dv, dl)
        self.m.rename(c2, &self.dl, &self.dw) // (dv, dw)
    }

    fn solve(
        mut self,
        hcd: Option<&HcdOffline>,
    ) -> (Solution, SolverStats, Option<Box<ProvRecorder>>) {
        self.load_constraints();
        // The base tuples are the first frontier.
        let base = self.p_rel;
        self.p_rel = Bdd::ZERO;
        let mut frontier = base;
        loop {
            self.propagate(frontier);
            // The cadence counts rounds here: BLQ has no worklist, so the
            // snapshot reports zero pending work and the BDD heap as the
            // points-to footprint.
            if self.obs.tick() {
                let snapshot = ProgressSnapshot {
                    worklist_len: 0,
                    nodes_processed: self.stats.nodes_processed,
                    propagations: self.stats.propagations,
                    pts_bytes: self.m.heap_bytes(),
                };
                self.obs.emit(&SolveEvent::Progress(snapshot));
            }
            let collapsed_before = self.stats.nodes_collapsed;
            let edges = self.complex_edges();
            let new_edges = self.m.diff(edges, self.e_rel);
            if !new_edges.is_zero() {
                if self.prov.is_some() {
                    self.record_new_edges(new_edges);
                }
                self.e_rel = self.m.or(self.e_rel, new_edges);
                self.stats.edges_added += 1;
                self.obs.emit(&SolveEvent::GraphMutation { edges_added: 1 });
            }
            if let Some(h) = hcd {
                self.apply_hcd(h);
            }
            let merged = self.stats.nodes_collapsed != collapsed_before;
            if new_edges.is_zero() && !merged {
                break;
            }
            frontier = if merged {
                // Rewritten relations invalidate the frontier: re-push all.
                self.p_rel
            } else {
                // Incremental: only rows flowing over the new edges.
                let stepped = self.m.relprod(new_edges, self.p_rel, self.cube_v);
                self.m.rename(stepped, &self.dw, &self.dv)
            };
        }
        // Extract the solution.
        let n = self.program.num_vars();
        let mut row_cache: ant_common::fx::FxHashMap<u32, Vec<u32>> = Default::default();
        let mut sets = Vec::with_capacity(n);
        for i in 0..n {
            let rep = self.uf.find(VarId::new(i));
            if let std::collections::hash_map::Entry::Vacant(e) = row_cache.entry(rep.as_u32()) {
                let row = self.row(rep);
                let vals: Vec<u32> = self
                    .m
                    .domain_values(row, &self.dl)
                    .into_iter()
                    .map(|v| v as u32)
                    .collect();
                e.insert(vals);
            }
            sets.push(row_cache[&rep.as_u32()].clone());
        }
        self.stats.pts_bytes = self.m.heap_bytes();
        self.stats.aux_bytes = self.uf.heap_bytes();
        (Solution::from_sets(sets), self.stats, self.prov)
    }
}

/// Runs BLQ (optionally with HCD pairs applied through BDD renaming).
pub(crate) fn blq(
    program: &Program,
    hcd: Option<&HcdOffline>,
    obs: &mut Obs<'_>,
    prov: Option<Box<ProvRecorder>>,
) -> (Solution, SolverStats, Option<Box<ProvRecorder>>) {
    Blq::new(program, obs, prov).solve(hcd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_sound;
    use ant_constraints::ProgramBuilder;

    fn program_with_cycle() -> Program {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let x = pb.var("x");
        let y = pb.var("y");
        let q = pb.var("q");
        let r = pb.var("r");
        pb.addr_of(p, x);
        pb.addr_of(q, y);
        pb.store(p, q); // *p = q
        pb.load(r, p); // r = *p
        pb.copy(x, y);
        pb.copy(y, x);
        pb.finish()
    }

    #[test]
    fn blq_solves_loads_and_stores() {
        let program = program_with_cycle();
        let (sol, stats, _) = blq(&program, None, &mut Obs::none(), None);
        assert_sound(&program, &sol);
        let r = program.var_by_name("r").unwrap();
        let y = program.var_by_name("y").unwrap();
        assert!(sol.may_point_to(r, y));
        assert!(stats.propagations > 0);
        assert!(stats.pts_bytes > 0);
        assert_eq!(stats.nodes_collapsed, 0, "plain BLQ never collapses");
    }

    #[test]
    fn blq_hcd_agrees_with_plain() {
        let program = program_with_cycle();
        let (s1, _, _) = blq(&program, None, &mut Obs::none(), None);
        let hcd = HcdOffline::analyze(&program);
        let (s2, st2, _) = blq(&program, Some(&hcd), &mut Obs::none(), None);
        assert_sound(&program, &s2);
        assert!(s1.equiv(&s2), "diff at {:?}", s1.first_difference(&s2));
        let _ = st2;
    }

    #[test]
    fn blq_handles_offsets() {
        let mut pb = ProgramBuilder::new();
        let f = pb.function("f", 3);
        let fp = pb.var("fp");
        let q = pb.var("q");
        let x = pb.var("x");
        let r = pb.var("r");
        pb.copy(f.offset(1), f.offset(2));
        pb.addr_of(fp, f);
        pb.addr_of(q, x);
        pb.store_offset(fp, q, 2);
        pb.load_offset(r, fp, 1);
        let program = pb.finish();
        let (sol, _, _) = blq(&program, None, &mut Obs::none(), None);
        assert_sound(&program, &sol);
        assert!(sol.may_point_to(r, x));
    }

    #[test]
    fn empty_program_is_fine() {
        let program = ProgramBuilder::new().finish();
        let (sol, _, _) = blq(&program, None, &mut Obs::none(), None);
        assert_eq!(sol.num_vars(), 0);
    }

    #[test]
    fn chain_through_heap() {
        // p = &h; *p = q; q = &x; r = *p; s = *r — two dereference levels.
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let h = pb.var("h");
        let q = pb.var("q");
        let x = pb.var("x");
        let r = pb.var("r");
        let s = pb.var("s");
        pb.addr_of(p, h);
        pb.store(p, q);
        pb.addr_of(q, x);
        pb.load(r, p);
        pb.load(s, r);
        let program = pb.finish();
        let (sol, _, _) = blq(&program, None, &mut Obs::none(), None);
        assert_sound(&program, &sol);
        assert!(sol.may_point_to(r, x));
    }
}
