//! Difference propagation (Pearce, Kelly & Hankin, SCAM 2003) as an
//! ablation: instead of pushing a node's *whole* points-to set along each
//! outgoing edge, push only the part the target has not been sent before.
//!
//! §2 of the paper cites this technique ("Online cycle detection and
//! difference propagation for pointer analysis") but the evaluated solvers
//! all propagate full sets; `Algorithm::LcdDiff` lets the trade-off be
//! measured: smaller unions per propagation, at the cost of one extra set
//! per node and reconciliation on every collapse.
//!
//! The machinery itself — per-node `sent` markers, `delta = pts − sent`
//! once per pop, epoch-gated collapse invalidation — now lives in
//! [`OnlineState`](crate::state::OnlineState) as [`PropMode::Diff`], where
//! *every* state-based solver can use it (`--prop diff`). `LcdDiff` is
//! exactly LCD under that mode, so this module is a one-line wrapper; it
//! survives as the named ablation so Table 5 keeps its LCD-DP row.

use crate::algo::PropMode;
use crate::pts::PtsRepr;
use crate::state::OnlineState;
use ant_common::obs::prov::ProvRecorder;
use ant_common::obs::Obs;
use ant_common::worklist::WorklistKind;
use ant_constraints::hcd::HcdOffline;
use ant_constraints::Program;

/// LCD with difference propagation: [`super::worklist_solvers::lcd`] under
/// [`PropMode::Diff`].
pub(crate) fn lcd_diff<'o, P: PtsRepr>(
    program: &Program,
    wk: WorklistKind,
    hcd: Option<&HcdOffline>,
    obs: Obs<'o>,
    prov: Option<Box<ProvRecorder>>,
) -> OnlineState<'o, P> {
    super::worklist_solvers::lcd(program, wk, hcd, obs, prov, PropMode::Diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pts::BitmapPts;
    use crate::verify::assert_sound;
    use crate::Solution;
    use ant_frontend::workload::WorkloadSpec;

    #[test]
    fn agrees_with_basic_on_workloads() {
        for seed in [2u64, 77] {
            let program = WorkloadSpec::tiny(seed).generate();
            let reference = crate::solve_dyn(
                &program,
                &crate::SolverConfig::new(crate::Algorithm::Basic),
                crate::PtsKind::Bitmap,
            );
            for h in [false, true] {
                let hcd = h.then(|| HcdOffline::analyze(&program));
                let mut st = lcd_diff::<BitmapPts>(
                    &program,
                    WorklistKind::DividedLrf,
                    hcd.as_ref(),
                    Obs::none(),
                    None,
                );
                let sol = Solution::from_state(&mut st);
                assert_sound(&program, &sol);
                assert!(
                    sol.equiv(&reference.solution),
                    "diff propagation differs (seed {seed}, hcd {h}) at {:?}",
                    sol.first_difference(&reference.solution)
                );
            }
        }
    }

    /// The ablation must behave exactly like full-propagation LCD on every
    /// §5.3 counter — difference propagation changes *how much* each union
    /// moves, never the solver's trajectory — while measurably sending
    /// fewer bytes.
    #[test]
    fn counters_match_full_propagation_lcd_exactly() {
        let program = WorkloadSpec::tiny(9).generate();
        let full = super::super::worklist_solvers::lcd::<BitmapPts>(
            &program,
            WorklistKind::DividedLrf,
            None,
            Obs::none(),
            None,
            PropMode::Full,
        );
        let diff =
            lcd_diff::<BitmapPts>(&program, WorklistKind::DividedLrf, None, Obs::none(), None);
        assert_eq!(diff.stats.nodes_processed, full.stats.nodes_processed);
        assert_eq!(diff.stats.propagations, full.stats.propagations);
        assert_eq!(
            diff.stats.propagations_changed,
            full.stats.propagations_changed
        );
        assert_eq!(diff.stats.edges_added, full.stats.edges_added);
        assert_eq!(diff.stats.complex_iters, full.stats.complex_iters);
        assert_eq!(diff.stats.cycle_searches, full.stats.cycle_searches);
        assert_eq!(diff.stats.nodes_searched, full.stats.nodes_searched);
        assert_eq!(diff.stats.cycles_found, full.stats.cycles_found);
        assert_eq!(diff.stats.nodes_collapsed, full.stats.nodes_collapsed);
        assert_eq!(
            diff.stats.propagated_full_bytes,
            full.stats.propagated_full_bytes
        );
        assert!(
            diff.stats.propagated_bytes < full.stats.propagated_bytes,
            "delta sends must beat full sends on a collapse-heavy workload \
             ({} vs {})",
            diff.stats.propagated_bytes,
            full.stats.propagated_bytes
        );
        // Satellite regression: the diff machinery's memory (the `sent`
        // sets, their target lists, the epochs) reaches `aux_bytes`. The
        // accounting runs at finalization, so compare full solves.
        let full = crate::solve_dyn(
            &program,
            &crate::SolverConfig::new(crate::Algorithm::Lcd),
            crate::PtsKind::Bitmap,
        );
        let diff = crate::solve_dyn(
            &program,
            &crate::SolverConfig::new(crate::Algorithm::LcdDiff),
            crate::PtsKind::Bitmap,
        );
        assert!(
            diff.stats.aux_bytes > full.stats.aux_bytes,
            "diff-mode bookkeeping must be accounted ({} vs {})",
            diff.stats.aux_bytes,
            full.stats.aux_bytes
        );
    }
}
