//! Difference propagation (Pearce, Kelly & Hankin, SCAM 2003) as an
//! ablation: instead of pushing a node's *whole* points-to set along each
//! outgoing edge, push only the part the target has not been sent before.
//!
//! §2 of the paper cites this technique ("Online cycle detection and
//! difference propagation for pointer analysis") but the evaluated solvers
//! all propagate full sets; `Algorithm::LcdDiff` lets the trade-off be
//! measured: smaller unions per propagation, at the cost of one extra set
//! per node and reconciliation on every collapse.

use crate::pts::PtsRepr;
use crate::state::OnlineState;
use ant_common::fx::FxHashSet;
use ant_common::obs::prov::ProvRecorder;
use ant_common::obs::Obs;
use ant_common::worklist::WorklistKind;
use ant_common::VarId;
use ant_constraints::hcd::HcdOffline;
use ant_constraints::Program;

/// LCD with difference propagation. The per-node `sent` marker records the
/// part of the points-to set already pushed to *all* current successors;
/// each pop pushes only `pts − sent`. Cycle collapses intersect the two
/// markers (a safe under-approximation: the merged node simply re-sends),
/// and newly added edges reset the source's marker so the full set reaches
/// the new target.
pub(crate) fn lcd_diff<'o, P: PtsRepr>(
    program: &Program,
    wk: WorklistKind,
    hcd: Option<&HcdOffline>,
    obs: Obs<'o>,
    prov: Option<Box<ProvRecorder>>,
) -> OnlineState<'o, P> {
    let mut st = OnlineState::<P>::new(program);
    st.obs = obs;
    if let Some(p) = prov {
        st.install_prov(program, p);
    }
    if let Some(h) = hcd {
        st.install_hcd(h);
    }
    let mut wl = wk.build(st.n);
    st.seed_worklist(wl.as_mut());
    let mut triggered: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut triggered_epoch = st.stats.nodes_collapsed;
    // sent[n]: subset of pts(n) already propagated to every successor of n.
    let mut sent: Vec<P> = vec![P::default(); st.n];
    // Successor count when `sent[n]` was last valid: any growth means a new
    // target exists that has seen nothing (new edges can be added by *any*
    // node's complex-constraint processing, not just n's own). Collapses
    // can restructure successor sets without changing the count, so any
    // intervening collapse also invalidates the marker (checked lazily via
    // the global collapse counter).
    let mut seen_degree: Vec<usize> = vec![0; st.n];
    let mut seen_collapse: Vec<u64> = vec![u64::MAX; st.n];

    while let Some(popped) = wl.pop() {
        let mut n = st.find(popped);
        st.stats.nodes_processed += 1;
        st.note_pop(popped);
        st.tick_progress(|| wl.len());
        if hcd.is_some() {
            n = st.hcd_step(n, wl.as_mut());
        }
        st.process_complex(n, wl.as_mut());
        super::worklist_solvers::canonicalize_triggered(
            &mut st,
            &mut triggered,
            &mut triggered_epoch,
        );
        let n = st.find(n);
        let mut targets = st.take_succ_scratch();
        st.canonical_succs_into(n, &mut targets);
        if targets.len() != seen_degree[n.index()]
            || seen_collapse[n.index()] != st.stats.nodes_collapsed
        {
            // Gained (or restructured) successors: re-send everything.
            sent[n.index()] = P::default();
            seen_degree[n.index()] = targets.len();
            seen_collapse[n.index()] = st.stats.nodes_collapsed;
        }
        let delta = st.pts[n.index()].minus(&mut st.ctx, &sent[n.index()]);
        if delta.is_empty(&st.ctx) {
            st.put_succ_scratch(targets);
            continue;
        }
        let mut any_collapse = false;
        for &z_raw in &targets {
            let n_now = st.find(n);
            let mut z = st.find(VarId::from_u32(z_raw));
            if z == n_now {
                continue;
            }
            let edge = (n_now.as_u32(), z.as_u32());
            // LCD's trigger still compares full sets.
            if st.pts[z.index()].set_eq(&st.ctx, &st.pts[n_now.index()]) {
                if triggered.contains(&edge) {
                    continue;
                }
                st.stats.cycle_searches += 1;
                let search = st.cycle_search(&[z]);
                any_collapse |= st.collapse_sccs(&search, wl.as_mut()) > 0;
                triggered.insert(edge);
                z = st.find(z);
                let n2 = st.find(n_now);
                if z == n2 || st.pts[z.index()].set_eq(&st.ctx, &st.pts[n2.index()]) {
                    continue;
                }
            }
            // Push only the delta.
            st.stats.propagations += 1;
            if st.union_delta_from(z, &delta, n_now) {
                st.stats.propagations_changed += 1;
                wl.push(z);
            }
        }
        st.put_succ_scratch(targets);
        let n_final = st.find(n);
        if n_final == n && !any_collapse {
            // The delta has now reached every successor.
            sent[n.index()].union_from(&mut st.ctx, &delta);
        } else {
            // The node merged mid-loop: re-send everything next pop.
            sent[n_final.index()] = P::default();
            wl.push(n_final);
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pts::BitmapPts;
    use crate::verify::assert_sound;
    use crate::Solution;
    use ant_frontend::workload::WorkloadSpec;

    #[test]
    fn agrees_with_basic_on_workloads() {
        for seed in [2u64, 77] {
            let program = WorkloadSpec::tiny(seed).generate();
            let reference = crate::solve_dyn(
                &program,
                &crate::SolverConfig::new(crate::Algorithm::Basic),
                crate::PtsKind::Bitmap,
            );
            for h in [false, true] {
                let hcd = h.then(|| HcdOffline::analyze(&program));
                let mut st = lcd_diff::<BitmapPts>(
                    &program,
                    WorklistKind::DividedLrf,
                    hcd.as_ref(),
                    Obs::none(),
                    None,
                );
                let sol = Solution::from_state(&mut st);
                assert_sound(&program, &sol);
                assert!(
                    sol.equiv(&reference.solution),
                    "diff propagation differs (seed {seed}, hcd {h}) at {:?}",
                    sol.first_difference(&reference.solution)
                );
            }
        }
    }
}
