//! The final points-to solution.

use crate::pts::PtsRepr;
use crate::state::OnlineState;
use ant_common::fx::FxHashMap;
use ant_common::{AntError, QueryErrorKind, VarId};
use ant_constraints::Program;

/// A fully materialized points-to solution: for every variable, the sorted
/// set of location ids it may point to.
///
/// All nine solvers of the paper compute the *same* solution (inclusion-based
/// analysis has one fixpoint; the algorithms differ only in how fast they
/// reach it), which [`Solution::equiv`] checks in the test suite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    pts: Vec<Vec<u32>>,
}

impl Solution {
    /// Builds a solution directly from per-variable sets.
    pub fn from_sets(mut pts: Vec<Vec<u32>>) -> Self {
        for set in &mut pts {
            set.sort_unstable();
            set.dedup();
        }
        Solution { pts }
    }

    /// Expands solver state into a per-original-variable solution by
    /// resolving collapsed nodes through the union-find.
    pub(crate) fn from_state<P: PtsRepr>(st: &mut OnlineState<P>) -> Self {
        let mut cache: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        let mut pts = Vec::with_capacity(st.n);
        for i in 0..st.n {
            let rep = st.find(VarId::new(i));
            let set = cache
                .entry(rep.as_u32())
                .or_insert_with(|| st.pts[rep.index()].to_vec(&st.ctx));
            pts.push(set.clone());
        }
        Solution { pts }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.pts.len()
    }

    /// The sorted points-to set of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn points_to(&self, v: VarId) -> &[u32] {
        &self.pts[v.index()]
    }

    /// Returns `true` if `v` may point to `loc`.
    pub fn may_point_to(&self, v: VarId, loc: VarId) -> bool {
        self.pts[v.index()].binary_search(&loc.as_u32()).is_ok()
    }

    /// May `a` and `b` alias (their points-to sets intersect)?
    pub fn may_alias(&self, a: VarId, b: VarId) -> bool {
        let (mut x, mut y) = (self.pts[a.index()].iter(), self.pts[b.index()].iter());
        let (mut xv, mut yv) = (x.next(), y.next());
        while let (Some(&u), Some(&v)) = (xv, yv) {
            match u.cmp(&v) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => xv = x.next(),
                std::cmp::Ordering::Greater => yv = y.next(),
            }
        }
        false
    }

    /// The points-to set of the variable named `name`, as location *names*
    /// — the stable query API. `program` supplies the name table and must
    /// be the program this solution speaks about (for a pipeline run, the
    /// *original* program and the expanded solution). Callers never touch
    /// raw post-pass `VarId`s.
    ///
    /// # Errors
    ///
    /// [`QueryErrorKind::UnknownVar`] when no variable is named `name`.
    ///
    /// ```
    /// use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig};
    /// use ant_constraints::parse_program;
    ///
    /// let program = parse_program("p = &x\nq = p\n").unwrap();
    /// let out = solve_dyn(&program, &SolverConfig::new(Algorithm::LcdHcd), PtsKind::Bitmap);
    /// assert_eq!(out.solution.points_to_names(&program, "q").unwrap(), ["x"]);
    /// assert!(out.solution.points_to_names(&program, "zz").is_err());
    /// ```
    pub fn points_to_names<'p>(
        &self,
        program: &'p Program,
        name: &str,
    ) -> Result<Vec<&'p str>, AntError> {
        let v = self.named_var(program, name)?;
        Ok(self
            .points_to(v)
            .iter()
            .map(|&loc| program.var_name(VarId::new(loc as usize)))
            .collect())
    }

    /// May the variables named `a` and `b` alias? The name-level form of
    /// [`may_alias`](Self::may_alias); same contract as
    /// [`points_to_names`](Self::points_to_names).
    ///
    /// # Errors
    ///
    /// [`QueryErrorKind::UnknownVar`] when either name is unknown.
    pub fn may_alias_names(&self, program: &Program, a: &str, b: &str) -> Result<bool, AntError> {
        let va = self.named_var(program, a)?;
        let vb = self.named_var(program, b)?;
        Ok(self.may_alias(va, vb))
    }

    fn named_var(&self, program: &Program, name: &str) -> Result<VarId, AntError> {
        program.var_by_name(name).ok_or_else(|| {
            AntError::query(
                QueryErrorKind::UnknownVar,
                format!("no variable named `{name}`"),
            )
        })
    }

    /// Sum of all points-to set sizes (a standard precision metric).
    pub fn total_pts_size(&self) -> usize {
        self.pts.iter().map(Vec::len).sum()
    }

    /// Per-variable set sizes, in variable order (feeds the metrics
    /// registry's fattest-set hotspot table).
    pub fn set_sizes(&self) -> impl Iterator<Item = (VarId, usize)> + '_ {
        self.pts
            .iter()
            .enumerate()
            .map(|(i, s)| (VarId::new(i), s.len()))
    }

    /// Pointwise equality with another solution.
    pub fn equiv(&self, other: &Solution) -> bool {
        self.pts == other.pts
    }

    /// Pointwise superset test: does `self` over-approximate `other`?
    pub fn subsumes(&self, other: &Solution) -> bool {
        self.pts.len() == other.pts.len()
            && self.pts.iter().zip(&other.pts).all(|(a, b)| {
                let mut i = 0;
                b.iter().all(|v| {
                    while i < a.len() && a[i] < *v {
                        i += 1;
                    }
                    i < a.len() && a[i] == *v
                })
            })
    }

    /// Composes with the pass pipeline's solution mapping: the solution of
    /// the preprocessed program, re-expanded to answer queries about
    /// original variables. One call suffices no matter how many renaming
    /// passes ran — the mapping already composes them.
    pub fn expand(&self, mapping: &ant_constraints::pipeline::SolutionMapping) -> Solution {
        let pts = (0..self.pts.len())
            .map(|i| self.pts[mapping.rep_of(VarId::new(i)).index()].clone())
            .collect();
        Solution { pts }
    }

    /// First variable (if any) whose sets differ — for test diagnostics.
    pub fn first_difference(&self, other: &Solution) -> Option<VarId> {
        self.pts
            .iter()
            .zip(&other.pts)
            .position(|(a, b)| a != b)
            .map(VarId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn from_sets_sorts_and_dedups() {
        let s = Solution::from_sets(vec![vec![3, 1, 3], vec![]]);
        assert_eq!(s.points_to(v(0)), &[1, 3]);
        assert_eq!(s.points_to(v(1)), &[] as &[u32]);
        assert_eq!(s.total_pts_size(), 2);
    }

    #[test]
    fn alias_queries() {
        let s = Solution::from_sets(vec![vec![1, 5], vec![5, 9], vec![2]]);
        assert!(s.may_alias(v(0), v(1)));
        assert!(!s.may_alias(v(0), v(2)));
        assert!(s.may_point_to(v(0), v(5)));
        assert!(!s.may_point_to(v(0), v(2)));
    }

    #[test]
    fn equiv_and_subsumes() {
        let a = Solution::from_sets(vec![vec![1, 2], vec![3]]);
        let b = Solution::from_sets(vec![vec![2, 1], vec![3]]);
        let c = Solution::from_sets(vec![vec![1, 2, 4], vec![3]]);
        assert!(a.equiv(&b));
        assert!(c.subsumes(&a));
        assert!(!a.subsumes(&c));
        assert_eq!(a.first_difference(&b), None);
        assert_eq!(a.first_difference(&c), Some(v(0)));
    }

    #[test]
    fn name_level_queries() {
        use ant_common::{AntErrorKind, QueryErrorKind};
        use ant_constraints::ProgramBuilder;
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let q = pb.var("q");
        let x = pb.var("x");
        let _y = pb.var("y");
        pb.addr_of(p, x);
        pb.copy(q, p);
        let program = pb.finish();
        let mut pts = vec![Vec::new(); program.num_vars()];
        pts[p.index()] = vec![x.as_u32()];
        pts[q.index()] = vec![x.as_u32()];
        let s = Solution::from_sets(pts);
        assert_eq!(s.points_to_names(&program, "p").unwrap(), ["x"]);
        assert_eq!(s.points_to_names(&program, "y").unwrap(), [] as [&str; 0]);
        assert!(s.may_alias_names(&program, "p", "q").unwrap());
        assert!(!s.may_alias_names(&program, "p", "y").unwrap());
        let err = s.points_to_names(&program, "zz").unwrap_err();
        assert_eq!(err.kind(), AntErrorKind::Query(QueryErrorKind::UnknownVar));
        assert!(s.may_alias_names(&program, "p", "zz").is_err());
    }

    #[test]
    fn subsumes_rejects_shorter() {
        let a = Solution::from_sets(vec![vec![1]]);
        let b = Solution::from_sets(vec![vec![1], vec![]]);
        assert!(!a.subsumes(&b));
    }
}
