//! Points-to set representations.
//!
//! §5.4 of the paper compares two representations: GCC-style sparse bitmaps
//! and per-variable BDDs. Every solver here is generic over [`PtsRepr`], so
//! Tables 3/4 (bitmaps) and Tables 5/6 (BDDs) run the *same* solver code
//! instantiated at two types.

use ant_bdd::{BddManager, BddSet, Domain};
use ant_common::SparseBitmap;

/// A points-to set: a set of location ids (`u32`).
///
/// Representation-wide state (e.g. the shared BDD manager) lives in the
/// associated `Ctx`, created once per solver run.
pub trait PtsRepr: Default + Clone {
    /// Shared representation context (`()` for bitmaps, the BDD manager and
    /// location domain for BDDs).
    type Ctx;

    /// Creates the context for a location space of `num_locs` ids.
    fn make_ctx(num_locs: usize) -> Self::Ctx;

    /// Inserts a location; returns `true` if it was new.
    fn insert(&mut self, ctx: &mut Self::Ctx, loc: u32) -> bool;

    /// Membership test.
    fn contains(&self, ctx: &Self::Ctx, loc: u32) -> bool;

    /// In-place union; returns `true` if `self` changed.
    fn union_from(&mut self, ctx: &mut Self::Ctx, other: &Self) -> bool;

    /// Set equality — the test at the heart of Lazy Cycle Detection. O(1)
    /// for BDDs (hash-consed), O(elements) for bitmaps.
    fn set_eq(&self, ctx: &Self::Ctx, other: &Self) -> bool;

    /// Returns `true` if the set is empty.
    fn is_empty(&self, ctx: &Self::Ctx) -> bool;

    /// Number of locations.
    fn len(&self, ctx: &Self::Ctx) -> usize;

    /// Materializes the set in ascending order (BuDDy's `bdd_allsat` for the
    /// BDD representation — the cost §5.4 singles out).
    fn to_vec(&self, ctx: &Self::Ctx) -> Vec<u32>;

    /// Materializes `self − other` in ascending order (the delta iteration
    /// used when resolving complex constraints incrementally).
    fn minus_to_vec(&self, ctx: &mut Self::Ctx, other: &Self) -> Vec<u32>;

    /// In-place intersection; returns `true` if `self` changed. Used to
    /// combine "already processed" markers when nodes collapse.
    fn intersect_from(&mut self, ctx: &mut Self::Ctx, other: &Self) -> bool;

    /// The set difference `self − other` as a new set (used by the
    /// difference-propagation ablation).
    fn minus(&self, ctx: &mut Self::Ctx, other: &Self) -> Self;

    /// Heap bytes owned by this individual set (0 for BDDs — nodes live in
    /// the shared manager, accounted by [`ctx_bytes`](Self::ctx_bytes)).
    fn heap_bytes(&self) -> usize;

    /// Heap bytes owned by the shared context.
    fn ctx_bytes(ctx: &Self::Ctx) -> usize;

    /// Short name for reports: `"bitmap"` or `"bdd"`.
    const NAME: &'static str;
}

/// GCC-style sparse-bitmap points-to sets (the paper's default).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitmapPts(pub SparseBitmap);

impl PtsRepr for BitmapPts {
    type Ctx = ();

    fn make_ctx(_num_locs: usize) {}

    fn insert(&mut self, _ctx: &mut (), loc: u32) -> bool {
        self.0.insert(loc)
    }

    fn contains(&self, _ctx: &(), loc: u32) -> bool {
        self.0.contains(loc)
    }

    fn union_from(&mut self, _ctx: &mut (), other: &Self) -> bool {
        self.0.union_with(&other.0)
    }

    fn set_eq(&self, _ctx: &(), other: &Self) -> bool {
        self.0 == other.0
    }

    fn is_empty(&self, _ctx: &()) -> bool {
        self.0.is_empty()
    }

    fn len(&self, _ctx: &()) -> usize {
        self.0.len()
    }

    fn to_vec(&self, _ctx: &()) -> Vec<u32> {
        self.0.iter().collect()
    }

    fn minus_to_vec(&self, _ctx: &mut (), other: &Self) -> Vec<u32> {
        self.0.difference(&other.0).collect()
    }

    fn intersect_from(&mut self, _ctx: &mut (), other: &Self) -> bool {
        self.0.intersect_with(&other.0)
    }

    fn minus(&self, _ctx: &mut (), other: &Self) -> Self {
        let mut d = self.0.clone();
        d.subtract(&other.0);
        BitmapPts(d)
    }

    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes()
    }

    fn ctx_bytes(_ctx: &()) -> usize {
        0
    }

    const NAME: &'static str = "bitmap";
}

/// Shared context for [`BddPts`]: one manager and one location domain.
#[derive(Debug)]
pub struct BddPtsCtx {
    /// The node table shared by all sets.
    pub manager: BddManager,
    /// The location domain.
    pub domain: Domain,
}

/// Per-variable BDD points-to sets (§5.4, Tables 5 and 6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddPts(pub BddSet);

impl PtsRepr for BddPts {
    type Ctx = BddPtsCtx;

    fn make_ctx(num_locs: usize) -> BddPtsCtx {
        let mut manager = BddManager::new();
        let domain = manager
            .new_interleaved_domains(&[(num_locs.max(2)) as u64])
            .pop()
            .expect("one domain requested");
        BddPtsCtx { manager, domain }
    }

    fn insert(&mut self, ctx: &mut BddPtsCtx, loc: u32) -> bool {
        self.0.insert(&mut ctx.manager, &ctx.domain, u64::from(loc))
    }

    fn contains(&self, ctx: &BddPtsCtx, loc: u32) -> bool {
        self.0.contains(&ctx.manager, &ctx.domain, u64::from(loc))
    }

    fn union_from(&mut self, ctx: &mut BddPtsCtx, other: &Self) -> bool {
        self.0.union_with(&mut ctx.manager, &other.0)
    }

    fn set_eq(&self, _ctx: &BddPtsCtx, other: &Self) -> bool {
        // Hash-consing makes this a single integer comparison.
        self.0 == other.0
    }

    fn is_empty(&self, _ctx: &BddPtsCtx) -> bool {
        self.0.is_empty()
    }

    fn len(&self, ctx: &BddPtsCtx) -> usize {
        self.0.len(&ctx.manager, &ctx.domain) as usize
    }

    fn to_vec(&self, ctx: &BddPtsCtx) -> Vec<u32> {
        self.0
            .values(&ctx.manager, &ctx.domain)
            .into_iter()
            .map(|v| u32::try_from(v).expect("location id fits u32"))
            .collect()
    }

    fn minus_to_vec(&self, ctx: &mut BddPtsCtx, other: &Self) -> Vec<u32> {
        let d = ctx.manager.diff(self.0.as_bdd(), other.0.as_bdd());
        if d.is_zero() {
            return Vec::new();
        }
        ctx.manager
            .domain_values(d, &ctx.domain)
            .into_iter()
            .map(|v| u32::try_from(v).expect("location id fits u32"))
            .collect()
    }

    fn intersect_from(&mut self, ctx: &mut BddPtsCtx, other: &Self) -> bool {
        let new = ctx.manager.and(self.0.as_bdd(), other.0.as_bdd());
        let changed = new != self.0.as_bdd();
        self.0 = ant_bdd::BddSet::from_bdd(new);
        changed
    }

    fn minus(&self, ctx: &mut BddPtsCtx, other: &Self) -> Self {
        BddPts(ant_bdd::BddSet::from_bdd(
            ctx.manager.diff(self.0.as_bdd(), other.0.as_bdd()),
        ))
    }

    fn heap_bytes(&self) -> usize {
        0
    }

    fn ctx_bytes(ctx: &BddPtsCtx) -> usize {
        ctx.manager.heap_bytes()
    }

    const NAME: &'static str = "bdd";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<P: PtsRepr>() {
        let mut ctx = P::make_ctx(1000);
        let mut a = P::default();
        assert!(a.is_empty(&ctx));
        assert!(a.insert(&mut ctx, 5));
        assert!(!a.insert(&mut ctx, 5));
        assert!(a.insert(&mut ctx, 900));
        assert!(a.contains(&ctx, 5));
        assert!(!a.contains(&ctx, 6));
        assert_eq!(a.len(&ctx), 2);
        assert_eq!(a.to_vec(&ctx), vec![5, 900]);

        let mut b = P::default();
        b.insert(&mut ctx, 900);
        assert!(!a.set_eq(&ctx, &b));
        assert_eq!(a.minus_to_vec(&mut ctx, &b), vec![5]);
        assert_eq!(b.minus_to_vec(&mut ctx, &a), Vec::<u32>::new());
        assert!(b.union_from(&mut ctx, &a));
        assert!(!b.union_from(&mut ctx, &a));
        b.insert(&mut ctx, 5);
        assert!(a.set_eq(&ctx, &b));

        let mut c = P::default();
        c.insert(&mut ctx, 5);
        c.insert(&mut ctx, 77);
        assert!(c.intersect_from(&mut ctx, &a));
        assert_eq!(c.to_vec(&ctx), vec![5]);
        assert!(!c.intersect_from(&mut ctx, &a));
    }

    #[test]
    fn bitmap_repr() {
        exercise::<BitmapPts>();
        assert_eq!(BitmapPts::NAME, "bitmap");
    }

    #[test]
    fn bdd_repr() {
        exercise::<BddPts>();
        assert_eq!(BddPts::NAME, "bdd");
    }

    #[test]
    fn bdd_ctx_accounts_manager_bytes() {
        let mut ctx = BddPts::make_ctx(64);
        let before = BddPts::ctx_bytes(&ctx);
        let mut s = BddPts::default();
        for i in 0..64 {
            s.insert(&mut ctx, i);
        }
        assert!(BddPts::ctx_bytes(&ctx) >= before);
        assert!(BddPts::ctx_bytes(&ctx) > 0);
    }
}
