//! Points-to set representations.
//!
//! §5.4 of the paper compares two representations: GCC-style sparse bitmaps
//! and per-variable BDDs. Every solver here is generic over [`PtsRepr`], so
//! Tables 3/4 (bitmaps) and Tables 5/6 (BDDs) run the *same* solver code
//! instantiated at two types. [`SharedPts`] adds a third: hash-consed
//! bitmaps behind arena ids, combining the bitmaps' cheap iteration with
//! the BDDs' O(1) equality and deduplicated storage.

use ant_bdd::{BddManager, BddSet, Domain};
use ant_common::{PtsInterner, ReprCacheStats, SetId, SparseBitmap};

/// A points-to set: a set of location ids (`u32`).
///
/// Representation-wide state (e.g. the shared BDD manager) lives in the
/// associated `Ctx`, created once per solver run.
///
/// `Send + Sync` lets the BSP engine's hint workers read frozen sets from
/// scoped threads; every representation here is plain data (or an index
/// into context the workers never touch), so the bounds cost nothing.
pub trait PtsRepr: Default + Clone + Send + Sync {
    /// Shared representation context (`()` for bitmaps, the BDD manager and
    /// location domain for BDDs).
    type Ctx;

    /// Creates the context for a location space of `num_locs` ids.
    fn make_ctx(num_locs: usize) -> Self::Ctx;

    /// Inserts a location; returns `true` if it was new.
    fn insert(&mut self, ctx: &mut Self::Ctx, loc: u32) -> bool;

    /// Membership test.
    fn contains(&self, ctx: &Self::Ctx, loc: u32) -> bool;

    /// In-place union; returns `true` if `self` changed.
    fn union_from(&mut self, ctx: &mut Self::Ctx, other: &Self) -> bool;

    /// Set equality — the test at the heart of Lazy Cycle Detection. O(1)
    /// for BDDs (hash-consed), O(elements) for bitmaps.
    fn set_eq(&self, ctx: &Self::Ctx, other: &Self) -> bool;

    /// Returns `true` if the set is empty.
    fn is_empty(&self, ctx: &Self::Ctx) -> bool;

    /// Number of locations.
    fn len(&self, ctx: &Self::Ctx) -> usize;

    /// Materializes the set in ascending order (BuDDy's `bdd_allsat` for the
    /// BDD representation — the cost §5.4 singles out).
    fn to_vec(&self, ctx: &Self::Ctx) -> Vec<u32>;

    /// Materializes `self − other` in ascending order (the delta iteration
    /// used when resolving complex constraints incrementally).
    fn minus_to_vec(&self, ctx: &mut Self::Ctx, other: &Self) -> Vec<u32>;

    /// In-place intersection; returns `true` if `self` changed. Used to
    /// combine "already processed" markers when nodes collapse.
    fn intersect_from(&mut self, ctx: &mut Self::Ctx, other: &Self) -> bool;

    /// The set difference `self − other` as a new set (used by the
    /// difference-propagation ablation).
    fn minus(&self, ctx: &mut Self::Ctx, other: &Self) -> Self;

    /// Heap bytes owned by this individual set (0 for BDDs — nodes live in
    /// the shared manager, accounted by [`ctx_bytes`](Self::ctx_bytes)).
    fn heap_bytes(&self) -> usize;

    /// Heap bytes owned by the shared context.
    fn ctx_bytes(ctx: &Self::Ctx) -> usize;

    /// Final cache statistics of the shared context, if the representation
    /// keeps any (interned representations report intern-table and
    /// memo-cache hit rates; `None` for the others).
    fn ctx_stats(_ctx: &Self::Ctx) -> Option<ReprCacheStats> {
        None
    }

    /// Compacts shared storage behind `ctx` down to exactly the handles
    /// passed in, rewriting them in place. Called once at the end of a
    /// solve, when no other handles are outstanding: a monotone solve
    /// leaves interned storage full of intermediate sets, and what should
    /// be accounted (and retained) is only the storage backing the final
    /// solution. The default is a no-op — per-handle representations own
    /// their storage outright.
    fn compact_ctx(_ctx: &mut Self::Ctx, _handles: &mut [&mut Vec<Self>])
    where
        Self: Sized,
    {
    }

    /// Computes `(src − dst, src == dst)` **without** the shared context,
    /// for the BSP engine's parallel hint phase: workers hold only `&self`
    /// references into a frozen snapshot and therefore cannot thread a
    /// `&mut Ctx` through. Returns `None` when the representation's set
    /// operations need the context (interned and BDD sets), in which case
    /// the engine skips the worker phase and the round runs as a pure
    /// sequential merge.
    fn frozen_delta(_src: &Self, _dst: &Self) -> Option<(Self, bool)>
    where
        Self: Sized,
    {
        None
    }

    /// Whether [`frozen_delta`](Self::frozen_delta) is implemented — gates
    /// spawning hint workers at all.
    const PAR_HINTS: bool = false;

    /// Short name for reports: `"bitmap"`, `"shared"` or `"bdd"`.
    const NAME: &'static str;
}

/// GCC-style sparse-bitmap points-to sets (the paper's default).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitmapPts(pub SparseBitmap);

impl PtsRepr for BitmapPts {
    type Ctx = ();

    fn make_ctx(_num_locs: usize) {}

    fn insert(&mut self, _ctx: &mut (), loc: u32) -> bool {
        self.0.insert(loc)
    }

    fn contains(&self, _ctx: &(), loc: u32) -> bool {
        self.0.contains(loc)
    }

    fn union_from(&mut self, _ctx: &mut (), other: &Self) -> bool {
        self.0.union_with(&other.0)
    }

    fn set_eq(&self, _ctx: &(), other: &Self) -> bool {
        self.0 == other.0
    }

    fn is_empty(&self, _ctx: &()) -> bool {
        self.0.is_empty()
    }

    fn len(&self, _ctx: &()) -> usize {
        self.0.len()
    }

    fn to_vec(&self, _ctx: &()) -> Vec<u32> {
        self.0.iter().collect()
    }

    fn minus_to_vec(&self, _ctx: &mut (), other: &Self) -> Vec<u32> {
        self.0.difference(&other.0).collect()
    }

    fn intersect_from(&mut self, _ctx: &mut (), other: &Self) -> bool {
        self.0.intersect_with(&other.0)
    }

    fn minus(&self, _ctx: &mut (), other: &Self) -> Self {
        let mut d = self.0.clone();
        d.subtract(&other.0);
        BitmapPts(d)
    }

    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes()
    }

    fn ctx_bytes(_ctx: &()) -> usize {
        0
    }

    fn frozen_delta(src: &Self, dst: &Self) -> Option<(Self, bool)> {
        let mut d = src.0.clone();
        d.subtract(&dst.0);
        // `src − dst` empty ⇔ src ⊆ dst; equal iff additionally dst ⊆ src.
        let eq = d.is_empty() && dst.0.subset_of(&src.0);
        Some((BitmapPts(d), eq))
    }

    const PAR_HINTS: bool = true;

    const NAME: &'static str = "bitmap";
}

/// Hash-consed, copy-on-write points-to sets: a [`SetId`] into the shared
/// [`PtsInterner`] the `Ctx` owns.
///
/// Three structural properties make this the natural representation for
/// Lazy Cycle Detection (this crate's fastest solvers):
///
/// * **`set_eq` is one integer comparison.** Interning is canonical, so
///   LCD's per-edge `pts(n) == pts(z)` probe — O(elements) on plain
///   bitmaps — costs O(1), as does every `done`-marker comparison.
/// * **`clone` is a 4-byte copy.** The `done[n] = pts(n).clone()` marker
///   updates and HCD's preemptive collapses share storage instead of
///   duplicating sets.
/// * **`union_from` is memoized.** Repeated propagations of the same
///   source into the same destination — the dominant no-op pattern of a
///   converging solve — are answered from a direct-mapped cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedPts(pub SetId);

impl PtsRepr for SharedPts {
    type Ctx = PtsInterner;

    fn make_ctx(_num_locs: usize) -> PtsInterner {
        PtsInterner::new()
    }

    fn insert(&mut self, ctx: &mut PtsInterner, loc: u32) -> bool {
        let id = ctx.insert(self.0, loc);
        let changed = id != self.0;
        self.0 = id;
        changed
    }

    fn contains(&self, ctx: &PtsInterner, loc: u32) -> bool {
        ctx.get(self.0).contains(loc)
    }

    fn union_from(&mut self, ctx: &mut PtsInterner, other: &Self) -> bool {
        let id = ctx.union(self.0, other.0);
        let changed = id != self.0;
        self.0 = id;
        changed
    }

    fn set_eq(&self, _ctx: &PtsInterner, other: &Self) -> bool {
        // Hash-consing makes this a single integer comparison.
        self.0 == other.0
    }

    fn is_empty(&self, _ctx: &PtsInterner) -> bool {
        self.0 == SetId::EMPTY
    }

    fn len(&self, ctx: &PtsInterner) -> usize {
        ctx.len(self.0)
    }

    fn to_vec(&self, ctx: &PtsInterner) -> Vec<u32> {
        ctx.get(self.0).iter().collect()
    }

    fn minus_to_vec(&self, ctx: &mut PtsInterner, other: &Self) -> Vec<u32> {
        if self.0 == other.0 {
            // The delta-iteration fast path: `pts == done` is the common
            // case on re-pops and costs nothing here.
            return Vec::new();
        }
        ctx.get(self.0).difference(ctx.get(other.0)).collect()
    }

    fn intersect_from(&mut self, ctx: &mut PtsInterner, other: &Self) -> bool {
        let id = ctx.intersect(self.0, other.0);
        let changed = id != self.0;
        self.0 = id;
        changed
    }

    fn minus(&self, ctx: &mut PtsInterner, other: &Self) -> Self {
        SharedPts(ctx.minus(self.0, other.0))
    }

    fn heap_bytes(&self) -> usize {
        0
    }

    fn ctx_bytes(ctx: &PtsInterner) -> usize {
        ctx.heap_bytes()
    }

    fn ctx_stats(ctx: &PtsInterner) -> Option<ReprCacheStats> {
        Some(ReprCacheStats {
            intern_hits: ctx.stats.intern_hits,
            intern_misses: ctx.stats.intern_misses,
            memo_hits: ctx.stats.memo_hits,
            memo_misses: ctx.stats.memo_misses,
            distinct_sets: ctx.distinct_sets() as u64,
        })
    }

    fn compact_ctx(ctx: &mut PtsInterner, handles: &mut [&mut Vec<SharedPts>]) {
        let live: Vec<SetId> = handles.iter().flat_map(|v| v.iter().map(|h| h.0)).collect();
        let remap = ctx.compact(&live);
        for h in handles.iter_mut().flat_map(|v| v.iter_mut()) {
            let new = remap[h.0.as_u32() as usize];
            debug_assert_ne!(new, u32::MAX, "live handle dropped by compaction");
            h.0 = SetId::from_u32(new);
        }
    }

    const NAME: &'static str = "shared";
}

/// Shared context for [`BddPts`]: one manager and one location domain.
#[derive(Debug)]
pub struct BddPtsCtx {
    /// The node table shared by all sets.
    pub manager: BddManager,
    /// The location domain.
    pub domain: Domain,
}

/// Per-variable BDD points-to sets (§5.4, Tables 5 and 6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddPts(pub BddSet);

impl PtsRepr for BddPts {
    type Ctx = BddPtsCtx;

    fn make_ctx(num_locs: usize) -> BddPtsCtx {
        let mut manager = BddManager::new();
        let domain = manager
            .new_interleaved_domains(&[(num_locs.max(2)) as u64])
            .pop()
            .expect("one domain requested");
        BddPtsCtx { manager, domain }
    }

    fn insert(&mut self, ctx: &mut BddPtsCtx, loc: u32) -> bool {
        self.0.insert(&mut ctx.manager, &ctx.domain, u64::from(loc))
    }

    fn contains(&self, ctx: &BddPtsCtx, loc: u32) -> bool {
        self.0.contains(&ctx.manager, &ctx.domain, u64::from(loc))
    }

    fn union_from(&mut self, ctx: &mut BddPtsCtx, other: &Self) -> bool {
        self.0.union_with(&mut ctx.manager, &other.0)
    }

    fn set_eq(&self, _ctx: &BddPtsCtx, other: &Self) -> bool {
        // Hash-consing makes this a single integer comparison.
        self.0 == other.0
    }

    fn is_empty(&self, _ctx: &BddPtsCtx) -> bool {
        self.0.is_empty()
    }

    fn len(&self, ctx: &BddPtsCtx) -> usize {
        self.0.len(&ctx.manager, &ctx.domain) as usize
    }

    fn to_vec(&self, ctx: &BddPtsCtx) -> Vec<u32> {
        self.0
            .values(&ctx.manager, &ctx.domain)
            .into_iter()
            .map(|v| u32::try_from(v).expect("location id fits u32"))
            .collect()
    }

    fn minus_to_vec(&self, ctx: &mut BddPtsCtx, other: &Self) -> Vec<u32> {
        let d = ctx.manager.diff(self.0.as_bdd(), other.0.as_bdd());
        if d.is_zero() {
            return Vec::new();
        }
        ctx.manager
            .domain_values(d, &ctx.domain)
            .into_iter()
            .map(|v| u32::try_from(v).expect("location id fits u32"))
            .collect()
    }

    fn intersect_from(&mut self, ctx: &mut BddPtsCtx, other: &Self) -> bool {
        let new = ctx.manager.and(self.0.as_bdd(), other.0.as_bdd());
        let changed = new != self.0.as_bdd();
        self.0 = ant_bdd::BddSet::from_bdd(new);
        changed
    }

    fn minus(&self, ctx: &mut BddPtsCtx, other: &Self) -> Self {
        BddPts(ant_bdd::BddSet::from_bdd(
            ctx.manager.diff(self.0.as_bdd(), other.0.as_bdd()),
        ))
    }

    fn heap_bytes(&self) -> usize {
        0
    }

    fn ctx_bytes(ctx: &BddPtsCtx) -> usize {
        ctx.manager.heap_bytes()
    }

    const NAME: &'static str = "bdd";
}

/// Runtime-selectable points-to representation, for callers that pick the
/// representation from configuration rather than at the type level (the
/// CLI's `--pts` flag, the facade's `AnalysisBuilder`).
///
/// Dispatching through `PtsKind` instantiates the same generic solvers as
/// naming a [`PtsRepr`] type by hand — the choice just moves from a
/// turbofish to a value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PtsKind {
    /// GCC-style sparse bitmaps ([`BitmapPts`]) — the paper's default.
    #[default]
    Bitmap,
    /// Hash-consed copy-on-write sets ([`SharedPts`]).
    Shared,
    /// Per-variable BDDs ([`BddPts`], §5.4).
    Bdd,
}

impl PtsKind {
    /// Every representation, in declaration order.
    pub const ALL: [PtsKind; 3] = [PtsKind::Bitmap, PtsKind::Shared, PtsKind::Bdd];

    /// Stable machine-readable name, matching each representation's
    /// [`PtsRepr::NAME`].
    pub fn name(self) -> &'static str {
        match self {
            PtsKind::Bitmap => BitmapPts::NAME,
            PtsKind::Shared => SharedPts::NAME,
            PtsKind::Bdd => BddPts::NAME,
        }
    }

    /// Parses the [`PtsKind::name`] spelling back into a kind.
    pub fn parse(s: &str) -> Option<PtsKind> {
        PtsKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for PtsKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<P: PtsRepr>() {
        let mut ctx = P::make_ctx(1000);
        let mut a = P::default();
        assert!(a.is_empty(&ctx));
        assert!(a.insert(&mut ctx, 5));
        assert!(!a.insert(&mut ctx, 5));
        assert!(a.insert(&mut ctx, 900));
        assert!(a.contains(&ctx, 5));
        assert!(!a.contains(&ctx, 6));
        assert_eq!(a.len(&ctx), 2);
        assert_eq!(a.to_vec(&ctx), vec![5, 900]);

        let mut b = P::default();
        b.insert(&mut ctx, 900);
        assert!(!a.set_eq(&ctx, &b));
        assert_eq!(a.minus_to_vec(&mut ctx, &b), vec![5]);
        assert_eq!(b.minus_to_vec(&mut ctx, &a), Vec::<u32>::new());
        assert!(b.union_from(&mut ctx, &a));
        assert!(!b.union_from(&mut ctx, &a));
        b.insert(&mut ctx, 5);
        assert!(a.set_eq(&ctx, &b));

        let mut c = P::default();
        c.insert(&mut ctx, 5);
        c.insert(&mut ctx, 77);
        assert!(c.intersect_from(&mut ctx, &a));
        assert_eq!(c.to_vec(&ctx), vec![5]);
        assert!(!c.intersect_from(&mut ctx, &a));
    }

    #[test]
    fn bitmap_repr() {
        exercise::<BitmapPts>();
        assert_eq!(BitmapPts::NAME, "bitmap");
    }

    #[test]
    fn shared_repr() {
        exercise::<SharedPts>();
        assert_eq!(SharedPts::NAME, "shared");
    }

    #[test]
    fn bdd_repr() {
        exercise::<BddPts>();
        assert_eq!(BddPts::NAME, "bdd");
    }

    #[test]
    fn shared_set_eq_is_id_compare() {
        let mut ctx = SharedPts::make_ctx(100);
        let mut a = SharedPts::default();
        let mut b = SharedPts::default();
        for loc in [3u32, 17, 64] {
            a.insert(&mut ctx, loc);
        }
        for loc in [3u32, 17, 64] {
            b.insert(&mut ctx, loc);
        }
        // Equal contents intern to the same id; equality needs no ctx walk.
        assert_eq!(a.0, b.0);
        assert!(a.set_eq(&ctx, &b));
        // Clones alias the same storage: individual sets own no heap.
        assert_eq!(a.heap_bytes(), 0);
        let stats = SharedPts::ctx_stats(&ctx).expect("shared repr reports stats");
        // b retraces a's insert chain: every step is answered by the memo
        // cache without even touching the intern table.
        assert!(
            stats.memo_hits >= 3,
            "b's inserts replay a's memoized chain"
        );
        assert_eq!(stats.distinct_sets as usize, ctx.distinct_sets());
    }

    #[test]
    fn shared_ctx_accounts_table_bytes() {
        let mut ctx = SharedPts::make_ctx(64);
        let mut s = SharedPts::default();
        for i in 0..64 {
            s.insert(&mut ctx, i);
        }
        assert!(SharedPts::ctx_bytes(&ctx) > 0);
        // Default reprs report no cache statistics.
        assert!(BitmapPts::ctx_stats(&()).is_none());
    }

    #[test]
    fn pts_kind_names_roundtrip() {
        for k in PtsKind::ALL {
            assert_eq!(PtsKind::parse(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(PtsKind::parse("bogus"), None);
        assert_eq!(PtsKind::default(), PtsKind::Bitmap);
    }

    #[test]
    fn frozen_delta_matches_live_ops() {
        let mut a = BitmapPts::default();
        let mut b = BitmapPts::default();
        for loc in [1u32, 5, 900] {
            a.insert(&mut (), loc);
        }
        b.insert(&mut (), 5);
        let (delta, eq) = BitmapPts::frozen_delta(&a, &b).expect("bitmaps hint");
        assert_eq!(delta.to_vec(&()), vec![1, 900]);
        assert!(!eq);
        // Applying the delta is the same as a live union.
        let mut via_delta = b.clone();
        via_delta.union_from(&mut (), &delta);
        let mut via_union = b.clone();
        via_union.union_from(&mut (), &a);
        assert!(via_delta.set_eq(&(), &via_union));
        let (empty, eq) = BitmapPts::frozen_delta(&a, &via_delta).expect("bitmaps hint");
        assert!(empty.is_empty(&()));
        assert!(eq);
        // Context-bound representations opt out.
        const { assert!(!SharedPts::PAR_HINTS) };
        const { assert!(!BddPts::PAR_HINTS) };
        assert!(SharedPts::frozen_delta(&SharedPts::default(), &SharedPts::default()).is_none());
    }

    #[test]
    fn bdd_ctx_accounts_manager_bytes() {
        let mut ctx = BddPts::make_ctx(64);
        let before = BddPts::ctx_bytes(&ctx);
        let mut s = BddPts::default();
        for i in 0..64 {
            s.insert(&mut ctx, i);
        }
        assert!(BddPts::ctx_bytes(&ctx) >= before);
        assert!(BddPts::ctx_bytes(&ctx) > 0);
    }
}
