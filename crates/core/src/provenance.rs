//! Turning [`ProvRecorder`] arenas into human-readable derivations.
//!
//! The recorder guarantees that every insertion into a points-to set (and
//! every added copy edge) appended one record, so the *earliest* record for
//! a fact — identifying variables up to the recorded merges — is a valid
//! derivation whose premises were recorded strictly earlier. [`Explainer`]
//! indexes the arenas by first occurrence and follows those earliest
//! records backwards; each hop lands on a strictly smaller arena index, so
//! every chain terminates at a base [`Reason::AddrOf`] fact.
//!
//! Offline variable collapses (OVS and friends) never reach the recorder:
//! the solver only ever saw the preprocessed program. They are composed
//! back in through the pass pipeline's [`SolutionMapping`], shown as
//! [`Step::OfflineMerged`] hops, so explanations speak the *original*
//! variable names.

use ant_common::fx::FxHashMap;
use ant_common::obs::prov::{ProvRecorder, Reason};
use ant_common::VarId;
use ant_constraints::pipeline::SolutionMapping;
use ant_constraints::{ConstraintKind, Program};

/// One hop of a derivation chain, ordered from the queried fact back to
/// the base constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The queried variable was merged away by an *offline* pass (OVS);
    /// the chain continues at its representative.
    OfflineMerged {
        /// The original variable.
        var: VarId,
        /// Its representative in the preprocessed program.
        rep: VarId,
    },
    /// The variable was collapsed into a cycle by *online* cycle
    /// detection; the fact was first derived by another cycle member.
    MergedInto {
        /// The variable whose set the query asked about.
        var: VarId,
        /// The cycle member that first derived the fact.
        rep: VarId,
    },
    /// The location was propagated along the copy edge `from → to`.
    PropagatedFrom {
        /// Edge source (constraint direction: `pts(from) ⊆ pts(to)`).
        from: VarId,
        /// Edge destination.
        to: VarId,
        /// The location that flowed.
        loc: VarId,
    },
    /// The base fact: an `AddressOf` constraint `var = &loc`.
    AddrOf {
        /// The constraint's left-hand side.
        var: VarId,
        /// The taken location.
        loc: VarId,
    },
}

impl Step {
    /// Renders the step with the program's variable names.
    pub fn render(&self, program: &Program) -> String {
        let n = |v: VarId| program.var_name(v).to_string();
        match *self {
            Step::OfflineMerged { var, rep } => {
                format!("{} ≡ {}  (merged by an offline pass)", n(var), n(rep))
            }
            Step::MergedInto { var, rep } => {
                format!("{} ≡ {}  (collapsed into one cycle online)", n(var), n(rep))
            }
            Step::PropagatedFrom { from, to, loc } => {
                format!(
                    "{} ∈ pts({})  — propagated along {} → {}",
                    n(loc),
                    n(to),
                    n(from),
                    n(to)
                )
            }
            Step::AddrOf { var, loc } => {
                format!(
                    "{} ∈ pts({})  — base constraint {} = &{}",
                    n(loc),
                    n(var),
                    n(var),
                    n(loc)
                )
            }
        }
    }
}

/// Why a copy edge exists, for [`Explainer::explain_edge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOrigin {
    /// A `Copy` constraint of the program.
    Copy {
        /// Edge source.
        src: VarId,
        /// Edge destination.
        dst: VarId,
    },
    /// Added online by a load constraint `dst = *pivot` when `loc`
    /// entered `pts(pivot)`.
    Load {
        /// Edge source (the node `loc` resolved to).
        src: VarId,
        /// Edge destination.
        dst: VarId,
        /// The dereferenced pointer.
        pivot: VarId,
        /// The points-to member that fired the edge.
        loc: VarId,
    },
    /// Added online by a store constraint `*pivot = src` when `loc`
    /// entered `pts(pivot)`.
    Store {
        /// Edge source.
        src: VarId,
        /// Edge destination (the node `loc` resolved to).
        dst: VarId,
        /// The dereferenced pointer.
        pivot: VarId,
        /// The points-to member that fired the edge.
        loc: VarId,
    },
}

/// A copy edge's derivation: where it came from and — for complex-
/// constraint edges — why the pivot pointed at the triggering location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeExplanation {
    /// The constraint that created the edge.
    pub origin: EdgeOrigin,
    /// For [`EdgeOrigin::Load`]/[`EdgeOrigin::Store`]: the derivation of
    /// `loc ∈ pts(pivot)`. Empty for plain copy edges.
    pub pivot_chain: Vec<Step>,
}

impl EdgeExplanation {
    /// Renders the explanation as indented lines.
    pub fn render(&self, program: &Program) -> String {
        let n = |v: VarId| program.var_name(v).to_string();
        let mut out = match self.origin {
            EdgeOrigin::Copy { src, dst } => {
                format!(
                    "edge {} → {}  — copy constraint {} = {}",
                    n(src),
                    n(dst),
                    n(dst),
                    n(src)
                )
            }
            EdgeOrigin::Load {
                src,
                dst,
                pivot,
                loc,
            } => format!(
                "edge {} → {}  — load {} = *{} fired when {} ∈ pts({})",
                n(src),
                n(dst),
                n(dst),
                n(pivot),
                n(loc),
                n(pivot)
            ),
            EdgeOrigin::Store {
                src,
                dst,
                pivot,
                loc,
            } => format!(
                "edge {} → {}  — store *{} = {} fired when {} ∈ pts({})",
                n(src),
                n(dst),
                n(pivot),
                n(src),
                n(loc),
                n(pivot)
            ),
        };
        for step in &self.pivot_chain {
            out.push_str("\n  ");
            out.push_str(&step.render(program));
        }
        out
    }
}

/// Answers "why does `v` point to `loc`?" and "why is there an edge
/// `a → b`?" against a finished recorder.
///
/// Build with [`Explainer::new`]; when the solve ran on a
/// pipeline-preprocessed program, attach the pipeline's composed mapping
/// with [`Explainer::with_mapping`] so queries accept *original* variable
/// ids.
pub struct Explainer<'a> {
    prov: &'a ProvRecorder,
    mapping: Option<&'a SolutionMapping>,
    /// Union-find over the recorded online merges (flat parent array).
    parent: Vec<u32>,
    /// `(final class of var, loc) → earliest tuple-record index`.
    tuple_idx: FxHashMap<(u32, u32), usize>,
    /// `(final class of src, final class of dst) → earliest edge index`.
    edge_idx: FxHashMap<(u32, u32), usize>,
}

impl<'a> Explainer<'a> {
    /// Indexes the recorder's arenas for a program with `num_vars`
    /// variables.
    pub fn new(prov: &'a ProvRecorder, num_vars: usize) -> Self {
        let max_id = prov
            .tuples
            .iter()
            .chain(&prov.edges)
            .chain(&prov.merges)
            .map(|r| r.target.max(r.source))
            .max()
            .map_or(0, |m| m as usize + 1);
        let n = num_vars.max(max_id);
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for m in &prov.merges {
            let l = find(&mut parent, m.target);
            let w = find(&mut parent, m.source);
            if l != w {
                parent[l as usize] = w;
            }
        }
        let mut ex = Explainer {
            prov,
            mapping: None,
            parent,
            tuple_idx: FxHashMap::default(),
            edge_idx: FxHashMap::default(),
        };
        for (i, r) in prov.tuples.iter().enumerate() {
            let key = (find(&mut ex.parent, r.target), r.source);
            ex.tuple_idx.entry(key).or_insert(i);
        }
        for (i, r) in prov.edges.iter().enumerate() {
            let key = (
                find(&mut ex.parent, r.source),
                find(&mut ex.parent, r.target),
            );
            ex.edge_idx.entry(key).or_insert(i);
        }
        ex
    }

    /// Composes the pass pipeline's solution mapping in front of every
    /// query, so callers pass original (pre-pass) variable ids.
    pub fn with_mapping(mut self, mapping: &'a SolutionMapping) -> Self {
        self.mapping = Some(mapping);
        self
    }

    fn class(&mut self, v: u32) -> u32 {
        find(&mut self.parent, v)
    }

    /// The derivation of `loc ∈ pts(v)`, from the queried fact back to a
    /// base `AddressOf` constraint. `None` when the fact was never
    /// recorded (i.e. does not hold, or the solve was not recorded).
    pub fn explain(&mut self, v: VarId, loc: VarId) -> Option<Vec<Step>> {
        let mut steps = Vec::new();
        let mut cur = v;
        if let Some(m) = self.mapping {
            if m.was_merged(cur) {
                let rep = m.rep_of(cur);
                steps.push(Step::OfflineMerged { var: cur, rep });
                cur = rep;
            }
        }
        // Fuel bounds the walk even if a recorder violated the
        // first-record invariant; a well-formed chain visits each tuple
        // record at most once.
        let mut fuel = self.prov.tuples.len() + 1;
        loop {
            if fuel == 0 {
                return None;
            }
            fuel -= 1;
            let cls = self.class(cur.as_u32());
            let idx = *self.tuple_idx.get(&(cls, loc.as_u32()))?;
            let rec = self.prov.tuples[idx];
            if rec.target != cur.as_u32() {
                let rep = VarId::from_u32(rec.target);
                steps.push(Step::MergedInto { var: cur, rep });
                cur = rep;
            }
            match rec.reason {
                Reason::AddrOf => {
                    steps.push(Step::AddrOf { var: cur, loc });
                    return Some(steps);
                }
                Reason::PropagatedFrom(src) => {
                    let from = VarId::from_u32(src);
                    steps.push(Step::PropagatedFrom { from, to: cur, loc });
                    cur = from;
                }
                // Tuple records only ever carry the two reasons above.
                _ => return None,
            }
        }
    }

    /// The derivation of the copy edge `a → b` (constraint direction).
    /// For complex-constraint edges the pivot's own points-to fact is
    /// explained recursively.
    pub fn explain_edge(&mut self, a: VarId, b: VarId) -> Option<EdgeExplanation> {
        let (mut a, mut b) = (a, b);
        if let Some(m) = self.mapping {
            a = m.rep_of(a);
            b = m.rep_of(b);
        }
        let key = (self.class(a.as_u32()), self.class(b.as_u32()));
        let idx = *self.edge_idx.get(&key)?;
        let rec = self.prov.edges[idx];
        let (src, dst) = (VarId::from_u32(rec.source), VarId::from_u32(rec.target));
        let (origin, pivot_loc) = match rec.reason {
            Reason::CopyConstraint => (EdgeOrigin::Copy { src, dst }, None),
            Reason::LoadEdge { pivot, loc } => (
                EdgeOrigin::Load {
                    src,
                    dst,
                    pivot: VarId::from_u32(pivot),
                    loc: VarId::from_u32(loc),
                },
                Some((pivot, loc)),
            ),
            Reason::StoreEdge { pivot, loc } => (
                EdgeOrigin::Store {
                    src,
                    dst,
                    pivot: VarId::from_u32(pivot),
                    loc: VarId::from_u32(loc),
                },
                Some((pivot, loc)),
            ),
            // Edge records only ever carry the three reasons above.
            _ => return None,
        };
        let pivot_chain = match pivot_loc {
            // The pivot id is already in the solved id space: bypass the
            // offline mapping by explaining without it, then restore.
            Some((pivot, loc)) => {
                let mapping = self.mapping.take();
                let chain = self
                    .explain(VarId::from_u32(pivot), VarId::from_u32(loc))
                    .unwrap_or_default();
                self.mapping = mapping;
                chain
            }
            None => Vec::new(),
        };
        Some(EdgeExplanation {
            origin,
            pivot_chain,
        })
    }

    /// Replays `steps` (as returned by [`Explainer::explain`] for
    /// `loc ∈ pts(start)`) against the program and the recorded arenas:
    /// every hop must be justified — offline merges by the mapping, online
    /// merges by the merge arena, propagations by a recorded edge between
    /// the two classes, and the terminal `AddrOf` by a real constraint.
    pub fn validate(
        &mut self,
        program: &Program,
        start: VarId,
        loc: VarId,
        steps: &[Step],
    ) -> bool {
        let mut cur = start;
        let mut terminated = false;
        for step in steps {
            if terminated {
                return false;
            }
            match *step {
                Step::OfflineMerged { var, rep } => {
                    if var != cur || self.mapping.is_none_or(|m| m.rep_of(var) != rep) {
                        return false;
                    }
                    cur = rep;
                }
                Step::MergedInto { var, rep } => {
                    if var != cur || self.class(var.as_u32()) != self.class(rep.as_u32()) {
                        return false;
                    }
                    cur = rep;
                }
                Step::PropagatedFrom { from, to, loc: l } => {
                    if l != loc || to != cur {
                        return false;
                    }
                    let key = (self.class(from.as_u32()), self.class(to.as_u32()));
                    if !self.edge_idx.contains_key(&key) {
                        return false;
                    }
                    cur = from;
                }
                Step::AddrOf { var, loc: l } => {
                    if l != loc || var != cur {
                        return false;
                    }
                    let real = program
                        .constraints()
                        .iter()
                        .any(|c| c.kind == ConstraintKind::AddrOf && c.lhs == var && c.rhs == loc);
                    if !real {
                        return false;
                    }
                    terminated = true;
                }
            }
        }
        terminated
    }
}

/// Iterative union-find lookup with full path compression.
fn find(parent: &mut [u32], v: u32) -> u32 {
    let mut root = v;
    while parent[root as usize] != root {
        root = parent[root as usize];
    }
    let mut cur = v;
    while parent[cur as usize] != root {
        let next = parent[cur as usize];
        parent[cur as usize] = root;
        cur = next;
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{solve_dyn_recorded, Algorithm, SolverConfig};
    use crate::pts::PtsKind;
    use ant_constraints::ProgramBuilder;

    fn chain_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let q = pb.var("q");
        let r = pb.var("r");
        let x = pb.var("x");
        pb.addr_of(p, x);
        pb.copy(q, p);
        pb.copy(r, q);
        pb.finish()
    }

    #[test]
    fn copy_chain_explains_back_to_addr_of() {
        let program = chain_program();
        let (out, prov) = solve_dyn_recorded(
            &program,
            &SolverConfig::new(Algorithm::Lcd),
            PtsKind::Bitmap,
        );
        let r = program.var_by_name("r").unwrap();
        let x = program.var_by_name("x").unwrap();
        assert!(out.solution.may_point_to(r, x));
        let mut ex = Explainer::new(&prov, program.num_vars());
        let steps = ex.explain(r, x).expect("recorded fact explains");
        assert!(matches!(steps.last(), Some(Step::AddrOf { .. })));
        assert!(
            steps
                .iter()
                .filter(|s| matches!(s, Step::PropagatedFrom { .. }))
                .count()
                >= 2,
            "two copy hops expected: {steps:?}"
        );
        assert!(ex.validate(&program, r, x, &steps));
        // Unknown facts yield None.
        let p = program.var_by_name("p").unwrap();
        assert_eq!(ex.explain(x, p), None);
    }

    #[test]
    fn load_store_edges_explain_their_pivot() {
        let mut pb = ProgramBuilder::new();
        let p = pb.var("p");
        let h = pb.var("h");
        let q = pb.var("q");
        let x = pb.var("x");
        let r = pb.var("r");
        pb.addr_of(p, h);
        pb.store(p, q); // *p = q  ⇒  edge q → h
        pb.addr_of(q, x);
        pb.load(r, p); // r = *p  ⇒  edge h → r
        let program = pb.finish();
        let (out, prov) = solve_dyn_recorded(
            &program,
            &SolverConfig::new(Algorithm::Lcd),
            PtsKind::Bitmap,
        );
        assert!(out.solution.may_point_to(r, x));
        let mut ex = Explainer::new(&prov, program.num_vars());
        let e = ex.explain_edge(q, h).expect("store edge recorded");
        assert!(
            matches!(e.origin, EdgeOrigin::Store { pivot, .. } if pivot == p),
            "{e:?}"
        );
        assert!(
            !e.pivot_chain.is_empty(),
            "pivot fact h ∈ pts(p) explained: {e:?}"
        );
        let e = ex.explain_edge(h, r).expect("load edge recorded");
        assert!(matches!(e.origin, EdgeOrigin::Load { pivot, .. } if pivot == p));
        // And the full fact chains through the store edge.
        let steps = ex.explain(r, x).expect("r points to x");
        assert!(ex.validate(&program, r, x, &steps));
        // Renders with real names, no panics.
        for s in &steps {
            assert!(!s.render(&program).is_empty());
        }
    }

    #[test]
    fn cycle_collapse_shows_merge_hops() {
        let mut pb = ProgramBuilder::new();
        let a = pb.var("a");
        let b = pb.var("b");
        let x = pb.var("x");
        pb.addr_of(a, x);
        pb.copy(a, b);
        pb.copy(b, a); // a ↔ b cycle
        let program = pb.finish();
        let (out, prov) = solve_dyn_recorded(
            &program,
            &SolverConfig::new(Algorithm::LcdHcd),
            PtsKind::Bitmap,
        );
        assert!(out.solution.may_point_to(b, x));
        let mut ex = Explainer::new(&prov, program.num_vars());
        let steps = ex.explain(b, x).expect("collapsed fact explains");
        assert!(matches!(steps.last(), Some(Step::AddrOf { .. })));
        assert!(ex.validate(&program, b, x, &steps));
    }

    #[test]
    fn every_algorithm_explains_every_fact() {
        let program = chain_program();
        for alg in Algorithm::ALL {
            let (out, prov) =
                solve_dyn_recorded(&program, &SolverConfig::new(alg), PtsKind::Bitmap);
            let mut ex = Explainer::new(&prov, program.num_vars());
            for (v, _) in out.solution.set_sizes() {
                for &l in out.solution.points_to(v) {
                    let loc = VarId::from_u32(l);
                    let steps = ex
                        .explain(v, loc)
                        .unwrap_or_else(|| panic!("{alg}: no chain for ({v:?}, {loc:?})"));
                    assert!(
                        ex.validate(&program, v, loc, &steps),
                        "{alg}: invalid chain {steps:?}"
                    );
                }
            }
        }
    }
}
