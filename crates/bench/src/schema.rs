//! The stable machine-readable schema every `BENCH_*.json` file uses.
//!
//! One JSON object per measured cell with four guaranteed keys —
//! `name` (benchmark), `config` (the measured configuration as one
//! string), `median` and `best` (seconds over the run's repetitions) —
//! so results stay comparable across PRs regardless of which binary
//! produced them. Cells may carry extra keys after the guaranteed four;
//! consumers must ignore keys they don't know.
//!
//! ```text
//! {
//!   "scale": 0.05,
//!   "repeats": 5,
//!   "results": [
//!     {"name": "emacs", "config": "lcd+hcd/bitmap", "median": 0.021, "best": 0.019, ...},
//!     ...
//!   ],
//!   "summary": { ... }
//! }
//! ```

use std::fmt::Write as _;

/// One measured cell: a benchmark under one configuration, with every
/// repetition's wall time.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Benchmark name (`"emacs"`, `"wine"` ...).
    pub name: String,
    /// The configuration as one stable string, e.g. `"lcd+hcd/bitmap"`,
    /// `"lcd+hcd/bitmap/t4"`, `"passes:normalize,ovs"` or `"prov-on"`.
    pub config: String,
    /// Wall-clock seconds, one sample per repetition, in run order.
    pub samples: Vec<f64>,
    /// Extra fields appended after the guaranteed keys; values are
    /// pre-rendered JSON (callers quote strings themselves).
    pub extra: Vec<(&'static str, String)>,
}

impl BenchRecord {
    /// A record with no samples yet.
    pub fn new(name: impl Into<String>, config: impl Into<String>) -> Self {
        BenchRecord {
            name: name.into(),
            config: config.into(),
            samples: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Median of the samples (mean of the central pair for even counts);
    /// `NaN` when empty.
    pub fn median(&self) -> f64 {
        median(&self.samples)
    }

    /// Fastest sample; `NaN` when empty.
    pub fn best(&self) -> f64 {
        self.samples.iter().copied().fold(f64::NAN, f64::min)
    }
}

/// Median of `samples` without mutating the caller's order.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are not NaN"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Renders a whole `BENCH_*.json` document in the stable schema.
///
/// `preamble` and `summary` are `(key, pre-rendered JSON value)` pairs
/// emitted before `results` and inside the trailing `summary` object
/// respectively.
pub fn render_bench_json(
    preamble: &[(&str, String)],
    records: &[BenchRecord],
    summary: &[(&str, String)],
) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    for (k, v) in preamble {
        let _ = writeln!(json, "  \"{k}\": {v},");
    }
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"config\": \"{}\", \"median\": {:.6}, \"best\": {:.6}",
            r.name,
            r.config,
            r.median(),
            r.best()
        );
        for (k, v) in &r.extra {
            let _ = write!(json, ", \"{k}\": {v}");
        }
        let _ = writeln!(json, "}}{sep}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"summary\": {{");
    for (i, (k, v)) in summary.iter().enumerate() {
        let sep = if i + 1 == summary.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{k}\": {v}{sep}");
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use ant_core::obs::parse_object;

    #[test]
    fn median_and_best() {
        let mut r = BenchRecord::new("emacs", "lcd+hcd/bitmap");
        r.samples = vec![3.0, 1.0, 2.0];
        assert_eq!(r.median(), 2.0);
        assert_eq!(r.best(), 1.0);
        r.samples = vec![4.0, 1.0, 2.0, 3.0];
        assert_eq!(r.median(), 2.5);
        assert!(BenchRecord::new("x", "y").median().is_nan());
    }

    #[test]
    fn every_result_line_carries_the_four_stable_keys() {
        let mut r = BenchRecord::new("emacs", "prov-on");
        r.samples = vec![0.5, 0.25];
        r.extra.push(("pts_bytes", "1024".into()));
        let json = render_bench_json(
            &[("scale", "0.05".into()), ("repeats", "2".into())],
            &[r],
            &[("overhead_percent", "1.5".into())],
        );
        // Each result is one flat JSON object per line, parseable by the
        // same parser the trace tooling uses.
        let line = json
            .lines()
            .find(|l| l.trim_start().starts_with("{\"name\""))
            .expect("one result line");
        let obj = parse_object(line.trim().trim_end_matches(',')).unwrap();
        assert_eq!(obj["name"].as_str(), Some("emacs"));
        assert_eq!(obj["config"].as_str(), Some("prov-on"));
        assert_eq!(obj["median"].as_f64(), Some(0.375));
        assert_eq!(obj["best"].as_f64(), Some(0.25));
        assert_eq!(obj["pts_bytes"].as_u64(), Some(1024));
        assert!(json.contains("\"overhead_percent\": 1.5"));
    }
}
