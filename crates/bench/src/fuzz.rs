//! Structure-aware differential fuzzing and fault injection for the
//! serving path (DESIGN.md §15).
//!
//! Three seeded generators drive the harness (`cargo run --release -p
//! ant-bench --bin fuzz_harness`):
//!
//! 1. [`gen_program_text`] — random but *valid* constraint programs
//!    (`fun` blocks first, offsets below the largest declared block, a
//!    sprinkle of comments and blank lines),
//! 2. [`mutate_program`] — near-valid corruptions of a valid program
//!    (byte deletions/insertions including invalid UTF-8, line swaps and
//!    duplications, huge-number substitution, truncation),
//! 3. [`gen_request_stream`] — adversarial `ant serve` JSONL streams
//!    (truncated JSON, invalid UTF-8, oversized lines, out-of-order
//!    `add`/`load`, empty lines, mid-request disconnects).
//!
//! Every input that parses and validates is cross-checked
//! *differentially*: a randomly sampled solver configuration (algorithm ×
//! points-to representation × propagation mode × thread count × offline
//! pass subset) must reproduce the reference `Basic`/bitmap/full solve
//! bit for bit after expansion. Every panic, protocol violation, or
//! solution mismatch is auto-minimized ([`minimize`]) and pinned into the
//! on-disk corpus (`testdata/fuzz/`), which `tests/fuzz_regressions.rs`
//! replays on every `cargo test` via [`replay_program_entry`] /
//! [`replay_request_entry`].
//!
//! Everything is deterministic per seed: the generators run on the
//! vendored xoshiro256**-backed `StdRng`, so a corpus entry's file name
//! (content-hashed) and the harness's findings are reproducible with
//! `fuzz_harness --seed N`.

use ant_constraints::pipeline::PassPipeline;
use ant_constraints::{parse_program, Program};
use ant_core::obs::parse_object;
use ant_core::session::{read_request_line, AnalysisSession, SessionOptions};
use ant_core::{solve_dyn, solve_prepared, Algorithm, PropMode, PtsKind, Solution, SolverConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Line cap used when replaying request streams — deliberately small so
/// the corpus can exercise the oversized-line path without megabyte
/// fixtures (the production cap is `ant_core::session::MAX_REQUEST_LINE`).
pub const REPLAY_LINE_CAP: usize = 1024;

/// File extension for constraint-program corpus entries.
pub const PROGRAM_EXT: &str = "consts";

/// File extension for JSONL request-stream corpus entries.
pub const REQUEST_EXT: &str = "reqs";

/// A reproducible defect found by the fuzzer: the corpus-name prefix
/// (`parse-panic`, `validate-gap`, `solve-panic`, `diff-mismatch`,
/// `serve-panic`, `serve-protocol`) plus a human-readable description.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable category used as the corpus file-name prefix.
    pub prefix: &'static str,
    /// What went wrong, including the panic payload or the first
    /// differing variable.
    pub message: String,
}

impl Finding {
    fn new(prefix: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            prefix,
            message: message.into(),
        }
    }
}

/// What a clean (non-finding) check of one input amounted to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The input was rejected up front with a typed error (parse error,
    /// invalid UTF-8) — the defended behaviour for malformed inputs.
    Rejected,
    /// The input was accepted and every differential/protocol check
    /// passed; the payload counts the checks that ran (alternative
    /// configurations solved, or request lines answered).
    Verified(usize),
}

/// One alternative solver configuration for the differential oracle.
#[derive(Clone, Copy, Debug)]
pub struct AltConfig {
    /// Algorithm to cross-check against the `Basic` reference.
    pub algorithm: Algorithm,
    /// Points-to representation.
    pub pts: PtsKind,
    /// Propagation mode.
    pub prop: PropMode,
    /// Solver thread count (`≥ 2` routes through the BSP engine).
    pub threads: usize,
    /// Offline pass subset, in [`PassPipeline::parse`] syntax.
    pub passes: &'static str,
}

/// The fixed replay matrix `tests/fuzz_regressions.rs` runs every corpus
/// program under: {Basic, LCD, PKH} × {bitmap, shared}, plus LCD+HCD
/// under both representations with the full pass pipeline — the
/// configuration that exposed the conditional-cycle HCD pairing bug the
/// `diff-mismatch-*` corpus entries pin.
pub const REPLAY_MATRIX: [AltConfig; 8] = {
    const fn alt(algorithm: Algorithm, pts: PtsKind, passes: &'static str) -> AltConfig {
        AltConfig {
            algorithm,
            pts,
            prop: PropMode::Full,
            threads: 1,
            passes,
        }
    }
    [
        alt(Algorithm::Basic, PtsKind::Bitmap, "normalize,ovs"),
        alt(Algorithm::Basic, PtsKind::Shared, "normalize,ovs"),
        alt(Algorithm::Lcd, PtsKind::Bitmap, "normalize,ovs"),
        alt(Algorithm::Lcd, PtsKind::Shared, "normalize,ovs"),
        alt(Algorithm::Pkh, PtsKind::Bitmap, "normalize,ovs"),
        alt(Algorithm::Pkh, PtsKind::Shared, "normalize,ovs"),
        alt(Algorithm::LcdHcd, PtsKind::Bitmap, "normalize,ovs,hcd"),
        alt(Algorithm::LcdHcd, PtsKind::Shared, "normalize,ovs,hcd"),
    ]
};

const PASS_SPECS: [&str; 4] = ["", "normalize", "normalize,ovs", "normalize,ovs,hcd"];

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Generates a random but *valid* constraint program: `fun` blocks first
/// (so later lines may reference their names), then 1–24 constraints over
/// a small variable pool, with every `*(p + k)` offset below the largest
/// declared block. Occasionally sprinkles comments and blank lines.
pub fn gen_program_text(rng: &mut StdRng) -> String {
    let mut out = String::new();
    let nfuns = rng.gen_range(0..=2usize);
    let mut max_slots = 1u32;
    let mut names: Vec<String> = Vec::new();
    for f in 0..nfuns {
        let slots = rng.gen_range(1..=4u32);
        max_slots = max_slots.max(slots);
        out.push_str(&format!("fun f{f} {slots}\n"));
        names.push(format!("f{f}"));
        for k in 1..slots {
            names.push(format!("f{f}#{k}"));
        }
    }
    for v in 0..rng.gen_range(2..=8usize) {
        names.push(format!("v{v}"));
    }
    let nconstraints = rng.gen_range(1..=24usize);
    for _ in 0..nconstraints {
        if rng.gen_bool(0.06) {
            out.push_str("# comment\n");
        }
        if rng.gen_bool(0.04) {
            out.push('\n');
        }
        let a = &names[rng.gen_range(0..names.len())];
        let b = &names[rng.gen_range(0..names.len())];
        let off = if max_slots > 1 && rng.gen_bool(0.3) {
            rng.gen_range(1..max_slots)
        } else {
            0
        };
        let line = match rng.gen_range(0..4u32) {
            0 => format!("{a} = &{b}"),
            1 => format!("{a} = {b}"),
            2 if off > 0 => format!("{a} = *({b} + {off})"),
            2 => format!("{a} = *{b}"),
            3 if off > 0 => format!("*({a} + {off}) = {b}"),
            _ => format!("*{a} = {b}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Corrupts a valid program into a near-valid byte string: byte
/// deletions/insertions (including invalid UTF-8), line duplication and
/// swaps, huge-number substitution, and truncation. The result may or may
/// not parse — the oracle only demands it never panics.
pub fn mutate_program(rng: &mut StdRng, text: &str) -> Vec<u8> {
    let mut bytes = text.as_bytes().to_vec();
    for _ in 0..rng.gen_range(1..=4usize) {
        if bytes.is_empty() {
            break;
        }
        match rng.gen_range(0..6u32) {
            0 => {
                let i = rng.gen_range(0..bytes.len());
                bytes.remove(i);
            }
            1 => {
                let i = rng.gen_range(0..=bytes.len());
                let pool: [u8; 10] = [0xFF, 0xFE, b'*', b'&', b'=', b'#', b'+', b'(', b'9', b' '];
                bytes.insert(i, pool[rng.gen_range(0..pool.len())]);
            }
            2 => {
                // Duplicate one line.
                let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
                if !lines.is_empty() {
                    let dup = lines[rng.gen_range(0..lines.len())].to_vec();
                    bytes.extend_from_slice(&dup);
                    bytes.push(b'\n');
                }
            }
            3 => {
                // Swap two lines.
                let mut lines: Vec<Vec<u8>> =
                    bytes.split(|&b| b == b'\n').map(<[u8]>::to_vec).collect();
                if lines.len() >= 2 {
                    let i = rng.gen_range(0..lines.len());
                    let j = rng.gen_range(0..lines.len());
                    lines.swap(i, j);
                    bytes = lines.join(&b'\n');
                }
            }
            4 => {
                // Replace the first digit run with a huge number.
                if let Some(pos) = bytes.iter().position(u8::is_ascii_digit) {
                    let end = bytes[pos..]
                        .iter()
                        .position(|b| !b.is_ascii_digit())
                        .map_or(bytes.len(), |e| pos + e);
                    let huge: &[u8] = if rng.gen_bool(0.5) {
                        b"536870911"
                    } else {
                        b"99999999999999999999"
                    };
                    bytes.splice(pos..end, huge.iter().copied());
                }
            }
            _ => {
                let cut = rng.gen_range(0..=bytes.len());
                bytes.truncate(cut);
            }
        }
    }
    bytes
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Generates an adversarial `ant serve` JSONL request stream: valid
/// requests (including `load`/`add` with inline programs) interleaved
/// with truncated JSON, invalid UTF-8, lines over [`REPLAY_LINE_CAP`],
/// empty lines, out-of-order `add`-before-`load`, mid-stream `shutdown`,
/// and (sometimes) a final request with no trailing newline — a
/// mid-request disconnect.
pub fn gen_request_stream(rng: &mut StdRng) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::new();
    let program = json_string(&gen_program_text(rng));
    let vars = ["v0", "v1", "f0", "f0#1", "nosuch"];
    let n = rng.gen_range(1..=20usize);
    for id in 0..n {
        let line: Vec<u8> = match rng.gen_range(0..13u32) {
            0 => format!(r#"{{"id":{id},"op":"load","text":{program}}}"#).into_bytes(),
            1 => format!(r#"{{"id":{id},"op":"add","text":"v0 = &v1\n"}}"#).into_bytes(),
            2 => {
                let v = vars[rng.gen_range(0..vars.len())];
                format!(r#"{{"id":{id},"op":"points_to","var":"{v}"}}"#).into_bytes()
            }
            3 => {
                let (a, b) = (
                    vars[rng.gen_range(0..vars.len())],
                    vars[rng.gen_range(0..vars.len())],
                );
                format!(r#"{{"id":{id},"op":"may_alias","a":"{a}","b":"{b}"}}"#).into_bytes()
            }
            4 => {
                let v = vars[rng.gen_range(0..vars.len())];
                format!(r#"{{"id":{id},"op":"resolve","var":"{v}"}}"#).into_bytes()
            }
            5 => format!(r#"{{"id":{id},"op":"stats"}}"#).into_bytes(),
            6 => {
                let v = vars[rng.gen_range(0..vars.len())];
                format!(r#"{{"id":{id},"op":"explain","var":"{v}","loc":"v1"}}"#).into_bytes()
            }
            7 if rng.gen_bool(0.4) => br#"{"op":"shutdown"}"#.to_vec(),
            7 => format!(r#"{{"id":{id},"op":"no_such_op"}}"#).into_bytes(),
            8 => {
                // Truncated JSON.
                let full = format!(r#"{{"id":{id},"op":"points_to","var":"v0"}}"#);
                let cut = rng.gen_range(1..full.len());
                full.as_bytes()[..cut].to_vec()
            }
            9 => {
                let mut g = b"{\"op\":".to_vec();
                g.extend_from_slice(&[0xFF, 0xFE, b'}']);
                g
            }
            10 => {
                let pad = "y".repeat(REPLAY_LINE_CAP + rng.gen_range(1..=REPLAY_LINE_CAP));
                format!(r#"{{"id":{id},"op":"stats","pad":"{pad}"}}"#).into_bytes()
            }
            11 => Vec::new(), // empty line
            _ => b"}}garbage[[".to_vec(),
        };
        out.extend_from_slice(&line);
        if id + 1 < n || rng.gen_bool(0.8) {
            out.push(b'\n');
        } // else: disconnect mid-request (no trailing newline)
    }
    out
}

/// Samples one alternative configuration for the differential oracle.
pub fn sample_alt(rng: &mut StdRng) -> AltConfig {
    AltConfig {
        algorithm: Algorithm::ALL[rng.gen_range(0..Algorithm::ALL.len())],
        pts: PtsKind::ALL[rng.gen_range(0..PtsKind::ALL.len())],
        prop: PropMode::ALL[rng.gen_range(0..PropMode::ALL.len())],
        threads: if rng.gen_bool(0.25) { 4 } else { 1 },
        passes: PASS_SPECS[rng.gen_range(0..PASS_SPECS.len())],
    }
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

fn reference_solve(program: &Program) -> Result<Solution, Finding> {
    let config = SolverConfig::new(Algorithm::Basic);
    catch_unwind(AssertUnwindSafe(|| {
        solve_dyn(program, &config, PtsKind::Bitmap).solution
    }))
    .map_err(|p| {
        Finding::new(
            "solve-panic",
            format!("reference Basic/bitmap solve panicked: {}", panic_text(p)),
        )
    })
}

fn alt_solve(program: &Program, alt: &AltConfig) -> Result<Solution, Finding> {
    let pipeline = PassPipeline::parse(alt.passes).map_err(|e| {
        Finding::new(
            "solve-panic",
            format!("pass spec `{}` failed to parse: {e}", alt.passes),
        )
    })?;
    let mut config = SolverConfig::new(alt.algorithm);
    config.prop = alt.prop;
    config.threads = alt.threads;
    catch_unwind(AssertUnwindSafe(|| {
        let prepared = pipeline.run(program);
        solve_prepared(&prepared, &config, alt.pts).solution
    }))
    .map_err(|p| {
        Finding::new(
            "solve-panic",
            format!(
                "{}/{:?}/{}/t{}/[{}] panicked: {}",
                alt.algorithm.name(),
                alt.pts,
                alt.prop,
                alt.threads,
                alt.passes,
                panic_text(p)
            ),
        )
    })
}

/// Runs the full program oracle on raw input bytes: UTF-8 decode → parse
/// (must not panic) → [`Program::validate`] (parse must only accept what
/// validates) → reference solve → one differential solve per entry of
/// `alts`, each required to be bit-identical to the `Basic`/bitmap
/// reference after expansion.
///
/// # Errors
///
/// Returns the [`Finding`] describing the first panic, validation gap, or
/// solution mismatch.
pub fn check_program(bytes: &[u8], alts: &[AltConfig]) -> Result<Outcome, Finding> {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return Ok(Outcome::Rejected); // rejected upstream by read_to_string
    };
    let parsed = catch_unwind(AssertUnwindSafe(|| parse_program(text))).map_err(|p| {
        Finding::new(
            "parse-panic",
            format!("parse_program panicked: {}", panic_text(p)),
        )
    })?;
    let program = match parsed {
        Ok(p) => p,
        Err(_) => return Ok(Outcome::Rejected),
    };
    if let Err(msg) = program.validate() {
        return Err(Finding::new(
            "validate-gap",
            format!("parse accepted a program validate rejects: {msg}"),
        ));
    }
    let reference = reference_solve(&program)?;
    for alt in alts {
        let solution = alt_solve(&program, alt)?;
        if !solution.equiv(&reference) {
            let var = solution
                .first_difference(&reference)
                .map_or("set count".to_owned(), |v| format!("var {}", v.index()));
            return Err(Finding::new(
                "diff-mismatch",
                format!(
                    "{}/{:?}/{}/t{}/[{}] differs from Basic/bitmap at {var}",
                    alt.algorithm.name(),
                    alt.pts,
                    alt.prop,
                    alt.threads,
                    alt.passes,
                ),
            ));
        }
    }
    Ok(Outcome::Verified(alts.len()))
}

fn check_reply_envelope(json: &str, ok: bool) -> Result<(), String> {
    let obj =
        parse_object(json).map_err(|e| format!("reply is not a JSON object ({e}): {json}"))?;
    match obj.get("ok").and_then(|v| v.as_bool()) {
        Some(flag) if flag == ok => {}
        Some(_) => return Err(format!("reply `ok` field contradicts Reply.ok: {json}")),
        None => return Err(format!("reply missing boolean `ok`: {json}")),
    }
    if !ok {
        for key in ["error", "message"] {
            if obj.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("error reply missing string `{key}`: {json}"));
            }
        }
    }
    Ok(())
}

/// Drives a whole request-stream byte string through the transport reader
/// ([`read_request_line`] with [`REPLAY_LINE_CAP`]) and a fresh
/// [`AnalysisSession`], exactly like the serve loop: transport errors
/// become `malformed_request` envelopes, every reply must be a
/// well-formed JSON envelope (`ok` flag; `error` + `message` on
/// failures), and nothing may panic.
///
/// # Errors
///
/// Returns the [`Finding`] (`serve-panic` or `serve-protocol`) for the
/// first panic or malformed envelope.
pub fn check_requests(bytes: &[u8]) -> Result<Outcome, Finding> {
    let opts = SessionOptions::new(SolverConfig::new(Algorithm::Lcd));
    let mut session = AnalysisSession::new(opts)
        .map_err(|e| Finding::new("serve-protocol", format!("session refused to start: {e}")))?;
    let mut cursor = std::io::Cursor::new(bytes);
    let mut replies = 0usize;
    while let Some(line) = read_request_line(&mut cursor, REPLAY_LINE_CAP) {
        let reply = match line {
            Ok(line) if line.trim().is_empty() => continue,
            Ok(line) => {
                catch_unwind(AssertUnwindSafe(|| session.handle_line(&line))).map_err(|p| {
                    Finding::new(
                        "serve-panic",
                        format!("handle_line panicked: {}", panic_text(p)),
                    )
                })?
            }
            Err(e) if matches!(e.kind(), ant_common::AntErrorKind::Io) => break,
            Err(e) => catch_unwind(AssertUnwindSafe(|| session.transport_error_reply(&e)))
                .map_err(|p| {
                    Finding::new(
                        "serve-panic",
                        format!("transport_error_reply panicked: {}", panic_text(p)),
                    )
                })?,
        };
        replies += 1;
        check_reply_envelope(&reply.json, reply.ok)
            .map_err(|msg| Finding::new("serve-protocol", msg))?;
        if reply.shutdown {
            break;
        }
    }
    Ok(Outcome::Verified(replies))
}

// ---------------------------------------------------------------------------
// Minimization and corpus
// ---------------------------------------------------------------------------

/// Line-based auto-minimization: repeatedly drops whole lines, then
/// single bytes, as long as `still_fails` keeps returning `true`.
/// Deterministic and bounded — inputs here are at most a few KiB.
pub fn minimize<F: FnMut(&[u8]) -> bool>(bytes: &[u8], mut still_fails: F) -> Vec<u8> {
    let mut best = bytes.to_vec();
    // Whole-line removal to a fixpoint (bounded).
    for _ in 0..8 {
        let mut shrunk = false;
        let mut i = 0;
        loop {
            let lines: Vec<&[u8]> = best.split(|&b| b == b'\n').collect();
            if i >= lines.len() {
                break;
            }
            if lines.len() > 1 {
                let candidate: Vec<u8> = lines
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, l)| *l)
                    .collect::<Vec<_>>()
                    .join(&b'\n');
                if still_fails(&candidate) {
                    best = candidate;
                    shrunk = true;
                    continue; // same index now names the next line
                }
            }
            i += 1;
        }
        if !shrunk {
            break;
        }
    }
    // One bounded single-byte removal pass.
    let mut i = 0;
    while i < best.len() && best.len() <= 4096 {
        let mut candidate = best.clone();
        candidate.remove(i);
        if still_fails(&candidate) {
            best = candidate;
        } else {
            i += 1;
        }
    }
    best
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content-hashed corpus file name: `{prefix}-{hash:08x}.{ext}`.
pub fn corpus_file_name(prefix: &str, bytes: &[u8], ext: &str) -> String {
    format!("{prefix}-{:08x}.{ext}", fnv1a64(bytes) as u32)
}

/// Writes a minimized failing input into the corpus directory under its
/// content-hashed name. Returns `Ok(None)` when an identical entry is
/// already pinned (not a new finding).
///
/// # Errors
///
/// Propagates filesystem errors creating the directory or writing.
pub fn write_corpus_entry(
    dir: &Path,
    prefix: &str,
    ext: &str,
    bytes: &[u8],
) -> std::io::Result<Option<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(corpus_file_name(prefix, bytes, ext));
    if path.exists() {
        return Ok(None);
    }
    std::fs::write(&path, bytes)?;
    Ok(Some(path))
}

/// Pins the historical crashers this harness was built around (each fixed
/// in the same change) so they replay forever as regressions. Idempotent;
/// returns only the entries that were newly written.
///
/// # Errors
///
/// Propagates filesystem errors from [`write_corpus_entry`].
pub fn seed_corpus(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let programs: [(&str, &[u8]); 4] = [
        // ProgramBuilder::function used to panic when a fun block's slot
        // name was already taken.
        ("parse-panic", b"a#1 = x\nfun a 2\n"),
        // An absurd slot count used to attempt the full allocation.
        ("parse-panic", b"fun f 536870911\n"),
        // A zero-slot block used to slip through to the builder.
        ("parse-panic", b"fun f 0\n"),
        // Parse used to accept offsets no fun block makes addressable,
        // which Program::validate then rejected.
        ("validate-gap", b"a = *(b + 9)\n"),
    ];
    let mut fault_bytes = Vec::new();
    fault_bytes.extend_from_slice(b"{\"op\":\"add\",\"text\":\"p = &x\\n\"}\n"); // add before load
    fault_bytes.extend_from_slice(b"{\"op\":\xFF\xFE}\n"); // invalid UTF-8
    fault_bytes.extend_from_slice(b"{\"op\":\"load\"}\n"); // no path/text: was unreachable!()
    fault_bytes.extend_from_slice(
        format!(
            "{{\"op\":\"stats\",\"pad\":\"{}\"}}\n",
            "y".repeat(2 * REPLAY_LINE_CAP)
        )
        .as_bytes(),
    );
    fault_bytes.extend_from_slice(b"{\"op\":\"load\",\"text\":\"p = &x\\nq = p\\n\"}\n");
    fault_bytes.extend_from_slice(b"{\"op\":\"points_to\",\"var\":\"q\"}\n");
    fault_bytes.extend_from_slice(b"{\"op\":\"shutdown\"}"); // no trailing newline
    let truncated = b"{\"op\":\"poi".to_vec();
    let mut new = Vec::new();
    for (prefix, bytes) in programs {
        if let Some(p) = write_corpus_entry(dir, prefix, PROGRAM_EXT, bytes)? {
            new.push(p);
        }
    }
    if let Some(p) = write_corpus_entry(dir, "serve-panic", REQUEST_EXT, &fault_bytes)? {
        new.push(p);
    }
    if let Some(p) = write_corpus_entry(dir, "serve-protocol", REQUEST_EXT, &truncated)? {
        new.push(p);
    }
    Ok(new)
}

/// All corpus entries with the given extension, sorted by file name.
///
/// # Errors
///
/// Propagates directory-read errors (a missing directory is an empty
/// corpus, not an error).
pub fn corpus_entries(dir: &Path, ext: &str) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some(ext) {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

// ---------------------------------------------------------------------------
// Replay (used by tests/fuzz_regressions.rs)
// ---------------------------------------------------------------------------

/// Replays one program corpus entry under the fixed [`REPLAY_MATRIX`].
///
/// # Errors
///
/// Returns the finding's category and message when the entry still
/// panics, still exposes a validation gap, or still mismatches.
pub fn replay_program_entry(bytes: &[u8]) -> Result<(), String> {
    match check_program(bytes, &REPLAY_MATRIX) {
        Ok(_) => Ok(()),
        Err(f) => Err(format!("{}: {}", f.prefix, f.message)),
    }
}

/// Replays one request-stream corpus entry through a fresh session.
///
/// # Errors
///
/// Returns the finding's category and message when the stream still
/// panics the session or still produces a malformed envelope.
pub fn replay_request_entry(bytes: &[u8]) -> Result<(), String> {
    match check_requests(bytes) {
        Ok(_) => Ok(()),
        Err(f) => Err(format!("{}: {}", f.prefix, f.message)),
    }
}

// ---------------------------------------------------------------------------
// Fuzz loops
// ---------------------------------------------------------------------------

/// What one fuzzing campaign did: totals plus any *new* corpus entries
/// (each one a freshly discovered, already-minimized failing input).
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Inputs generated and checked.
    pub iterations: usize,
    /// Inputs rejected up front with a typed error.
    pub rejected: usize,
    /// Inputs fully verified (differential checks or answered requests).
    pub verified: usize,
    /// Total differential solves / request replies across the campaign.
    pub checks: usize,
    /// Newly pinned corpus entries — any entry here fails the build.
    pub new_entries: Vec<PathBuf>,
}

fn record_finding(
    report: &mut FuzzReport,
    corpus: &Path,
    ext: &str,
    finding: &Finding,
    bytes: &[u8],
    mut still_fails: impl FnMut(&[u8]) -> bool,
) -> std::io::Result<()> {
    let minimized = minimize(bytes, &mut still_fails);
    eprintln!(
        "fuzz: {} — {} ({} bytes, minimized to {})",
        finding.prefix,
        finding.message,
        bytes.len(),
        minimized.len()
    );
    if let Some(path) = write_corpus_entry(corpus, finding.prefix, ext, &minimized)? {
        report.new_entries.push(path);
    }
    Ok(())
}

/// Fuzzes constraint-program parsing and differential solving for
/// `iters` iterations from `seed`. Roughly half the inputs are valid
/// generated programs (checked differentially against randomly sampled
/// configurations), half are mutated corruptions (checked for panic-free
/// rejection). New findings are minimized and pinned under `corpus`.
///
/// # Errors
///
/// Propagates filesystem errors writing corpus entries.
pub fn fuzz_programs(seed: u64, iters: usize, corpus: &Path) -> std::io::Result<FuzzReport> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = FuzzReport::default();
    for _ in 0..iters {
        report.iterations += 1;
        let text = gen_program_text(&mut rng);
        let bytes = if rng.gen_bool(0.5) {
            mutate_program(&mut rng, &text)
        } else {
            text.into_bytes()
        };
        let alts = [sample_alt(&mut rng), sample_alt(&mut rng)];
        match check_program(&bytes, &alts) {
            Ok(Outcome::Rejected) => report.rejected += 1,
            Ok(Outcome::Verified(n)) => {
                report.verified += 1;
                report.checks += n;
            }
            Err(finding) => {
                let prefix = finding.prefix;
                record_finding(
                    &mut report,
                    corpus,
                    PROGRAM_EXT,
                    &finding,
                    &bytes,
                    |b| matches!(check_program(b, &alts), Err(f) if f.prefix == prefix),
                )?;
            }
        }
    }
    Ok(report)
}

/// Fuzzes the serve transport and session protocol for `iters`
/// adversarial JSONL streams from `seed`. Every stream must drain
/// without a panic, and every reply must be a well-formed envelope.
///
/// # Errors
///
/// Propagates filesystem errors writing corpus entries.
pub fn fuzz_requests(seed: u64, iters: usize, corpus: &Path) -> std::io::Result<FuzzReport> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = FuzzReport::default();
    for _ in 0..iters {
        report.iterations += 1;
        let bytes = gen_request_stream(&mut rng);
        match check_requests(&bytes) {
            Ok(Outcome::Rejected) => report.rejected += 1,
            Ok(Outcome::Verified(n)) => {
                report.verified += 1;
                report.checks += n;
            }
            Err(finding) => {
                let prefix = finding.prefix;
                record_finding(
                    &mut report,
                    corpus,
                    REQUEST_EXT,
                    &finding,
                    &bytes,
                    |b| matches!(check_requests(b), Err(f) if f.prefix == prefix),
                )?;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_are_valid_and_agree() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let text = gen_program_text(&mut rng);
            let alts = [sample_alt(&mut rng)];
            match check_program(text.as_bytes(), &alts) {
                Ok(Outcome::Verified(1)) => {}
                other => panic!("generated program not verified: {other:?}\n{text}"),
            }
        }
    }

    #[test]
    fn mutated_programs_never_panic() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let text = gen_program_text(&mut rng);
            let bytes = mutate_program(&mut rng, &text);
            if let Err(f) = check_program(&bytes, &[]) {
                panic!("{}: {} on {:?}", f.prefix, f.message, bytes);
            }
        }
    }

    #[test]
    fn request_streams_never_panic_and_keep_the_protocol() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..25 {
            let bytes = gen_request_stream(&mut rng);
            if let Err(f) = check_requests(&bytes) {
                panic!("{}: {} on {:?}", f.prefix, f.message, bytes);
            }
        }
    }

    #[test]
    fn minimize_shrinks_while_preserving_the_predicate() {
        let input = b"keep\nnoise one\nnoise two\nBAD marker\ntrailing\n";
        let out = minimize(input, |b| b.windows(3).any(|w| w == b"BAD"));
        assert!(out.windows(3).any(|w| w == b"BAD"));
        assert!(out.len() < input.len(), "no shrink: {out:?}");
    }

    #[test]
    fn corpus_round_trips_and_dedups() {
        let dir = std::env::temp_dir().join(format!("ant-fuzz-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let first = write_corpus_entry(&dir, "diff-mismatch", PROGRAM_EXT, b"p = &x\n").unwrap();
        assert!(first.is_some());
        let dup = write_corpus_entry(&dir, "diff-mismatch", PROGRAM_EXT, b"p = &x\n").unwrap();
        assert!(dup.is_none(), "identical content must not be a new entry");
        let listed = corpus_entries(&dir, PROGRAM_EXT).unwrap();
        assert_eq!(listed, vec![first.unwrap()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_corpus_replays_clean() {
        let dir = std::env::temp_dir().join(format!("ant-fuzz-seed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let new = seed_corpus(&dir).unwrap();
        assert_eq!(new.len(), 6, "all six historical crashers pinned");
        assert!(seed_corpus(&dir).unwrap().is_empty(), "idempotent");
        for path in corpus_entries(&dir, PROGRAM_EXT).unwrap() {
            let bytes = std::fs::read(&path).unwrap();
            replay_program_entry(&bytes).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
        for path in corpus_entries(&dir, REQUEST_EXT).unwrap() {
            let bytes = std::fs::read(&path).unwrap();
            replay_request_entry(&bytes).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
