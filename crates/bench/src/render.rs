//! Plain-text rendering of paper-style tables and figure series.

/// Renders a table: first column is the row label, remaining cells are
/// formatted values.
pub fn table(title: &str, columns: &[&str], rows: &[(String, Vec<String>)]) -> String {
    let mut widths: Vec<usize> = Vec::new();
    widths.push(
        rows.iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(title.len()))
            .max()
            .unwrap_or(0),
    );
    for (i, c) in columns.iter().enumerate() {
        let w = rows
            .iter()
            .filter_map(|(_, cells)| cells.get(i).map(String::len))
            .chain(std::iter::once(c.len()))
            .max()
            .unwrap_or(0);
        widths.push(w);
    }
    let mut out = String::new();
    let mut header = format!("{:<w$}", title, w = widths[0]);
    for (i, c) in columns.iter().enumerate() {
        header.push_str(&format!("  {:>w$}", c, w = widths[i + 1]));
    }
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    for (label, cells) in rows {
        out.push_str(&format!("{:<w$}", label, w = widths[0]));
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", cell, w = widths[i + 1]));
        }
        out.push('\n');
    }
    out
}

/// Formats seconds like the paper's tables (two decimals, thousands
/// separators for the big numbers).
pub fn secs(s: f64) -> String {
    if s.is_nan() {
        "OOM".to_owned()
    } else {
        format!("{s:.3}")
    }
}

/// Formats mebibytes with one decimal.
pub fn mib(m: f64) -> String {
    if m.is_nan() {
        "OOM".to_owned()
    } else {
        format!("{m:.1}")
    }
}

/// Formats a normalized ratio.
pub fn ratio(r: f64) -> String {
    if r.is_nan() {
        "-".to_owned()
    } else {
        format!("{r:.2}x")
    }
}

/// Geometric mean of positive ratios (the paper's "on average N× faster").
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v.is_finite() && v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = table(
            "Bench",
            &["A", "BB"],
            &[
                ("emacs".into(), vec!["1.0".into(), "2.00".into()]),
                ("linux".into(), vec!["10.5".into(), "3".into()]),
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Bench"));
        assert!(lines[2].starts_with("emacs"));
        // Columns align: all lines same length for the rendered cells.
        assert!(lines[2].len() <= lines[0].len());
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(secs(f64::NAN), "OOM");
        assert_eq!(mib(12.34), "12.3");
        assert_eq!(ratio(2.5), "2.50x");
        assert_eq!(ratio(f64::NAN), "-");
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty()).is_nan());
        // Non-finite entries are skipped.
        let g2 = geomean([2.0, f64::NAN, 8.0]);
        assert!((g2 - 4.0).abs() < 1e-12);
    }
}
