//! Shared benchmark runner.

use ant_common::SolverStats;
use ant_constraints::pipeline::{PassPipeline, PassSummary};
use ant_constraints::{ConstraintStats, Program};
use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig};
use ant_frontend::suite::{default_suite, scale_from_env};
use std::collections::HashMap;
use std::time::Duration;

/// A benchmark after constraint generation and offline preprocessing — the
/// exact input the paper's solvers receive ("the results reported are for
/// these reduced constraint files").
///
/// All reduction bookkeeping comes from one [`PassPipeline::full`] run;
/// the per-pass breakdown is kept in [`PreparedBench::passes`].
#[derive(Clone, Debug)]
pub struct PreparedBench {
    /// Benchmark name (paper's Table 2 rows).
    pub name: String,
    /// Nominal LOC at the current scale.
    pub loc: usize,
    /// Constraint counts before reduction.
    pub original: ConstraintStats,
    /// Constraint counts after the offline pass pipeline.
    pub reduced: ConstraintStats,
    /// Per-pass reduction summaries from the pipeline run.
    pub passes: Vec<PassSummary>,
    /// OVS pre-processing time (the pipeline's `ovs` pass).
    pub ovs_time: Duration,
    /// HCD offline analysis time on the reduced program (Table 3's
    /// "HCD-Offline" row; the pipeline's `hcd` pass).
    pub hcd_offline_time: Duration,
    /// The reduced program handed to every solver.
    pub program: Program,
}

/// Runs the full offline pipeline on one generated program.
fn prepare_one(name: String, loc: usize, program: Program) -> PreparedBench {
    let original = program.stats();
    let prepared = PassPipeline::full().run(&program);
    PreparedBench {
        name,
        loc,
        original,
        reduced: prepared.program.stats(),
        ovs_time: prepared
            .summary("ovs")
            .map(|s| s.elapsed)
            .unwrap_or_default(),
        hcd_offline_time: prepared.hcd.as_ref().map(|h| h.elapsed).unwrap_or_default(),
        passes: prepared.summaries,
        program: prepared.program,
    }
}

/// Prepares the whole suite at the `ANT_SCALE` environment scale.
pub fn prepare_suite() -> Vec<PreparedBench> {
    let _ = scale_from_env();
    default_suite()
        .into_iter()
        .map(|b| prepare_one(b.name().to_owned(), b.spec.loc, b.program()))
        .collect()
}

/// One timed solver run.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Algorithm that ran.
    pub algorithm: Algorithm,
    /// Benchmark name.
    pub bench: String,
    /// Best-of-N solve time (the paper repeats three times and reports the
    /// smallest).
    pub time: Duration,
    /// Statistics from the best run.
    pub stats: SolverStats,
}

/// Number of repetitions from `ANT_BENCH_REPEATS` (default 1; the paper
/// uses 3). The older spelling `ANT_REPEATS` is still honoured when the
/// new one is unset. Invalid or zero values are clamped to 1 with a
/// warning rather than silently ignored.
pub fn repeats_from_env() -> usize {
    let bench = std::env::var("ANT_BENCH_REPEATS").ok();
    let legacy = std::env::var("ANT_REPEATS").ok();
    let (repeats, warning) = parse_repeats(bench.as_deref(), legacy.as_deref());
    if let Some(w) = warning {
        eprintln!("warning: {w}");
    }
    repeats
}

/// Pure core of [`repeats_from_env`]: `bench` is `ANT_BENCH_REPEATS`,
/// `legacy` the older `ANT_REPEATS` (used only when `bench` is unset).
/// Returns the repeat count plus a warning to surface when the value was
/// rejected.
pub fn parse_repeats(bench: Option<&str>, legacy: Option<&str>) -> (usize, Option<String>) {
    let (name, value) = match (bench, legacy) {
        (Some(v), _) => ("ANT_BENCH_REPEATS", v),
        (None, Some(v)) => ("ANT_REPEATS", v),
        (None, None) => return (1, None),
    };
    match value.trim().parse::<usize>() {
        Ok(0) => (
            1,
            Some(format!(
                "{name}=0 is not a valid repeat count; clamping to 1"
            )),
        ),
        Ok(n) => (n, None),
        Err(_) => (
            1,
            Some(format!("{name}=`{value}` is not a number; using 1 repeat")),
        ),
    }
}

/// Runs one algorithm on one prepared benchmark, best of `repeats`, with
/// the given points-to representation.
pub fn run_one(bench: &PreparedBench, alg: Algorithm, repeats: usize, pts: PtsKind) -> BenchResult {
    let config = SolverConfig::new(alg);
    let mut best: Option<SolverStats> = None;
    for _ in 0..repeats.max(1) {
        let out = solve_dyn(&bench.program, &config, pts);
        if best
            .as_ref()
            .is_none_or(|b| out.stats.solve_time < b.solve_time)
        {
            best = Some(out.stats);
        }
    }
    let stats = best.expect("at least one run");
    BenchResult {
        algorithm: alg,
        bench: bench.name.clone(),
        time: stats.solve_time,
        stats,
    }
}

/// Results of a full sweep, indexed by `(algorithm name, benchmark name)`.
#[derive(Debug, Default)]
pub struct SuiteResults {
    map: HashMap<(&'static str, String), BenchResult>,
}

impl SuiteResults {
    /// Looks up one cell.
    pub fn get(&self, alg: Algorithm, bench: &str) -> Option<&BenchResult> {
        self.map.get(&(alg.name(), bench.to_owned()))
    }

    /// Cell solve time in seconds.
    pub fn seconds(&self, alg: Algorithm, bench: &str) -> f64 {
        self.get(alg, bench)
            .map(|r| r.time.as_secs_f64())
            .unwrap_or(f64::NAN)
    }

    /// Cell memory in MiB.
    pub fn mib(&self, alg: Algorithm, bench: &str) -> f64 {
        self.get(alg, bench)
            .map(|r| r.stats.total_mib())
            .unwrap_or(f64::NAN)
    }

    fn insert(&mut self, r: BenchResult) {
        self.map.insert((r.algorithm.name(), r.bench.clone()), r);
    }
}

/// Runs `algorithms` over every prepared benchmark.
pub fn run_suite(
    benches: &[PreparedBench],
    algorithms: &[Algorithm],
    repeats: usize,
    pts: PtsKind,
) -> SuiteResults {
    let mut out = SuiteResults::default();
    for bench in benches {
        for &alg in algorithms {
            eprintln!("  [{}] {} ...", bench.name, alg.name());
            out.insert(run_one(bench, alg, repeats, pts));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ant_frontend::workload::WorkloadSpec;

    fn tiny_bench() -> PreparedBench {
        prepare_one("tiny".into(), 1000, WorkloadSpec::tiny(1).generate())
    }

    #[test]
    fn run_one_produces_stats() {
        let b = tiny_bench();
        let r = run_one(&b, Algorithm::LcdHcd, 2, PtsKind::Bitmap);
        assert_eq!(r.bench, "tiny");
        assert!(r.stats.nodes_processed > 0);
    }

    #[test]
    fn suite_results_lookup() {
        let b = tiny_bench();
        let rs = run_suite(
            std::slice::from_ref(&b),
            &[Algorithm::Lcd, Algorithm::Hcd],
            1,
            PtsKind::Bitmap,
        );
        assert!(rs.get(Algorithm::Lcd, "tiny").is_some());
        assert!(rs.get(Algorithm::Ht, "tiny").is_none());
        assert!(rs.seconds(Algorithm::Lcd, "tiny") >= 0.0);
        assert!(rs.mib(Algorithm::Lcd, "tiny") > 0.0);
        assert!(rs.seconds(Algorithm::Blq, "tiny").is_nan());
    }

    #[test]
    fn ovs_reduces_constraints() {
        let b = tiny_bench();
        assert!(b.reduced.total() < b.original.total());
    }

    #[test]
    fn parse_repeats_accepts_both_spellings() {
        assert_eq!(parse_repeats(None, None), (1, None));
        assert_eq!(parse_repeats(Some("3"), None), (3, None));
        assert_eq!(parse_repeats(None, Some("5")), (5, None));
        // The new spelling wins when both are set.
        assert_eq!(parse_repeats(Some("2"), Some("9")), (2, None));
        assert_eq!(parse_repeats(Some(" 4 "), None), (4, None));
    }

    #[test]
    fn parse_repeats_rejects_zero_and_garbage_with_a_warning() {
        let (r, warn) = parse_repeats(Some("0"), None);
        assert_eq!(r, 1);
        assert!(warn.unwrap().contains("ANT_BENCH_REPEATS=0"));
        let (r, warn) = parse_repeats(None, Some("three"));
        assert_eq!(r, 1);
        assert!(warn.unwrap().contains("ANT_REPEATS=`three`"));
        let (r, warn) = parse_repeats(Some("-2"), None);
        assert_eq!(r, 1);
        assert!(warn.is_some());
    }
}
