//! Shared benchmark runner.

use ant_common::SolverStats;
use ant_constraints::hcd::HcdOffline;
use ant_constraints::{ConstraintStats, Program};
use ant_core::{solve, Algorithm, PtsRepr, SolverConfig};
use ant_frontend::suite::{default_suite, scale_from_env};
use std::collections::HashMap;
use std::time::Duration;

/// A benchmark after constraint generation and OVS pre-processing — the
/// exact input the paper's solvers receive ("the results reported are for
/// these reduced constraint files").
#[derive(Clone, Debug)]
pub struct PreparedBench {
    /// Benchmark name (paper's Table 2 rows).
    pub name: String,
    /// Nominal LOC at the current scale.
    pub loc: usize,
    /// Constraint counts before reduction.
    pub original: ConstraintStats,
    /// Constraint counts after offline variable substitution.
    pub reduced: ConstraintStats,
    /// OVS pre-processing time.
    pub ovs_time: Duration,
    /// HCD offline analysis time on the reduced program (Table 3's
    /// "HCD-Offline" row).
    pub hcd_offline_time: Duration,
    /// The reduced program handed to every solver.
    pub program: Program,
}

/// Prepares the whole suite at the `ANT_SCALE` environment scale.
pub fn prepare_suite() -> Vec<PreparedBench> {
    let _ = scale_from_env();
    default_suite()
        .into_iter()
        .map(|b| {
            let program = b.program();
            let original = program.stats();
            let ovs = ant_constraints::ovs::substitute(&program);
            let hcd = HcdOffline::analyze(&ovs.program);
            PreparedBench {
                name: b.name().to_owned(),
                loc: b.spec.loc,
                original,
                reduced: ovs.program.stats(),
                ovs_time: ovs.elapsed,
                hcd_offline_time: hcd.elapsed,
                program: ovs.program,
            }
        })
        .collect()
}

/// One timed solver run.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Algorithm that ran.
    pub algorithm: Algorithm,
    /// Benchmark name.
    pub bench: String,
    /// Best-of-N solve time (the paper repeats three times and reports the
    /// smallest).
    pub time: Duration,
    /// Statistics from the best run.
    pub stats: SolverStats,
}

/// Number of repetitions from `ANT_REPEATS` (default 1; the paper uses 3).
pub fn repeats_from_env() -> usize {
    std::env::var("ANT_REPEATS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(1)
}

/// Runs one algorithm on one prepared benchmark, best of `repeats`.
pub fn run_one<P: PtsRepr>(bench: &PreparedBench, alg: Algorithm, repeats: usize) -> BenchResult {
    let config = SolverConfig::new(alg);
    let mut best: Option<SolverStats> = None;
    for _ in 0..repeats.max(1) {
        let out = solve::<P>(&bench.program, &config);
        if best
            .as_ref()
            .is_none_or(|b| out.stats.solve_time < b.solve_time)
        {
            best = Some(out.stats);
        }
    }
    let stats = best.expect("at least one run");
    BenchResult {
        algorithm: alg,
        bench: bench.name.clone(),
        time: stats.solve_time,
        stats,
    }
}

/// Results of a full sweep, indexed by `(algorithm name, benchmark name)`.
#[derive(Debug, Default)]
pub struct SuiteResults {
    map: HashMap<(&'static str, String), BenchResult>,
}

impl SuiteResults {
    /// Looks up one cell.
    pub fn get(&self, alg: Algorithm, bench: &str) -> Option<&BenchResult> {
        self.map.get(&(alg.name(), bench.to_owned()))
    }

    /// Cell solve time in seconds.
    pub fn seconds(&self, alg: Algorithm, bench: &str) -> f64 {
        self.get(alg, bench)
            .map(|r| r.time.as_secs_f64())
            .unwrap_or(f64::NAN)
    }

    /// Cell memory in MiB.
    pub fn mib(&self, alg: Algorithm, bench: &str) -> f64 {
        self.get(alg, bench)
            .map(|r| r.stats.total_mib())
            .unwrap_or(f64::NAN)
    }

    fn insert(&mut self, r: BenchResult) {
        self.map.insert((r.algorithm.name(), r.bench.clone()), r);
    }
}

/// Runs `algorithms` over every prepared benchmark.
pub fn run_suite<P: PtsRepr>(
    benches: &[PreparedBench],
    algorithms: &[Algorithm],
    repeats: usize,
) -> SuiteResults {
    let mut out = SuiteResults::default();
    for bench in benches {
        for &alg in algorithms {
            eprintln!("  [{}] {} ...", bench.name, alg.name());
            out.insert(run_one::<P>(bench, alg, repeats));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ant_core::BitmapPts;
    use ant_frontend::workload::WorkloadSpec;

    fn tiny_bench() -> PreparedBench {
        let program = WorkloadSpec::tiny(1).generate();
        let original = program.stats();
        let ovs = ant_constraints::ovs::substitute(&program);
        let hcd = HcdOffline::analyze(&ovs.program);
        PreparedBench {
            name: "tiny".into(),
            loc: 1000,
            original,
            reduced: ovs.program.stats(),
            ovs_time: ovs.elapsed,
            hcd_offline_time: hcd.elapsed,
            program: ovs.program,
        }
    }

    #[test]
    fn run_one_produces_stats() {
        let b = tiny_bench();
        let r = run_one::<BitmapPts>(&b, Algorithm::LcdHcd, 2);
        assert_eq!(r.bench, "tiny");
        assert!(r.stats.nodes_processed > 0);
    }

    #[test]
    fn suite_results_lookup() {
        let b = tiny_bench();
        let rs = run_suite::<BitmapPts>(
            std::slice::from_ref(&b),
            &[Algorithm::Lcd, Algorithm::Hcd],
            1,
        );
        assert!(rs.get(Algorithm::Lcd, "tiny").is_some());
        assert!(rs.get(Algorithm::Ht, "tiny").is_none());
        assert!(rs.seconds(Algorithm::Lcd, "tiny") >= 0.0);
        assert!(rs.mib(Algorithm::Lcd, "tiny") > 0.0);
        assert!(rs.seconds(Algorithm::Blq, "tiny").is_nan());
    }

    #[test]
    fn ovs_reduces_constraints() {
        let b = tiny_bench();
        assert!(b.reduced.total() < b.original.total());
    }
}
