//! Aggregation and rendering of JSONL solver traces (the files written by
//! `ant solve --trace-out`).
//!
//! The input is one flat JSON object per line (see
//! `ant_core::obs::TraceWriter` for the schema); the output is a
//! plain-text per-solver, per-phase breakdown in the style of the other
//! `ant-bench` tables.

use crate::render::table;
use ant_core::obs::{parse_object, Phase};
use std::collections::BTreeMap;

/// Everything aggregated for one solver section of a trace.
#[derive(Clone, Debug, Default)]
pub struct SolverTrace {
    /// Per-phase `(span count, total seconds)`, summed over `phase_end`
    /// records.
    pub phases: BTreeMap<String, (u64, f64)>,
    /// Number of `cycle_collapsed` records and total members removed.
    pub cycles: (u64, u64),
    /// Total `edges_added` over `graph_mutation` records.
    pub edges_added: u64,
    /// Number of `progress` records.
    pub snapshots: u64,
    /// The last `progress` record: `(worklist, nodes, propagations,
    /// pts_bytes)`.
    pub last_progress: Option<(u64, u64, u64, u64)>,
    /// The last `repr_cache` record, if the solver ran with a shared
    /// (interned) points-to representation.
    pub repr_cache: Option<ant_common::ReprCacheStats>,
    /// BSP rounds: `(round count, total hints, total hint hits, total
    /// worker microseconds)`, summed over `round_summary` records. All
    /// zeros for single-threaded runs.
    pub rounds: (u64, u64, u64, u64),
    /// Offline pass summaries in trace order: `(pass, constraints before,
    /// constraints after, vars merged, microseconds)`.
    pub passes: Vec<(String, u64, u64, u64, u64)>,
    /// Cost-metrics counters from the recorder's final `metrics` flush:
    /// `(name, value)` in trace order.
    pub metric_counters: Vec<(String, u64)>,
    /// Metrics histograms: `(name, sample count, "bucket:count ..."
    /// encoding — bucket i covers values in `[2^(i-1), 2^i)`)`.
    pub metric_hists: Vec<(String, u64, String)>,
    /// Top-K hotspot tables from per-variable series: `(series name,
    /// "var:value ..." entries, largest first)`.
    pub hotspots: Vec<(String, String)>,
}

/// A parsed trace: solver sections in first-appearance order (events
/// before the first `solver_start` land in a `""` section).
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// `(solver name, aggregate)` pairs.
    pub solvers: Vec<(String, SolverTrace)>,
    /// Number of records read.
    pub records: usize,
}

impl TraceSummary {
    fn section(&mut self, solver: &str) -> &mut SolverTrace {
        if !self.solvers.iter().any(|(name, _)| name == solver) {
            self.solvers
                .push((solver.to_owned(), SolverTrace::default()));
        }
        let (_, agg) = self
            .solvers
            .iter_mut()
            .find(|(name, _)| name == solver)
            .expect("just inserted");
        agg
    }
}

/// Parses a JSONL trace into per-solver aggregates.
///
/// # Errors
///
/// Returns a message naming the first malformed line (1-based).
pub fn summarize(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = parse_object(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        summary.records += 1;
        let solver = record
            .get("solver")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_owned();
        let event = record
            .get("event")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("line {}: missing `event`", idx + 1))?;
        let agg = summary.section(&solver);
        match event {
            "phase_end" => {
                let phase = record
                    .get("phase")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("line {}: phase_end without `phase`", idx + 1))?;
                let seconds = record
                    .get("seconds")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                let cell = agg.phases.entry(phase.to_owned()).or_insert((0, 0.0));
                cell.0 += 1;
                cell.1 += seconds;
            }
            "cycle_collapsed" => {
                agg.cycles.0 += 1;
                agg.cycles.1 += record.get("members").and_then(|v| v.as_u64()).unwrap_or(0);
            }
            "graph_mutation" => {
                agg.edges_added += record
                    .get("edges_added")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
            }
            "progress" => {
                agg.snapshots += 1;
                let field = |k: &str| record.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                agg.last_progress = Some((
                    field("worklist"),
                    field("nodes"),
                    field("propagations"),
                    field("pts_bytes"),
                ));
            }
            "repr_cache" => {
                let field = |k: &str| record.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                agg.repr_cache = Some(ant_common::ReprCacheStats {
                    intern_hits: field("intern_hits"),
                    intern_misses: field("intern_misses"),
                    memo_hits: field("memo_hits"),
                    memo_misses: field("memo_misses"),
                    distinct_sets: field("distinct_sets"),
                });
            }
            "round_summary" => {
                let field = |k: &str| record.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                agg.rounds.0 += 1;
                agg.rounds.1 += field("hints");
                agg.rounds.2 += field("hint_hits");
                agg.rounds.3 += field("worker_micros");
            }
            "pass_summary" => {
                let field = |k: &str| record.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                let pass = record
                    .get("pass")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_owned();
                agg.passes.push((
                    pass,
                    field("constraints_before"),
                    field("constraints_after"),
                    field("vars_merged"),
                    field("micros"),
                ));
            }
            "metrics" => {
                let name = || {
                    record
                        .get("name")
                        .and_then(|v| v.as_str())
                        .unwrap_or("?")
                        .to_owned()
                };
                let field = |k: &str| record.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                let text = |k: &str| {
                    record
                        .get(k)
                        .and_then(|v| v.as_str())
                        .unwrap_or("")
                        .to_owned()
                };
                match record.get("kind").and_then(|v| v.as_str()) {
                    Some("counter") => agg.metric_counters.push((name(), field("value"))),
                    Some("hist") => {
                        agg.metric_hists
                            .push((name(), field("count"), text("buckets")));
                    }
                    Some("top") => agg.hotspots.push((name(), text("entries"))),
                    // The `summary` line only carries section sizes.
                    _ => {}
                }
            }
            // `solver_start` opens the section (handled above);
            // `phase_start` only matters through its matching `phase_end`;
            // `shard_utilization` detail is summed into `round_summary`.
            _ => {}
        }
    }
    Ok(summary)
}

/// Renders the per-solver, per-phase breakdown as plain text.
pub fn render(summary: &TraceSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} trace records\n", summary.records));
    for (solver, agg) in &summary.solvers {
        let title = if solver.is_empty() {
            "(pre-solve)"
        } else {
            solver
        };
        out.push('\n');
        out.push_str(&format!("solver: {title}\n"));
        let mut rows: Vec<(String, Vec<String>)> = Vec::new();
        // Known phases first, in their canonical order, then any others.
        let canonical: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        let ordered = canonical
            .iter()
            .filter(|name| agg.phases.contains_key(**name))
            .map(|name| (*name).to_owned())
            .chain(
                agg.phases
                    .keys()
                    .filter(|k| !canonical.contains(&k.as_str()))
                    .cloned(),
            );
        let total: f64 = agg.phases.values().map(|(_, s)| s).sum();
        for name in ordered {
            let (count, seconds) = agg.phases[&name];
            let share = if total > 0.0 {
                format!("{:.1}%", 100.0 * seconds / total)
            } else {
                "-".to_owned()
            };
            rows.push((
                name,
                vec![count.to_string(), format!("{seconds:.3}"), share],
            ));
        }
        if rows.is_empty() {
            out.push_str("  (no completed phase spans)\n");
        } else {
            out.push_str(&table("phase", &["spans", "seconds", "share"], &rows));
        }
        for (pass, before, after, merged, micros) in &agg.passes {
            let cut = if *before > 0 {
                100.0 * (before - after.min(before)) as f64 / *before as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "offline pass {pass}: {before} -> {after} constraints \
                 ({cut:.1}% cut) | {merged} vars merged | {:.1}ms\n",
                *micros as f64 / 1000.0
            ));
        }
        if agg.cycles.0 > 0 {
            out.push_str(&format!(
                "cycles collapsed: {} (removing {} nodes)\n",
                agg.cycles.0, agg.cycles.1
            ));
        }
        if agg.edges_added > 0 {
            out.push_str(&format!("graph edges added: {}\n", agg.edges_added));
        }
        if let Some((worklist, nodes, propagations, pts_bytes)) = agg.last_progress {
            out.push_str(&format!(
                "final snapshot ({} total): worklist {worklist} | nodes {nodes} | \
                 propagations {propagations} | pts {:.1} MiB\n",
                agg.snapshots,
                pts_bytes as f64 / (1024.0 * 1024.0)
            ));
        }
        if let Some(cs) = &agg.repr_cache {
            out.push_str(&format!(
                "repr cache: {} distinct sets | intern hit rate {:.1}% | \
                 memo hit rate {:.1}%\n",
                cs.distinct_sets,
                100.0 * cs.intern_hit_rate(),
                100.0 * cs.memo_hit_rate()
            ));
        }
        let (rounds, hints, hint_hits, worker_micros) = agg.rounds;
        if rounds > 0 {
            out.push_str(&format!(
                "bsp rounds: {rounds} | hints used {hint_hits}/{hints} | \
                 worker time {:.3}s\n",
                worker_micros as f64 / 1e6
            ));
        }
        if !agg.metric_counters.is_empty() {
            let parts: Vec<String> = agg
                .metric_counters
                .iter()
                .map(|(name, value)| format!("{name} {value}"))
                .collect();
            out.push_str(&format!("cost counters: {}\n", parts.join(" | ")));
        }
        // Full-vs-diff propagation volume, from the recorder's counters:
        // bytes the run actually pushed along edges vs the full-set
        // equivalent for the same edge visits (equal under `--prop full`).
        let counter = |key: &str| {
            agg.metric_counters
                .iter()
                .find(|(n, _)| n == key)
                .map(|&(_, v)| v)
        };
        if let (Some(sent), Some(full)) = (
            counter("propagated_bytes"),
            counter("propagated_full_bytes"),
        ) {
            if full > 0 {
                let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
                out.push_str(&format!(
                    "propagation bytes: sent {:.1} MiB | full-set equivalent {:.1} MiB \
                     ({:.1}% saved by delta sends)\n",
                    mib(sent),
                    mib(full),
                    100.0 * (1.0 - sent as f64 / full as f64)
                ));
            }
        }
        for (name, count, buckets) in &agg.metric_hists {
            out.push_str(&format!(
                "hist {name}: {count} samples | log2 buckets {buckets}\n"
            ));
        }
        for (name, entries) in &agg.hotspots {
            let rows: Vec<(String, Vec<String>)> = entries
                .split_whitespace()
                .enumerate()
                .filter_map(|(rank, e)| {
                    let (var, value) = e.split_once(':')?;
                    Some((
                        format!("{}", rank + 1),
                        vec![format!("v{var}"), value.to_owned()],
                    ))
                })
                .collect();
            if !rows.is_empty() {
                out.push_str(&format!("hotspots: {name}\n"));
                out.push_str(&table("#", &["variable", name], &rows));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
{\"t\": 0.0, \"event\": \"phase_end\", \"solver\": \"\", \"phase\": \"parse\", \"seconds\": 0.25}
{\"t\": 0.2, \"event\": \"pass_summary\", \"solver\": \"\", \"pass\": \"ovs\", \"constraints_before\": 200, \"constraints_after\": 50, \"vars_merged\": 60, \"micros\": 1200}
{\"t\": 0.3, \"event\": \"solver_start\", \"solver\": \"LCD+HCD\"}
{\"t\": 0.4, \"event\": \"phase_start\", \"solver\": \"LCD+HCD\", \"phase\": \"solve\"}
{\"t\": 0.5, \"event\": \"progress\", \"solver\": \"LCD+HCD\", \"worklist\": 10, \"nodes\": 5, \"propagations\": 7, \"pts_bytes\": 1048576}
{\"t\": 0.6, \"event\": \"cycle_collapsed\", \"solver\": \"LCD+HCD\", \"members\": 3}
{\"t\": 0.7, \"event\": \"graph_mutation\", \"solver\": \"LCD+HCD\", \"edges_added\": 2}
{\"t\": 0.8, \"event\": \"progress\", \"solver\": \"LCD+HCD\", \"worklist\": 0, \"nodes\": 9, \"propagations\": 12, \"pts_bytes\": 2097152}
{\"t\": 0.85, \"event\": \"repr_cache\", \"solver\": \"LCD+HCD\", \"intern_hits\": 30, \"intern_misses\": 10, \"memo_hits\": 75, \"memo_misses\": 25, \"distinct_sets\": 11}
{\"t\": 0.86, \"event\": \"shard_utilization\", \"solver\": \"LCD+HCD\", \"round\": 2, \"shard\": 0, \"nodes\": 64, \"busy_micros\": 400}
{\"t\": 0.87, \"event\": \"round_summary\", \"solver\": \"LCD+HCD\", \"round\": 2, \"nodes\": 128, \"shards\": 2, \"hints\": 50, \"hint_hits\": 45, \"worker_micros\": 800}
{\"t\": 0.88, \"event\": \"metrics\", \"solver\": \"LCD+HCD\", \"kind\": \"summary\", \"counters\": 2, \"hists\": 1, \"tops\": 1}
{\"t\": 0.88, \"event\": \"metrics\", \"solver\": \"LCD+HCD\", \"kind\": \"counter\", \"name\": \"worklist_pops\", \"value\": 42}
{\"t\": 0.88, \"event\": \"metrics\", \"solver\": \"LCD+HCD\", \"kind\": \"counter\", \"name\": \"pts_bytes\", \"value\": 4096}
{\"t\": 0.88, \"event\": \"metrics\", \"solver\": \"LCD+HCD\", \"kind\": \"counter\", \"name\": \"propagated_bytes\", \"value\": 1048576}
{\"t\": 0.88, \"event\": \"metrics\", \"solver\": \"LCD+HCD\", \"kind\": \"counter\", \"name\": \"propagated_full_bytes\", \"value\": 4194304}
{\"t\": 0.88, \"event\": \"metrics\", \"solver\": \"LCD+HCD\", \"kind\": \"hist\", \"name\": \"propagation_delta\", \"count\": 12, \"buckets\": \"0:3 2:9\"}
{\"t\": 0.88, \"event\": \"metrics\", \"solver\": \"LCD+HCD\", \"kind\": \"top\", \"name\": \"pops_per_var\", \"entries\": \"7:19 3:11 9:2\"}
{\"t\": 0.9, \"event\": \"phase_end\", \"solver\": \"LCD+HCD\", \"phase\": \"solve\", \"seconds\": 0.5}
";

    #[test]
    fn summarize_aggregates_per_solver() {
        let s = summarize(SAMPLE).unwrap();
        assert_eq!(s.records, 19);
        assert_eq!(s.solvers.len(), 2);
        let (pre_name, pre) = &s.solvers[0];
        assert!(pre_name.is_empty());
        assert_eq!(pre.phases["parse"], (1, 0.25));
        assert_eq!(pre.passes, vec![("ovs".to_owned(), 200, 50, 60, 1200)]);
        let (name, lcd) = &s.solvers[1];
        assert_eq!(name, "LCD+HCD");
        assert_eq!(lcd.phases["solve"].0, 1);
        assert_eq!(lcd.cycles, (1, 3));
        assert_eq!(lcd.edges_added, 2);
        assert_eq!(lcd.snapshots, 2);
        assert_eq!(lcd.last_progress, Some((0, 9, 12, 2 << 20)));
        let cs = lcd.repr_cache.expect("repr_cache record parsed");
        assert_eq!(cs.intern_hits, 30);
        assert_eq!(cs.memo_misses, 25);
        assert_eq!(cs.distinct_sets, 11);
        assert!(pre.repr_cache.is_none());
        assert_eq!(lcd.rounds, (1, 50, 45, 800));
        assert_eq!(pre.rounds, (0, 0, 0, 0));
        assert_eq!(
            lcd.metric_counters,
            vec![
                ("worklist_pops".to_owned(), 42),
                ("pts_bytes".to_owned(), 4096),
                ("propagated_bytes".to_owned(), 1 << 20),
                ("propagated_full_bytes".to_owned(), 4 << 20),
            ]
        );
        assert_eq!(
            lcd.metric_hists,
            vec![("propagation_delta".to_owned(), 12, "0:3 2:9".to_owned())]
        );
        assert_eq!(
            lcd.hotspots,
            vec![("pops_per_var".to_owned(), "7:19 3:11 9:2".to_owned())]
        );
        assert!(pre.hotspots.is_empty());
    }

    #[test]
    fn render_mentions_phases_and_counters() {
        let s = summarize(SAMPLE).unwrap();
        let text = render(&s);
        assert!(text.contains("19 trace records"));
        assert!(text.contains("offline pass ovs: 200 -> 50 constraints (75.0% cut)"));
        assert!(text.contains("(pre-solve)"));
        assert!(text.contains("solver: LCD+HCD"));
        assert!(text.contains("parse"));
        assert!(text.contains("solve"));
        assert!(text.contains("cycles collapsed: 1 (removing 3 nodes)"));
        assert!(text.contains("graph edges added: 2"));
        assert!(text.contains("propagations 12"));
        assert!(text.contains("pts 2.0 MiB"));
        assert!(text.contains("repr cache: 11 distinct sets"));
        assert!(text.contains("intern hit rate 75.0%"));
        assert!(text.contains("bsp rounds: 1 | hints used 45/50"));
        assert!(text.contains("cost counters: worklist_pops 42 | pts_bytes 4096"));
        assert!(text.contains(
            "propagation bytes: sent 1.0 MiB | full-set equivalent 4.0 MiB (75.0% saved by delta sends)"
        ));
        assert!(text.contains("hist propagation_delta: 12 samples | log2 buckets 0:3 2:9"));
        assert!(text.contains("hotspots: pops_per_var"));
        assert!(
            text.contains("v7"),
            "top entry renders its variable id:\n{text}"
        );
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let err = summarize("{\"event\": \"progress\"}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = summarize("{\"t\": 1.0}\n").unwrap_err();
        assert!(err.contains("missing `event`"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let s = summarize("\n\n").unwrap();
        assert_eq!(s.records, 0);
        assert!(render(&s).contains("0 trace records"));
    }
}
