//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` §5 for the experiment index).
//!
//! Each table/figure is a binary (`cargo run --release -p ant-bench --bin
//! table3`); this library holds the shared runner: benchmark loading,
//! OVS pre-processing, timed solver sweeps, and plain-text table/series
//! rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod render;
pub mod runner;
pub mod schema;
pub mod trace;

pub use runner::{run_suite, BenchResult, SuiteResults};
